"""Cycle-level processor: pipelined instruction fetch, blocking loads.

Approximates the timing of a simple in-order pipeline without modeling
pipeline registers: up to two instruction fetches are kept in flight,
so straight-line code approaches one instruction per memory-hit round
trip; mispredicted control flow squashes the speculative fetches.
Loads, stores, and "go" coprocessor requests block until their
response returns.

The fetch predictor is a CL design-space knob (the kind of first-order
exploration the paper's Section III-C motivates):

- ``"static"`` — always predict fall-through (mispredict on every
  taken branch/jump);
- ``"btb"`` — an infinite branch-target buffer records the last target
  of each control-transfer PC, so loops mispredict only on exit.
"""

from __future__ import annotations

from collections import deque

from ..accel.msgs import XcelMsg, XcelReqMsg
from ..core import (
    Model,
    OutPort,
    ParentReqRespBundle,
    ParentReqRespQueueAdapter,
)
from ..mem.msgs import MemMsg, MemReqMsg
from .isa import XCEL_GO, alu, branch_taken, decode

_MAX_INFLIGHT_FETCHES = 2


class ProcCL(Model):
    """Cycle-level MinRISC processor."""

    def __init__(s, mem_ifc_types=None, xcel_ifc_types=None,
                 predictor="static"):
        if predictor not in ("static", "btb"):
            raise ValueError(f"unknown predictor {predictor!r}")
        mem_ifc_types = mem_ifc_types or MemMsg()
        xcel_ifc_types = xcel_ifc_types or XcelMsg()
        s.predictor = predictor
        s.btb = {}
        s.imem_ifc = ParentReqRespBundle(mem_ifc_types)
        s.dmem_ifc = ParentReqRespBundle(mem_ifc_types)
        s.xcel_ifc = ParentReqRespBundle(xcel_ifc_types)
        s.done = OutPort(1)

        s.imem = ParentReqRespQueueAdapter(s.imem_ifc, req_qsize=2,
                                           resp_qsize=2)
        s.dmem = ParentReqRespQueueAdapter(s.dmem_ifc)
        s.xcel = ParentReqRespQueueAdapter(s.xcel_ifc)

        s.regs = [0] * 32
        s.pc = 0
        s.pred_pc = 0
        s.halted = False
        s.num_instrs = 0
        s.num_squashes = 0
        s.counter("insts_retired", "instructions committed",
                  state=("num_instrs",))
        s.counter("squashes", "fetches squashed by taken branches",
                  state=("num_squashes",))
        s.state = "run"         # run | load_wait | store_wait | xcel_wait
        s.instr = None
        # In-flight fetch bookkeeping: (fetch_addr, squashed) FIFO.
        s.inflight = deque()

        @s.tick_cl
        def logic():
            s.imem.xtick()
            s.dmem.xtick()
            s.xcel.xtick()
            if s.reset:
                s.state = "run"
                s.halted = False
                s.inflight.clear()
                s.pred_pc = s.pc
                s.done.next = 0
                return
            if s.halted:
                s.done.next = 1
                return
            s._tick_body()

    def _tick_body(s):
        # Retire a pending blocking operation first.
        if s.state == "load_wait":
            if not s.dmem.resp_q.empty():
                s._write_reg(s.instr.rd, int(s.dmem.get_resp().data))
                s.state = "run"
        elif s.state == "store_wait":
            if not s.dmem.resp_q.empty():
                s.dmem.get_resp()
                s.state = "run"
        elif s.state == "xcel_wait":
            if not s.xcel.resp_q.empty():
                s._write_reg(s.instr.rd, int(s.xcel.get_resp().data))
                s.state = "run"

        # Execute at most one instruction per cycle.
        if s.state == "run" and not s.imem.resp_q.empty():
            addr, squashed = s.inflight.popleft()
            resp = s.imem.get_resp()
            if squashed:
                s.num_squashes += 1
            else:
                s.instr = decode(int(resp.data))
                s.num_instrs += 1
                s._execute()

        # Keep the fetch pipeline full (predicted-path speculation).
        while (not s.halted
               and len(s.inflight) < _MAX_INFLIGHT_FETCHES
               and not s.imem.req_q.full()):
            s.imem.push_req(MemReqMsg.mk_rd(s.pred_pc))
            s.inflight.append([s.pred_pc, False])
            if s.predictor == "btb" and s.pred_pc in s.btb:
                s.pred_pc = s.btb[s.pred_pc]
            else:
                s.pred_pc = (s.pred_pc + 4) & 0xFFFFFFFF

    def _redirect(s, target):
        """Taken control transfer: train the BTB; fetch verification
        happens uniformly in ``_verify_fetch_path``."""
        target &= 0xFFFFFFFF
        if s.predictor == "btb":
            s.btb[s.pc] = target
        return target

    def _verify_fetch_path(s, next_pc):
        """After every instruction: if the speculative fetch stream
        is not fetching ``next_pc`` next, squash and refetch."""
        if s.halted:
            return
        if s.inflight:
            head = s.inflight[0]
            if head[1] or head[0] != next_pc:
                s.num_squashes += 1
                for entry in s.inflight:
                    entry[1] = True
                s.pred_pc = next_pc
        elif s.pred_pc != next_pc:
            s.pred_pc = next_pc

    def _execute(s):
        instr = s.instr
        op = instr.op
        regs = s.regs
        next_pc = (s.pc + 4) & 0xFFFFFFFF

        if op == "halt":
            s.halted = True
            return
        if op == "j":
            next_pc = s._redirect(instr.imm * 4)
        elif op == "jal":
            s._write_reg(31, s.pc + 4)
            next_pc = s._redirect(instr.imm * 4)
        elif op == "jr":
            next_pc = s._redirect(regs[instr.rs1])
        elif op in ("beq", "bne", "blt", "bge"):
            if branch_taken(op, regs[instr.rs1], regs[instr.rd]):
                next_pc = s._redirect(s.pc + 4 + instr.imm * 4)
        elif op == "lw":
            addr = alu("add", regs[instr.rs1], instr.imm)
            s.dmem.push_req(MemReqMsg.mk_rd(addr))
            s.state = "load_wait"
        elif op == "sw":
            addr = alu("add", regs[instr.rs1], instr.imm)
            s.dmem.push_req(MemReqMsg.mk_wr(addr, regs[instr.rd]))
            s.state = "store_wait"
        elif op == "xcel":
            s.xcel.push_req(XcelReqMsg.mk(instr.imm, regs[instr.rs1]))
            if instr.imm == XCEL_GO:
                s.state = "xcel_wait"
        elif op in ("addi", "andi", "ori", "xori", "slti",
                    "slli", "srli", "lui"):
            s._write_reg(instr.rd, alu(op, regs[instr.rs1], instr.imm))
        else:
            s._write_reg(
                instr.rd, alu(op, regs[instr.rs1], regs[instr.rs2])
            )

        s.pc = next_pc
        s._verify_fetch_path(next_pc)

    def _write_reg(s, idx, value):
        if idx != 0:
            s.regs[idx] = value & 0xFFFFFFFF

    def line_trace(s):
        return f"pc={s.pc:08x} {s.state:10} if={len(s.inflight)}"
