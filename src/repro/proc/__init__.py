"""Processor substrate: MinRISC ISA, assembler, and FL/CL/RTL
processor implementations."""

from .assembler import AssemblerError, assemble, disassemble
from .harness import ProcHarness, run_program
from .isa import (
    XCEL_GO,
    XCEL_SIZE,
    XCEL_SRC0,
    XCEL_SRC1,
    Instr,
    alu,
    branch_taken,
    decode,
    encode,
)
from .proc_cl import ProcCL
from .proc_fl import IsaSim, ProcFL
from .proc_rtl import ProcRTL

__all__ = [
    "Instr", "encode", "decode", "alu", "branch_taken",
    "XCEL_GO", "XCEL_SIZE", "XCEL_SRC0", "XCEL_SRC1",
    "assemble", "disassemble", "AssemblerError",
    "IsaSim", "ProcFL", "ProcCL", "ProcRTL",
    "ProcHarness", "run_program",
]
