"""Two-pass assembler for MinRISC.

Accepts the usual tiny-assembler conventions:

- one instruction per line, ``#`` comments, blank lines ignored;
- labels as ``name:`` (optionally on their own line);
- registers written ``r0``..``r31``;
- memory operands written ``imm(rN)``;
- branch targets may be labels (encoded PC-relative, word offsets) or
  literal integers;
- jump targets may be labels (encoded as absolute word addresses) or
  literal integers;
- pseudo-instructions: ``nop``, ``mv rd, rs``, ``li rd, imm`` (expands
  to ``lui``+``ori`` when the constant needs it).

Example::

    asm = '''
        li   r1, 10
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    '''
    words = assemble(asm)
"""

from __future__ import annotations

import re

from .isa import I_TYPE, J_TYPE, OPCODES, R_TYPE, Instr, encode


class AssemblerError(Exception):
    """Raised on malformed assembly input."""


_MEM_OPERAND = re.compile(r"^(-?\w+)\((r\d+)\)$")


def _parse_reg(token, line):
    if not re.fullmatch(r"r\d+", token):
        raise AssemblerError(f"bad register {token!r} in: {line}")
    num = int(token[1:])
    if not 0 <= num < 32:
        raise AssemblerError(f"register out of range in: {line}")
    return num


def _parse_imm(token, labels, line, pc=None, relative=False):
    if token in labels:
        target = labels[token]
        if relative:
            return target - (pc + 1)
        return target
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(
            f"bad immediate or unknown label {token!r} in: {line}"
        ) from None


def _tokenize(line):
    code = line.split("#", 1)[0].strip()
    if not code:
        return None, []
    parts = code.replace(",", " ").split()
    return parts[0].lower(), parts[1:]


def _expand_pseudo(op, args, line):
    """Expand a pseudo-instruction into real instruction tuples."""
    if op == "nop":
        return [("addi", ["r0", "r0", "0"])]
    if op == "mv":
        if len(args) != 2:
            raise AssemblerError(f"mv takes 2 operands: {line}")
        return [("addi", [args[0], args[1], "0"])]
    if op == "li":
        if len(args) != 2:
            raise AssemblerError(f"li takes 2 operands: {line}")
        try:
            value = int(args[1], 0) & 0xFFFFFFFF
        except ValueError:
            raise AssemblerError(f"li needs a constant: {line}") from None
        if value < 0x8000:
            return [("addi", [args[0], "r0", str(value)])]
        expansion = [("lui", [args[0], "r0", str(value >> 16)])]
        if value & 0xFFFF:
            expansion.append(
                ("ori", [args[0], args[0], str(value & 0xFFFF)])
            )
        return expansion
    return [(op, args)]


def assemble(source):
    """Assemble MinRISC source text into a list of 32-bit words."""
    # Pass 1: expand pseudos, collect labels.
    program = []     # (op, args, source_line)
    labels = {}
    for raw_line in source.splitlines():
        line = raw_line.strip()
        while True:
            match = re.match(r"^(\w+):\s*(.*)$", line)
            if not match:
                break
            labels[match.group(1)] = len(program)
            line = match.group(2)
        op, args = _tokenize(line)
        if op is None:
            continue
        if op not in OPCODES and op not in ("nop", "mv", "li"):
            raise AssemblerError(f"unknown instruction {op!r}: {raw_line}")
        for real_op, real_args in _expand_pseudo(op, args, line):
            program.append((real_op, real_args, raw_line.strip()))

    # Pass 2: encode.
    words = []
    for pc, (op, args, line) in enumerate(program):
        words.append(encode(_build_instr(op, args, labels, pc, line)))
    return words


def _build_instr(op, args, labels, pc, line):
    if op in R_TYPE:
        if len(args) != 3:
            raise AssemblerError(f"{op} takes 3 operands: {line}")
        return Instr(op, rd=_parse_reg(args[0], line),
                     rs1=_parse_reg(args[1], line),
                     rs2=_parse_reg(args[2], line))

    if op in ("lw", "sw"):
        if len(args) != 2:
            raise AssemblerError(f"{op} takes 2 operands: {line}")
        match = _MEM_OPERAND.match(args[1])
        if not match:
            raise AssemblerError(f"{op} needs imm(reg) operand: {line}")
        imm = _parse_imm(match.group(1), labels, line)
        base = _parse_reg(match.group(2), line)
        return Instr(op, rd=_parse_reg(args[0], line), rs1=base, imm=imm)

    if op in ("beq", "bne", "blt", "bge"):
        if len(args) != 3:
            raise AssemblerError(f"{op} takes 3 operands: {line}")
        offset = _parse_imm(args[2], labels, line, pc=pc, relative=True)
        return Instr(op, rd=_parse_reg(args[1], line),
                     rs1=_parse_reg(args[0], line), imm=offset)

    if op in J_TYPE:
        if len(args) != 1:
            raise AssemblerError(f"{op} takes 1 operand: {line}")
        return Instr(op, imm=_parse_imm(args[0], labels, line))

    if op == "jr":
        if len(args) != 1:
            raise AssemblerError(f"jr takes 1 operand: {line}")
        return Instr(op, rs1=_parse_reg(args[0], line))

    if op == "xcel":
        if len(args) != 3:
            raise AssemblerError(f"xcel takes 3 operands: {line}")
        return Instr(op, rd=_parse_reg(args[0], line),
                     rs1=_parse_reg(args[1], line),
                     imm=_parse_imm(args[2], labels, line))

    if op == "halt":
        return Instr(op)

    if op in I_TYPE:   # plain ALU immediates
        if len(args) != 3:
            raise AssemblerError(f"{op} takes 3 operands: {line}")
        return Instr(op, rd=_parse_reg(args[0], line),
                     rs1=_parse_reg(args[1], line),
                     imm=_parse_imm(args[2], labels, line))

    raise AssemblerError(f"unhandled instruction {op!r}: {line}")


def disassemble(words, base=0):
    """Disassemble a word list into annotated assembly text.

    Branch targets are rendered as absolute word addresses (the
    assembler's label information is gone); unknown encodings become
    ``.word`` directives so any memory image round-trips to text.
    """
    from .isa import J_TYPE, R_TYPE, decode

    lines = []
    for i, word in enumerate(words):
        pc = base + 4 * i
        try:
            instr = decode(word)
        except ValueError:
            lines.append(f"{pc:08x}:  .word 0x{word:08x}")
            continue
        op = instr.op
        if op in ("beq", "bne", "blt", "bge"):
            target = pc + 4 + instr.imm * 4
            text = (f"{op} r{instr.rs1}, r{instr.rd}, "
                    f"0x{target & 0xFFFFFFFF:x}")
        elif op in ("lw", "sw"):
            text = f"{op} r{instr.rd}, {instr.imm}(r{instr.rs1})"
        elif op in J_TYPE:
            text = f"{op} 0x{instr.imm * 4:x}"
        elif op == "jr":
            text = f"jr r{instr.rs1}"
        elif op == "xcel":
            text = f"xcel r{instr.rd}, r{instr.rs1}, {instr.imm}"
        elif op == "halt":
            text = "halt"
        elif op in R_TYPE:
            text = f"{op} r{instr.rd}, r{instr.rs1}, r{instr.rs2}"
        else:
            text = f"{op} r{instr.rd}, r{instr.rs1}, {instr.imm}"
        lines.append(f"{pc:08x}:  {text}")
    return "\n".join(lines)
