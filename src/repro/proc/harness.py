"""Processor test harness: processor + magic memory composition."""

from __future__ import annotations

from ..core import Model, SimulationTool
from ..mem.test_memory import TestMemory


class ProcHarness(Model):
    """A processor wired to a two-port magic memory (imem + dmem).

    The coprocessor interface is left unconnected; programs that use
    ``xcel`` need the full tile (see :mod:`repro.accel.tile`).
    """

    def __init__(s, proc, mem_latency=1, mem_size=1 << 20):
        s.proc = proc
        s.mem = TestMemory(nports=2, latency=mem_latency, size=mem_size)
        s.connect(s.proc.imem_ifc.req, s.mem.ports[0].req)
        s.connect(s.proc.imem_ifc.resp, s.mem.ports[0].resp)
        s.connect(s.proc.dmem_ifc.req, s.mem.ports[1].req)
        s.connect(s.proc.dmem_ifc.resp, s.mem.ports[1].resp)

    def line_trace(s):
        return s.proc.line_trace()


def run_program(proc_cls, words, data=None, max_cycles=100_000,
                mem_latency=1):
    """Assemble-and-run helper.

    Loads ``words`` at address 0 (and optional ``data`` dict of
    addr -> word), runs until the processor reports done, and returns
    ``(harness, ncycles)``.
    """
    harness = ProcHarness(proc_cls(), mem_latency=mem_latency)
    harness.elaborate()
    harness.mem.load(0, words)
    for addr, value in (data or {}).items():
        harness.mem.write_word(addr, value)
    sim = SimulationTool(harness)
    sim.reset()
    while not int(harness.proc.done):
        sim.cycle()
        if sim.ncycles > max_cycles:
            raise AssertionError(
                f"program did not halt within {max_cycles} cycles "
                f"(pc={harness.proc.line_trace()})"
            )
    return harness, sim.ncycles
