"""Functional-level processors.

Two flavors, matching the paper's Figure 13 methodology:

- :class:`IsaSim` — a bare object-oriented instruction-set simulator
  with no ports and no notion of cycles.  This is the "simple ISA
  simulator" baseline every Figure 13 configuration is normalized
  against (LOD = 1).
- :class:`ProcFL` — a port-based FL processor that fetches and
  loads/stores through latency-insensitive memory interfaces and
  drives an accelerator port, so it composes with FL/CL/RTL caches
  and accelerators.
"""

from __future__ import annotations

from ..accel.msgs import XcelMsg, XcelReqMsg
from ..core import (
    Model,
    OutPort,
    ParentReqRespBundle,
    ParentReqRespQueueAdapter,
)
from ..mem.msgs import MemMsg, MemReqMsg
from .isa import XCEL_GO, alu, branch_taken, decode


class IsaSim:
    """Bare MinRISC instruction-set simulator (the Figure 13 baseline).

    ``xcel_handler(ctrl, data)`` models the accelerator functionally;
    the default built-in handler implements the dot-product protocol
    directly against simulator memory.
    """

    def __init__(self, mem_size=1 << 20, xcel_handler=None):
        self.mem = bytearray(mem_size)
        self.regs = [0] * 32
        self.pc = 0
        self.halted = False
        self.num_instrs = 0
        self.xcel_handler = xcel_handler or self._default_xcel
        self._xcel_state = {"size": 0, "src0": 0, "src1": 0}

    # -- memory ------------------------------------------------------------

    def load_program(self, words, base=0):
        for i, word in enumerate(words):
            self.write_mem(base + 4 * i, word)
        self.pc = base

    def read_mem(self, addr):
        addr &= (len(self.mem) - 1) & ~0x3
        return int.from_bytes(self.mem[addr:addr + 4], "little")

    def write_mem(self, addr, value):
        addr &= (len(self.mem) - 1) & ~0x3
        self.mem[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # -- accelerator (functional) ---------------------------------------------

    def _default_xcel(self, ctrl, data):
        state = self._xcel_state
        if ctrl == 1:
            state["size"] = data
        elif ctrl == 2:
            state["src0"] = data
        elif ctrl == 3:
            state["src1"] = data
        elif ctrl == XCEL_GO:
            total = 0
            for i in range(state["size"]):
                a = self.read_mem(state["src0"] + 4 * i)
                b = self.read_mem(state["src1"] + 4 * i)
                total += a * b
            return total & 0xFFFFFFFF
        return None

    # -- execution --------------------------------------------------------------

    def step(self):
        """Execute one instruction."""
        if self.halted:
            return
        instr = decode(self.read_mem(self.pc))
        self.num_instrs += 1
        regs = self.regs
        op = instr.op
        next_pc = self.pc + 4

        if op == "halt":
            self.halted = True
        elif op in ("j",):
            next_pc = instr.imm * 4
        elif op == "jal":
            regs[31] = self.pc + 4
            next_pc = instr.imm * 4
        elif op == "jr":
            next_pc = regs[instr.rs1]
        elif op in ("beq", "bne", "blt", "bge"):
            if branch_taken(op, regs[instr.rs1], regs[instr.rd]):
                next_pc = self.pc + 4 + instr.imm * 4
        elif op == "lw":
            addr = alu("add", regs[instr.rs1], instr.imm)
            self._write_reg(instr.rd, self.read_mem(addr))
        elif op == "sw":
            addr = alu("add", regs[instr.rs1], instr.imm)
            self.write_mem(addr, regs[instr.rd])
        elif op == "xcel":
            result = self.xcel_handler(instr.imm, regs[instr.rs1])
            if instr.imm == XCEL_GO:
                self._write_reg(instr.rd, result or 0)
        elif op in ("addi", "andi", "ori", "xori", "slti",
                    "slli", "srli", "lui"):
            self._write_reg(instr.rd, alu(op, regs[instr.rs1], instr.imm))
        else:
            self._write_reg(
                instr.rd, alu(op, regs[instr.rs1], regs[instr.rs2])
            )

        self.pc = next_pc & 0xFFFFFFFF

    def _write_reg(self, idx, value):
        if idx != 0:
            self.regs[idx] = value & 0xFFFFFFFF

    def run(self, max_instrs=1_000_000):
        while not self.halted and self.num_instrs < max_instrs:
            self.step()
        if not self.halted:
            raise RuntimeError(f"IsaSim: no halt after {max_instrs} instrs")
        return self.num_instrs


class ProcFL(Model):
    """Port-based FL processor.

    Functionally executes MinRISC but performs every instruction fetch,
    load/store, and coprocessor transaction over val/rdy interfaces, so
    it can be composed with caches, memories, and accelerators at any
    abstraction level.  Timing is not modeled beyond the natural
    latency of the interfaces.
    """

    def __init__(s, mem_ifc_types=None, xcel_ifc_types=None):
        mem_ifc_types = mem_ifc_types or MemMsg()
        xcel_ifc_types = xcel_ifc_types or XcelMsg()
        s.imem_ifc = ParentReqRespBundle(mem_ifc_types)
        s.dmem_ifc = ParentReqRespBundle(mem_ifc_types)
        s.xcel_ifc = ParentReqRespBundle(xcel_ifc_types)
        s.done = OutPort(1)

        s.imem = ParentReqRespQueueAdapter(s.imem_ifc)
        s.dmem = ParentReqRespQueueAdapter(s.dmem_ifc)
        s.xcel = ParentReqRespQueueAdapter(s.xcel_ifc)

        s.regs = [0] * 32
        s.pc = 0
        s.halted = False
        s.num_instrs = 0
        s.state = "fetch"
        s.instr = None
        s.counter("insts_retired", "instructions committed",
                  state=("num_instrs",))

        @s.tick_fl
        def logic():
            s.imem.xtick()
            s.dmem.xtick()
            s.xcel.xtick()
            if s.reset:
                s.state = "fetch"
                s.halted = False
                s.done.next = 0
                return
            if s.halted:
                s.done.next = 1
                return
            getattr(s, "_state_" + s.state)()

    # -- state machine ---------------------------------------------------------

    def _state_fetch(s):
        if not s.imem.req_q.full():
            s.imem.push_req(MemReqMsg.mk_rd(s.pc))
            s.state = "fetch_wait"

    def _state_fetch_wait(s):
        if s.imem.resp_q.empty():
            return
        word = int(s.imem.get_resp().data)
        s.instr = decode(word)
        s.num_instrs += 1
        s._execute()

    def _execute(s):
        instr = s.instr
        op = instr.op
        regs = s.regs
        next_pc = s.pc + 4

        if op == "halt":
            s.halted = True
            s.state = "fetch"
            return
        if op == "j":
            next_pc = instr.imm * 4
        elif op == "jal":
            s._write_reg(31, s.pc + 4)
            next_pc = instr.imm * 4
        elif op == "jr":
            next_pc = regs[instr.rs1]
        elif op in ("beq", "bne", "blt", "bge"):
            if branch_taken(op, regs[instr.rs1], regs[instr.rd]):
                next_pc = s.pc + 4 + instr.imm * 4
        elif op == "lw":
            addr = alu("add", regs[instr.rs1], instr.imm)
            s.dmem.push_req(MemReqMsg.mk_rd(addr))
            s.pc = next_pc & 0xFFFFFFFF
            s.state = "load_wait"
            return
        elif op == "sw":
            addr = alu("add", regs[instr.rs1], instr.imm)
            s.dmem.push_req(MemReqMsg.mk_wr(addr, regs[instr.rd]))
            s.pc = next_pc & 0xFFFFFFFF
            s.state = "store_wait"
            return
        elif op == "xcel":
            s.xcel.push_req(XcelReqMsg.mk(instr.imm, regs[instr.rs1]))
            s.pc = next_pc & 0xFFFFFFFF
            if instr.imm == XCEL_GO:
                s.state = "xcel_wait"
            else:
                s.state = "fetch"
                s._state_fetch()
            return
        elif op in ("addi", "andi", "ori", "xori", "slti",
                    "slli", "srli", "lui"):
            s._write_reg(instr.rd, alu(op, regs[instr.rs1], instr.imm))
        else:
            s._write_reg(
                instr.rd, alu(op, regs[instr.rs1], regs[instr.rs2])
            )

        s.pc = next_pc & 0xFFFFFFFF
        s.state = "fetch"
        s._state_fetch()

    def _state_load_wait(s):
        if not s.dmem.resp_q.empty():
            s._write_reg(s.instr.rd, int(s.dmem.get_resp().data))
            s.state = "fetch"
            s._state_fetch()

    def _state_store_wait(s):
        if not s.dmem.resp_q.empty():
            s.dmem.get_resp()
            s.state = "fetch"
            s._state_fetch()

    def _state_xcel_wait(s):
        if not s.xcel.resp_q.empty():
            s._write_reg(s.instr.rd, int(s.xcel.get_resp().data))
            s.state = "fetch"
            s._state_fetch()

    def _write_reg(s, idx, value):
        if idx != 0:
            s.regs[idx] = value & 0xFFFFFFFF

    def line_trace(s):
        return f"pc={s.pc:08x} {s.state:10}"
