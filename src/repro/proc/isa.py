"""MinRISC: a minimal 32-bit RISC ISA for the processor case studies.

The paper's tile experiments use a simple 5-stage RISC processor; we
define a compact RISC ISA ("MinRISC") rich enough to run real kernels
(matrix-vector multiplication, loops, function calls) and to drive the
accelerator coprocessor.

Encoding (32-bit fixed width):

    R-type:  opcode[31:26] rd[25:21] rs1[20:16] rs2[15:11] 0[10:0]
    I-type:  opcode[31:26] rd[25:21] rs1[20:16] imm16[15:0]
    J-type:  opcode[31:26] imm26[25:0]

32 general-purpose registers; ``r0`` is hardwired to zero.  Branches
are PC-relative with a signed word offset; jumps are absolute word
addresses.  ``xcel rd, rs1, imm`` sends a message to the accelerator
coprocessor interface (ctrl_msg = imm, data = R[rs1]); when imm == 0
("go") the processor blocks until the accelerator responds and the
result is written to ``rd``.
"""

from __future__ import annotations

from dataclasses import dataclass

NUM_REGS = 32
LINK_REG = 31

# Opcode assignments (6-bit).
OPCODES = {
    # R-type ALU
    "add": 0x00, "sub": 0x01, "and": 0x02, "or": 0x03, "xor": 0x04,
    "slt": 0x05, "sltu": 0x06, "sll": 0x07, "srl": 0x08, "sra": 0x09,
    "mul": 0x0A,
    # I-type ALU
    "addi": 0x10, "andi": 0x11, "ori": 0x12, "xori": 0x13,
    "slti": 0x14, "slli": 0x15, "srli": 0x16, "lui": 0x17,
    # memory
    "lw": 0x20, "sw": 0x21,
    # control flow
    "beq": 0x30, "bne": 0x31, "blt": 0x32, "bge": 0x33,
    "j": 0x34, "jal": 0x35, "jr": 0x36,
    # coprocessor + misc
    "xcel": 0x38,
    "halt": 0x3F,
}

OPCODE_NAMES = {v: k for k, v in OPCODES.items()}

R_TYPE = {"add", "sub", "and", "or", "xor", "slt", "sltu",
          "sll", "srl", "sra", "mul"}
I_TYPE = {"addi", "andi", "ori", "xori", "slti", "slli", "srli", "lui",
          "lw", "sw", "beq", "bne", "blt", "bge", "xcel"}
J_TYPE = {"j", "jal"}

# Accelerator protocol control-message ids (paper Figures 7-8).
XCEL_GO = 0
XCEL_SIZE = 1
XCEL_SRC0 = 2
XCEL_SRC1 = 3


@dataclass
class Instr:
    """A decoded instruction."""

    op: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0        # sign-extended I-type immediate or J-type target

    def __str__(self):
        if self.op in R_TYPE:
            return f"{self.op} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if self.op in I_TYPE:
            return f"{self.op} r{self.rd}, r{self.rs1}, {self.imm}"
        if self.op in J_TYPE:
            return f"{self.op} {self.imm}"
        if self.op == "jr":
            return f"jr r{self.rs1}"
        return self.op


def encode(instr):
    """Encode an :class:`Instr` into a 32-bit word."""
    op = instr.op
    if op not in OPCODES:
        raise ValueError(f"unknown opcode {op!r}")
    word = OPCODES[op] << 26
    if op in R_TYPE or op == "jr":
        word |= (instr.rd & 0x1F) << 21
        word |= (instr.rs1 & 0x1F) << 16
        word |= (instr.rs2 & 0x1F) << 11
    elif op in I_TYPE:
        word |= (instr.rd & 0x1F) << 21
        word |= (instr.rs1 & 0x1F) << 16
        word |= instr.imm & 0xFFFF
    elif op in J_TYPE:
        word |= instr.imm & 0x3FFFFFF
    return word


def decode(word):
    """Decode a 32-bit word into an :class:`Instr`."""
    opcode = (word >> 26) & 0x3F
    if opcode not in OPCODE_NAMES:
        raise ValueError(f"cannot decode word {word:#010x}: bad opcode")
    op = OPCODE_NAMES[opcode]
    rd = (word >> 21) & 0x1F
    rs1 = (word >> 16) & 0x1F
    rs2 = (word >> 11) & 0x1F
    imm16 = word & 0xFFFF
    if imm16 >= 0x8000:
        imm16 -= 0x10000
    imm26 = word & 0x3FFFFFF
    if op in R_TYPE or op == "jr":
        return Instr(op, rd=rd, rs1=rs1, rs2=rs2)
    if op in I_TYPE:
        return Instr(op, rd=rd, rs1=rs1, imm=imm16)
    if op in J_TYPE:
        return Instr(op, imm=imm26)
    return Instr(op)


def _s32(value):
    """Interpret a 32-bit value as signed."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def alu(op, a, b):
    """The ALU shared by every processor implementation.

    ``a``/``b`` are 32-bit unsigned values; the result is 32-bit
    unsigned.  Raises on unknown ops so decoders fail loudly.
    """
    a &= 0xFFFFFFFF
    b &= 0xFFFFFFFF
    if op in ("andi", "ori", "xori"):
        # Logical immediates are zero-extended (MIPS-style); the
        # decoder sign-extends all 16-bit immediates, so undo that.
        b &= 0xFFFF
    if op in ("add", "addi", "lw", "sw"):
        return (a + b) & 0xFFFFFFFF
    if op == "sub":
        return (a - b) & 0xFFFFFFFF
    if op in ("and", "andi"):
        return a & b
    if op in ("or", "ori"):
        return a | b
    if op in ("xor", "xori"):
        return a ^ b
    if op in ("slt", "slti"):
        return 1 if _s32(a) < _s32(b) else 0
    if op == "sltu":
        return 1 if a < b else 0
    if op in ("sll", "slli"):
        return (a << (b & 31)) & 0xFFFFFFFF
    if op in ("srl", "srli"):
        return a >> (b & 31)
    if op == "sra":
        return (_s32(a) >> (b & 31)) & 0xFFFFFFFF
    if op == "mul":
        return (a * b) & 0xFFFFFFFF
    if op == "lui":
        return (b << 16) & 0xFFFFFFFF
    raise ValueError(f"alu: unknown op {op!r}")


def branch_taken(op, a, b):
    """Branch resolution shared by every processor implementation."""
    if op == "beq":
        return a == b
    if op == "bne":
        return a != b
    if op == "blt":
        return _s32(a) < _s32(b)
    if op == "bge":
        return _s32(a) >= _s32(b)
    raise ValueError(f"branch_taken: unknown op {op!r}")
