"""RTL processor: multicycle MinRISC implementation.

Bit- and resource-accurate register-transfer-level model: explicit
32-entry register file, instruction register, PC, and an FSM that walks
fetch / execute / memory / coprocessor states over raw val/rdy
interfaces.  All datapath logic is written inline with integer
operations (no Python helper calls, no Python-object state inside the
behavioral blocks), keeping the model inside the SimJIT-RTL
translatable subset.

This substitutes a multicycle core for the paper's 5-stage pipelined
PARC processor (see DESIGN.md): it exercises the same composition and
specialization paths at full RTL detail; only the absolute CPI differs.
"""

from __future__ import annotations

from ..accel.msgs import XcelMsg
from ..core import Model, OutPort, ParentReqRespBundle, Wire
from ..mem.msgs import MemMsg

# FSM states.
_F_REQ = 0
_F_WAIT = 1
_EXEC = 2
_MEM_REQ = 3
_MEM_WAIT = 4
_XCEL_REQ = 5
_XCEL_WAIT = 6
_HALT = 7


class ProcRTL(Model):
    """Multicycle register-transfer-level MinRISC processor."""

    def __init__(s, mem_ifc_types=None, xcel_ifc_types=None):
        mem_ifc_types = mem_ifc_types or MemMsg()
        xcel_ifc_types = xcel_ifc_types or XcelMsg()
        s.imem_ifc = ParentReqRespBundle(mem_ifc_types)
        s.dmem_ifc = ParentReqRespBundle(mem_ifc_types)
        s.xcel_ifc = ParentReqRespBundle(xcel_ifc_types)
        s.done = OutPort(1)

        s.rf = [Wire(32) for _ in range(32)]
        s.pc = Wire(32)
        s.ir = Wire(32)
        s.state = Wire(3)
        # Latched memory/coprocessor transaction fields.
        s.mem_type = Wire(1)
        s.mem_addr = Wire(32)
        s.mem_wdata = Wire(32)
        s.xcel_ctrl = Wire(3)
        s.xcel_data = Wire(32)
        s.wb_reg = Wire(5)
        s.xcel_wait_resp = Wire(1)
        # Retired-instruction counter (a real register, so the model
        # stays inside the translatable subset).
        s.instret = Wire(32)
        s.counter("insts_retired", "instructions committed",
                  sig=s.instret)

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.state.next = _F_REQ
                s.pc.next = 0
                s.instret.next = 0
                for i in range(32):
                    s.rf[i].next = 0
            elif s.state.uint() == _F_REQ:
                if s.imem_ifc.req_rdy.uint():
                    s.state.next = _F_WAIT
            elif s.state.uint() == _F_WAIT:
                if s.imem_ifc.resp_val.uint():
                    s.ir.next = s.imem_ifc.resp_msg.data.value
                    s.state.next = _EXEC
            elif s.state.uint() == _EXEC:
                # ---- decode -------------------------------------------------
                s.instret.next = s.instret + 1
                ir = s.ir.uint()
                opcode = (ir >> 26) & 0x3F
                rd = (ir >> 21) & 0x1F
                rs1 = (ir >> 16) & 0x1F
                rs2 = (ir >> 11) & 0x1F
                imm = ir & 0xFFFF
                if imm >= 0x8000:
                    imm = imm - 0x10000
                imm26 = ir & 0x3FFFFFF

                a = s.rf[rs1].uint()
                b = s.rf[rs2].uint()
                pc = s.pc.uint()
                next_pc = (pc + 4) & 0xFFFFFFFF
                next_state = _F_REQ

                sa = a - 0x100000000 if a >= 0x80000000 else a
                sb = b - 0x100000000 if b >= 0x80000000 else b
                rt = s.rf[rd].uint()      # branch/store second operand
                srt = rt - 0x100000000 if rt >= 0x80000000 else rt

                wb_val = -1               # <0 means "no writeback"

                # ---- execute ------------------------------------------------
                if opcode == 0x00:        # add
                    wb_val = (a + b) & 0xFFFFFFFF
                elif opcode == 0x01:      # sub
                    wb_val = (a - b) & 0xFFFFFFFF
                elif opcode == 0x02:      # and
                    wb_val = a & b
                elif opcode == 0x03:      # or
                    wb_val = a | b
                elif opcode == 0x04:      # xor
                    wb_val = a ^ b
                elif opcode == 0x05:      # slt
                    wb_val = 1 if sa < sb else 0
                elif opcode == 0x06:      # sltu
                    wb_val = 1 if a < b else 0
                elif opcode == 0x07:      # sll
                    wb_val = (a << (b & 31)) & 0xFFFFFFFF
                elif opcode == 0x08:      # srl
                    wb_val = a >> (b & 31)
                elif opcode == 0x09:      # sra
                    wb_val = (sa >> (b & 31)) & 0xFFFFFFFF
                elif opcode == 0x0A:      # mul
                    wb_val = (a * b) & 0xFFFFFFFF
                elif opcode == 0x10:      # addi
                    wb_val = (a + imm) & 0xFFFFFFFF
                elif opcode == 0x11:      # andi
                    wb_val = a & (imm & 0xFFFF)
                elif opcode == 0x12:      # ori
                    wb_val = a | (imm & 0xFFFF)
                elif opcode == 0x13:      # xori
                    wb_val = a ^ (imm & 0xFFFF)
                elif opcode == 0x14:      # slti
                    wb_val = 1 if sa < imm else 0
                elif opcode == 0x15:      # slli
                    wb_val = (a << (imm & 31)) & 0xFFFFFFFF
                elif opcode == 0x16:      # srli
                    wb_val = a >> (imm & 31)
                elif opcode == 0x17:      # lui
                    wb_val = (imm << 16) & 0xFFFFFFFF
                elif opcode == 0x20:      # lw
                    s.mem_type.next = 0
                    s.mem_addr.next = (a + imm) & 0xFFFFFFFF
                    s.wb_reg.next = rd
                    next_state = _MEM_REQ
                elif opcode == 0x21:      # sw
                    s.mem_type.next = 1
                    s.mem_addr.next = (a + imm) & 0xFFFFFFFF
                    s.mem_wdata.next = rt
                    next_state = _MEM_REQ
                elif opcode == 0x30:      # beq
                    if a == rt:
                        next_pc = (pc + 4 + imm * 4) & 0xFFFFFFFF
                elif opcode == 0x31:      # bne
                    if a != rt:
                        next_pc = (pc + 4 + imm * 4) & 0xFFFFFFFF
                elif opcode == 0x32:      # blt
                    if sa < srt:
                        next_pc = (pc + 4 + imm * 4) & 0xFFFFFFFF
                elif opcode == 0x33:      # bge
                    if sa >= srt:
                        next_pc = (pc + 4 + imm * 4) & 0xFFFFFFFF
                elif opcode == 0x34:      # j
                    next_pc = (imm26 * 4) & 0xFFFFFFFF
                elif opcode == 0x35:      # jal
                    s.rf[31].next = (pc + 4) & 0xFFFFFFFF
                    next_pc = (imm26 * 4) & 0xFFFFFFFF
                elif opcode == 0x36:      # jr
                    next_pc = a
                elif opcode == 0x38:      # xcel
                    s.xcel_ctrl.next = imm & 0x7
                    s.xcel_data.next = a
                    s.wb_reg.next = rd
                    s.xcel_wait_resp.next = 1 if (imm & 0x7) == 0 else 0
                    next_state = _XCEL_REQ
                elif opcode == 0x3F:      # halt
                    next_state = _HALT

                if wb_val >= 0 and rd != 0:
                    s.rf[rd].next = wb_val

                s.pc.next = next_pc
                s.state.next = next_state
            elif s.state.uint() == _MEM_REQ:
                if s.dmem_ifc.req_rdy.uint():
                    s.state.next = _MEM_WAIT
            elif s.state.uint() == _MEM_WAIT:
                if s.dmem_ifc.resp_val.uint():
                    if s.mem_type.uint() == 0 and s.wb_reg.uint() != 0:
                        s.rf[s.wb_reg.uint()].next = \
                            s.dmem_ifc.resp_msg.data.value
                    s.state.next = _F_REQ
            elif s.state.uint() == _XCEL_REQ:
                if s.xcel_ifc.req_rdy.uint():
                    if s.xcel_wait_resp.uint():
                        s.state.next = _XCEL_WAIT
                    else:
                        s.state.next = _F_REQ
            elif s.state.uint() == _XCEL_WAIT:
                if s.xcel_ifc.resp_val.uint():
                    if s.wb_reg.uint() != 0:
                        s.rf[s.wb_reg.uint()].next = \
                            s.xcel_ifc.resp_msg.data.value
                    s.state.next = _F_REQ

        @s.combinational
        def comb_logic():
            state = s.state.uint()
            if s.reset.uint():
                state = -1        # drive nothing during reset
            s.done.value = state == _HALT

            s.imem_ifc.req_val.value = state == _F_REQ
            s.imem_ifc.req_msg.type_.value = 0
            s.imem_ifc.req_msg.addr.value = s.pc.value
            s.imem_ifc.req_msg.data.value = 0
            s.imem_ifc.resp_rdy.value = state == _F_WAIT

            s.dmem_ifc.req_val.value = state == _MEM_REQ
            s.dmem_ifc.req_msg.type_.value = s.mem_type.value
            s.dmem_ifc.req_msg.addr.value = s.mem_addr.value
            s.dmem_ifc.req_msg.data.value = s.mem_wdata.value
            s.dmem_ifc.resp_rdy.value = state == _MEM_WAIT

            s.xcel_ifc.req_val.value = state == _XCEL_REQ
            s.xcel_ifc.req_msg.ctrl_msg.value = s.xcel_ctrl.value
            s.xcel_ifc.req_msg.data.value = s.xcel_data.value
            s.xcel_ifc.resp_rdy.value = state == _XCEL_WAIT

    def line_trace(s):
        return f"pc={int(s.pc):08x} st={int(s.state)}"

    # Convenience accessors matching the FL/CL processors.
    @property
    def regs(s):
        return [int(w) for w in s.rf]

    @property
    def halted(s):
        return int(s.state) == _HALT

    @property
    def num_instrs(s):
        return int(s.instret)
