"""Design visualization: textual hierarchy and connectivity reports.

Simple analysis tools in the model/tool-split spirit (paper Section
III-B, Figure 3's "User Tool" box): they read an elaborated model
instance and render it for humans.
"""

from __future__ import annotations

from ..core.elaboration import _model_signals, elaborate
from ..core.signals import InPort, OutPort, Wire


def hierarchy_tree(model, _prefix="", _is_last=True):
    """ASCII tree of the module hierarchy with per-model stats.

    >>> print(hierarchy_tree(elaborated_mesh))    # doctest: +SKIP
    top (MeshNetworkStructural)  [ports=98 blocks=0]
    ├── routers[0] (RouterRTL)  [ports=32 blocks=2]
    ...
    """
    if not model.is_elaborated():
        elaborate(model)
    lines = []
    _tree_lines(model, "", True, lines, root=True)
    return "\n".join(lines)


def _tree_lines(model, prefix, is_last, lines, root=False):
    nports = len(model.get_ports())
    nblocks = len(model.get_comb_blocks()) + len(model.get_tick_blocks())
    label = (f"{model.name} ({type(model).__name__})  "
             f"[ports={nports} blocks={nblocks} level={model.level()}]")
    if root:
        lines.append(label)
    else:
        joint = "└── " if is_last else "├── "
        lines.append(prefix + joint + label)
    children = model.get_submodels()
    for i, child in enumerate(children):
        ext = "    " if (is_last or root) else "│   "
        child_prefix = "" if root else prefix + ext
        if root:
            child_prefix = ""
            _tree_lines(child, child_prefix, i == len(children) - 1, lines)
        else:
            _tree_lines(child, prefix + ("    " if is_last else "│   "),
                        i == len(children) - 1, lines)


def design_stats(model):
    """Aggregate design statistics: model/signal/net/block counts."""
    if not model.is_elaborated():
        elaborate(model)
    tick_levels = {"fl": 0, "cl": 0, "rtl": 0}
    ncomb = 0
    for sub in model._all_models:
        ncomb += len(sub.get_comb_blocks())
        for blk in sub.get_tick_blocks():
            tick_levels[blk.level] += 1
    return {
        "models": len(model._all_models),
        "signals": len(model._all_signals),
        "nets": len(model._all_nets),
        "state_bits": sum(net.nbits for net in model._all_nets),
        "comb_blocks": ncomb,
        "tick_blocks_fl": tick_levels["fl"],
        "tick_blocks_cl": tick_levels["cl"],
        "tick_blocks_rtl": tick_levels["rtl"],
        "connectors": len(model._connectors),
    }


def connectivity_report(model):
    """Human-readable listing of the top model's port nets."""
    if not model.is_elaborated():
        elaborate(model)
    net_members = {}
    for sig in model._all_signals:
        net_members.setdefault(id(sig._net.find()), []).append(sig)
    lines = []
    for port in model.get_ports():
        members = net_members.get(id(port._net.find()), [])
        others = [
            f"{sig.parent.full_name()}.{sig.name}"
            for sig in members if sig is not port and sig.parent
        ]
        kind = "in " if isinstance(port, InPort) else "out"
        target = ", ".join(sorted(others)) if others else "(unconnected)"
        lines.append(f"{kind} {port.name:24} -> {target}")
    return "\n".join(lines)
