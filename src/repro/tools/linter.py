"""Design linter: static checks over an elaborated model instance.

Another user-level tool (paper Section III-B): it inspects the design
the same way the simulator and translator do, and reports structural
problems before simulation:

- output ports that nothing drives;
- input ports of submodels left unconnected;
- nets with multiple behavioral drivers;
- combinational blocks with an empty inferred sensitivity list;
- name shadowing of the implicit clk/reset;
- declared Wires that nothing observes (never read by a block, a
  connection, or an ``s.observe(...)`` registration — dead logic).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.elaboration import elaborate
from ..core.signals import InPort, OutPort, Wire


@dataclass
class LintWarning:
    check: str
    where: str
    message: str

    def __str__(self):
        return f"[{self.check}] {self.where}: {self.message}"


def lint(model):
    """Run all lint checks; returns a list of :class:`LintWarning`."""
    if not model.is_elaborated():
        elaborate(model)
    warnings = []
    warnings.extend(_check_undriven_outputs(model))
    warnings.extend(_check_multiple_drivers(model))
    warnings.extend(_check_empty_sensitivity(model))
    warnings.extend(_check_never_observed_sinks(model))
    return warnings


def _written_nets(model):
    """Nets written by behavioral blocks, mapped to writing block."""
    from ..core.ast_ir import TranslationError, translate_block
    written = {}
    for sub in model._all_models:
        blocks = [("comb", blk) for blk in sub.get_comb_blocks()]
        blocks += [("tick", blk) for blk in sub.get_tick_blocks()]
        for kind, blk in blocks:
            level = getattr(blk, "level", None)
            ir_kind = "comb" if kind == "comb" else (
                "tick_cl" if level in ("cl", "fl") else "tick_rtl")
            try:
                ir = translate_block(sub, blk, ir_kind)
            except TranslationError:
                # FL/CL blocks outside the subset: assume they may
                # write anything on their own model; skip analysis.
                continue
            for ref in ir.sig_writes:
                for sig in ref.signals:
                    net = sig._net.find()
                    written.setdefault(id(net), []).append(
                        (blk, kind, sig))
    return written


def _check_undriven_outputs(model):
    warnings = []
    written = _written_nets(model)
    const_nets = {id(e.signal._net.find()
                     if hasattr(e, "signal") else e._net.find())
                  for e, _ in model._const_ties}
    connector_targets = {
        id((d.signal if hasattr(d, "signal") else d)._net.find())
        for _, d in model._connectors
    }
    has_fl = any(
        blk.level in ("fl", "cl")
        for sub in model._all_models for blk in sub.get_tick_blocks()
    )
    if has_fl:
        # FL/CL blocks may drive ports invisibly; skip this check.
        return warnings
    for port in model.get_outports():
        net = id(port._net.find())
        if net not in written and net not in const_nets \
                and net not in connector_targets:
            warnings.append(LintWarning(
                "undriven-output", model.full_name(),
                f"output port {port.name!r} has no driver",
            ))
    return warnings


def _check_multiple_drivers(model):
    warnings = []
    written = _written_nets(model)
    for net_id, writers in written.items():
        distinct = {id(blk) for blk, _, _ in writers}
        if len(distinct) > 1:
            names = sorted({f"{blk.model.full_name()}.{blk.func.__name__}"
                            for blk, _, _ in writers})
            sig = writers[0][2]
            warnings.append(LintWarning(
                "multiple-drivers", sig.name or "?",
                f"net driven by multiple blocks: {names}",
            ))
    return warnings


def _check_empty_sensitivity(model):
    warnings = []
    for sub in model._all_models:
        for blk in sub.get_comb_blocks():
            if not blk.signals:
                warnings.append(LintWarning(
                    "empty-sensitivity",
                    f"{sub.full_name()}.{blk.func.__name__}",
                    "combinational block reads no signals",
                ))
    return warnings


def _read_nets(model):
    """Net ids some consumer reads: behavioral blocks (precise read
    sets where translatable), connector sources, and observatory
    registrations.  Models containing untranslatable FL/CL blocks are
    treated conservatively — every net they touch counts as read."""
    from ..core.ast_ir import TranslationError, translate_block
    from ..core.elaboration import _model_signals
    read = set()
    for sub in model._all_models:
        blocks = [("comb", blk) for blk in sub.get_comb_blocks()]
        blocks += [("tick", blk) for blk in sub.get_tick_blocks()]
        opaque = False
        for kind, blk in blocks:
            level = getattr(blk, "level", None)
            ir_kind = "comb" if kind == "comb" else (
                "tick_cl" if level in ("cl", "fl") else "tick_rtl")
            try:
                ir = translate_block(sub, blk, ir_kind)
            except TranslationError:
                # Reads we cannot enumerate: assume the block may read
                # any signal of its own model.
                opaque = True
                continue
            for ref in ir.sig_reads:
                for sig in ref.signals:
                    read.add(id(sig._net.find()))
        if opaque:
            for sig in _model_signals(sub):
                read.add(id(sig._net.find()))
        for spec in getattr(sub, "_observed_signals", ()):
            sig = spec.signal if hasattr(spec, "signal") else spec
            if hasattr(sig, "_net"):
                read.add(id(sig._net.find()))
    for src, _ in model._connectors:
        sig = src.signal if hasattr(src, "signal") else src
        read.add(id(sig._net.find()))
    return read


def _check_never_observed_sinks(model):
    """Flag declared Wires nothing reads.

    A Wire whose net is never read by a comb/tick block, never the
    source of a connection, not merged (via connect) into a net
    containing any port, and not registered with ``s.observe(...)`` is
    write-only: the logic computing it is dead.  Ports are exempt —
    an unread OutPort is the *environment's* business — and so is any
    Wire sharing a net with one."""
    warnings = []
    read = _read_nets(model)
    port_nets = set()
    for sub in model._all_models:
        for sig in vars(sub).values():
            if isinstance(sig, (InPort, OutPort)):
                port_nets.add(id(sig._net.find()))
            elif isinstance(sig, list):
                for item in sig:
                    if isinstance(item, (InPort, OutPort)):
                        port_nets.add(id(item._net.find()))
    seen = set()
    for sub in model._all_models:
        for name, sig in list(vars(sub).items()):
            items = sig if isinstance(sig, list) else [sig]
            for item in items:
                if not isinstance(item, Wire):
                    continue
                net = id(item._net.find())
                if net in read or net in port_nets or net in seen:
                    continue
                seen.add(net)
                warnings.append(LintWarning(
                    "never-observed-sink",
                    sub.full_name(),
                    f"wire {item.name or name!r} is written but never "
                    f"read by any block, connection, or observer",
                ))
    return warnings
