"""Design linter: static checks over an elaborated model instance.

Another user-level tool (paper Section III-B): it inspects the design
the same way the simulator and translator do, and reports structural
problems before simulation:

- output ports that nothing drives;
- input ports of submodels left unconnected;
- nets with multiple behavioral drivers;
- combinational blocks with an empty inferred sensitivity list;
- name shadowing of the implicit clk/reset.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.elaboration import elaborate
from ..core.signals import InPort, OutPort, Wire


@dataclass
class LintWarning:
    check: str
    where: str
    message: str

    def __str__(self):
        return f"[{self.check}] {self.where}: {self.message}"


def lint(model):
    """Run all lint checks; returns a list of :class:`LintWarning`."""
    if not model.is_elaborated():
        elaborate(model)
    warnings = []
    warnings.extend(_check_undriven_outputs(model))
    warnings.extend(_check_multiple_drivers(model))
    warnings.extend(_check_empty_sensitivity(model))
    return warnings


def _written_nets(model):
    """Nets written by behavioral blocks, mapped to writing block."""
    from ..core.ast_ir import TranslationError, translate_block
    written = {}
    for sub in model._all_models:
        blocks = [("comb", blk) for blk in sub.get_comb_blocks()]
        blocks += [("tick", blk) for blk in sub.get_tick_blocks()]
        for kind, blk in blocks:
            level = getattr(blk, "level", None)
            ir_kind = "comb" if kind == "comb" else (
                "tick_cl" if level in ("cl", "fl") else "tick_rtl")
            try:
                ir = translate_block(sub, blk, ir_kind)
            except TranslationError:
                # FL/CL blocks outside the subset: assume they may
                # write anything on their own model; skip analysis.
                continue
            for ref in ir.sig_writes:
                for sig in ref.signals:
                    net = sig._net.find()
                    written.setdefault(id(net), []).append(
                        (blk, kind, sig))
    return written


def _check_undriven_outputs(model):
    warnings = []
    written = _written_nets(model)
    const_nets = {id(e.signal._net.find()
                     if hasattr(e, "signal") else e._net.find())
                  for e, _ in model._const_ties}
    connector_targets = {
        id((d.signal if hasattr(d, "signal") else d)._net.find())
        for _, d in model._connectors
    }
    has_fl = any(
        blk.level in ("fl", "cl")
        for sub in model._all_models for blk in sub.get_tick_blocks()
    )
    if has_fl:
        # FL/CL blocks may drive ports invisibly; skip this check.
        return warnings
    for port in model.get_outports():
        net = id(port._net.find())
        if net not in written and net not in const_nets \
                and net not in connector_targets:
            warnings.append(LintWarning(
                "undriven-output", model.full_name(),
                f"output port {port.name!r} has no driver",
            ))
    return warnings


def _check_multiple_drivers(model):
    warnings = []
    written = _written_nets(model)
    for net_id, writers in written.items():
        distinct = {id(blk) for blk, _, _ in writers}
        if len(distinct) > 1:
            names = sorted({f"{blk.model.full_name()}.{blk.func.__name__}"
                            for blk, _, _ in writers})
            sig = writers[0][2]
            warnings.append(LintWarning(
                "multiple-drivers", sig.name or "?",
                f"net driven by multiple blocks: {names}",
            ))
    return warnings


def _check_empty_sensitivity(model):
    warnings = []
    for sub in model._all_models:
        for blk in sub.get_comb_blocks():
            if not blk.signals:
                warnings.append(LintWarning(
                    "empty-sensitivity",
                    f"{sub.full_name()}.{blk.func.__name__}",
                    "combinational block reads no signals",
                ))
    return warnings
