"""VCD waveform dumping.

A user-written tool in the paper's model/tool-split sense (Section
III-B): it consumes an elaborated model instance and the simulator's
per-cycle sampling hook to produce a standard Value Change Dump file
viewable in GTKWave.

Usage::

    with VCDWriter("trace.vcd") as vcd:
        sim = SimulationTool(model, vcd=vcd)
        ...

The file is opened lazily on attach (a constructed-but-unused writer
creates nothing), and ``close()`` is idempotent and flush-safe, so the
context-manager form guarantees a complete file even when the simulated
block raises.  ``SimulationTool.close()`` closes an attached writer.
"""

from __future__ import annotations

import string


def vcd_id_codes():
    """Generate short VCD identifier codes ("a", "b", ..., "aa", ...)."""
    chars = string.ascii_letters + string.digits + "!@#$%^&*"
    i = 0
    while True:
        code = ""
        n = i
        while True:
            code += chars[n % len(chars)]
            n //= len(chars)
            if n == 0:
                break
        yield code
        i += 1


def vcd_value_line(value, nbits, code):
    """Format one VCD value-change line for an integer value."""
    if nbits == 1:
        return f"{value}{code}\n"
    return f"b{value:b} {code}\n"


class VCDWriter:
    """Writes cycle-sampled VCD for every signal in the design."""

    def __init__(self, path, timescale="1ns"):
        self.path = path
        self.timescale = timescale
        self._file = None           # opened lazily at attach time
        self._closed = False
        self._signals = []         # (signal, id_code)
        self._last = {}
        self._header_done = False

    _id_codes = staticmethod(vcd_id_codes)

    def _write_header(self, model):
        out = self._file = open(self.path, "w")
        out.write(f"$timescale {self.timescale} $end\n")
        codes = self._id_codes()
        self._emit_scope(model, codes)
        out.write("$enddefinitions $end\n")
        out.write("$dumpvars\n")
        for sig, code in self._signals:
            out.write(self._value_line(sig, code))
        out.write("$end\n")
        self._header_done = True

    def _emit_scope(self, model, codes):
        out = self._file
        scope = model.name or type(model).__name__.lower()
        out.write(f"$scope module {scope} $end\n")
        from ..core.elaboration import _model_signals
        for sig in _model_signals(model):
            code = next(codes)
            name = (sig.name or "sig").replace(".", "__") \
                .replace("[", "_").replace("]", "")
            out.write(f"$var wire {sig.nbits} {code} {name} $end\n")
            self._signals.append((sig, code))
        for child in model.get_submodels():
            self._emit_scope(child, codes)
        out.write("$upscope $end\n")

    @staticmethod
    def _value_line(sig, code):
        return vcd_value_line(sig._net.find().read(), sig.nbits, code)

    def sample(self, cycle):
        """Called by the simulator after every cycle.

        Cycles on which no signal changed emit nothing at all — VCD
        timesteps are sparse, and an empty ``#<cycle>`` line only
        bloats the dump."""
        if not self._header_done:
            raise RuntimeError("VCDWriter not attached to a simulator")
        if self._closed:
            raise RuntimeError(f"VCDWriter {self.path!r} is closed")
        last = self._last
        lines = []
        for sig, code in self._signals:
            value = sig._net.find().read()
            if last.get(code) != value:
                last[code] = value
                lines.append(self._value_line(sig, code))
        if lines:
            self._file.write(f"#{cycle}\n")
            self._file.writelines(lines)

    def attach(self, model):
        """Bind to an elaborated model (called by SimulationTool)."""
        if self._closed:
            raise RuntimeError(f"VCDWriter {self.path!r} is closed")
        if not self._header_done:
            try:
                self._write_header(model)
            except BaseException:
                # Never leak a half-written open handle: close it and
                # surface the original error.
                self.close()
                raise

    def close(self):
        """Flush and close the output file.  Idempotent; safe to call
        on a writer that never attached (nothing was opened)."""
        if self._closed:
            return
        self._closed = True
        if self._file is not None:
            try:
                self._file.flush()
            finally:
                self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
