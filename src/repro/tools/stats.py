"""Simulation activity analysis (deprecated shim).

The activity analyzer moved into the unified telemetry subsystem:
:class:`ActivityReport` lives in :mod:`repro.telemetry.profile` and the
report is built by ``sim.telemetry.activity()``.  This module keeps
the old entry points working with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from ..telemetry.profile import ActivityReport

__all__ = ["ActivityReport", "activity_report"]


def activity_report(sim):
    """Deprecated: use ``sim.telemetry.activity()`` instead."""
    warnings.warn(
        "repro.tools.stats.activity_report is deprecated; use "
        "sim.telemetry.activity()",
        DeprecationWarning,
        stacklevel=2,
    )
    return sim.telemetry.activity()
