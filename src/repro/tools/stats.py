"""Simulation activity analysis.

An analyzer tool in the paper's model/tool-split sense: consumes a
``SimulationTool`` run with ``collect_stats=True`` and reports where
simulated activity concentrated — which combinational blocks fire most,
and the average events per cycle (the quantity that event-driven
simulation optimizes relative to evaluate-everything simulators).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ActivityReport:
    """Aggregate combinational activity of a simulation run."""

    ncycles: int
    num_events: int
    hot_blocks: list      # [(name, count)], descending

    @property
    def events_per_cycle(self):
        return self.num_events / max(1, self.ncycles)

    def summary(self, top=10):
        lines = [
            f"cycles            : {self.ncycles}",
            f"comb block events : {self.num_events}",
            f"events/cycle      : {self.events_per_cycle:.1f}",
            "hottest blocks:",
        ]
        for name, count in self.hot_blocks[:top]:
            lines.append(f"  {count:10}  {name}")
        return "\n".join(lines)


def activity_report(sim):
    """Build an :class:`ActivityReport` from a stats-collecting
    simulator."""
    if not sim.collect_stats:
        raise ValueError(
            "pass collect_stats=True to SimulationTool to gather "
            "activity statistics"
        )
    names = {}
    for sub in sim.model._all_models:
        for blk in sub.get_comb_blocks():
            names[blk.func] = blk.name
    hot = sorted(
        ((names.get(func, getattr(func, "__name__", "?")), count)
         for func, count in sim.block_calls.items()),
        key=lambda item: -item[1],
    )
    return ActivityReport(
        ncycles=sim.ncycles,
        num_events=sim.num_events,
        hot_blocks=hot,
    )
