"""Structural linter for generated Verilog.

No Verilog simulator or synthesis tool is available offline, so this
tool gives the TranslationTool output a meaningful mechanical check: it
parses module structure with a small tokenizer and verifies

- every module instantiated is defined in the same source (or is a
  known primitive);
- instance port names exist on the instantiated module;
- every identifier used inside a module body is declared (port, wire,
  reg, integer, genvar, parameter, or array);
- begin/end, module/endmodule, case/endcase nest correctly;
- no identifier is declared twice in one module.

It is intentionally approximate (no expression grammar), but it has
caught real emitter bugs (undeclared shadow arrays, bad port maps), and
every translation test runs it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "integer", "genvar", "assign", "always", "begin", "end", "if",
    "else", "for", "case", "endcase", "default", "posedge", "negedge",
    "or", "and", "not", "parameter", "localparam", "initial",
}

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_DECL = re.compile(
    r"^\s*(?:input|output|inout)?\s*(?:wire|reg|integer|genvar)\s*"
    r"(?:\[[^\]]+\]\s*)?"
    r"([A-Za-z_][A-Za-z0-9_$]*)"
)


@dataclass
class VerilogLintError:
    module: str
    message: str

    def __str__(self):
        return f"[{self.module}] {self.message}"


def _strip_comments(text):
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def _split_modules(text):
    """Return [(name, body)] for each module in the source."""
    modules = []
    for match in re.finditer(
            r"^module\s+([A-Za-z_][A-Za-z0-9_$]*)(.*?)^endmodule",
            text, re.MULTILINE | re.DOTALL):
        modules.append((match.group(1), match.group(2)))
    return modules


def _declared_names(body):
    names = set()
    # Port and net declarations (also inside the port list).
    for line in body.splitlines():
        match = _DECL.match(line)
        if match:
            names.add(match.group(1))
        # Port-list entries: "input  wire [7:0] foo," possibly with
        # trailing comma handled by _DECL already; also catch
        # "input  wire foo".
    # Multi-declaration safety: find all "(wire|reg|integer) [range]? name"
    for match in re.finditer(
            r"\b(?:wire|reg|integer|genvar)\b\s*(?:\[[^\]]+\]\s*)?"
            r"([A-Za-z_][A-Za-z0-9_$]*)", body):
        names.add(match.group(1))
    return names


def _instance_refs(body):
    """[(module_name, instance_name, {port: expr})] for each instance."""
    instances = []
    pattern = re.compile(
        r"([A-Za-z_][A-Za-z0-9_$]*)\s+([A-Za-z_][A-Za-z0-9_$]*)\s*\n?\s*"
        r"\(\s*(\.[^;]*?)\)\s*;",
        re.DOTALL,
    )
    for match in pattern.finditer(body):
        mod, inst, ports_text = match.groups()
        if mod in _KEYWORDS:
            continue
        ports = {}
        for pmatch in re.finditer(
                r"\.([A-Za-z_][A-Za-z0-9_$]*)\s*\(([^()]*)\)",
                ports_text):
            ports[pmatch.group(1)] = pmatch.group(2).strip()
        instances.append((mod, inst, ports))
    return instances


def _module_ports(body):
    ports = set()
    header = body.split(");", 1)[0]
    for match in re.finditer(
            r"\b(?:input|output|inout)\b\s*(?:wire|reg)?\s*"
            r"(?:\[[^\]]+\]\s*)?([A-Za-z_][A-Za-z0-9_$]*)", header):
        ports.add(match.group(1))
    return ports


def lint_verilog(text):
    """Lint generated Verilog source; returns a list of errors."""
    text = _strip_comments(text)
    errors = []
    modules = _split_modules(text)
    if not modules:
        return [VerilogLintError("?", "no modules found")]
    defined = {name: body for name, body in modules}
    module_ports = {name: _module_ports(body)
                    for name, body in modules}

    for name, body in modules:
        # Balance checks.
        begins = len(re.findall(r"\bbegin\b", body))
        ends = len(re.findall(r"\bend\b", body))
        if begins != ends:
            errors.append(VerilogLintError(
                name, f"unbalanced begin/end ({begins}/{ends})"))
        cases = len(re.findall(r"\bcase\b", body))
        endcases = len(re.findall(r"\bendcase\b", body))
        if cases != endcases:
            errors.append(VerilogLintError(name, "unbalanced case"))

        declared = _declared_names(body) | module_ports[name]
        declared |= {"clk", "reset"}

        instances = _instance_refs(body)
        instance_names = set()
        for mod, inst, ports in instances:
            instance_names.add(inst)
            if mod not in defined:
                errors.append(VerilogLintError(
                    name, f"instantiates undefined module {mod!r}"))
                continue
            for port in ports:
                if port not in module_ports[mod]:
                    errors.append(VerilogLintError(
                        name,
                        f"instance {inst!r}: {mod!r} has no port "
                        f"{port!r}"))

        # Identifier usage check.  Instance port-map names (`.port(`)
        # belong to the instantiated module's namespace, not this one.
        portmap_names = set(
            re.findall(r"\.([A-Za-z_][A-Za-z0-9_$]*)\s*\(", body))
        used = set(_IDENT.findall(body)) - portmap_names
        unknown = sorted(
            ident for ident in used
            if ident not in declared
            and ident not in _KEYWORDS
            and ident not in defined
            and ident not in instance_names
            and not ident.isdigit()
        )
        for ident in unknown:
            errors.append(VerilogLintError(
                name, f"undeclared identifier {ident!r}"))

    return errors
