"""User-level tools built on elaborated model instances: waveform
dumping, linting, and design visualization (paper Section III-B)."""

from .linter import LintWarning, lint
from .stats import ActivityReport, activity_report
from .vcd import VCDWriter
from .verilog_lint import VerilogLintError, lint_verilog
from .visualize import connectivity_report, design_stats, hierarchy_tree

__all__ = [
    "VCDWriter",
    "lint", "LintWarning",
    "lint_verilog", "VerilogLintError",
    "hierarchy_tree", "design_stats", "connectivity_report",
    "activity_report", "ActivityReport",
]
