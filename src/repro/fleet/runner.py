"""Fault-tolerant process campaign execution.

``run_campaign`` shards a :class:`~repro.fleet.campaign.Campaign`
across a pool of worker processes.  Task specs are tiny picklable
descriptions; each worker rebuilds its DUTs from scratch, so nothing
simulator-shaped ever crosses the process boundary — only specs out,
:class:`~repro.fleet.campaign.TaskResult` back.

Task-level *exceptions* were already structured results (the
``execute`` failure-capture shell); this module makes process-level
*death* and *hangs* structured too.  Dispatch is a supervisor, not a
``Pool``:

- **Supervised dispatch.**  Each worker is a bare
  ``multiprocessing.Process`` with a private task pipe and result
  pipe.  The supervisor assigns one task at a time and tracks every
  in-flight assignment as ``task -> (worker pid, attempt, start time,
  deadline)``; workers acknowledge each assignment with a ``start``
  heartbeat on the same side-channel that carries the live
  spans/metrics messages.
- **Crash isolation.**  A worker that dies mid-task (segfault in a
  generated ``.so``, OOM kill, injected ``SIGKILL``) is detected via
  its process sentinel/exitcode.  The supervisor reaps it, respawns a
  replacement, and reassigns the task — the campaign never loses a
  sibling's completed work and never raises out of the dispatch loop.
- **Deadlines.**  ``task_deadline`` bounds each attempt's wall clock
  at the process level; an overrunning worker is terminated and the
  task reassigned.  This is the *hard* backstop behind the softer
  in-worker ``wall_budget`` watchdog (which converts pure-Python
  hangs into structured ``"timeout"`` results without killing
  anything).
- **Retry with backoff.**  :class:`RetryPolicy` bounds attempts and
  spaces them with exponential backoff; the jitter fraction is
  derived from the task's seed (crc32), so retry *schedules* are
  reproducible even though wall-clock timing never reaches the
  report.  Transient (wall-budget) timeout results are retried too;
  deterministic cycle-budget timeouts are not.
- **Quarantine.**  A task that keeps killing workers is quarantined
  after ``max_attempts`` as a structured ``"poisoned"`` result whose
  report-visible diagnostics carry only deterministic facts (attempt
  count, per-attempt failure reasons, exit signals, last heartbeat);
  wall-clock attempt timings ride the ``stats`` side-channel, so the
  ``repro-fleet-v1`` report stays byte-deterministic.
- **Write-ahead journal.**  ``journal=`` / ``resume=`` arm a
  :class:`~repro.fleet.journal.Journal`: every completion is fsync'd
  before it counts, and a resumed run loads completed results instead
  of re-executing them — producing byte-identical final report bytes.
- **Clean interruption.**  ``KeyboardInterrupt`` terminates the
  workers, flushes the journal and collector, and returns a *partial*
  :class:`FleetResult` (``stats["interrupted"]`` true, report status
  ``"interrupted"``) instead of losing everything.
- **Fork start method.**  The default start method is ``fork`` where
  the platform offers it: workers inherit the parent's
  ``PYTHONHASHSEED`` and module state, so anything hash-order
  sensitive (e.g. SimJIT code generation walking sets) is identical
  across workers.  ``spawn`` also works (results are seed-derived).
- **Shared .so cache.**  Workers inherit/receive one
  ``SIMJIT_CACHE_DIR``; the per-key ``flock`` in the specializer
  serializes same-design build races.
- **Observability side-channel.**  With ``trace=True`` each worker
  arms a process-local :class:`~repro.telemetry.tracing.Tracer` and
  ships span batches + metrics snapshots after every task; the parent
  additionally records supervisor instants (``fleet.retry``,
  ``fleet.respawn``, ``fleet.quarantine``).  Report bytes are
  identical with tracing on or off.

Chaos injection (:mod:`repro.fleet.chaos`) deterministically
exercises every path above; the chaos tests assert that a sabotaged
campaign converges to the exact report bytes of an undisturbed run.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import signal as signal_mod
import zlib
from collections import deque
from multiprocessing.connection import wait as conn_wait
from time import monotonic, perf_counter, sleep

from .aggregate import aggregate, report_json
from .campaign import Campaign, TaskResult, _safe_tag

__all__ = ["FleetContext", "FleetResult", "RetryPolicy",
           "run_campaign", "default_nworkers"]


class FleetContext:
    """Per-worker execution context handed to ``task.execute``."""

    def __init__(self, campaign_seed, artifact_dir=None):
        self.campaign_seed = campaign_seed
        self.artifact_dir = artifact_dir


class RetryPolicy:
    """Bounded retry with seed-jittered exponential backoff.

    ``max_attempts`` counts total tries (1 = never retry).  The
    ``attempt``-th failure waits ``base_delay * 2**(attempt-1)``
    seconds (capped at ``max_delay``), scaled into ``[0.5, 1.0]`` by a
    jitter fraction derived from crc32 of ``(task seed, attempt)`` —
    deterministic per task, decorrelated across tasks, so a thundering
    herd of retries spreads out the same way on every run.

    Process-level failures (crash, deadline overrun) are always
    retry-eligible.  Structured results are retried only when their
    status is in ``retry_statuses`` *and* the result is marked
    transient (``diagnostics["transient"]``, set by wall-budget
    watchdog trips) — deterministic failures would fail identically
    again, so retrying them only burns wall clock.
    """

    def __init__(self, max_attempts=3, base_delay=0.25, max_delay=30.0,
                 retry_statuses=("timeout",)):
        self.max_attempts = max(1, int(max_attempts))
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.retry_statuses = tuple(retry_statuses)

    def delay(self, task_seed, attempt):
        """Backoff before attempt ``attempt + 1`` (seconds)."""
        base = min(self.max_delay,
                   self.base_delay * (2.0 ** (max(0, attempt - 1))))
        key = f"{int(task_seed)}:{int(attempt)}".encode()
        frac = (zlib.crc32(key) & 0xFFFF) / 0xFFFF
        return base * (0.5 + 0.5 * frac)

    def should_retry_result(self, res, attempt):
        """Retry a *structured* result? (Process deaths don't come
        through here — they are always eligible up to the bound.)"""
        return (attempt < self.max_attempts
                and res.status in self.retry_statuses
                and bool((res.diagnostics or {}).get("transient")))

    def __repr__(self):
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base_delay={self.base_delay}, "
                f"max_delay={self.max_delay})")


class FleetResult:
    """Everything a campaign run produced.

    ``report`` (and ``report_json()``) hold only deterministic data;
    ``stats`` holds the wall-clock/process side-channel (including
    retry/respawn/quarantine accounting and the ``interrupted`` flag)
    and ``trace`` the :class:`~repro.fleet.live.LiveCollector`
    (``None`` unless the run traced).
    """

    def __init__(self, campaign, results, report, stats, trace=None):
        self.campaign = campaign
        self.results = list(results)
        self.report = report
        self.stats = stats
        self.trace = trace

    @property
    def ok(self):
        return self.report["status"] == "ok"

    @property
    def interrupted(self):
        return bool(self.stats.get("interrupted"))

    @property
    def failures(self):
        return self.report["failures"]

    def report_json(self):
        return report_json(self.report)

    def write_report(self, path):
        os.makedirs(os.path.dirname(os.path.abspath(path)),
                    exist_ok=True)
        with open(path, "w") as f:
            f.write(self.report_json())
        return path

    def chrome_trace(self):
        """The merged campaign trace object (requires ``trace=True``)."""
        if self.trace is None:
            raise ValueError(
                "campaign was run without trace=True; no spans "
                "were collected")
        return self.trace.chrome_trace(campaign=self.campaign)

    def write_trace(self, path):
        """Write the merged Chrome/Perfetto trace JSON; returns
        ``path``."""
        from ..telemetry.traceevent import write_trace
        return write_trace(path, self.chrome_trace())

    def __repr__(self):
        return (f"<FleetResult {self.campaign.name!r} "
                f"{self.report['counts']} status="
                f"{self.report['status']}>")


def default_nworkers():
    """Usable CPUs (affinity-aware where the platform reports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _task_seed(task, campaign_seed):
    """The task's derived substream seed (pure, computable without
    running the task — used for poisoned results and retry jitter)."""
    return task.rng(campaign_seed)._seed & 0xFFFFFFFF


def _task_cycles(res):
    """Best-effort simulated-cycle count of one task result (metrics
    snapshot only; the deterministic report never reads this)."""
    payload = res.payload or {}
    ncycles = payload.get("ncycles")
    if isinstance(ncycles, dict):
        return sum(int(v) for v in ncycles.values())
    if isinstance(ncycles, (int, float)):
        return int(ncycles)
    metrics = payload.get("metrics")
    if isinstance(metrics, dict):
        return int(metrics.get("ncycles", 0))
    return 0


def _percentile(values, q):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _kind_stats(results):
    """Per-task-kind duration percentiles (wall-clock side-channel)."""
    by_kind = {}
    for res in results:
        by_kind.setdefault(res.kind, []).append(res.elapsed)
    return {
        kind: {
            "count": len(durations),
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "max": max(durations),
            "total": sum(durations),
        }
        for kind, durations in sorted(by_kind.items())
    }


def _exit_signal(exitcode):
    """Signal name for a negative exitcode, else ``None``."""
    if exitcode is None or exitcode >= 0:
        return None
    try:
        return signal_mod.Signals(-exitcode).name
    except ValueError:
        return f"signal {-exitcode}"


# -- observability side-channel (worker side) ---------------------------------


class _ObsSink:
    """Per-worker observability state.

    Arms a process-local tracer (when tracing), accumulates worker-
    lifetime totals, and ships span batches + metrics snapshots after
    every task via ``put`` (a pipe ``send`` in pool workers, the
    collector's ``on_message`` inline).  Shipping is exception-
    guarded: observability must never take down a worker.
    """

    def __init__(self, put, trace, capacity=65536):
        self.put = put
        self.done = 0
        self.failed = 0
        self.cycles = 0
        self.counters = {}
        self.tracer = None
        if trace:
            from ..telemetry import tracing
            self.tracer = tracing.arm(capacity=capacity)

    def after_task(self, res):
        from .live import worker_snapshot
        self.done += 1
        if res.status != "ok":
            self.failed += 1
        self.cycles += _task_cycles(res)
        for name, value in (res.telemetry or {}).get(
                "counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) \
                + int(value)
        pid = os.getpid()
        try:
            tracer = self.tracer
            if tracer is not None:
                if tracer.dropped:
                    self.put(("dropped", pid, tracer.dropped))
                    tracer.dropped = 0
                records = tracer.drain()
                if records:
                    self.put(("spans", pid, records))
            self.put(("metrics", pid, worker_snapshot(
                self.done, self.failed, self.cycles, self.counters)))
        except Exception:
            pass


# -- worker side --------------------------------------------------------------


def _worker_main(task_r, res_w, campaign_seed, artifact_dir, cache_dir,
                 obs, trace, trace_capacity):
    """Worker process entry: recv ``(task, attempt)`` assignments from
    the supervisor, acknowledge each with a ``start`` heartbeat, run
    under the execute contract, ship the result.  SIGINT is ignored —
    a Ctrl-C belongs to the supervisor, which decides how to wind the
    fleet down."""
    try:
        signal_mod.signal(signal_mod.SIGINT, signal_mod.SIG_IGN)
    except (ValueError, OSError):
        pass
    if cache_dir:
        os.environ["SIMJIT_CACHE_DIR"] = cache_dir
    ctx = FleetContext(campaign_seed, artifact_dir)

    def _ship(msg):
        try:
            res_w.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False                   # parent is gone; shut down

    sink = None
    if obs:
        sink = _ObsSink(lambda m: _ship(("obs", m)), trace,
                        capacity=trace_capacity)
    pid = os.getpid()
    while True:
        try:
            msg = task_r.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        task, attempt = msg
        _ship(("start", pid,
               {"task_id": task.task_id, "attempt": attempt}))
        res = task.execute(campaign_seed, ctx, attempt=attempt)
        res.worker = pid
        if sink is not None:
            sink.after_task(res)
        if not _ship(("result", pid,
                      {"attempt": attempt, "result": res})):
            break


def _start_method(requested):
    if requested:
        return requested
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)


# -- supervisor (parent side) -------------------------------------------------


class _WorkerHandle:
    """One supervised worker: its process, pipes, and in-flight state."""

    __slots__ = ("proc", "task_w", "res_r", "busy")

    def __init__(self, proc, task_w, res_r):
        self.proc = proc
        self.task_w = task_w
        self.res_r = res_r
        self.busy = None    # dict(task, attempt, assigned, deadline,
        #                         heartbeat) while a task is in flight

    @property
    def pid(self):
        return self.proc.pid


class _Supervisor:
    """Crash-isolated, deadline-enforced campaign dispatch.

    State machine per task: ``pending -> in-flight -> (done |
    retry-delayed -> pending | quarantined)``.  Per worker:
    ``idle -> busy -> (idle | dead -> respawned)``.  The loop wakes on
    result-pipe readability, worker-sentinel death, the next deadline,
    or the next backoff expiry — never by polling a hot loop.
    """

    POLL = 0.5                  # max sleep between bookkeeping passes

    def __init__(self, campaign, todo, nworkers, retry, task_deadline,
                 artifact_dir, cache_dir, mp_ctx, collector, trace,
                 trace_capacity, journal):
        self.campaign = campaign
        self.retry = retry
        self.task_deadline = task_deadline
        self.artifact_dir = artifact_dir
        self.cache_dir = cache_dir
        self.mp = mp_ctx
        self.collector = collector
        self.trace = trace
        self.trace_capacity = trace_capacity
        self.journal = journal
        self.nworkers = nworkers
        self.ntotal = len(todo)
        self.pending = deque((task, 1) for task in todo)
        self.delayed = []           # heap of (ready, seq, task, attempt)
        self._seq = 0
        self.results = {}           # task_id -> final TaskResult
        self.attempts = {}          # task_id -> [attempt record, ...]
        self.heartbeats = {}        # task_id -> last start heartbeat
        self.workers = []
        self.retries = 0
        self.respawns = 0
        self.quarantined = []
        self.interrupted = False

    # -- lifecycle --------------------------------------------------------

    def run(self):
        try:
            for _ in range(min(self.nworkers, self.ntotal)):
                self.workers.append(self._spawn())
            while len(self.results) < self.ntotal:
                self._step()
        except KeyboardInterrupt:
            self.interrupted = True
        finally:
            self._shutdown()
        return self

    def _spawn(self):
        task_r, task_w = self.mp.Pipe(duplex=False)
        res_r, res_w = self.mp.Pipe(duplex=False)
        proc = self.mp.Process(
            target=_worker_main,
            args=(task_r, res_w, self.campaign.seed, self.artifact_dir,
                  self.cache_dir, self.collector is not None,
                  self.trace, self.trace_capacity),
            daemon=True)
        proc.start()
        # Close the child-end copies *immediately*: a later fork must
        # not inherit them, or EOF/death detection on these pipes
        # would silently stop working.
        task_r.close()
        res_w.close()
        return _WorkerHandle(proc, task_w, res_r)

    def _shutdown(self):
        for w in self.workers:
            if w.busy is None and w.proc.is_alive():
                try:
                    w.task_w.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for w in self.workers:
            w.proc.join(timeout=0.25 if w.busy is None else 0.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=2.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join()
            w.task_w.close()
            w.res_r.close()
        self.workers = []

    # -- one scheduling pass ----------------------------------------------

    def _step(self):
        now = monotonic()
        while self.delayed and self.delayed[0][0] <= now:
            _, _, task, attempt = heapq.heappop(self.delayed)
            self.pending.append((task, attempt))
        for w in self.workers:
            if w.busy is None and self.pending:
                self._assign(w, *self.pending.popleft())

        timeout = self.POLL
        for w in self.workers:
            if w.busy is not None and w.busy["deadline"] is not None:
                timeout = min(timeout, w.busy["deadline"] - now)
        if self.delayed:
            timeout = min(timeout, self.delayed[0][0] - now)
        waitables = [w.res_r for w in self.workers] \
            + [w.proc.sentinel for w in self.workers]
        if waitables:
            ready = set(conn_wait(waitables, max(0.0, timeout)))
        else:
            # Nothing in flight: everything left is backoff-delayed.
            sleep(max(0.0, min(timeout, self.POLL)))
            ready = set()

        for w in list(self.workers):
            if w.res_r in ready:
                self._drain(w)
        for w in list(self.workers):
            if not w.proc.is_alive():
                # Drain once more: results sent just before death are
                # still sitting in the pipe and must win over the
                # crash verdict.
                self._drain(w)
                self._on_dead_worker(w)
        now = monotonic()
        for w in list(self.workers):
            if (w.busy is not None
                    and w.busy["deadline"] is not None
                    and now >= w.busy["deadline"]):
                self._on_deadline(w)

    # -- dispatch ---------------------------------------------------------

    def _assign(self, w, task, attempt):
        deadline = (None if self.task_deadline is None
                    else monotonic() + self.task_deadline)
        try:
            w.task_w.send((task, attempt))
        except (BrokenPipeError, OSError):
            # Worker died between tasks; the dead-worker pass will
            # reap it.  Put the task back untouched.
            self.pending.appendleft((task, attempt))
            return
        w.busy = {"task": task, "attempt": attempt,
                  "assigned": monotonic(), "deadline": deadline,
                  "heartbeat": None}

    def _drain(self, w):
        while True:
            try:
                if not w.res_r.poll(0):
                    return
                msg = w.res_r.recv()
            except (EOFError, OSError):
                return
            kind = msg[0]
            if kind == "start":
                info = msg[2]
                if w.busy is not None:
                    w.busy["heartbeat"] = info
                self.heartbeats[info["task_id"]] = info
            elif kind == "obs":
                if self.collector is not None:
                    self.collector.on_message(msg[1])
            elif kind == "result":
                self._on_result(w, msg[2]["attempt"],
                                msg[2]["result"])

    # -- task completion / failure ----------------------------------------

    def _on_result(self, w, attempt, res):
        busy, w.busy = w.busy, None
        task = busy["task"] if busy else None
        if self.retry.should_retry_result(res, attempt) \
                and task is not None:
            self._log_attempt(res.task_id, attempt, "timeout",
                              elapsed=res.elapsed)
            self._schedule_retry(task, attempt, "timeout")
            return
        self._record(res)

    def _record(self, res):
        self.results[res.task_id] = res
        if self.journal is not None:
            self.journal.append(res)
        if self.collector is not None:
            self.collector.task_finished(res)

    def _on_dead_worker(self, w):
        busy = w.busy
        exitcode = w.proc.exitcode
        self._reap(w)
        if busy is None:
            # Died idle (between tasks): nothing to retry, just keep
            # the pool at strength.
            self._maybe_respawn()
            return
        task, attempt = busy["task"], busy["attempt"]
        self._log_attempt(
            task.task_id, attempt, "crash",
            elapsed=monotonic() - busy["assigned"],
            exitcode=exitcode, exit_signal=_exit_signal(exitcode),
            heartbeat=busy["heartbeat"])
        self._maybe_respawn()
        if attempt < self.retry.max_attempts:
            self._schedule_retry(task, attempt, "crash")
        else:
            self._quarantine(task)

    def _on_deadline(self, w):
        busy = w.busy
        task, attempt = busy["task"], busy["attempt"]
        self._kill(w)
        self._log_attempt(
            task.task_id, attempt, "deadline",
            elapsed=monotonic() - busy["assigned"],
            deadline=self.task_deadline,
            heartbeat=busy["heartbeat"])
        self._maybe_respawn()
        if attempt < self.retry.max_attempts:
            self._schedule_retry(task, attempt, "deadline")
        else:
            self._quarantine(task)

    def _kill(self, w):
        self._reap(w, terminate=True)

    def _reap(self, w, terminate=False):
        if terminate and w.proc.is_alive():
            w.proc.terminate()
            w.proc.join(timeout=2.0)
            if w.proc.is_alive():
                w.proc.kill()
        w.proc.join()
        w.task_w.close()
        w.res_r.close()
        self.workers.remove(w)

    def _maybe_respawn(self):
        """Keep the pool at strength while unfinished work remains."""
        from ..telemetry import tracing
        remaining = self.ntotal - len(self.results)
        while len(self.workers) < min(self.nworkers, remaining):
            self.workers.append(self._spawn())
            self.respawns += 1
            tracing.instant("fleet.respawn",
                            pid=self.workers[-1].pid)
            if self.collector is not None:
                self.collector.worker_respawned(self.workers[-1].pid)

    def _schedule_retry(self, task, attempt, reason):
        from ..telemetry import tracing
        delay = self.retry.delay(
            _task_seed(task, self.campaign.seed), attempt)
        self._seq += 1
        heapq.heappush(self.delayed,
                       (monotonic() + delay, self._seq, task,
                        attempt + 1))
        self.retries += 1
        tracing.instant("fleet.retry", task=task.task_id,
                        attempt=attempt + 1, reason=reason,
                        delay=round(delay, 4))
        if self.collector is not None:
            self.collector.task_retried(task.task_id, attempt + 1,
                                        reason)

    def _log_attempt(self, task_id, attempt, reason, **extra):
        entry = {"attempt": attempt, "reason": reason}
        entry.update({k: v for k, v in extra.items() if v is not None})
        self.attempts.setdefault(task_id, []).append(entry)

    def _quarantine(self, task):
        """Exhausted attempts without a structured result: emit a
        deterministic ``"poisoned"`` result and move on."""
        from ..telemetry import tracing
        tid = task.task_id
        history = self.attempts.get(tid, [])
        failures = []
        for entry in history:
            fact = {"attempt": entry["attempt"],
                    "reason": entry["reason"]}
            if entry.get("exit_signal"):
                fact["exit"] = entry["exit_signal"]
            failures.append(fact)
        last_hb = self.heartbeats.get(tid)
        diagnostics = {
            "attempts": len(history),
            "failures": failures,
            "last_heartbeat": ({"attempt": last_hb["attempt"],
                                "event": "start"}
                               if last_hb else None),
        }
        res = TaskResult(
            task_id=tid, kind=task.kind, status="poisoned",
            seed=_task_seed(task, self.campaign.seed),
            diagnostics=diagnostics)
        self.quarantined.append(tid)
        tracing.instant("fleet.quarantine", task=tid,
                        attempts=len(history))
        if self.collector is not None:
            self.collector.task_quarantined(tid)
        if self.artifact_dir:
            self._write_quarantine_artifact(tid, history, diagnostics)
        self._record(res)

    def _write_quarantine_artifact(self, tid, history, diagnostics):
        """Full quarantine forensics (incl. wall-clock timings the
        report must not carry) as a CI-uploadable artifact."""
        import json
        try:
            path = os.path.join(self.artifact_dir,
                                f"quarantine_{_safe_tag(tid)}.json")
            with open(path, "w") as f:
                json.dump({"task_id": tid,
                           "diagnostics": diagnostics,
                           "attempt_log": history}, f, indent=2,
                          sort_keys=True, default=str)
        except Exception:
            pass


# -- entry points -------------------------------------------------------------


def run_campaign(campaign, nworkers=None, chunksize=None,
                 artifact_dir=None, start_method=None,
                 simjit_cache_dir=None, trace=False, progress=None,
                 trace_capacity=65536, retry=None, task_deadline=None,
                 journal=None, resume=None, metrics_port=None,
                 metrics_host="127.0.0.1"):
    """Run every task of ``campaign`` and aggregate the results.

    ``nworkers=None`` uses one worker per usable CPU; ``nworkers <= 1``
    runs inline in this process (no pool, same execute path — the
    sequential baseline the equivalence tests compare against; note
    inline runs have no crash isolation or process deadlines).
    ``artifact_dir`` receives failure artifacts (shrunk repros, observe
    bundles, quarantine logs).  ``simjit_cache_dir`` overrides the
    shared ``.so`` cache location for workers (defaults to the
    inherited environment).  ``chunksize`` is accepted for backwards
    compatibility and ignored — the supervisor assigns one task at a
    time so it always knows exactly what is in flight where.

    Fault tolerance: ``retry`` (a :class:`RetryPolicy`, default
    ``RetryPolicy()``) bounds per-task attempts after worker crashes,
    deadline overruns, and transient timeouts; ``task_deadline``
    (seconds) is the process-level per-attempt wall-clock ceiling.
    ``journal``/``resume`` arm the write-ahead
    :class:`~repro.fleet.journal.Journal` (``resume`` accepts a path
    or Journal and implies journaling to the same file; completed
    tasks load instead of re-executing).  ``KeyboardInterrupt``
    returns a partial result (``stats["interrupted"]``) instead of
    raising.

    ``trace=True`` arms host-span tracing in every worker (plus
    supervisor instants in the parent) and merges the streamed spans
    into :attr:`FleetResult.trace`; ``progress`` is an optional
    callable invoked with the collector as messages and results
    arrive.  ``metrics_port`` (0 = OS-assigned; the bound port lands
    in ``stats["metrics_port"]``) serves the live collector as
    OpenMetrics text on ``http://metrics_host:port/metrics`` for the
    duration of the run (see :mod:`repro.insight.metricsd`).  All
    three are pure side-channel: the ``repro-fleet-v1`` report bytes
    are identical with or without them.

    Returns a :class:`FleetResult`; never raises for task-level or
    worker-level failures (see ``result.report["status"]`` /
    ``.failures``).
    """
    from .journal import Journal

    if not isinstance(campaign, Campaign):
        raise TypeError(f"not a Campaign: {campaign!r}")
    nworkers = default_nworkers() if nworkers is None else int(nworkers)
    retry = RetryPolicy() if retry is None else retry
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)

    journal_obj = None
    completed = {}
    if resume is not None:
        journal_obj = (resume if isinstance(resume, Journal)
                       else Journal.resume(resume, campaign))
        completed = dict(journal_obj.results)
    elif journal is not None:
        journal_obj = Journal.create(journal, campaign)

    todo = [t for t in campaign.tasks if t.task_id not in completed]
    ntasks = len(campaign.tasks)
    nworkers = max(1, min(nworkers, max(1, len(todo))))

    collector = None
    if trace or progress is not None or metrics_port is not None:
        from .live import LiveCollector
        collector = LiveCollector(ntasks=ntasks, progress=progress)
        collector.tasks_done = len(completed)

    metrics_server = None
    if metrics_port is not None:
        from ..insight.metricsd import MetricsServer
        from ..telemetry.promexport import render_collector
        metrics_server = MetricsServer(
            lambda: render_collector(collector),
            port=metrics_port, host=metrics_host).start()

    start = perf_counter()
    try:
        if nworkers <= 1 or not todo:
            fresh, attempts, sup_stats, interrupted = _run_inline(
                campaign, todo, artifact_dir, simjit_cache_dir,
                collector, trace, trace_capacity, retry, journal_obj)
        else:
            fresh, attempts, sup_stats, interrupted = _run_supervised(
                campaign, todo, nworkers, retry, task_deadline,
                artifact_dir, simjit_cache_dir, start_method,
                collector, trace, trace_capacity, journal_obj)
    except BaseException:
        if metrics_server is not None:
            metrics_server.stop()
        raise
    finally:
        if journal_obj is not None:
            journal_obj.close()
    elapsed = perf_counter() - start

    by_id = dict(completed)
    by_id.update(fresh)
    ordered = [by_id[t.task_id] for t in campaign.tasks
               if t.task_id in by_id]
    report = aggregate(campaign, ordered, partial=interrupted)
    stats = {
        "nworkers": nworkers,
        "elapsed": elapsed,
        "throughput": (len(ordered) / elapsed if elapsed > 0
                       else float("inf")),
        "workers_used": sorted({r.worker for r in ordered
                                if r.worker is not None}),
        "task_elapsed": {r.task_id: r.elapsed for r in ordered},
        "task_kinds": _kind_stats(ordered) if ordered else {},
        "interrupted": interrupted,
        "resumed": sorted(completed),
        "attempts": attempts,
        **sup_stats,
    }
    if metrics_server is not None:
        stats["metrics_port"] = metrics_server.port
        metrics_server.stop()
    return FleetResult(campaign, ordered, report, stats,
                       trace=collector if trace else None)


def _run_supervised(campaign, todo, nworkers, retry, task_deadline,
                    artifact_dir, simjit_cache_dir, start_method,
                    collector, trace, trace_capacity, journal_obj):
    """The ``nworkers > 1`` path: supervised worker processes."""
    from ..telemetry import tracing

    mp_ctx = multiprocessing.get_context(_start_method(start_method))
    cache_dir = simjit_cache_dir or os.environ.get("SIMJIT_CACHE_DIR")
    prev_tracer = tracing.active() if trace else None
    parent_tracer = None
    if trace:
        # The parent records supervisor instants (fleet.retry /
        # fleet.respawn / fleet.quarantine); workers arm their own
        # tracers post-fork.
        parent_tracer = tracing.arm(capacity=trace_capacity)
    try:
        sup = _Supervisor(campaign, todo, nworkers, retry,
                          task_deadline, artifact_dir, cache_dir,
                          mp_ctx, collector, trace, trace_capacity,
                          journal_obj).run()
    finally:
        if trace:
            tracing.disarm()
            if prev_tracer is not None:
                tracing.arm(prev_tracer)
    if parent_tracer is not None and collector is not None:
        records = parent_tracer.drain()
        if records:
            collector.on_message(("spans", os.getpid(), records))
    stats = {"retries": sup.retries, "respawns": sup.respawns,
             "quarantined": sorted(sup.quarantined)}
    return sup.results, sup.attempts, stats, sup.interrupted


def _run_inline(campaign, todo, artifact_dir, simjit_cache_dir,
                collector, trace, trace_capacity, retry, journal_obj):
    """The ``nworkers <= 1`` path: same execute/observe/retry/journal
    pipeline, no pool, messages fed straight into the collector."""
    from ..telemetry import tracing

    ctx = FleetContext(campaign.seed, artifact_dir)
    # Snapshot the cache-dir env var so an interrupt (or plain
    # completion) cannot leak a mutated SIMJIT_CACHE_DIR into the
    # calling process.
    prev_cache = os.environ.get("SIMJIT_CACHE_DIR")
    if simjit_cache_dir:
        os.environ["SIMJIT_CACHE_DIR"] = simjit_cache_dir
    sink = None
    prev_tracer = tracing.active() if trace else None
    if collector is not None:
        sink = _ObsSink(collector.on_message, trace,
                        capacity=trace_capacity)
    results = {}
    attempts = {}
    retries = 0
    interrupted = False
    try:
        for task in todo:
            attempt = 1
            while True:
                res = task.execute(campaign.seed, ctx, attempt=attempt)
                if not retry.should_retry_result(res, attempt):
                    break
                attempts.setdefault(task.task_id, []).append(
                    {"attempt": attempt, "reason": "timeout",
                     "elapsed": res.elapsed})
                delay = retry.delay(res.seed, attempt)
                retries += 1
                tracing.instant("fleet.retry", task=task.task_id,
                                attempt=attempt + 1, reason="timeout",
                                delay=round(delay, 4))
                if collector is not None:
                    collector.task_retried(task.task_id, attempt + 1,
                                           "timeout")
                sleep(delay)
                attempt += 1
            if sink is not None:
                sink.after_task(res)
            if collector is not None:
                collector.task_finished(res)
            if journal_obj is not None:
                journal_obj.append(res)
            results[task.task_id] = res
    except KeyboardInterrupt:
        interrupted = True
    finally:
        if trace:
            tracing.disarm()
            if prev_tracer is not None:
                tracing.arm(prev_tracer)
        if simjit_cache_dir:
            if prev_cache is None:
                os.environ.pop("SIMJIT_CACHE_DIR", None)
            else:
                os.environ["SIMJIT_CACHE_DIR"] = prev_cache
    stats = {"retries": retries, "respawns": 0, "quarantined": []}
    return results, attempts, stats, interrupted
