"""Process-pool campaign execution.

``run_campaign`` shards a :class:`~repro.fleet.campaign.Campaign`
across a pool of worker processes.  Task specs are tiny picklable
descriptions; each worker rebuilds its DUTs from scratch, so nothing
simulator-shaped ever crosses the process boundary — only specs out,
:class:`~repro.fleet.campaign.TaskResult` back.

Design notes:

- **Work stealing.** Tasks are dispatched with
  ``Pool.imap_unordered`` in small chunks, so a worker that drew a
  quick task steals the next chunk instead of idling behind a slow
  sibling.  Completion order is therefore nondeterministic — which is
  fine, because the aggregator keys by task id.
- **Fork start method.**  The default start method is ``fork`` where
  the platform offers it: workers inherit the parent's
  ``PYTHONHASHSEED`` and module state, so anything hash-order
  sensitive (e.g. SimJIT code generation walking sets) is identical
  across workers.  ``spawn`` also works (results are seed-derived),
  but fork is cheaper and strictly more deterministic.
- **Shared .so cache.**  Workers inherit/receive one
  ``SIMJIT_CACHE_DIR``, so the first worker to specialize a design
  compiles it and every other worker (and every later task) gets a
  cache hit.  The per-key ``flock`` in the specializer serializes
  same-design races; distinct designs compile concurrently.
- **Failure isolation.**  ``CampaignTask.execute`` converts mismatches
  / timeouts / exceptions into structured results, so one diverging
  task cannot take down its siblings; the pool only dies if a worker
  process itself is killed.
- **Nondeterminism side-channel.**  Per-task wall time and worker pids
  are stripped from results before aggregation and reported in
  :attr:`FleetResult.stats` instead, keeping the report byte-stable.
"""

from __future__ import annotations

import multiprocessing
import os

from .aggregate import aggregate, report_json
from .campaign import Campaign

__all__ = ["FleetContext", "FleetResult", "run_campaign",
           "default_nworkers"]


class FleetContext:
    """Per-worker execution context handed to ``task.execute``."""

    def __init__(self, campaign_seed, artifact_dir=None):
        self.campaign_seed = campaign_seed
        self.artifact_dir = artifact_dir


class FleetResult:
    """Everything a campaign run produced.

    ``report`` (and ``report_json()``) hold only deterministic data;
    ``stats`` holds the wall-clock/process side-channel.
    """

    def __init__(self, campaign, results, report, stats):
        self.campaign = campaign
        self.results = list(results)
        self.report = report
        self.stats = stats

    @property
    def ok(self):
        return self.report["status"] == "ok"

    @property
    def failures(self):
        return self.report["failures"]

    def report_json(self):
        return report_json(self.report)

    def write_report(self, path):
        os.makedirs(os.path.dirname(os.path.abspath(path)),
                    exist_ok=True)
        with open(path, "w") as f:
            f.write(self.report_json())
        return path

    def __repr__(self):
        return (f"<FleetResult {self.campaign.name!r} "
                f"{self.report['counts']} status="
                f"{self.report['status']}>")


def default_nworkers():
    """Usable CPUs (affinity-aware where the platform reports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def default_chunksize(ntasks, nworkers):
    """Small chunks: enough to amortize IPC, small enough that the
    tail of the campaign still load-balances."""
    return max(1, min(8, ntasks // (nworkers * 4)))


# -- worker side --------------------------------------------------------------
#
# Pool workers receive the campaign-wide invariants once (initializer)
# and task specs per dispatch.  Globals instead of closures because
# pool initializers/workers must be module-level picklables.

_WORKER_CTX = None


def _init_worker(campaign_seed, artifact_dir, cache_dir):
    global _WORKER_CTX
    if cache_dir:
        os.environ["SIMJIT_CACHE_DIR"] = cache_dir
    _WORKER_CTX = FleetContext(campaign_seed, artifact_dir)


def _execute(task):
    return task.execute(_WORKER_CTX.campaign_seed, _WORKER_CTX)


def _start_method(requested):
    if requested:
        return requested
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)


def run_campaign(campaign, nworkers=None, chunksize=None,
                 artifact_dir=None, start_method=None,
                 simjit_cache_dir=None):
    """Run every task of ``campaign`` and aggregate the results.

    ``nworkers=None`` uses one worker per usable CPU; ``nworkers <= 1``
    runs inline in this process (no pool, same execute path — the
    sequential baseline the equivalence tests compare against).
    ``artifact_dir`` receives failure artifacts (shrunk repros, observe
    bundles).  ``simjit_cache_dir`` overrides the shared ``.so`` cache
    location for workers (defaults to the inherited environment).

    Returns a :class:`FleetResult`; never raises for task-level
    failures (see ``result.report["status"]`` / ``.failures``).
    """
    from time import perf_counter

    if not isinstance(campaign, Campaign):
        raise TypeError(f"not a Campaign: {campaign!r}")
    nworkers = default_nworkers() if nworkers is None else int(nworkers)
    ntasks = len(campaign.tasks)
    nworkers = max(1, min(nworkers, ntasks))
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)

    start = perf_counter()
    if nworkers <= 1:
        ctx = FleetContext(campaign.seed, artifact_dir)
        if simjit_cache_dir:
            os.environ["SIMJIT_CACHE_DIR"] = simjit_cache_dir
        results = [task.execute(campaign.seed, ctx)
                   for task in campaign.tasks]
    else:
        chunksize = (default_chunksize(ntasks, nworkers)
                     if chunksize is None else max(1, int(chunksize)))
        mp = multiprocessing.get_context(_start_method(start_method))
        cache_dir = simjit_cache_dir or os.environ.get("SIMJIT_CACHE_DIR")
        with mp.Pool(nworkers, initializer=_init_worker,
                     initargs=(campaign.seed, artifact_dir,
                               cache_dir)) as pool:
            results = list(pool.imap_unordered(
                _execute, campaign.tasks, chunksize=chunksize))
    elapsed = perf_counter() - start

    report = aggregate(campaign, results)
    stats = {
        "nworkers": nworkers,
        "elapsed": elapsed,
        "throughput": ntasks / elapsed if elapsed > 0 else float("inf"),
        "workers_used": sorted({r.worker for r in results
                                if r.worker is not None}),
        "task_elapsed": {r.task_id: r.elapsed for r in results},
    }
    return FleetResult(campaign, results, report, stats)
