"""Process-pool campaign execution.

``run_campaign`` shards a :class:`~repro.fleet.campaign.Campaign`
across a pool of worker processes.  Task specs are tiny picklable
descriptions; each worker rebuilds its DUTs from scratch, so nothing
simulator-shaped ever crosses the process boundary — only specs out,
:class:`~repro.fleet.campaign.TaskResult` back.

Design notes:

- **Work stealing.** Tasks are dispatched with
  ``Pool.imap_unordered`` in small chunks, so a worker that drew a
  quick task steals the next chunk instead of idling behind a slow
  sibling.  Completion order is therefore nondeterministic — which is
  fine, because the aggregator keys by task id.
- **Fork start method.**  The default start method is ``fork`` where
  the platform offers it: workers inherit the parent's
  ``PYTHONHASHSEED`` and module state, so anything hash-order
  sensitive (e.g. SimJIT code generation walking sets) is identical
  across workers.  ``spawn`` also works (results are seed-derived),
  but fork is cheaper and strictly more deterministic.
- **Shared .so cache.**  Workers inherit/receive one
  ``SIMJIT_CACHE_DIR``, so the first worker to specialize a design
  compiles it and every other worker (and every later task) gets a
  cache hit.  The per-key ``flock`` in the specializer serializes
  same-design races; distinct designs compile concurrently.
- **Failure isolation.**  ``CampaignTask.execute`` converts mismatches
  / timeouts / exceptions into structured results, so one diverging
  task cannot take down its siblings; the pool only dies if a worker
  process itself is killed.
- **Nondeterminism side-channel.**  Per-task wall time and worker pids
  are stripped from results before aggregation and reported in
  :attr:`FleetResult.stats` instead, keeping the report byte-stable.
- **Observability side-channel.**  With ``trace=True`` each worker
  arms a process-local :class:`~repro.telemetry.tracing.Tracer` and,
  after every task, ships its drained span records plus a metrics
  snapshot (tasks done/failed, cumulative cycles, RSS, counter
  totals) over a manager queue to a
  :class:`~repro.fleet.live.LiveCollector` in the parent.  Everything
  observability rides this side-channel; the deterministic
  ``repro-fleet-v1`` report bytes are identical with tracing on or
  off (asserted in ``tests/test_tracing.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod

from .aggregate import aggregate, report_json
from .campaign import Campaign

__all__ = ["FleetContext", "FleetResult", "run_campaign",
           "default_nworkers"]


class FleetContext:
    """Per-worker execution context handed to ``task.execute``."""

    def __init__(self, campaign_seed, artifact_dir=None):
        self.campaign_seed = campaign_seed
        self.artifact_dir = artifact_dir


class FleetResult:
    """Everything a campaign run produced.

    ``report`` (and ``report_json()``) hold only deterministic data;
    ``stats`` holds the wall-clock/process side-channel and ``trace``
    the :class:`~repro.fleet.live.LiveCollector` (``None`` unless the
    run traced).
    """

    def __init__(self, campaign, results, report, stats, trace=None):
        self.campaign = campaign
        self.results = list(results)
        self.report = report
        self.stats = stats
        self.trace = trace

    @property
    def ok(self):
        return self.report["status"] == "ok"

    @property
    def failures(self):
        return self.report["failures"]

    def report_json(self):
        return report_json(self.report)

    def write_report(self, path):
        os.makedirs(os.path.dirname(os.path.abspath(path)),
                    exist_ok=True)
        with open(path, "w") as f:
            f.write(self.report_json())
        return path

    def chrome_trace(self):
        """The merged campaign trace object (requires ``trace=True``)."""
        if self.trace is None:
            raise ValueError(
                "campaign was run without trace=True; no spans "
                "were collected")
        return self.trace.chrome_trace(campaign=self.campaign)

    def write_trace(self, path):
        """Write the merged Chrome/Perfetto trace JSON; returns
        ``path``."""
        from ..telemetry.traceevent import write_trace
        return write_trace(path, self.chrome_trace())

    def __repr__(self):
        return (f"<FleetResult {self.campaign.name!r} "
                f"{self.report['counts']} status="
                f"{self.report['status']}>")


def default_nworkers():
    """Usable CPUs (affinity-aware where the platform reports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def default_chunksize(ntasks, nworkers):
    """Small chunks: enough to amortize IPC, small enough that the
    tail of the campaign still load-balances."""
    return max(1, min(8, ntasks // (nworkers * 4)))


def _task_cycles(res):
    """Best-effort simulated-cycle count of one task result (metrics
    snapshot only; the deterministic report never reads this)."""
    payload = res.payload or {}
    ncycles = payload.get("ncycles")
    if isinstance(ncycles, dict):
        return sum(int(v) for v in ncycles.values())
    if isinstance(ncycles, (int, float)):
        return int(ncycles)
    metrics = payload.get("metrics")
    if isinstance(metrics, dict):
        return int(metrics.get("ncycles", 0))
    return 0


def _percentile(values, q):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _kind_stats(results):
    """Per-task-kind duration percentiles (wall-clock side-channel)."""
    by_kind = {}
    for res in results:
        by_kind.setdefault(res.kind, []).append(res.elapsed)
    return {
        kind: {
            "count": len(durations),
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "max": max(durations),
            "total": sum(durations),
        }
        for kind, durations in sorted(by_kind.items())
    }


# -- observability side-channel (worker side) ---------------------------------


class _ObsSink:
    """Per-worker observability state.

    Arms a process-local tracer (when tracing), accumulates worker-
    lifetime totals, and ships span batches + metrics snapshots after
    every task via ``put`` (a manager-queue ``put`` in pool workers,
    the collector's ``on_message`` inline).  Shipping is exception-
    guarded: observability must never take down a worker.
    """

    def __init__(self, put, trace, capacity=65536):
        self.put = put
        self.done = 0
        self.failed = 0
        self.cycles = 0
        self.counters = {}
        self.tracer = None
        if trace:
            from ..telemetry import tracing
            self.tracer = tracing.arm(capacity=capacity)

    def after_task(self, res):
        from .live import worker_snapshot
        self.done += 1
        if res.status != "ok":
            self.failed += 1
        self.cycles += _task_cycles(res)
        for name, value in (res.telemetry or {}).get(
                "counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) \
                + int(value)
        pid = os.getpid()
        try:
            tracer = self.tracer
            if tracer is not None:
                if tracer.dropped:
                    self.put(("dropped", pid, tracer.dropped))
                    tracer.dropped = 0
                records = tracer.drain()
                if records:
                    self.put(("spans", pid, records))
            self.put(("metrics", pid, worker_snapshot(
                self.done, self.failed, self.cycles, self.counters)))
        except Exception:
            pass


# -- worker side --------------------------------------------------------------
#
# Pool workers receive the campaign-wide invariants once (initializer)
# and task specs per dispatch.  Globals instead of closures because
# pool initializers/workers must be module-level picklables.

_WORKER_CTX = None
_WORKER_OBS = None


def _init_worker(campaign_seed, artifact_dir, cache_dir,
                 obs_queue=None, trace=False, trace_capacity=65536):
    global _WORKER_CTX, _WORKER_OBS
    if cache_dir:
        os.environ["SIMJIT_CACHE_DIR"] = cache_dir
    _WORKER_CTX = FleetContext(campaign_seed, artifact_dir)
    _WORKER_OBS = None
    if obs_queue is not None:
        _WORKER_OBS = _ObsSink(obs_queue.put, trace,
                               capacity=trace_capacity)


def _execute(task):
    res = task.execute(_WORKER_CTX.campaign_seed, _WORKER_CTX)
    if _WORKER_OBS is not None:
        _WORKER_OBS.after_task(res)
    return res


def _drain(obs_queue, collector):
    """Feed everything currently in the side-channel queue to the
    collector (parent side, non-blocking)."""
    while True:
        try:
            msg = obs_queue.get_nowait()
        except queue_mod.Empty:
            return
        collector.on_message(msg)


def _start_method(requested):
    if requested:
        return requested
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)


def run_campaign(campaign, nworkers=None, chunksize=None,
                 artifact_dir=None, start_method=None,
                 simjit_cache_dir=None, trace=False, progress=None,
                 trace_capacity=65536):
    """Run every task of ``campaign`` and aggregate the results.

    ``nworkers=None`` uses one worker per usable CPU; ``nworkers <= 1``
    runs inline in this process (no pool, same execute path — the
    sequential baseline the equivalence tests compare against).
    ``artifact_dir`` receives failure artifacts (shrunk repros, observe
    bundles).  ``simjit_cache_dir`` overrides the shared ``.so`` cache
    location for workers (defaults to the inherited environment).

    ``trace=True`` arms host-span tracing in every worker and merges
    the streamed spans into :attr:`FleetResult.trace` (a
    :class:`~repro.fleet.live.LiveCollector`); ``progress`` is an
    optional callable invoked with the collector as messages and
    results arrive (e.g. :class:`~repro.fleet.live.Ticker`).  Both are
    pure side-channel: the ``repro-fleet-v1`` report bytes are
    identical with or without them.

    Returns a :class:`FleetResult`; never raises for task-level
    failures (see ``result.report["status"]`` / ``.failures``).
    """
    from time import perf_counter

    if not isinstance(campaign, Campaign):
        raise TypeError(f"not a Campaign: {campaign!r}")
    nworkers = default_nworkers() if nworkers is None else int(nworkers)
    ntasks = len(campaign.tasks)
    nworkers = max(1, min(nworkers, ntasks))
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)

    collector = None
    if trace or progress is not None:
        from .live import LiveCollector
        collector = LiveCollector(ntasks=ntasks, progress=progress)

    start = perf_counter()
    if nworkers <= 1:
        results = _run_inline(campaign, artifact_dir, simjit_cache_dir,
                              collector, trace, trace_capacity)
    else:
        chunksize = (default_chunksize(ntasks, nworkers)
                     if chunksize is None else max(1, int(chunksize)))
        mp = multiprocessing.get_context(_start_method(start_method))
        cache_dir = simjit_cache_dir or os.environ.get("SIMJIT_CACHE_DIR")
        obs_queue = None
        manager = None
        if collector is not None:
            # A manager queue (not mp.Queue) because only proxy
            # objects survive the trip through Pool initargs.
            manager = mp.Manager()
            obs_queue = manager.Queue()
        try:
            with mp.Pool(nworkers, initializer=_init_worker,
                         initargs=(campaign.seed, artifact_dir,
                                   cache_dir, obs_queue, trace,
                                   trace_capacity)) as pool:
                results = []
                for res in pool.imap_unordered(
                        _execute, campaign.tasks, chunksize=chunksize):
                    results.append(res)
                    if collector is not None:
                        _drain(obs_queue, collector)
                        collector.task_finished(res)
                if collector is not None:
                    # Workers put before returning a result, so by the
                    # time every result has arrived the queue holds
                    # every message; one last sweep empties it.
                    _drain(obs_queue, collector)
        finally:
            if manager is not None:
                manager.shutdown()
    elapsed = perf_counter() - start

    report = aggregate(campaign, results)
    stats = {
        "nworkers": nworkers,
        "elapsed": elapsed,
        "throughput": ntasks / elapsed if elapsed > 0 else float("inf"),
        "workers_used": sorted({r.worker for r in results
                                if r.worker is not None}),
        "task_elapsed": {r.task_id: r.elapsed for r in results},
        "task_kinds": _kind_stats(results),
    }
    return FleetResult(campaign, results, report, stats,
                       trace=collector if trace else None)


def _run_inline(campaign, artifact_dir, simjit_cache_dir, collector,
                trace, trace_capacity):
    """The ``nworkers <= 1`` path: same execute/observe pipeline, no
    pool, messages fed straight into the collector."""
    from ..telemetry import tracing

    ctx = FleetContext(campaign.seed, artifact_dir)
    if simjit_cache_dir:
        os.environ["SIMJIT_CACHE_DIR"] = simjit_cache_dir
    sink = None
    prev_tracer = tracing.active() if trace else None
    if collector is not None:
        sink = _ObsSink(collector.on_message, trace,
                        capacity=trace_capacity)
    try:
        results = []
        for task in campaign.tasks:
            res = task.execute(campaign.seed, ctx)
            if sink is not None:
                sink.after_task(res)
            if collector is not None:
                collector.task_finished(res)
            results.append(res)
        return results
    finally:
        if trace:
            tracing.disarm()
            if prev_tracer is not None:
                tracing.arm(prev_tracer)
