"""Live fleet observability: span collection and progress metrics.

The runner's workers stream two kinds of messages over their result
pipes (see :mod:`repro.fleet.runner`):

- ``("spans", pid, [records])`` — host-span records drained from the
  worker's :class:`~repro.telemetry.tracing.Tracer` after each task;
- ``("metrics", pid, snapshot)`` — a periodic per-worker metrics
  snapshot (tasks done/failed, cumulative simulated cycles, RSS,
  counter deltas), emitted after each task completes.

The supervisor additionally reports scheduling events directly
(:meth:`LiveCollector.task_retried`,
:meth:`LiveCollector.task_quarantined`,
:meth:`LiveCollector.worker_respawned`), so the live ticker shows
fault-recovery activity — retries, respawned workers, quarantined
tasks — as it happens.

:class:`LiveCollector` merges them **arrival-order-free**: records are
bucketed per worker pid and only ordered (by timestamp, within their
pid track) at export time, so two runs of the same campaign differ
only in genuinely nondeterministic data (timings), never because the
queue happened to interleave differently.  Nothing here touches the
deterministic ``repro-fleet-v1`` report — the collector is pure
side-channel.

Exports:

- :meth:`LiveCollector.chrome_trace` — one merged Chrome/Perfetto
  trace object with a pid track per worker (plus the parent process),
  spans correctly nested per thread, built on the shared
  :mod:`~repro.telemetry.traceevent` serializer;
- :class:`Ticker` — a rate-limited stderr progress line for
  ``python -m repro.fleet --live``.
"""

from __future__ import annotations

import sys
from time import perf_counter

from ..telemetry import traceevent
from ..telemetry.tracing import spans_to_events

__all__ = ["LiveCollector", "Ticker", "worker_snapshot"]


def _maxrss_bytes(ru_maxrss, platform=None):
    """Normalize ``ru_maxrss`` to bytes.

    getrusage reports it in *kilobytes on Linux* but *bytes on macOS*
    (an old BSD divergence); every consumer here — the Ticker line,
    the Perfetto RSS counter track, the OpenMetrics endpoint — wants
    one unit, so the platform quirk is erased at the source.
    """
    platform = sys.platform if platform is None else platform
    if platform == "darwin":
        return int(ru_maxrss)
    return int(ru_maxrss) * 1024


def worker_snapshot(tasks_done, tasks_failed, cycles, counters=None):
    """Build one worker metrics snapshot (runs worker-side).

    RSS is normalized to bytes (see :func:`_maxrss_bytes`);
    cumulative counts cover the life of the worker process.  ``ts``
    is the ``perf_counter_ns`` sample time — the same clock the span
    tracer stamps records with, so RSS counter samples land on the
    merged campaign timeline correctly.
    """
    import resource
    from time import perf_counter_ns
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "tasks_done": tasks_done,
        "tasks_failed": tasks_failed,
        "cycles": cycles,
        "rss_bytes": _maxrss_bytes(usage.ru_maxrss),
        "cpu_seconds": usage.ru_utime + usage.ru_stime,
        "counters": dict(counters or {}),
        "ts": perf_counter_ns(),
    }


class LiveCollector:
    """Merges worker span/metrics messages into one live view.

    Feed it with :meth:`on_message` (any order); read progress
    attributes at any time; export the merged timeline with
    :meth:`chrome_trace` when the campaign is done.  ``progress`` is
    an optional callable invoked with the collector after every
    ingested message and finished task (the ``--live`` ticker).
    """

    def __init__(self, ntasks=None, progress=None):
        self.ntasks = ntasks
        self.progress = progress
        self.spans_by_pid = {}      # pid -> [record, ...]
        self.metrics_by_pid = {}    # pid -> latest snapshot
        self.tasks_done = 0
        self.tasks_failed = 0
        self.dropped_spans = 0
        self.retries = 0
        self.respawns = 0
        self.quarantined = []
        self._t0 = perf_counter()

    # -- ingestion --------------------------------------------------------

    def on_message(self, msg):
        """Ingest one side-channel message (see module docstring)."""
        kind, pid, body = msg
        if kind == "spans":
            self.spans_by_pid.setdefault(pid, []).extend(body)
        elif kind == "metrics":
            self.metrics_by_pid[pid] = body
        elif kind == "dropped":
            self.dropped_spans += body
        else:
            raise ValueError(f"unknown side-channel message {kind!r}")
        self._notify()

    def task_finished(self, result):
        """Record one finished :class:`TaskResult` (parent-side; the
        runner calls this as results arrive)."""
        self.tasks_done += 1
        if result.status != "ok":
            self.tasks_failed += 1
        self._notify()

    def task_retried(self, task_id, attempt, reason):
        """Record one retry decision (supervisor-side)."""
        self.retries += 1
        self._notify()

    def task_quarantined(self, task_id):
        """Record one quarantined task (supervisor-side)."""
        self.quarantined.append(task_id)
        self._notify()

    def worker_respawned(self, pid):
        """Record one worker replacement (supervisor-side)."""
        self.respawns += 1
        self._notify()

    def _notify(self):
        if self.progress is not None:
            self.progress(self)

    # -- live metrics -----------------------------------------------------

    @property
    def elapsed(self):
        return perf_counter() - self._t0

    @property
    def cycles(self):
        """Cumulative simulated cycles across all workers."""
        return sum(snap.get("cycles", 0)
                   for snap in self.metrics_by_pid.values())

    @property
    def cycles_per_sec(self):
        elapsed = self.elapsed
        return self.cycles / elapsed if elapsed > 0 else 0.0

    @property
    def rss_bytes(self):
        """Peak RSS summed across workers (bytes; snapshots are
        normalized worker-side, see :func:`_maxrss_bytes`)."""
        return sum(snap.get("rss_bytes", 0)
                   for snap in self.metrics_by_pid.values())

    def counter_totals(self):
        """Telemetry counter totals accumulated across workers."""
        totals = {}
        for snap in self.metrics_by_pid.values():
            for name, value in snap.get("counters", {}).items():
                totals[name] = totals.get(name, 0) + int(value)
        return totals

    # -- export -----------------------------------------------------------

    def chrome_trace(self, campaign=None):
        """One merged trace object: a pid track per worker, spans
        nested within each track, instants preserved.

        Track naming and event order depend only on the *content* of
        the collected records (pids sorted, records timestamp-sorted
        within their pid), never on message arrival order.
        """
        events = []
        all_records = []
        for i, pid in enumerate(sorted(self.spans_by_pid)):
            records = self.spans_by_pid[pid]
            events.append(traceevent.process_name(
                pid, f"worker {i} (pid {pid})"))
            events.append(traceevent.process_sort_index(pid, i))
            for tid in sorted({r["tid"] for r in records}):
                events.append(traceevent.thread_name(
                    pid, tid, f"thread {tid}"))
            all_records.extend(records)
        # One shared time base so all pid tracks align: fork + the
        # perf_counter_ns clock give every worker the same epoch.
        stamps = [r["ts"] for r in all_records]
        stamps.extend(snap["ts"]
                      for snap in self.metrics_by_pid.values()
                      if "ts" in snap)
        base_ns = min(stamps, default=0)
        for pid in sorted(self.spans_by_pid):
            records = sorted(self.spans_by_pid[pid],
                             key=lambda r: r["ts"])
            events.extend(spans_to_events(records, base_ns=base_ns))
        for pid in sorted(self.metrics_by_pid):
            snap = self.metrics_by_pid[pid]
            if "ts" not in snap:
                continue
            events.append(traceevent.counter(
                "rss_mb", pid, (snap["ts"] - base_ns) / 1e3,
                {"rss_mb": snap.get("rss_bytes", 0) / (1024.0 ** 2)}))
        metadata = {"unit": "1us = 1us host wall clock"}
        if campaign is not None:
            metadata["campaign"] = campaign.name
            metadata["seed"] = campaign.seed
        if self.dropped_spans:
            metadata["dropped_spans"] = self.dropped_spans
        return traceevent.trace_object(events, metadata=metadata)

    def write_chrome_trace(self, path, campaign=None):
        return traceevent.write_trace(
            path, self.chrome_trace(campaign=campaign))


class Ticker:
    """Rate-limited one-line stderr progress display (``--live``).

    Callable with the collector (the ``progress`` hook); writes a
    carriage-returned status line at most every ``interval`` seconds.
    """

    def __init__(self, stream=None, interval=0.25):
        self.stream = sys.stderr if stream is None else stream
        self.interval = interval
        self._last = 0.0
        self._wrote = False

    def __call__(self, collector):
        now = perf_counter()
        if now - self._last < self.interval:
            return
        self._last = now
        total = ("?" if collector.ntasks is None
                 else str(collector.ntasks))
        line = (f"[fleet] {collector.tasks_done}/{total} tasks"
                f"  fail={collector.tasks_failed}"
                f"  {collector.cycles_per_sec:,.0f} cyc/s"
                f"  rss={collector.rss_bytes / (1024.0 ** 2):.0f}MB"
                f"  {collector.elapsed:.1f}s")
        if collector.retries or collector.respawns:
            line += (f"  retry={collector.retries}"
                     f" respawn={collector.respawns}")
        if collector.quarantined:
            line += f"  poisoned={len(collector.quarantined)}"
        self.stream.write("\r\x1b[2K" + line)
        self.stream.flush()
        self._wrote = True

    def close(self):
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()
