"""Deterministic campaign aggregation: the ``repro-fleet-v1`` report.

The aggregator's contract is the fleet's headline property: given the
same campaign (seed + task specs), the serialized report is
**byte-identical regardless of worker count or completion order**.
Three rules buy that:

1. **Key by task id, not arrival.**  Results land in whatever order
   workers finish; the report stores them in a dict keyed by
   ``task_id`` and serializes with ``sort_keys=True``, so arrival
   order is erased.
2. **Merge only order-insensitive data.**  Campaign-wide coverage and
   telemetry are integer sums (counter totals, coverage-bin counts)
   and bin-exact histogram merges — associative and commutative, so
   any merge order gives the same totals.  Histogram summary stats
   (mean/min/max) are recomputed from the merged bins, never averaged
   across partials.
3. **No wall-clock in the report.**  Timing and worker pids are
   genuinely nondeterministic, so they travel in the runner's separate
   stats side-channel (:class:`~repro.fleet.runner.FleetResult.stats`),
   never in the report.

``aggregate`` is a pure function of ``(campaign, results)`` — it runs
identically in-process after a parallel run, after a sequential run,
or over a reshuffled result list, which is exactly what the
determinism tests assert.
"""

from __future__ import annotations

import json

from ..telemetry.counters import Histogram

__all__ = ["SCHEMA", "aggregate", "report_json"]

SCHEMA = "repro-fleet-v1"


def _merge_coverage(total, coverage):
    for group, bins in coverage.items():
        dest = total.setdefault(group, {})
        for name, count in bins.items():
            dest[name] = dest.get(name, 0) + int(count)


def _merge_counters(total, counters):
    for name, value in counters.items():
        total[name] = total.get(name, 0) + int(value)


def _merge_histograms(total, histograms):
    for name, data in histograms.items():
        if name in total:
            total[name].merge(data)
        else:
            total[name] = Histogram.from_dict(data, name=name)


def aggregate(campaign, results, partial=False):
    """Fold per-task results into one ``repro-fleet-v1`` report dict.

    ``results`` is an iterable of
    :class:`~repro.fleet.campaign.TaskResult` in *any* order; the
    report is identical for every permutation.  Raises ``ValueError``
    on duplicate or unknown task ids and on missing tasks — a fleet
    that lost a result must not silently report success.

    ``partial=True`` is the interrupted-campaign mode: missing tasks
    are allowed, listed under ``report["missing"]``, and force
    ``status: "interrupted"``.  A complete result set aggregates to
    the exact same bytes with ``partial`` on or off (the ``missing``
    key is only emitted when tasks are actually missing), which is
    what lets a resumed run reproduce an uninterrupted report.
    """
    expected = {t.task_id for t in campaign.tasks}
    tasks = {}
    coverage = {}
    counters = {}
    histograms = {}
    counts = {"ok": 0, "mismatch": 0, "timeout": 0, "error": 0,
              "poisoned": 0}

    for res in results:
        if res.task_id in tasks:
            raise ValueError(f"duplicate result for task {res.task_id!r}")
        if res.task_id not in expected:
            raise ValueError(
                f"result for unknown task {res.task_id!r}")
        counts[res.status] = counts.get(res.status, 0) + 1
        entry = {
            "kind": res.kind,
            "status": res.status,
            "seed": res.seed,
            "payload": res.payload,
            "coverage": res.coverage,
            "telemetry": res.telemetry,
        }
        if res.diagnostics is not None:
            entry["diagnostics"] = res.diagnostics
        tasks[res.task_id] = entry
        _merge_coverage(coverage, res.coverage or {})
        telemetry = res.telemetry or {}
        _merge_counters(counters, telemetry.get("counters", {}))
        _merge_histograms(histograms, telemetry.get("histograms", {}))

    missing = sorted(expected - set(tasks))
    if missing and not partial:
        raise ValueError(f"no result for task(s): {missing}")

    failures = sorted(tid for tid, e in tasks.items()
                      if e["status"] != "ok")
    status = "failed" if failures else "ok"
    if missing:
        status = "interrupted"
    report = {
        "schema": SCHEMA,
        "campaign": campaign.name,
        "seed": campaign.seed,
        "ntasks": len(campaign.tasks),
        "status": status,
        "counts": counts,
        "failures": failures,
        "tasks": tasks,
        "coverage": coverage,
        "telemetry": {
            "counters": counters,
            "histograms": {name: hist.to_dict()
                           for name, hist in histograms.items()},
        },
    }
    if missing:
        report["missing"] = missing
    return report


def report_json(report):
    """Canonical serialization: sorted keys, fixed indent, trailing
    newline.  This is the byte string the determinism property is
    stated over."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
