"""Write-ahead campaign journal: resumable fleet runs.

A :class:`Journal` is an append-only JSONL file recording, durably,
every task completion of a campaign run.  The first line is a header
binding the journal to one campaign identity ``(name, seed, ntasks,
task-id digest)``; every following line is one serialized
:class:`~repro.fleet.campaign.TaskResult`.  Appends are flushed and
``fsync``'d before the runner considers the task complete, so the
journal is a true write-ahead log: whatever interrupted the campaign
(SIGKILL of the parent, power loss, Ctrl-C), every task the journal
names really finished and its recorded result is the result.

``run_campaign(campaign, resume=path)`` replays the journal: completed
tasks are loaded (not re-executed), the remainder runs normally with
completions appended to the same file, and the final aggregated
``repro-fleet-v1`` report is **byte-identical** to an uninterrupted
run — task results depend only on ``(campaign_seed, task_id, spec)``,
and the aggregator is order-free, so splicing journal-loaded results
with freshly-computed ones is invisible.

Torn tails are tolerated: a crash mid-append leaves at most one
partial final line, which :func:`Journal.load` drops.  Corruption
anywhere *before* the final line raises :class:`JournalError` — a
journal that lost interior data must not silently resume.
"""

from __future__ import annotations

import json
import os
import zlib

from .campaign import TaskResult

__all__ = ["Journal", "JournalError", "SCHEMA"]

SCHEMA = "repro-fleet-journal-v1"

# TaskResult fields in serialization order (dataclass order).
_FIELDS = ("task_id", "kind", "status", "seed", "payload", "coverage",
           "telemetry", "diagnostics", "elapsed", "worker")


class JournalError(ValueError):
    """The journal is corrupt or belongs to a different campaign."""


def _task_ids_digest(campaign):
    """Order-sensitive crc32 of the campaign's task-id list: cheap
    identity check that ``resume`` is replaying the same task set."""
    digest = 0
    for task in campaign.tasks:
        digest = zlib.crc32(task.task_id.encode(), digest)
    return digest & 0xFFFFFFFF


def result_to_dict(res):
    """One :class:`TaskResult` as a JSON-ready dict."""
    return {name: getattr(res, name) for name in _FIELDS}


def result_from_dict(data):
    """Inverse of :func:`result_to_dict`."""
    return TaskResult(**{name: data[name] for name in _FIELDS
                         if name in data})


class Journal:
    """Append-only JSONL journal of one campaign's task completions.

    Use the constructors, not ``__init__`` directly:

    - :meth:`Journal.create` — start a fresh journal for a run
      (truncates any existing file at ``path``);
    - :meth:`Journal.resume` — load an interrupted journal (or create
      a fresh one if ``path`` does not exist), validate it against the
      campaign, and reopen it for appending.

    ``journal.results`` maps task id -> loaded :class:`TaskResult`
    for every completion already on disk.
    """

    def __init__(self, path, campaign, results=None, _file=None):
        self.path = os.path.abspath(path)
        self.campaign_name = campaign.name
        self.results = dict(results or {})
        self._file = _file

    # -- constructors -----------------------------------------------------

    @classmethod
    def create(cls, path, campaign):
        """Start a fresh journal (truncating ``path`` if present)."""
        d = os.path.dirname(os.path.abspath(path))
        if d:
            os.makedirs(d, exist_ok=True)
        f = open(path, "w")
        journal = cls(path, campaign, _file=f)
        journal._append_line({
            "type": "header",
            "schema": SCHEMA,
            "campaign": campaign.name,
            "seed": campaign.seed,
            "ntasks": len(campaign.tasks),
            "task_ids_digest": _task_ids_digest(campaign),
        })
        return journal

    @classmethod
    def resume(cls, path, campaign):
        """Load ``path`` (validated against ``campaign``) and reopen it
        for appending; creates a fresh journal if the file is absent."""
        if not os.path.exists(path):
            return cls.create(path, campaign)
        header, results = cls.load(path)
        if (header.get("schema") != SCHEMA
                or header.get("campaign") != campaign.name
                or header.get("seed") != campaign.seed
                or header.get("ntasks") != len(campaign.tasks)
                or header.get("task_ids_digest")
                    != _task_ids_digest(campaign)):
            raise JournalError(
                f"journal {path!r} was written by a different campaign "
                f"(header {header!r}; expected campaign "
                f"{campaign.name!r} seed {campaign.seed} "
                f"ntasks {len(campaign.tasks)})")
        known = {t.task_id for t in campaign.tasks}
        unknown = sorted(set(results) - known)
        if unknown:
            raise JournalError(
                f"journal {path!r} records unknown task(s): {unknown}")
        return cls(path, campaign, results=results,
                   _file=open(path, "a"))

    # -- reading ----------------------------------------------------------

    @staticmethod
    def load(path):
        """Parse a journal file into ``(header, {task_id: TaskResult})``.

        Drops a torn final line (interrupted append); raises
        :class:`JournalError` on a bad header, interior corruption, or
        duplicate task ids with conflicting payloads.
        """
        with open(path) as f:
            lines = f.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise JournalError(f"journal {path!r} is empty")
        records = []
        for i, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except ValueError:
                if i == len(lines) - 1:
                    break                   # torn tail: drop and go on
                raise JournalError(
                    f"journal {path!r} is corrupt at line {i + 1}")
        if not records or records[0].get("type") != "header":
            raise JournalError(f"journal {path!r} has no header line")
        header = records[0]
        results = {}
        for i, rec in enumerate(records[1:], start=2):
            if rec.get("type") != "result":
                raise JournalError(
                    f"journal {path!r}: unexpected record type "
                    f"{rec.get('type')!r} at line {i}")
            try:
                res = result_from_dict(rec["data"])
            except (KeyError, TypeError) as exc:
                raise JournalError(
                    f"journal {path!r}: bad result at line {i}: "
                    f"{exc}") from exc
            # Duplicates can only arise from a replayed append after a
            # torn-tail resume; determinism makes them byte-equal, so
            # first-wins is safe — but a *conflicting* duplicate means
            # the journal mixes two runs and must not resume.
            if res.task_id in results:
                prev = results[res.task_id]
                if result_to_dict(prev) != result_to_dict(res):
                    raise JournalError(
                        f"journal {path!r}: conflicting duplicate "
                        f"result for task {res.task_id!r}")
                continue
            results[res.task_id] = res
        return header, results

    # -- appending --------------------------------------------------------

    def append(self, res):
        """Durably record one completed task (flush + fsync)."""
        if self._file is None:
            raise ValueError("journal is closed")
        self.results[res.task_id] = res
        self._append_line({"type": "result",
                           "data": result_to_dict(res)})

    def _append_line(self, record):
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self):
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __len__(self):
        return len(self.results)

    def __repr__(self):
        return (f"<Journal {self.path!r} campaign="
                f"{self.campaign_name!r} nresults={len(self.results)}>")
