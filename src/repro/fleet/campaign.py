"""Campaign task specs: picklable units of simulation work.

A campaign is a named, seeded list of tasks.  Each task is a small
plain-data object that *describes* a simulation — it carries no model,
no simulator, no open file — so it pickles across the process boundary
and the worker rebuilds the DUT from scratch.  Three task families
cover the three campaign shapes the roadmap names:

- :class:`VerifSweepTask` — a differential co-simulation sweep
  (:mod:`repro.verif`): build N implementation points of one scenario,
  drive them from seed-derived constrained-random stimulus, diff
  online.  On a mismatch the task *returns* structured diagnostics
  (ddmin-shrunk stimulus, standalone repro, observe bundles) instead
  of crashing the fleet.
- :class:`FaultSweepTask` — a resilience fault-injection sweep
  (:func:`repro.resilience.sweeps.link_fault_sweep`).
- :class:`BenchPointTask` — one design-space evaluation point (cache
  geometry, mesh traffic) returning metrics.

**Determinism rules.**  Every task derives all randomness from
``RNG(campaign_seed).fork("task:" + task_id)`` — the crc32 substream
scheme of :mod:`repro.verif.strategies` — so a task's result depends
only on ``(campaign_seed, task_id, spec fields)``, never on which
worker ran it, in what order, or alongside what.  Task results carry
only deterministic data (wall-clock timing lives in the runner's
side-channel stats, not in results), which is what lets the aggregator
promise byte-identical ``repro-fleet-v1`` reports for any worker
count.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from time import perf_counter

from ..verif.strategies import (
    RNG,
    backpressure_pattern,
    mem_request_strategy,
    net_message_strategy,
    presence_pattern,
)

__all__ = [
    "Campaign",
    "CampaignTask",
    "VerifSweepTask",
    "FaultSweepTask",
    "BenchPointTask",
    "TaskResult",
    "demo_campaign",
]


def _safe_tag(tag):
    return "".join(ch if ch.isalnum() or ch in "._-" else "_"
                   for ch in str(tag))


@dataclass
class TaskResult:
    """What a worker ships back for one task.

    Everything except ``elapsed``/``worker`` is deterministic given
    ``(campaign_seed, task spec)``; the aggregator only reads the
    deterministic fields.
    """

    task_id: str
    kind: str
    status: str          # ok | mismatch | timeout | error | poisoned
    seed: int                         # the task's derived substream seed
    payload: dict = field(default_factory=dict)
    coverage: dict = field(default_factory=dict)
    telemetry: dict = field(default_factory=dict)
    diagnostics: dict | None = None
    elapsed: float = 0.0              # wall seconds (non-deterministic)
    worker: int | None = None         # worker pid (non-deterministic)

    @property
    def ok(self):
        return self.status == "ok"


class CampaignTask:
    """Base class: id, seed derivation, and the failure-capture shell.

    ``wall_budget`` (seconds) arms an in-worker SIGALRM watchdog
    (:func:`repro.resilience.guard.wall_budget_alarm`) around
    :meth:`run`, so a pure-Python hang becomes a structured, *retryable*
    ``"timeout"`` result long before the supervisor's harder process-
    level deadline fires.  ``cycle_budget`` clamps the task's simulated-
    cycle limits (``max_cycles``), so a livelocked design becomes a
    deterministic ``"timeout"`` result.
    """

    kind = "task"

    def __init__(self, task_id, wall_budget=None, cycle_budget=None):
        self.task_id = str(task_id)
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        self.wall_budget = wall_budget
        self.cycle_budget = (None if cycle_budget is None
                             else int(cycle_budget))

    def _clamp_cycles(self, max_cycles):
        """``max_cycles`` bounded by the task's cycle budget."""
        if self.cycle_budget is None:
            return max_cycles
        if max_cycles is None:
            return self.cycle_budget
        return min(int(max_cycles), self.cycle_budget)

    def rng(self, campaign_seed):
        """The task's private RNG substream (crc32 fork by task id)."""
        return RNG(campaign_seed).fork(f"task:{self.task_id}")

    def run(self, rng, ctx):
        """Execute; return ``(payload, coverage, telemetry)`` dicts.
        Subclasses implement this and may raise."""
        raise NotImplementedError

    # -- failure-capture shell -------------------------------------------

    def execute(self, campaign_seed, ctx, attempt=1):
        """Run under the fleet contract: never raise, always return a
        :class:`TaskResult`.  Verification failures become structured
        ``mismatch`` results (with shrunk repro + observe bundles via
        :meth:`_diagnose_mismatch`), budget blowouts become
        ``timeout``, anything else becomes ``error`` with a traceback
        — sibling tasks on the same worker keep running either way.

        ``attempt`` is the supervisor's retry ordinal (1 on the first
        try); it selects chaos injections and is *never* allowed to
        influence the result — every attempt derives the identical RNG
        substream, which is what makes retried results byte-equal to
        first-try results.
        """
        from ..resilience.guard import WatchdogTimeout, wall_budget_alarm
        from ..telemetry import tracing
        from ..verif.cosim import CoSimMismatch, CoSimTimeout
        from .chaos import maybe_inject

        rng = self.rng(campaign_seed)
        seed = rng._seed & 0xFFFFFFFF
        start = perf_counter()
        status, payload, coverage, telemetry, diagnostics = \
            "ok", {}, {}, {}, None
        with tracing.span("fleet.task", task=self.task_id,
                          kind=self.kind, attempt=attempt) as sp:
            try:
                with wall_budget_alarm(self.wall_budget,
                                       label=self.task_id):
                    maybe_inject(self.task_id, attempt)
                    payload, coverage, telemetry = self.run(rng, ctx)
            except CoSimMismatch as exc:
                status = "mismatch"
                diagnostics = self._diagnose_mismatch(
                    exc, campaign_seed, ctx)
            except (CoSimTimeout, WatchdogTimeout) as exc:
                status = "timeout"
                diagnostics = {"message": str(exc)}
                wd_diag = getattr(exc, "diagnostics", None)
                if wd_diag:
                    diagnostics["watchdog"] = _strip_timing(wd_diag)
                    # Wall-clock trips are machine noise, not a fact
                    # about the design: mark them transient so the
                    # supervisor's retry policy gives the task a fresh
                    # attempt.  Cycle-budget trips are deterministic
                    # and final.
                    if wd_diag.get("kind") == "wall-budget":
                        diagnostics["transient"] = True
            except Exception as exc:
                status = "error"
                diagnostics = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(limit=16),
                }
            sp.set(status=status)
        import os
        return TaskResult(
            task_id=self.task_id, kind=self.kind, status=status,
            seed=seed, payload=payload, coverage=coverage,
            telemetry=telemetry, diagnostics=diagnostics,
            elapsed=perf_counter() - start, worker=os.getpid())

    def _diagnose_mismatch(self, exc, campaign_seed, ctx):
        """Default mismatch diagnostics: the divergence facts."""
        return _mismatch_facts(exc)

    def __repr__(self):
        return f"<{type(self).__name__} {self.task_id!r}>"


def _mismatch_facts(exc):
    facts = {
        "message": str(exc),
        "ref": exc.ref,
        "dut": exc.dut,
        "channel": exc.channel,
        "index": exc.index,
        "expected": list(exc.expected) if exc.expected else None,
        "actual": list(exc.actual) if exc.actual else None,
    }
    if exc.bundles:
        import os

        from ..telemetry import tracing

        # With host-span tracing armed, hang the spans collected so
        # far (the failing task's timeline) off every exported bundle.
        # Side-channel only: the manifests embedded in the report
        # below strip the trace reference, so report bytes stay
        # identical with tracing on or off.
        tracer = tracing.active()
        if tracer is not None:
            from ..observe.forensics import attach_trace
            for dut, path in sorted(exc.bundles.items()):
                try:
                    attach_trace(path, tracer.events)
                except Exception:
                    pass
        facts["bundles"] = {
            dut: os.path.basename(path)
            for dut, path in sorted(exc.bundles.items())}
        manifests = {}
        for dut, path in sorted(exc.bundles.items()):
            try:
                from ..observe.forensics import read_manifest
                manifest = read_manifest(path)
                manifest.pop("trace", None)
                manifests[dut] = manifest
            except Exception:
                pass
        if manifests:
            facts["bundle_manifests"] = manifests
    return facts


def _strip_timing(diag):
    """Watchdog diagnostics minus wall-clock fields (reports must be
    byte-identical across worker counts, and elapsed seconds are not)."""
    return {k: v for k, v in dict(diag).items()
            if k not in ("elapsed_seconds",)}


def _telemetry_export(sim, prefix=""):
    """Counters + histograms of one simulator as plain dicts."""
    counters = {f"{prefix}{name}": int(value)
                for name, value in sim.telemetry.counters().items()}
    histograms = {f"{prefix}{name}": hist.to_dict()
                  for name, hist in sim.telemetry.histograms().items()}
    return {"counters": counters, "histograms": histograms}


def _pattern(spec, rng, label, factory):
    """Build a backpressure/presence schedule from a picklable
    ``(kind, kwargs)`` spec, seeding it from the task substream."""
    if spec is None:
        return None
    kind, kwargs = spec if isinstance(spec, tuple) else (spec, {})
    kwargs = dict(kwargs)
    kwargs.setdefault("seed", rng.fork(label)._seed & 0xFFFFFFFF)
    return factory(kind, **kwargs)


# -- verif sweep tasks --------------------------------------------------------


class VerifSweepTask(CampaignTask):
    """One differential co-simulation sweep as a campaign unit.

    ``scenario`` names a built-in scenario (``"cache"``, ``"mesh"``,
    ``"proc"``) or is a module-level callable ``f(rng, task) ->
    (make_harness, stimulus, run_kwargs)`` (it must be importable in
    the worker — a plain function, not a closure).  ``points`` is a
    tuple of ``(name, params)`` implementation points the scenario
    builds; defaults compare the event- and static-scheduled
    substrates of the RTL model.

    On divergence the worker re-derives the identical scenario, ddmin-
    shrinks the stimulus (:func:`repro.verif.shrink.shrink_cosim_failure`),
    optionally emits a standalone pytest repro into the artifact dir
    (``build_src``), and returns everything as diagnostics.
    ``observe_depth > 0`` arms a flight recorder on every DUT's
    capture channels so the divergence additionally exports
    ``repro-observe-v1`` bundles.
    """

    kind = "verif"

    DEFAULT_POINTS = (("event", {"sched": "event"}),
                      ("static", {"sched": "static"}))

    def __init__(self, task_id, scenario="cache", ntxns=120,
                 points=None, dut_params=None, compare=None,
                 backpressure=("random", {"p": 0.75}),
                 presence=("random", {"p": 0.85}),
                 max_cycles=60_000, shrink=True, shrink_runs=150,
                 observe_depth=0, build_src=None,
                 wall_budget=None, cycle_budget=None):
        super().__init__(task_id, wall_budget=wall_budget,
                         cycle_budget=cycle_budget)
        self.scenario = scenario
        self.ntxns = int(ntxns)
        self.points = tuple(points) if points else self.DEFAULT_POINTS
        self.dut_params = dict(dut_params or {})
        self.compare = compare
        self.backpressure = backpressure
        self.presence = presence
        self.max_cycles = int(max_cycles)
        self.shrink = bool(shrink)
        self.shrink_runs = int(shrink_runs)
        self.observe_depth = int(observe_depth)
        self.build_src = build_src

    # -- scenario materialization ---------------------------------------

    def _materialize(self, rng):
        """Deterministically rebuild ``(make_harness, stimulus,
        run_kwargs)`` from the task substream.  Called once for the
        sweep and again (with an equal ``rng``) for shrinking."""
        scenario = self.scenario
        if not callable(scenario):
            scenario = SCENARIOS[scenario]
        make, stimulus, run_kwargs = scenario(rng, self)
        run_kwargs = dict(run_kwargs)
        run_kwargs.setdefault("max_cycles", self.max_cycles)
        run_kwargs["max_cycles"] = self._clamp_cycles(
            run_kwargs["max_cycles"])
        if "backpressure" not in run_kwargs:
            run_kwargs["backpressure"] = _pattern(
                self.backpressure, rng, "bp", backpressure_pattern)
        if "presence" not in run_kwargs:
            run_kwargs["presence"] = _pattern(
                self.presence, rng, "pr", presence_pattern)
        return make, stimulus, run_kwargs

    def _arm(self, harness, ctx):
        """Arm per-DUT flight recorders on the capture channels and
        point divergence bundles at the artifact dir."""
        if not self.observe_depth:
            return
        if ctx.artifact_dir:
            harness.bundle_dir = str(ctx.artifact_dir)
        for dut in harness.duts:
            signals = []
            for ch in dut.channels:
                if ch.role != "drive":
                    signals.extend(
                        (ch.bundle.val, ch.bundle.rdy, ch.bundle.msg))
            if signals:
                dut.sim.flight_recorder(
                    signals=signals, depth=self.observe_depth)

    def run(self, rng, ctx):
        make, stimulus, run_kwargs = self._materialize(rng)
        harness = make()
        self._arm(harness, ctx)
        res = harness.run(stimulus, **run_kwargs)
        ref = harness.duts[0]
        payload = {
            "points": [name for name, _ in self.points],
            "ntransactions": res.ntransactions(),
            "ncycles": {name: n for name, n in res.ncycles.items()},
        }
        return payload, res.coverage.to_dict(), _telemetry_export(ref.sim)

    def _diagnose_mismatch(self, exc, campaign_seed, ctx):
        facts = _mismatch_facts(exc)
        if not self.shrink:
            return facts
        from ..verif.shrink import emit_repro, shrink_cosim_failure

        # Re-derive the identical scenario for the shrink probes; the
        # harness factory builds fresh simulators per probe.
        rng = self.rng(campaign_seed)
        make, stimulus, run_kwargs = self._materialize(rng)
        if not stimulus:
            return facts                    # self-running: seed is the repro
        shrink_kwargs = {k: v for k, v in run_kwargs.items()}
        try:
            shrunk, shrunk_exc = shrink_cosim_failure(
                make, stimulus, shrink_kwargs,
                max_runs=self.shrink_runs)
        except Exception as shrink_err:
            facts["shrink_error"] = (
                f"{type(shrink_err).__name__}: {shrink_err}")
            return facts
        facts["shrunk_stimulus"] = {
            ch: list(payloads) for ch, payloads in sorted(shrunk.items())}
        facts["shrunk_ntxns"] = sum(len(v) for v in shrunk.values())
        facts["shrunk_message"] = str(shrunk_exc)
        if self.build_src and ctx.artifact_dir:
            import os
            name = f"repro_{_safe_tag(self.task_id)}.py"
            try:
                path = emit_repro(
                    os.path.join(str(ctx.artifact_dir), name),
                    self.build_src, shrunk,
                    {"max_cycles": self.max_cycles},
                    note=f"Shrunk by repro.fleet task "
                         f"{self.task_id!r}.",
                    mismatch=shrunk_exc)
                facts["repro_file"] = os.path.basename(path)
                with open(path) as f:
                    facts["repro_source"] = f.read()
            except Exception as emit_err:
                facts["repro_error"] = (
                    f"{type(emit_err).__name__}: {emit_err}")
        return facts


# -- built-in scenarios -------------------------------------------------------
#
# A scenario turns (task rng, task spec) into the three things a sweep
# needs: a re-callable harness factory, the stimulus dict, and run
# kwargs.  Factories capture only plain data derived *before* they are
# returned, so calling one twice (sweep, then shrink probes) builds
# identical fresh simulators.


def _cache_scenario(rng, task):
    from ..verif.cosim import CoSimHarness
    from ..verif.duts import make_cache_dut

    params = dict(task.dut_params)
    addr_words = params.pop("addr_words", 64)
    strat = mem_request_strategy(addr_words=addr_words)
    srng = rng.fork("stimulus")
    stimulus = {"req": [strat.sample(srng) for _ in range(task.ntxns)]}
    points, compare = task.points, task.compare or "cycle_exact"

    def make():
        return CoSimHarness(
            [make_cache_dut(name, **{**params, **pt})
             for name, pt in points],
            compare=compare)

    return make, stimulus, {}


def _mesh_scenario(rng, task):
    from ..net import NetMsg
    from ..verif.cosim import CoSimHarness
    from ..verif.duts import make_mesh_dut

    params = dict(task.dut_params)
    nrouters = params.setdefault("nrouters", 4)
    msg_type = NetMsg(nrouters, params.get("nmsgs", 256),
                      params.get("data_nbits", 16))
    stimulus = {}
    for src in range(nrouters):
        port_rng = rng.fork(f"port{src}")
        strat = net_message_strategy(msg_type, src, nrouters)
        stimulus[f"in{src}"] = [
            strat.sample(port_rng) for _ in range(task.ntxns)]
    points, compare = task.points, task.compare or "cycle_exact"

    def make():
        return CoSimHarness(
            [make_mesh_dut(name, **{**params, **pt})
             for name, pt in points],
            compare=compare)

    return make, stimulus, {}


def _proc_scenario(rng, task):
    from ..proc import assemble
    from ..verif.cosim import CoSimHarness
    from ..verif.duts import make_proc_dut, random_minrisc_program

    params = dict(task.dut_params)
    length = params.pop("length", max(20, task.ntxns))
    words = assemble(random_minrisc_program(
        rng.fork("prog"), length=length,
        store_frac=params.pop("store_frac", 0.2)))
    points = task.points
    if points == VerifSweepTask.DEFAULT_POINTS:
        # The class default names simulator substrates; for the
        # self-running processor scenario compare abstraction levels.
        points = (("fl", {"level": "fl"}), ("cl", {"level": "cl"}))
    compare = task.compare or "cycle_tolerant"

    def make():
        return CoSimHarness(
            [make_proc_dut(name, pt.get("level", name), words,
                           **{**params,
                              **{k: v for k, v in pt.items()
                                 if k != "level"}})
             for name, pt in points],
            compare=compare)

    # Self-running DUTs: nothing to drive, so no stimulus patterns.
    return make, {}, {"backpressure": None, "presence": None}


SCENARIOS = {
    "cache": _cache_scenario,
    "mesh": _mesh_scenario,
    "proc": _proc_scenario,
}


# -- fault sweep tasks --------------------------------------------------------


class FaultSweepTask(CampaignTask):
    """Resilience fault-injection sweep (resilient-link exactly-once)
    as a campaign unit — see
    :func:`repro.resilience.sweeps.link_fault_sweep`."""

    kind = "fault"

    def __init__(self, task_id, npackets=120, drop=0.05, corrupt=0.05,
                 stall=0.05, levels=("fl", "cl", "rtl"),
                 payload_nbits=16, max_cycles=60_000, rdy_p=0.2,
                 wall_budget=None, cycle_budget=None):
        super().__init__(task_id, wall_budget=wall_budget,
                         cycle_budget=cycle_budget)
        self.npackets = int(npackets)
        self.drop = float(drop)
        self.corrupt = float(corrupt)
        self.stall = float(stall)
        self.levels = tuple(levels)
        self.payload_nbits = int(payload_nbits)
        self.max_cycles = int(max_cycles)
        self.rdy_p = float(rdy_p)

    def run(self, rng, ctx):
        from ..resilience.sweeps import link_fault_sweep

        out = link_fault_sweep(
            seed=rng.fork("sweep")._seed,
            npackets=self.npackets, drop=self.drop,
            corrupt=self.corrupt, stall=self.stall,
            levels=self.levels, payload_nbits=self.payload_nbits,
            max_cycles=self._clamp_cycles(self.max_cycles),
            rdy_p=self.rdy_p)
        coverage = out.pop("coverage")
        telemetry = {"counters": out.pop("counters"),
                     "histograms": {}}
        return out, coverage, telemetry


# -- design-space benchmark tasks ---------------------------------------------


def _mesh_traffic_point(rng, params):
    """Uniform-random traffic on an interpreted mesh/crossbar network."""
    from ..core import SimulationTool
    from ..net import (
        MeshNetworkStructural,
        NetworkFL,
        NetworkTrafficHarness,
        RouterCL,
        RouterRTL,
    )

    level = params.get("level", "rtl")
    nrouters = int(params.get("nrouters", 4))
    nmsgs = int(params.get("nmsgs", 256))
    data_nbits = int(params.get("data_nbits", 32))
    nentries = int(params.get("nentries", 2))
    if level == "fl":
        net = NetworkFL(nrouters, nmsgs, data_nbits, nentries)
    else:
        router = {"cl": RouterCL, "rtl": RouterRTL}[level]
        net = MeshNetworkStructural(router, nrouters, nmsgs,
                                    data_nbits, nentries)
    net.elaborate()
    sim = SimulationTool(net, sched=params.get("sched", "auto"))
    harness = NetworkTrafficHarness(
        net, sim=sim, seed=rng.fork("traffic")._seed & 0xFFFFFFFF)
    stats = harness.run_uniform_random(
        float(params.get("rate", 0.2)),
        int(params.get("ncycles", 300)),
        warmup=int(params.get("warmup", 0)))
    metrics = {
        "injected": stats.injected,
        "ejected": stats.ejected,
        "avg_latency": stats.avg_latency,
        "throughput": stats.throughput,
        "ncycles": stats.ncycles,
    }
    return metrics, sim


def _cache_geometry_point(rng, params):
    """CL tile running the scalar matrix-vector kernel at one D$
    geometry (the Section III-C design-space study, one point)."""
    from ..accel import Tile, mvmult_data, mvmult_scalar
    from ..core import SimulationTool
    from ..proc import assemble

    rows = int(params.get("rows", 4))
    cols = int(params.get("cols", 16))
    words = assemble(mvmult_scalar(rows, cols))
    data, _expected = mvmult_data(rows, cols)
    tile = Tile(("cl", "cl", "cl"),
                cache_nlines=int(params.get("nlines", 16)),
                cache_assoc=int(params.get("assoc", 1))).elaborate()
    tile.mem.load(0, words)
    for addr, value in data.items():
        tile.mem.write_word(addr, value)
    sim = SimulationTool(tile)
    sim.reset()
    limit = int(params.get("max_cycles", 3_000_000))
    from ..telemetry import tracing
    with tracing.span("sim.run", design="Tile") as sp:
        while not int(tile.proc.done):
            sim.cycle()
            if sim.ncycles >= limit:
                raise RuntimeError(
                    f"cache_geometry point did not finish in {limit} "
                    f"cycles")
        sp.set(ncycles=sim.ncycles)
    metrics = {
        "ncycles": sim.ncycles,
        "miss_rate": tile.dcache.miss_rate(),
    }
    return metrics, sim


DESIGN_POINTS = {
    "mesh_traffic": _mesh_traffic_point,
    "cache_geometry": _cache_geometry_point,
}


class BenchPointTask(CampaignTask):
    """One design-space evaluation point.

    ``design`` names a registered point function (``"mesh_traffic"``,
    ``"cache_geometry"``) or is a module-level callable
    ``f(rng, params) -> (metrics, sim)``.
    """

    kind = "bench"

    def __init__(self, task_id, design, params=None,
                 wall_budget=None, cycle_budget=None):
        super().__init__(task_id, wall_budget=wall_budget,
                         cycle_budget=cycle_budget)
        self.design = design
        self.params = dict(params or {})

    def run(self, rng, ctx):
        fn = self.design if callable(self.design) \
            else DESIGN_POINTS[self.design]
        params = self.params
        if self.cycle_budget is not None:
            params = dict(params)
            params["max_cycles"] = self._clamp_cycles(
                params.get("max_cycles"))
        metrics, sim = fn(rng, params)
        payload = {
            "design": getattr(self.design, "__name__", self.design),
            "params": dict(sorted(self.params.items())),
            "metrics": metrics,
        }
        telemetry = _telemetry_export(sim) if sim is not None \
            else {"counters": {}, "histograms": {}}
        return payload, {}, telemetry


# -- campaigns ----------------------------------------------------------------


class Campaign:
    """A named, seeded, ordered list of tasks with unique ids."""

    def __init__(self, name, seed, tasks):
        self.name = str(name)
        self.seed = int(seed)
        self.tasks = list(tasks)
        ids = [t.task_id for t in self.tasks]
        dups = sorted({i for i in ids if ids.count(i) > 1})
        if dups:
            raise ValueError(f"duplicate task ids: {dups}")
        if not self.tasks:
            raise ValueError("a campaign needs at least one task")

    def __len__(self):
        return len(self.tasks)

    def __repr__(self):
        return (f"<Campaign {self.name!r} seed={self.seed} "
                f"ntasks={len(self.tasks)}>")


def demo_campaign(seed=7, scale="small"):
    """A mixed demonstration campaign (CI smoke, CLI default).

    ``scale="small"`` keeps every task to a couple of seconds;
    ``"medium"`` grows the mesh and packet counts.
    """
    big = scale != "small"
    nrouters = 16 if big else 4
    tasks = [
        VerifSweepTask("verif/cache/base", scenario="cache",
                       ntxns=120 if big else 60),
        VerifSweepTask("verif/cache/assoc2", scenario="cache",
                       ntxns=120 if big else 60,
                       dut_params={"assoc": 2}),
        VerifSweepTask(f"verif/mesh{nrouters}/base", scenario="mesh",
                       ntxns=40 if big else 20,
                       dut_params={"nrouters": nrouters}),
        FaultSweepTask("fault/link/mixed", npackets=120 if big else 60,
                       drop=0.05, corrupt=0.05, stall=0.05),
        FaultSweepTask("fault/link/droppy", npackets=120 if big else 60,
                       drop=0.10, corrupt=0.0, stall=0.08),
        BenchPointTask("bench/mesh/r20",
                       design="mesh_traffic",
                       params={"nrouters": nrouters, "rate": 0.20,
                               "ncycles": 400 if big else 250}),
        BenchPointTask("bench/cache/4x1",
                       design="cache_geometry",
                       params={"nlines": 4, "assoc": 1,
                               "rows": 2, "cols": 8}),
    ]
    return Campaign(f"demo-{scale}", seed, tasks)
