"""Deterministic fleet chaos: injected worker crashes, hangs, spikes.

PR 4 taught the *designs* to survive injected faults; this module
turns the same philosophy on the fleet itself.  A :class:`ChaosPlan`
names sabotage to perform at exact ``(task_id, attempt)`` coordinates:

- ``"kill"`` — ``SIGKILL`` the worker process mid-task (the segfault
  stand-in: the process dies without unwinding, without flushing,
  without a result);
- ``"hang"`` — stop making progress in an *interruptible* sleep loop
  (the comb-loop-with-an-armed-watchdog stand-in: the task's
  ``wall_budget`` SIGALRM can still fire and convert the hang into a
  structured ``"timeout"`` result);
- ``"hang_hard"`` — mask ``SIGALRM`` first, then hang (the
  comb-loop-with-*no*-armed-watchdog stand-in: only the supervisor's
  process-level deadline can reclaim the task);
- ``"spike"`` — allocate and touch ``mbytes`` of memory, release it,
  and continue normally (an allocation burst the fleet must absorb,
  visible in the live RSS metrics, harmless to the result).

Because events are keyed on the attempt number (``attempts=1``
sabotages only the first attempt), a chaos run with retries enabled
converges to the exact results of an undisturbed run — which is how
the chaos tests prove the supervisor end-to-end: inject, retry,
compare report bytes.

**Transport.**  The plan rides the ``REPRO_FLEET_CHAOS`` environment
variable as JSON, so it reaches pool workers under both ``fork`` and
``spawn`` start methods and needs no plumbing through the dispatch
protocol.  :func:`maybe_inject` (called by ``CampaignTask.execute``
inside the watchdog window) reads and caches the plan per process;
with the variable unset it is a dict-lookup no-op.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

__all__ = ["ENV_VAR", "ChaosEvent", "ChaosPlan", "maybe_inject"]

ENV_VAR = "REPRO_FLEET_CHAOS"

_MODES = ("kill", "hang", "hang_hard", "spike")


@dataclass(frozen=True)
class ChaosEvent:
    """One planned sabotage.

    ``task`` is the exact task id (or ``None`` when built from an
    ``index`` that has not been resolved yet); ``attempts`` is the
    highest attempt number still sabotaged (1 = first try only, so a
    retry runs clean; a large value poisons every attempt).
    ``seconds`` bounds a hang (a backstop so an unsupervised chaos run
    cannot wedge forever); ``mbytes`` sizes a spike.
    """

    task: str | None
    mode: str = "kill"
    attempts: int = 1
    index: int | None = None
    seconds: float = 600.0
    mbytes: int = 64

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown chaos mode {self.mode!r}; pick from {_MODES}")
        if self.task is None and self.index is None:
            raise ValueError("a ChaosEvent needs a task id or an index")


class ChaosPlan:
    """A set of :class:`ChaosEvent`, installable into the environment."""

    def __init__(self, events):
        self.events = list(events)

    # -- construction / transport ----------------------------------------

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError("chaos plan JSON must be a list of events")
        return cls(ChaosEvent(
            task=ev.get("task"),
            mode=ev.get("mode", "kill"),
            attempts=int(ev.get("attempts", 1)),
            index=ev.get("index"),
            seconds=float(ev.get("seconds", 600.0)),
            mbytes=int(ev.get("mbytes", 64)),
        ) for ev in data)

    def to_json(self):
        out = []
        for ev in self.events:
            rec = {"task": ev.task, "mode": ev.mode,
                   "attempts": ev.attempts}
            if ev.index is not None:
                rec["index"] = ev.index
            if ev.mode in ("hang", "hang_hard"):
                rec["seconds"] = ev.seconds
            if ev.mode == "spike":
                rec["mbytes"] = ev.mbytes
            out.append(rec)
        return json.dumps(out, sort_keys=True)

    def resolve(self, campaign):
        """Return a copy with every ``index``-addressed event bound to
        its task id in ``campaign`` (task order is part of the campaign
        identity, so indices are stable)."""
        events = []
        for ev in self.events:
            if ev.task is None:
                if not 0 <= ev.index < len(campaign.tasks):
                    raise ValueError(
                        f"chaos index {ev.index} out of range for "
                        f"campaign of {len(campaign.tasks)} tasks")
                ev = ChaosEvent(
                    task=campaign.tasks[ev.index].task_id,
                    mode=ev.mode, attempts=ev.attempts, index=ev.index,
                    seconds=ev.seconds, mbytes=ev.mbytes)
            events.append(ev)
        return ChaosPlan(events)

    def install(self, environ=None):
        """Publish the plan into the environment (workers read it on
        first injection check).  Every event must be task-addressed —
        call :meth:`resolve` first for index-addressed plans."""
        unresolved = [ev for ev in self.events if ev.task is None]
        if unresolved:
            raise ValueError(
                "cannot install a plan with unresolved indices; call "
                "resolve(campaign) first")
        (environ if environ is not None else os.environ)[ENV_VAR] = \
            self.to_json()
        _reset_cache()
        return self

    @staticmethod
    def uninstall(environ=None):
        (environ if environ is not None else os.environ).pop(
            ENV_VAR, None)
        _reset_cache()

    # -- lookup / execution ----------------------------------------------

    def lookup(self, task_id, attempt):
        for ev in self.events:
            if ev.task == task_id and attempt <= ev.attempts:
                return ev
        return None

    def inject(self, task_id, attempt):
        """Perform the planned sabotage for ``(task_id, attempt)``, if
        any.  ``kill`` never returns; ``hang``/``hang_hard`` park until
        an external force (SIGALRM / supervisor kill / the ``seconds``
        backstop) intervenes; ``spike`` returns after the burst."""
        ev = self.lookup(task_id, attempt)
        if ev is None:
            return None
        if ev.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif ev.mode in ("hang", "hang_hard"):
            if ev.mode == "hang_hard" and hasattr(signal, "SIGALRM"):
                signal.signal(signal.SIGALRM, signal.SIG_IGN)
            deadline = time.monotonic() + ev.seconds
            while time.monotonic() < deadline:
                # Short interruptible sleeps: a SIGALRM handler raises
                # straight out of here on the soft-hang path.
                time.sleep(0.05)
        elif ev.mode == "spike":
            ballast = bytearray(ev.mbytes << 20)
            ballast[::4096] = b"\xff" * len(ballast[::4096])
            del ballast
        return ev

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return f"<ChaosPlan {self.events!r}>"


# -- per-process env-hook cache -----------------------------------------------

_CACHED = None
_CACHED_TEXT = None


def _reset_cache():
    global _CACHED, _CACHED_TEXT
    _CACHED = None
    _CACHED_TEXT = None


def _active_plan():
    """The installed plan (cached per text value, re-read on change)."""
    global _CACHED, _CACHED_TEXT
    text = os.environ.get(ENV_VAR)
    if not text:
        _reset_cache()
        return None
    if text != _CACHED_TEXT:
        _CACHED = ChaosPlan.from_json(text)
        _CACHED_TEXT = text
    return _CACHED


def maybe_inject(task_id, attempt):
    """The worker-side hook: sabotage ``(task_id, attempt)`` if the
    installed plan says so; a no-op when no plan is installed."""
    plan = _active_plan()
    if plan is None:
        return None
    return plan.inject(task_id, attempt)
