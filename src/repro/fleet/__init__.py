"""Sharded multi-process simulation fleet with deterministic
campaign aggregation.

Python simulation is single-core; campaigns are embarrassingly
parallel.  This package shards a *campaign* — a seeded list of
picklable task specs (verif co-sim sweeps, resilience fault sweeps,
design-space benchmark points) — across worker processes and folds the
results into one ``repro-fleet-v1`` report whose serialized bytes are
identical for any worker count and any completion order.

Six modules:

- :mod:`.campaign` — task specs and the failure-capture contract
  (mismatches come back as shrunk repros + observe bundles, not
  crashes); tasks carry optional ``wall_budget``/``cycle_budget``
  watchdog limits;
- :mod:`.runner` — crash-isolated supervised execution: per-worker
  pipes, dead-worker detection and respawn, per-task deadlines,
  :class:`RetryPolicy` backoff, quarantine of worker-killing tasks
  as structured ``"poisoned"`` results, and a shared SimJIT ``.so``
  cache;
- :mod:`.aggregate` — the deterministic report fold (including
  partial/interrupted aggregation);
- :mod:`.journal` — the write-ahead campaign journal: every
  completed task is fsync'd to append-only JSONL, so an interrupted
  campaign resumes (``run_campaign(..., resume=path)``) without
  re-executing finished work and reproduces the exact report bytes;
- :mod:`.chaos` — deterministic fault injection (worker SIGKILL,
  hangs, allocation spikes at chosen ``(task, attempt)``
  coordinates) for testing all of the above;
- :mod:`.live` — the observability side-channel: merges streamed
  worker spans/metrics into live progress and one Chrome/Perfetto
  campaign trace (``run_campaign(..., trace=True)`` /
  ``python -m repro.fleet --live --trace out.json``).

Quick start::

    from repro.fleet import Campaign, VerifSweepTask, run_campaign
    camp = Campaign("nightly", seed=7, tasks=[
        VerifSweepTask("cache/base", scenario="cache", ntxns=200),
        VerifSweepTask("mesh16", scenario="mesh",
                       dut_params={"nrouters": 16}, ntxns=50),
    ])
    res = run_campaign(camp, nworkers=4)
    print(res.report["status"], res.report["coverage"])

``python -m repro.fleet --workers 4`` runs a demonstration campaign.
"""

from .aggregate import SCHEMA, aggregate, report_json
from .campaign import (
    BenchPointTask,
    Campaign,
    CampaignTask,
    FaultSweepTask,
    TaskResult,
    VerifSweepTask,
    demo_campaign,
)
from .chaos import ChaosEvent, ChaosPlan
from .journal import Journal, JournalError
from .live import LiveCollector, Ticker
from .runner import FleetContext, FleetResult, RetryPolicy, run_campaign

__all__ = [
    "SCHEMA",
    "aggregate",
    "report_json",
    "Campaign",
    "CampaignTask",
    "VerifSweepTask",
    "FaultSweepTask",
    "BenchPointTask",
    "TaskResult",
    "demo_campaign",
    "FleetContext",
    "FleetResult",
    "RetryPolicy",
    "Journal",
    "JournalError",
    "ChaosPlan",
    "ChaosEvent",
    "LiveCollector",
    "Ticker",
    "run_campaign",
]
