"""Sharded multi-process simulation fleet with deterministic
campaign aggregation.

Python simulation is single-core; campaigns are embarrassingly
parallel.  This package shards a *campaign* — a seeded list of
picklable task specs (verif co-sim sweeps, resilience fault sweeps,
design-space benchmark points) — across worker processes and folds the
results into one ``repro-fleet-v1`` report whose serialized bytes are
identical for any worker count and any completion order.

Four modules:

- :mod:`.campaign` — task specs and the failure-capture contract
  (mismatches come back as shrunk repros + observe bundles, not
  crashes);
- :mod:`.runner` — process-pool execution with chunked work-stealing
  dispatch and a shared SimJIT ``.so`` cache;
- :mod:`.aggregate` — the deterministic report fold;
- :mod:`.live` — the observability side-channel: merges streamed
  worker spans/metrics into live progress and one Chrome/Perfetto
  campaign trace (``run_campaign(..., trace=True)`` /
  ``python -m repro.fleet --live --trace out.json``).

Quick start::

    from repro.fleet import Campaign, VerifSweepTask, run_campaign
    camp = Campaign("nightly", seed=7, tasks=[
        VerifSweepTask("cache/base", scenario="cache", ntxns=200),
        VerifSweepTask("mesh16", scenario="mesh",
                       dut_params={"nrouters": 16}, ntxns=50),
    ])
    res = run_campaign(camp, nworkers=4)
    print(res.report["status"], res.report["coverage"])

``python -m repro.fleet --workers 4`` runs a demonstration campaign.
"""

from .aggregate import SCHEMA, aggregate, report_json
from .campaign import (
    BenchPointTask,
    Campaign,
    CampaignTask,
    FaultSweepTask,
    TaskResult,
    VerifSweepTask,
    demo_campaign,
)
from .live import LiveCollector, Ticker
from .runner import FleetContext, FleetResult, run_campaign

__all__ = [
    "SCHEMA",
    "aggregate",
    "report_json",
    "Campaign",
    "CampaignTask",
    "VerifSweepTask",
    "FaultSweepTask",
    "BenchPointTask",
    "TaskResult",
    "demo_campaign",
    "FleetContext",
    "FleetResult",
    "LiveCollector",
    "Ticker",
    "run_campaign",
]
