"""CLI: run a demonstration fleet campaign.

::

    PYTHONPATH=src python -m repro.fleet --workers 2 --seed 7 --out out/

Writes ``report.json`` (the deterministic ``repro-fleet-v1`` report)
plus failure artifacts into ``--out``, prints a summary table, and
exits nonzero if any task failed.
"""

from __future__ import annotations

import argparse
import sys

from .campaign import demo_campaign
from .live import Ticker
from .runner import run_campaign


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Run a demonstration simulation-fleet campaign.")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale", choices=("small", "medium"),
                        default="small")
    parser.add_argument("--out", default="fleet_out",
                        help="directory for report.json + artifacts")
    parser.add_argument("--live", action="store_true",
                        help="stderr progress ticker while the "
                             "campaign runs")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write the merged Chrome/Perfetto span "
                             "trace JSON here (implies tracing on)")
    args = parser.parse_args(argv)

    campaign = demo_campaign(seed=args.seed, scale=args.scale)
    print(f"campaign {campaign.name!r}: {len(campaign)} tasks, "
          f"seed {campaign.seed}, {args.workers} worker(s)")
    ticker = Ticker() if args.live else None
    res = run_campaign(campaign, nworkers=args.workers,
                       artifact_dir=args.out,
                       trace=args.trace is not None,
                       progress=ticker)
    if ticker is not None:
        ticker.close()
    path = res.write_report(f"{args.out}/report.json")
    if args.trace is not None:
        print(f"trace: {res.write_trace(args.trace)} "
              f"(open in https://ui.perfetto.dev)")

    report = res.report
    for tid in sorted(report["tasks"]):
        entry = report["tasks"][tid]
        print(f"  {entry['status']:>8}  {tid}")
    print(f"status: {report['status']}  counts: {report['counts']}")
    print(f"elapsed: {res.stats['elapsed']:.2f}s across "
          f"{res.stats['nworkers']} worker(s)")
    print(f"report: {path}")
    return 0 if res.ok else 1


if __name__ == "__main__":
    sys.exit(main())
