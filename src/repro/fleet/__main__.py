"""CLI: run a demonstration fleet campaign.

::

    PYTHONPATH=src python -m repro.fleet --workers 2 --seed 7 --out out/

Writes ``report.json`` (the deterministic ``repro-fleet-v1`` report)
plus failure artifacts into ``--out``, prints a summary table, and
exits nonzero if any task failed.

Fault-tolerance controls: ``--journal`` write-ahead-logs every
completion; ``--resume`` picks an interrupted campaign back up from
its journal (completed tasks are loaded, not re-executed, and the
final report bytes match an uninterrupted run); ``--max-attempts`` /
``--task-deadline`` configure the retry policy and per-attempt
wall-clock ceiling; ``--chaos`` installs a deterministic sabotage
plan (JSON, see :mod:`repro.fleet.chaos`) for exercising all of the
above.

Observability: ``--live`` draws a stderr ticker, ``--trace`` writes
the merged Perfetto timeline, and ``--metrics-port`` serves the live
collector as a scrape-able OpenMetrics endpoint
(:mod:`repro.insight.metricsd`) for the duration of the run.  None of
them change the report bytes.
"""

from __future__ import annotations

import argparse
import sys

from .campaign import demo_campaign
from .chaos import ChaosPlan
from .live import Ticker
from .runner import RetryPolicy, run_campaign


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Run a demonstration simulation-fleet campaign.")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale", choices=("small", "medium"),
                        default="small")
    parser.add_argument("--out", default="fleet_out",
                        help="directory for report.json + artifacts")
    parser.add_argument("--live", action="store_true",
                        help="stderr progress ticker while the "
                             "campaign runs")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write the merged Chrome/Perfetto span "
                             "trace JSON here (implies tracing on)")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="write-ahead journal every completed "
                             "task to this JSONL file")
    parser.add_argument("--resume", metavar="PATH", default=None,
                        help="resume from (and keep journaling to) "
                             "this journal; completed tasks are not "
                             "re-executed")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="per-task attempt bound for crashes/"
                             "deadline overruns/transient timeouts "
                             "(default 3; 1 disables retry)")
    parser.add_argument("--task-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt wall-clock ceiling; an "
                             "overrunning worker is killed and the "
                             "task retried")
    parser.add_argument("--chaos", metavar="JSON", default=None,
                        help="deterministic fault-injection plan "
                             "(JSON list of events, e.g. "
                             "'[{\"index\": 0, \"mode\": \"kill\"}]')")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live campaign metrics as "
                             "OpenMetrics text on this port while "
                             "the run lasts (0 = OS-assigned; see "
                             "repro.insight.metricsd); report bytes "
                             "are unaffected")
    args = parser.parse_args(argv)

    campaign = demo_campaign(seed=args.seed, scale=args.scale)
    print(f"campaign {campaign.name!r}: {len(campaign)} tasks, "
          f"seed {campaign.seed}, {args.workers} worker(s)")
    if args.chaos is not None:
        plan = ChaosPlan.from_json(args.chaos).resolve(campaign)
        plan.install()
        print(f"chaos: {len(plan)} event(s) installed")
    ticker = Ticker() if args.live else None
    retry = RetryPolicy(max_attempts=args.max_attempts)
    if args.metrics_port is not None:
        print(f"metrics: serving OpenMetrics on port "
              f"{args.metrics_port or '(OS-assigned)'} at /metrics")
    res = run_campaign(campaign, nworkers=args.workers,
                       artifact_dir=args.out,
                       trace=args.trace is not None,
                       progress=ticker,
                       retry=retry,
                       task_deadline=args.task_deadline,
                       journal=args.journal,
                       resume=args.resume,
                       metrics_port=args.metrics_port)
    if ticker is not None:
        ticker.close()
    if args.chaos is not None:
        ChaosPlan.uninstall()
    path = res.write_report(f"{args.out}/report.json")
    if args.trace is not None:
        print(f"trace: {res.write_trace(args.trace)} "
              f"(open in https://ui.perfetto.dev)")

    report = res.report
    for tid in sorted(report["tasks"]):
        entry = report["tasks"][tid]
        print(f"  {entry['status']:>8}  {tid}")
    if res.stats["resumed"]:
        print(f"resumed: {len(res.stats['resumed'])} task(s) loaded "
              f"from journal")
    if res.stats.get("retries") or res.stats.get("respawns"):
        print(f"recovery: {res.stats['retries']} retrie(s), "
              f"{res.stats['respawns']} respawn(s), "
              f"{len(res.stats['quarantined'])} quarantined")
    print(f"status: {report['status']}  counts: {report['counts']}")
    print(f"elapsed: {res.stats['elapsed']:.2f}s across "
          f"{res.stats['nworkers']} worker(s)")
    print(f"report: {path}")
    if res.interrupted:
        return 130
    return 0 if res.ok else 1


if __name__ == "__main__":
    sys.exit(main())
