"""Structural diff of two reports -> a ``repro-insight-v1`` dict.

The fast path is the determinism property itself: if the canonical
serializations match, the answer is "bit-exact" and nothing else is
computed.  Otherwise the diff is *schema-aware*: the sections a
campaign or telemetry report is made of get typed drift records
(counter deltas, coverage-bin gains/losses, histogram deltas with
summaries recomputed from the merged bins, task-status transitions
like ``ok->poisoned``) instead of a wall of JSON noise; every other
leaf falls through to a generic flat path diff.

The output dict is **stable**: keys sorted, drift lists sorted, no
wall-clock — diffing the same pair twice yields byte-identical
``repro-insight-v1`` text, so insight reports are themselves diffable
and committable artifacts.
"""

from __future__ import annotations

import json

from ..telemetry.counters import Histogram
from .loaders import InsightError, validate_report

__all__ = ["SCHEMA", "diff_reports", "render_markdown", "render_html"]

SCHEMA = "repro-insight-v1"

#: flat-diff leaves reported at most this many per section; the
#: remainder is counted, never silently dropped.
MAX_FLAT = 200


def _canon(report):
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def _numeric_map_diff(a, b):
    """Diff two ``{name: number}`` maps into changed/added/removed."""
    a, b = a or {}, b or {}
    changed = {}
    for name in sorted(set(a) & set(b)):
        if a[name] != b[name]:
            entry = {"a": a[name], "b": b[name]}
            if isinstance(a[name], (int, float)) \
                    and isinstance(b[name], (int, float)):
                entry["delta"] = b[name] - a[name]
            changed[name] = entry
    added = {name: b[name] for name in sorted(set(b) - set(a))}
    removed = {name: a[name] for name in sorted(set(a) - set(b))}
    if not (changed or added or removed):
        return None
    return {"changed": changed, "added": added, "removed": removed}


def _coverage_diff(a, b):
    """Per coverage group: bins gained/lost and count drift."""
    a, b = a or {}, b or {}
    gained, lost, changes = {}, {}, {}
    for group in sorted(set(a) | set(b)):
        bins_a, bins_b = a.get(group, {}), b.get(group, {})
        g = sorted(n for n in bins_b
                   if bins_b[n] and not bins_a.get(n))
        l = sorted(n for n in bins_a
                   if bins_a[n] and not bins_b.get(n))
        c = {n: {"a": bins_a[n], "b": bins_b[n],
                 "delta": bins_b[n] - bins_a[n]}
             for n in sorted(set(bins_a) & set(bins_b))
             if bins_a[n] != bins_b[n]}
        if g:
            gained[group] = g
        if l:
            lost[group] = l
        if c:
            changes[group] = c
    if not (gained or lost or changes):
        return None
    return {"gained_bins": gained, "lost_bins": lost,
            "count_changes": changes}


def _hist_summary(data):
    """Recompute count/mean/min/max from the bins — never trust the
    stored summary fields of a possibly hand-edited report."""
    hist = Histogram.from_dict(data)
    return {"count": hist.count, "mean": hist.mean,
            "min": hist.min, "max": hist.max,
            "nbins": len(hist.bins)}


def _histograms_diff(a, b):
    a, b = a or {}, b or {}
    changed = {}
    for name in sorted(set(a) & set(b)):
        if (a[name] or {}).get("bins") == (b[name] or {}).get("bins"):
            continue
        sum_a, sum_b = _hist_summary(a[name]), _hist_summary(b[name])
        bins_a = dict((a[name] or {}).get("bins") or [])
        bins_b = dict((b[name] or {}).get("bins") or [])
        changed[name] = {
            "a": sum_a,
            "b": sum_b,
            "count_delta": sum_b["count"] - sum_a["count"],
            "mean_delta": sum_b["mean"] - sum_a["mean"],
            "bins_added": sorted(set(bins_b) - set(bins_a)),
            "bins_removed": sorted(set(bins_a) - set(bins_b)),
            "bins_changed": sorted(
                v for v in set(bins_a) & set(bins_b)
                if bins_a[v] != bins_b[v]),
        }
    added = {name: _hist_summary(b[name])
             for name in sorted(set(b) - set(a))}
    removed = {name: _hist_summary(a[name])
               for name in sorted(set(a) - set(b))}
    if not (changed or added or removed):
        return None
    return {"changed": changed, "added": added, "removed": removed}


def _tasks_diff(a, b):
    """Status transitions (``ok->poisoned``), membership changes, and
    which shared tasks drifted in payload/coverage/telemetry."""
    a, b = a or {}, b or {}
    transitions = {}
    drifted = []
    for tid in sorted(set(a) & set(b)):
        ea, eb = a[tid], b[tid]
        if ea.get("status") != eb.get("status"):
            transitions[tid] = f"{ea.get('status')}->{eb.get('status')}"
        elif ea != eb:
            drifted.append(tid)
    added = sorted(set(b) - set(a))
    removed = sorted(set(a) - set(b))
    if not (transitions or drifted or added or removed):
        return None
    return {"transitions": transitions, "drifted": drifted,
            "added": added, "removed": removed}


def _flatten(value, prefix, out):
    if isinstance(value, dict):
        for key in value:
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key),
                     out)
    else:
        out[prefix] = value


def _flat_diff(a, b, skip=()):
    """Generic leaf-path diff (lists compared wholesale).  ``skip``
    names top-level keys already covered by a typed section."""
    flat_a, flat_b = {}, {}
    _flatten({k: v for k, v in a.items() if k not in skip}, "", flat_a)
    _flatten({k: v for k, v in b.items() if k not in skip}, "", flat_b)
    paths = sorted(set(flat_a) | set(flat_b))
    changed = {}
    overflow = 0
    for path in paths:
        in_a, in_b = path in flat_a, path in flat_b
        if in_a and in_b and flat_a[path] == flat_b[path]:
            continue
        if len(changed) >= MAX_FLAT:
            overflow += 1
            continue
        changed[path] = {
            "a": flat_a[path] if in_a else None,
            "b": flat_b[path] if in_b else None,
        }
    if not changed:
        return None
    result = {"changed": changed}
    if overflow:
        result["omitted"] = overflow
    return result


#: schema -> ((section name, extractor, differ), ...).  Extractors
#: pull the section sub-dict out of a report; everything they claim is
#: excluded from the generic flat diff via the top-level key.
def _fleet_sections():
    return (
        ("counters", ("telemetry",),
         lambda r: (r.get("telemetry") or {}).get("counters"),
         _numeric_map_diff),
        ("histograms", ("telemetry",),
         lambda r: (r.get("telemetry") or {}).get("histograms"),
         _histograms_diff),
        ("coverage", ("coverage",), lambda r: r.get("coverage"),
         _coverage_diff),
        ("tasks", ("tasks",), lambda r: r.get("tasks"), _tasks_diff),
    )


def _telemetry_sections():
    return (
        ("counters", ("counters",), lambda r: r.get("counters"),
         _numeric_map_diff),
        ("derived", ("derived",), lambda r: r.get("derived"),
         _numeric_map_diff),
        ("leaf_totals", ("leaf_totals",), lambda r: r.get("leaf_totals"),
         _numeric_map_diff),
        ("histograms", ("histograms",), lambda r: r.get("histograms"),
         _histograms_diff),
    )


_SECTIONS = {
    "repro-fleet-v1": _fleet_sections,
    "repro-telemetry-v1": _telemetry_sections,
}


def _drifted_keys(sections):
    """Flat, sorted list of ``section:key`` drift names — what the CLI
    prints and the exit code is stated over."""
    keys = []
    for section, drift in sections.items():
        for bucket in ("changed", "added", "removed", "transitions",
                       "drifted", "gained_bins", "lost_bins",
                       "count_changes"):
            entries = drift.get(bucket)
            if isinstance(entries, dict):
                keys.extend(f"{section}:{k}" for k in entries)
            elif isinstance(entries, list):
                keys.extend(f"{section}:{k}" for k in entries)
    return sorted(set(keys))


def diff_reports(a, b, label_a="a", label_b="b"):
    """Diff two loaded report dicts of the same schema.

    Returns a ``repro-insight-v1`` dict; raises :class:`InsightError`
    when the inputs are not comparable (different or unknown schemas).
    """
    schema_a = validate_report(a, path=label_a)
    schema_b = validate_report(b, path=label_b)
    if schema_a != schema_b:
        raise InsightError(
            f"cannot diff {schema_a} ({label_a}) against "
            f"{schema_b} ({label_b})")

    result = {
        "schema": SCHEMA,
        "kind": "diff",
        "input_schema": schema_a,
        "labels": {"a": label_a, "b": label_b},
        "identical": False,
        "sections": {},
        "drifted_keys": [],
        "n_drifts": 0,
    }
    if _canon(a) == _canon(b):
        result["identical"] = True
        return result

    sections = {}
    claimed = set()
    for name, top_keys, extract, differ in \
            _SECTIONS.get(schema_a, lambda: ())():
        claimed.update(top_keys)
        drift = differ(extract(a), extract(b))
        if drift is not None:
            sections[name] = drift
    flat = _flat_diff(a, b, skip=claimed)
    if flat is not None:
        sections["scalars"] = flat
    result["sections"] = sections
    result["drifted_keys"] = _drifted_keys(sections)
    result["n_drifts"] = len(result["drifted_keys"])
    return result


# -- rendering ----------------------------------------------------------------


def render_markdown(insight):
    """Markdown summary of a diff result (also the CLI's stdout)."""
    labels = insight.get("labels", {})
    lines = [f"# insight diff — {insight.get('input_schema')}",
             f"- a: `{labels.get('a')}`",
             f"- b: `{labels.get('b')}`"]
    if insight.get("identical"):
        lines.append("")
        lines.append("**bit-exact**: reports are identical.")
        return "\n".join(lines) + "\n"
    lines.append(f"- drifts: **{insight.get('n_drifts')}**")
    for section in sorted(insight.get("sections", {})):
        drift = insight["sections"][section]
        lines.append("")
        lines.append(f"## {section}")
        for bucket in sorted(drift):
            entries = drift[bucket]
            if isinstance(entries, dict):
                for key in sorted(entries):
                    lines.append(
                        f"- {bucket} `{key}`: "
                        f"{_fmt_entry(entries[key])}")
            elif isinstance(entries, list):
                for key in entries:
                    lines.append(f"- {bucket} `{key}`")
            else:
                lines.append(f"- {bucket}: {entries}")
    return "\n".join(lines) + "\n"


def _fmt_entry(entry):
    if isinstance(entry, dict) and "a" in entry and "b" in entry:
        extra = ""
        if "delta" in entry:
            extra = f" (delta {entry['delta']:+g})"
        return f"{_fmt_val(entry['a'])} -> {_fmt_val(entry['b'])}{extra}"
    return _fmt_val(entry)


def _fmt_val(value):
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True)
    return repr(value) if isinstance(value, str) else str(value)


def render_html(text, title="insight report", status=""):
    """Wrap a markdown/text summary in a self-contained HTML page
    (the CI artifact).  ``text`` is any already-rendered summary."""
    import html as _html

    body = _html.escape(text)
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{_html.escape(title)}</title>
<style>
 body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
        max-width: 60rem; color: #1a1a1a; }}
 pre {{ background: #f6f8fa; padding: 1rem; overflow-x: auto;
       border-radius: 6px; }}
 .status {{ font-weight: 600; }}
</style></head>
<body>
<h1>{_html.escape(title)}</h1>
<p class="status">{_html.escape(status)}</p>
<pre>{body}</pre>
</body></html>
"""
