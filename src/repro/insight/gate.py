"""Noise-aware perf-regression gating of benchmark envelopes.

The honest-measurement chain: the benches time instrumented vs
baseline workloads with *paired, order-alternating* reps (the shared
harness in ``benchmarks/common.py``) and record the per-rep relative
spread alongside each ratio.  The gate reuses exactly those
statistics — a result only counts as a regression when it moves by
more than

    ``max(rel_tolerance, spread_k * observed pairwise spread)``

so a noisy host widens its own gate instead of producing flaky
verdicts, while a real 2x slowdown clears any plausible spread.

What gets compared, per result entry (keyed by ``config`` /
``nworkers`` / index):

- **ratio metrics** (``slowdown*``, lower is better) — the primary
  gate.  Ratios are paired measurements on one host, so they transfer
  across machines; this is what CI gates against committed baselines.
- **rate metrics** (``cycles_per_sec``, ``tasks_per_min``, higher is
  better) — machine-dependent; gated only with ``absolute=True``
  (same-host A/B runs), otherwise reported as informational.
- **byte-determinism keys** (``report_sha256``) — gate at exact
  equality, no tolerance: determinism is not a statistic.
- **context keys** (``quick``, ``nrouters``, ``batch``, ...) — must
  match or the envelopes describe different workloads and the gate
  refuses to pretend they are comparable.

Baselines live as committed ``repro-bench-v1`` files under
``benchmarks/results/baselines/`` (same filename as the candidate);
``python -m repro.insight gate`` wires this up for CI.
"""

from __future__ import annotations

import os

from .loaders import InsightError, load_bench

__all__ = ["GateResult", "gate_bench", "resolve_baseline",
           "DEFAULT_BASELINE_DIR"]

DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "results",
                                    "baselines")

#: envelope/entry keys gated at exact equality.
EXACT_KEYS = ("report_sha256",)

#: envelope keys that define the workload; a mismatch means the two
#: files measured different things and no tolerance applies.
CONTEXT_KEYS = ("quick", "nrouters", "batch", "depth", "nsignals",
                "ntasks", "ntxns_per_port")

#: rate metrics (higher is better), in pick order.
RATE_METRICS = ("cycles_per_sec", "tasks_per_min", "speedup")


def _entry_key(entry, index):
    if "config" in entry:
        return str(entry["config"])
    if "nworkers" in entry:
        return f"nworkers={entry['nworkers']}"
    return f"#{index}"


def _ratio_metric(entry):
    """The paired-ratio metric name of an entry, or ``None``."""
    for key in sorted(entry):
        if key.startswith("slowdown") and isinstance(
                entry[key], (int, float)):
            return key
    return None


def _rate_metric(entry):
    for key in RATE_METRICS:
        if isinstance(entry.get(key), (int, float)):
            return key
    return None


def _spread(*entries):
    """Widest recorded pairwise spread among the given entries."""
    best = 0.0
    for entry in entries:
        value = entry.get("pair_spread")
        if isinstance(value, (int, float)):
            best = max(best, float(value))
    return best


class GateResult:
    """The verdict plus every individual check, renderable and
    serializable as a stable ``repro-insight-v1`` dict."""

    def __init__(self, bench, checks, rel_tolerance, spread_k):
        self.bench = bench
        self.checks = checks
        self.rel_tolerance = rel_tolerance
        self.spread_k = spread_k

    @property
    def failures(self):
        return [c for c in self.checks
                if c["verdict"] in ("regression", "exact-mismatch",
                                    "context-mismatch", "missing")]

    @property
    def passed(self):
        return not self.failures

    def to_dict(self):
        return {
            "schema": "repro-insight-v1",
            "kind": "gate",
            "identical": False,
            "bench": self.bench,
            "passed": self.passed,
            "rel_tolerance": self.rel_tolerance,
            "spread_k": self.spread_k,
            "checks": sorted(self.checks,
                             key=lambda c: (c["key"], c["metric"])),
            "sections": {"failures": sorted(
                f"{c['key']}:{c['metric']}" for c in self.failures)},
        }

    def render_markdown(self):
        lines = [f"# insight gate — {self.bench}",
                 f"- verdict: **{'PASS' if self.passed else 'FAIL'}**",
                 f"- tolerance: {self.rel_tolerance:g} "
                 f"(spread_k {self.spread_k:g})", ""]
        lines.append("| check | metric | baseline | candidate "
                     "| change | threshold | verdict |")
        lines.append("|---|---|---|---|---|---|---|")
        for c in sorted(self.checks,
                        key=lambda c: (c["key"], c["metric"])):
            base = c.get("baseline")
            cand = c.get("candidate")
            change = c.get("rel_change")
            lines.append(
                f"| {c['key']} | {c['metric']} "
                f"| {_fmt(base)} | {_fmt(cand)} "
                f"| {_fmt_pct(change)} "
                f"| {_fmt_pct(c.get('threshold'))} "
                f"| {c['verdict']} |")
        return "\n".join(lines) + "\n"


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return "—" if value is None else str(value)


def _fmt_pct(value):
    if isinstance(value, (int, float)):
        return f"{value * 100:+.1f}%" if value else "0%"
    return "—"


def gate_bench(baseline, candidate, rel_tolerance=0.10, spread_k=3.0,
               absolute=False):
    """Gate ``candidate`` against ``baseline`` (both loaded
    ``repro-bench-v1`` dicts); returns a :class:`GateResult`."""
    if baseline.get("bench") != candidate.get("bench"):
        raise InsightError(
            f"bench mismatch: baseline is "
            f"{baseline.get('bench')!r}, candidate is "
            f"{candidate.get('bench')!r}")
    checks = []

    for key in CONTEXT_KEYS:
        if key in baseline and key in candidate \
                and baseline[key] != candidate[key]:
            checks.append({
                "key": "envelope", "metric": key,
                "baseline": baseline[key], "candidate": candidate[key],
                "verdict": "context-mismatch"})
    for key in EXACT_KEYS:
        if key in baseline or key in candidate:
            same = baseline.get(key) == candidate.get(key)
            checks.append({
                "key": "envelope", "metric": key,
                "baseline": baseline.get(key),
                "candidate": candidate.get(key),
                "verdict": "exact-ok" if same else "exact-mismatch"})

    base_by_key = {_entry_key(e, i): e
                   for i, e in enumerate(baseline.get("results", []))}
    cand_by_key = {_entry_key(e, i): e
                   for i, e in enumerate(candidate.get("results", []))}

    for key in sorted(base_by_key):
        base = base_by_key[key]
        cand = cand_by_key.get(key)
        if cand is None:
            checks.append({"key": key, "metric": "presence",
                           "baseline": "present", "candidate": None,
                           "verdict": "missing"})
            continue
        for exact in EXACT_KEYS:
            if exact in base or exact in cand:
                same = base.get(exact) == cand.get(exact)
                checks.append({
                    "key": key, "metric": exact,
                    "baseline": base.get(exact),
                    "candidate": cand.get(exact),
                    "verdict": "exact-ok" if same
                    else "exact-mismatch"})
        metric = _ratio_metric(base)
        if metric is not None and isinstance(
                cand.get(metric), (int, float)):
            checks.append(_compare(key, metric, base[metric],
                                   cand[metric], lower_is_better=True,
                                   spread=_spread(base, cand),
                                   rel_tolerance=rel_tolerance,
                                   spread_k=spread_k))
            continue
        metric = _rate_metric(base)
        if metric is not None and isinstance(
                cand.get(metric), (int, float)):
            if absolute:
                checks.append(_compare(
                    key, metric, base[metric], cand[metric],
                    lower_is_better=False,
                    spread=_spread(base, cand),
                    rel_tolerance=rel_tolerance, spread_k=spread_k))
            else:
                checks.append({
                    "key": key, "metric": metric,
                    "baseline": base[metric],
                    "candidate": cand[metric],
                    "verdict": "info-only"})
            continue
        checks.append({"key": key, "metric": "(none)",
                       "baseline": None, "candidate": None,
                       "verdict": "skipped"})

    return GateResult(candidate.get("bench"), checks,
                      rel_tolerance, spread_k)


def _compare(key, metric, base, cand, lower_is_better, spread,
             rel_tolerance, spread_k):
    threshold = max(rel_tolerance, spread_k * spread)
    if base <= 0:
        return {"key": key, "metric": metric, "baseline": base,
                "candidate": cand, "verdict": "skipped"}
    # rel_change > 0 always means "got worse".
    if lower_is_better:
        rel_change = cand / base - 1.0
    else:
        rel_change = base / cand - 1.0 if cand > 0 else float("inf")
    if rel_change > threshold:
        verdict = "regression"
    elif rel_change < -threshold:
        verdict = "improved"
    else:
        verdict = "ok"
    return {"key": key, "metric": metric, "baseline": base,
            "candidate": cand, "rel_change": rel_change,
            "spread": spread, "threshold": threshold,
            "verdict": verdict}


def resolve_baseline(candidate_path, baseline_dir=None):
    """The committed baseline file matching a candidate envelope:
    same basename under ``baseline_dir``."""
    baseline_dir = baseline_dir or DEFAULT_BASELINE_DIR
    path = os.path.join(baseline_dir,
                        os.path.basename(candidate_path))
    if not os.path.exists(path):
        raise InsightError(
            f"no committed baseline for "
            f"{os.path.basename(candidate_path)!r} under "
            f"{baseline_dir}/")
    return load_bench(path), path
