"""CLI: diff, gate, and summarize observability artifacts.

::

    python -m repro.insight diff  runA/report.json runB/report.json
    python -m repro.insight gate  benchmarks/results/BENCH_telemetry.json
    python -m repro.insight report fleet_out/report.json --html out.html

Exit codes (CI-stable):

- ``0`` — reports bit-exact / gate passed / report rendered;
- ``1`` — drift found (the drifted keys are printed) / gate failed;
- ``2`` — bad input: missing file, truncated JSON, wrong schema —
  one line on stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys

from .diff import diff_reports, render_html, render_markdown
from .gate import (
    DEFAULT_BASELINE_DIR,
    gate_bench,
    resolve_baseline,
)
from .loaders import InsightError, load_bench, load_report

__all__ = ["main"]


def _write(path, text):
    if path:
        with open(path, "w") as handle:
            handle.write(text)


def _emit(args, markdown, payload, title, status):
    _write(args.md, markdown)
    _write(getattr(args, "json_out", None),
           json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _write(args.html, render_html(markdown, title=title, status=status))


def _cmd_diff(args):
    _, rep_a = load_report(args.a)
    _, rep_b = load_report(args.b)
    insight = diff_reports(rep_a, rep_b, label_a=args.a,
                           label_b=args.b)
    markdown = render_markdown(insight)
    status = ("bit-exact" if insight["identical"]
              else f"{insight['n_drifts']} drift(s)")
    _emit(args, markdown, insight,
          title=f"insight diff — {insight['input_schema']}",
          status=status)
    if insight["identical"]:
        print(f"bit-exact: {args.a} == {args.b} "
              f"({insight['input_schema']})")
        return 0
    print(f"drift: {insight['n_drifts']} key(s) differ "
          f"({insight['input_schema']})")
    for key in insight["drifted_keys"][:50]:
        print(f"  {key}")
    if insight["n_drifts"] > 50:
        print(f"  ... {insight['n_drifts'] - 50} more")
    return 1


def _cmd_gate(args):
    candidate = load_bench(args.candidate)
    if args.baseline:
        baseline = load_bench(args.baseline)
        baseline_path = args.baseline
    else:
        baseline, baseline_path = resolve_baseline(
            args.candidate, args.baseline_dir)
    result = gate_bench(baseline, candidate,
                        rel_tolerance=args.tolerance,
                        spread_k=args.spread_k,
                        absolute=args.absolute)
    markdown = result.render_markdown()
    status = "PASS" if result.passed else "FAIL"
    _emit(args, markdown, result.to_dict(),
          title=f"insight gate — {result.bench}", status=status)
    print(f"gate {status}: {args.candidate} vs {baseline_path}")
    for check in result.failures:
        print(f"  {check['verdict']}: {check['key']} "
              f"{check['metric']} "
              f"{check.get('baseline')} -> {check.get('candidate')}")
    return 0 if result.passed else 1


def _summarize(schema, report, path):
    lines = [f"# insight report — {schema}", f"- source: `{path}`"]
    if schema == "repro-fleet-v1":
        lines += [
            f"- campaign: `{report['campaign']}` "
            f"(seed {report['seed']}, {report['ntasks']} tasks)",
            f"- status: **{report['status']}**  counts: "
            f"`{json.dumps(report['counts'], sort_keys=True)}`",
        ]
        for tid in report.get("failures", []):
            lines.append(
                f"- failure `{tid}`: "
                f"{report['tasks'][tid]['status']}")
        counters = (report.get("telemetry") or {}).get("counters", {})
        if counters:
            lines.append("")
            lines.append("## top counters")
            top = sorted(counters.items(),
                         key=lambda kv: (-kv[1], kv[0]))[:15]
            for name, value in top:
                lines.append(f"- `{name}` = {value}")
        coverage = report.get("coverage", {})
        if coverage:
            lines.append("")
            lines.append("## coverage")
            for group in sorted(coverage):
                bins = coverage[group]
                hit = sum(1 for v in bins.values() if v)
                lines.append(f"- `{group}`: {hit}/{len(bins)} bins hit")
    elif schema == "repro-telemetry-v1":
        lines += [
            f"- design: `{report['design']}` "
            f"({report['ncycles']} cycles)",
            f"- counters: {len(report.get('counters', {}))}, "
            f"histograms: {len(report.get('histograms', {}))}",
        ]
    elif schema == "repro-bench-v1":
        host = report.get("host", {})
        lines += [
            f"- bench: `{report['bench']}` "
            f"({len(report['results'])} result rows)",
            f"- host: {json.dumps(host, sort_keys=True)}",
        ]
        for entry in report["results"]:
            row = {k: v for k, v in sorted(entry.items())}
            lines.append(f"- `{json.dumps(row, sort_keys=True)}`")
    else:
        lines.append("")
        lines.append("```json")
        lines.append(json.dumps(report, indent=2, sort_keys=True))
        lines.append("```")
    return "\n".join(lines) + "\n"


def _cmd_report(args):
    if args.input.endswith(".json") and "BENCH_" in args.input:
        report = load_bench(args.input)
        schema = "repro-bench-v1"
    else:
        schema, report = load_report(args.input)
    markdown = _summarize(schema, report, args.input)
    _emit(args, markdown, report,
          title=f"insight report — {schema}", status=schema)
    if not (args.md or args.html):
        sys.stdout.write(markdown)
    else:
        print(f"report: {schema} summary written")
    return 0


def _add_output_args(parser):
    parser.add_argument("--md", metavar="PATH", default=None,
                        help="write the markdown summary here")
    parser.add_argument("--html", metavar="PATH", default=None,
                        help="write a self-contained HTML summary "
                             "here (the CI artifact)")
    parser.add_argument("--json", dest="json_out", metavar="PATH",
                        default=None,
                        help="write the full repro-insight-v1 dict "
                             "here")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.insight",
        description="Diff, gate, and summarize repro observability "
                    "artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_diff = sub.add_parser(
        "diff", help="structural diff of two same-schema reports")
    p_diff.add_argument("a", help="baseline report JSON")
    p_diff.add_argument("b", help="candidate report JSON")
    _add_output_args(p_diff)
    p_diff.set_defaults(fn=_cmd_diff)

    p_gate = sub.add_parser(
        "gate", help="noise-aware perf gate of a repro-bench-v1 "
                     "envelope against its committed baseline")
    p_gate.add_argument("candidate", help="candidate BENCH_*.json")
    p_gate.add_argument("--baseline", metavar="PATH", default=None,
                        help="explicit baseline envelope (default: "
                             "same basename under --baseline-dir)")
    p_gate.add_argument("--baseline-dir", metavar="DIR",
                        default=DEFAULT_BASELINE_DIR,
                        help=f"committed baseline store (default "
                             f"{DEFAULT_BASELINE_DIR})")
    p_gate.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance floor (default 0.10)")
    p_gate.add_argument("--spread-k", type=float, default=3.0,
                        help="multiple of the recorded pairwise "
                             "spread added to the gate (default 3)")
    p_gate.add_argument("--absolute", action="store_true",
                        help="also gate machine-dependent rate "
                             "metrics (same-host A/B runs only)")
    _add_output_args(p_gate)
    p_gate.set_defaults(fn=_cmd_gate)

    p_report = sub.add_parser(
        "report", help="human summary of any repro-* artifact")
    p_report.add_argument("input", help="report/envelope JSON")
    _add_output_args(p_report)
    p_report.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except InsightError as exc:
        print(f"insight: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
