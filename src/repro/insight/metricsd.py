"""A stdlib HTTP thread serving live OpenMetrics text.

:class:`MetricsServer` wraps ``http.server.ThreadingHTTPServer`` in a
daemon thread and answers ``GET /metrics`` (and ``/``) with whatever
the ``render`` callable returns at scrape time — typically
:func:`repro.telemetry.promexport.render_collector` bound to the live
fleet :class:`~repro.fleet.live.LiveCollector`, which is how
``run_campaign(metrics_port=...)`` and ``python -m repro.fleet
--metrics-port`` arm it.

Design constraints, in order:

- **Report bytes are sacred.**  The server reads the side-channel
  collector only; arming it cannot perturb the deterministic
  ``repro-fleet-v1`` report (asserted in ``tests/test_insight.py``).
- **Never take the campaign down.**  Render errors answer 500 with
  the exception line; socket errors die inside the daemon thread.
- **Ephemeral-port friendly.**  ``port=0`` binds an OS-assigned port
  (the bound one is in :attr:`MetricsServer.port` after
  :meth:`start`), so tests and parallel campaigns never collide.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..telemetry.promexport import CONTENT_TYPE

__all__ = ["MetricsServer"]


class _Handler(BaseHTTPRequestHandler):
    # The server object carries the render callable (set in start()).
    def do_GET(self):                                  # noqa: N802
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        try:
            text = self.server.render_metrics()
        except Exception as exc:   # render must never kill the server
            self.send_error(500, f"metrics render failed: {exc}")
            return
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass                       # scrapes must not spam the ticker


class MetricsServer:
    """Serve ``render()`` output on ``/metrics`` from a daemon thread.

    Usable as a context manager::

        with MetricsServer(lambda: render_collector(coll), port=0) as s:
            scrape(f"http://127.0.0.1:{s.port}/metrics")
    """

    def __init__(self, render, port=0, host="127.0.0.1"):
        self.render = render
        self.host = host
        self.port = int(port)
        self._httpd = None
        self._thread = None

    def start(self):
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.render_metrics = self.render
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-metricsd",
            daemon=True)
        self._thread.start()
        return self

    def stop(self):
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self):
        return f"http://{self.host}:{self.port}/metrics"

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    def __repr__(self):
        state = "serving" if self._httpd is not None else "stopped"
        return f"<MetricsServer {self.url} {state}>"
