"""Insight plane: consuming the observability artifacts.

Every other subsystem *produces* deterministic artifacts — the
``repro-telemetry-v1`` report (:mod:`repro.telemetry.export`), the
``repro-observe-v1`` forensics bundle (:mod:`repro.observe.forensics`),
the ``repro-fleet-v1`` campaign report (:mod:`repro.fleet.aggregate`),
and the ``repro-bench-v1`` benchmark envelopes under
``benchmarks/results/``.  This package is the layer that *consumes*
them:

- :mod:`~repro.insight.loaders` — schema-validated readers for every
  report family, with one-line diagnostics instead of tracebacks;
- :mod:`~repro.insight.diff` — structural diff of two reports into a
  stable, sorted ``repro-insight-v1`` dict (bit-exact fast path,
  per-section drift otherwise);
- :mod:`~repro.insight.gate` — noise-aware perf-regression gating of
  benchmark envelopes against a committed baseline store, reusing the
  paired order-alternating timing statistics the benches record;
- :mod:`~repro.insight.metricsd` — a stdlib HTTP thread serving
  OpenMetrics text (see :mod:`repro.telemetry.promexport`) for live
  fleet campaigns (``run_campaign(metrics_port=...)``);
- ``python -m repro.insight`` — the ``diff`` / ``gate`` / ``report``
  CLI with markdown/HTML summaries and CI-friendly exit codes.

See TUTORIAL.md chapter 15 and DESIGN.md section 1.13.
"""

from __future__ import annotations

from .diff import SCHEMA as INSIGHT_SCHEMA
from .diff import diff_reports
from .gate import GateResult, gate_bench
from .loaders import (
    InsightError,
    load_bench,
    load_json,
    load_report,
    validate_report,
)
from .metricsd import MetricsServer

__all__ = [
    "INSIGHT_SCHEMA",
    "GateResult",
    "InsightError",
    "MetricsServer",
    "diff_reports",
    "gate_bench",
    "load_bench",
    "load_json",
    "load_report",
    "validate_report",
]
