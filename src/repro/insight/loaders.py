"""Schema-validated readers for every report family the repo emits.

One loading discipline for all of them: a missing file, truncated
JSON, or wrong/unknown schema raises :class:`InsightError` carrying a
single human-readable line — the CLI turns that into a nonzero exit
and a one-line diagnostic, never a traceback.

Report families (dispatch is on the ``schema`` key):

=====================  ===================================================
schema                 producer
=====================  ===================================================
``repro-fleet-v1``     :func:`repro.fleet.aggregate.aggregate`
``repro-telemetry-v1`` :meth:`repro.telemetry.export.TelemetryReport`
``repro-observe-v1``   :func:`repro.observe.forensics.export_bundle`
``repro-bench-v1``     :func:`benchmarks/common.write_json_result`
``repro-insight-v1``   :func:`repro.insight.diff.diff_reports`
=====================  ===================================================

Benchmark files written before the ``repro-bench-v1`` envelope exist
in the wild (no ``schema`` key, but ``bench`` + ``results``);
:func:`load_bench` upgrades them in memory and marks the result with
``"legacy": True`` so consumers can degrade gracefully (legacy files
carry no host fingerprint or paired-timing spread).
"""

from __future__ import annotations

import json

__all__ = [
    "InsightError",
    "KNOWN_SCHEMAS",
    "load_bench",
    "load_json",
    "load_report",
    "validate_report",
]


class InsightError(Exception):
    """A load/validate failure with a one-line, CLI-printable message."""


#: required top-level keys per schema (presence, not deep types — the
#: producers are in this repo and unit-tested; the loader's job is to
#: catch the wrong file handed to the wrong tool).
KNOWN_SCHEMAS = {
    "repro-fleet-v1": (
        "campaign", "seed", "ntasks", "status", "counts", "failures",
        "tasks", "coverage", "telemetry",
    ),
    "repro-telemetry-v1": (
        "design", "ncycles", "counters", "histograms", "leaf_totals",
    ),
    "repro-observe-v1": ("design", "reason", "cycle", "windows"),
    "repro-bench-v1": ("bench", "results", "host"),
    "repro-insight-v1": ("kind", "identical", "sections"),
}


def load_json(path):
    """Read one JSON file; :class:`InsightError` on any failure."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise InsightError(f"{path}: no such file") from None
    except IsADirectoryError:
        raise InsightError(f"{path}: is a directory") from None
    except OSError as exc:
        raise InsightError(f"{path}: {exc.strerror or exc}") from None
    except json.JSONDecodeError as exc:
        raise InsightError(
            f"{path}: not valid JSON (truncated?): {exc.msg} at "
            f"line {exc.lineno}") from None
    except UnicodeDecodeError:
        raise InsightError(f"{path}: not a text file") from None


def validate_report(report, path="<report>", expect=None):
    """Check ``report`` is a dict with a known schema and the keys
    that schema promises.  Returns the schema id.

    ``expect`` (a schema id or tuple of them) additionally pins which
    family is acceptable — the diff tool uses it to refuse comparing a
    telemetry report against a fleet report.
    """
    if not isinstance(report, dict):
        raise InsightError(
            f"{path}: expected a JSON object, got "
            f"{type(report).__name__}")
    schema = report.get("schema")
    if schema not in KNOWN_SCHEMAS:
        known = ", ".join(sorted(KNOWN_SCHEMAS))
        raise InsightError(
            f"{path}: unknown schema {schema!r} (known: {known})")
    if expect is not None:
        allowed = (expect,) if isinstance(expect, str) else tuple(expect)
        if schema not in allowed:
            raise InsightError(
                f"{path}: schema {schema!r}, expected "
                f"{' or '.join(allowed)}")
    missing = [k for k in KNOWN_SCHEMAS[schema] if k not in report]
    if missing:
        raise InsightError(
            f"{path}: {schema} report is missing key(s): "
            f"{', '.join(missing)}")
    return schema


def load_report(path, expect=None):
    """Load + validate one report file; returns ``(schema, dict)``."""
    report = load_json(path)
    return validate_report(report, path=path, expect=expect), report


def load_bench(path):
    """Load a benchmark envelope, accepting the legacy pre-envelope
    shape (``bench`` + ``results``, no ``schema``/``host``).

    Always returns a dict in ``repro-bench-v1`` shape; legacy inputs
    get ``"legacy": True`` and an empty host fingerprint.
    """
    data = load_json(path)
    if not isinstance(data, dict):
        raise InsightError(
            f"{path}: expected a JSON object, got "
            f"{type(data).__name__}")
    if "schema" not in data:
        if "bench" in data and "results" in data:
            data = dict(data)
            data["schema"] = "repro-bench-v1"
            data.setdefault("host", {})
            data["legacy"] = True
        else:
            raise InsightError(
                f"{path}: neither a repro-bench-v1 envelope nor a "
                f"legacy BENCH_*.json (need 'bench' + 'results')")
    validate_report(data, path=path, expect="repro-bench-v1")
    if not isinstance(data["results"], list):
        raise InsightError(f"{path}: 'results' must be a list")
    return data
