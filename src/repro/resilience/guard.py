"""Self-healing simulation loop: watchdog + degradation helpers.

Three tools for keeping long simulations alive and debuggable:

- :class:`Watchdog` wraps ``sim.run()`` with wall-clock and cycle
  budgets, checked between bounded chunks, and produces a structured
  diagnostics report (JSON-serializable) when a run is killed — CI
  uploads these as artifacts instead of leaving a silent hang.
- :func:`diagnose_oscillation` names the signals that keep toggling
  when a combinational settle phase blows its event budget, turning
  "likely a combinational loop" into "likely a combinational loop;
  oscillating signals: top.a, top.b".
- :func:`specialize_or_fallback` attempts SimJIT specialization and,
  on any compile/link/translation failure, returns the original
  interpreted model with one structured :class:`ResilienceWarning`
  instead of aborting the run.
"""

from __future__ import annotations

import json
import os
import signal as signal_mod
import threading
from contextlib import contextmanager
from time import perf_counter

from .warnings import warn_resilience
from ..core.simulation import SimulationError
from ..telemetry import tracing

__all__ = [
    "Watchdog",
    "WatchdogTimeout",
    "diagnose_oscillation",
    "specialize_or_fallback",
    "wall_budget_alarm",
]


def diagnose_oscillation(sim, max_events=200):
    """Identify oscillating signals in a non-converging settle phase.

    Runs up to ``max_events`` further block evaluations, snapshotting
    every net value around each one, and tallies per-net toggle counts
    and per-block fire counts.  Returns a one-line human diagnostic
    naming the hottest signals (empty string if nothing toggles or the
    probe itself fails — diagnostics must never mask the real error).
    """
    try:
        return _diagnose_oscillation(sim, max_events)
    except Exception:
        return ""


def _diagnose_oscillation(sim, max_events):
    nets = sim.model._all_nets
    toggles = {}                      # net id -> toggle count
    fires = {}                        # func name -> fire count
    before = [net._value for net in nets]

    def account():
        changed = False
        for i, net in enumerate(nets):
            if net._value != before[i]:
                toggles[i] = toggles.get(i, 0) + 1
                before[i] = net._value
                changed = True
        return changed

    events = 0
    queue = sim._queue
    while events < max_events:
        if sim._sdirty:
            events += max(1, sim._run_static_pass())
            account()
            continue
        if not queue:
            break
        func = queue.popleft()
        func._in_queue = False
        func()
        events += 1
        name = getattr(func, "__name__", repr(func))
        fires[name] = fires.get(name, 0) + 1
        account()

    if not toggles:
        return ""
    # Map toggling nets back to user-visible signal names.
    names_by_net = {}
    for sig in sim.model._all_signals:
        net = sig._net.find()
        nm = sig.name or ""
        if nm and (net.id not in names_by_net
                   or len(nm) < len(names_by_net[net.id])):
            names_by_net[net.id] = nm
    ranked = sorted(toggles.items(), key=lambda kv: -kv[1])
    parts = []
    for net_id, count in ranked[:6]:
        nm = names_by_net.get(nets[net_id].id, f"<net {net_id}>")
        parts.append(f"{nm} ({count} toggles)")
    msg = "oscillating signals: " + ", ".join(parts)
    if fires:
        hot = sorted(fires.items(), key=lambda kv: -kv[1])[:3]
        msg += "; hottest blocks: " + ", ".join(
            f"{nm} x{ct}" for nm, ct in hot)
    return msg


class WatchdogTimeout(SimulationError):
    """A watchdog budget (wall clock or cycles) was exceeded.

    Carries ``diagnostics``, the same dict :meth:`Watchdog.diagnostics`
    returns, so the killer and the report agree."""

    def __init__(self, message, diagnostics=None):
        super().__init__(message)
        self.diagnostics = diagnostics or {}


class Watchdog:
    """Budgeted driver for a :class:`SimulationTool`.

    Runs the simulation in chunks of ``check_every`` cycles and checks
    the wall-clock and cycle budgets between chunks, so a hung design
    (livelocked protocol, runaway retry storm) is killed with a
    diagnosis instead of hanging CI until the outer job timeout::

        wd = Watchdog(sim, max_wall_seconds=30.0)
        try:
            wd.run(100_000)
        except WatchdogTimeout as exc:
            wd.write_report("watchdog.json")
            raise

    Combinational non-convergence inside a chunk already raises
    :class:`~repro.core.simulation.SimulationError` with the
    oscillation diagnostic appended; the watchdog re-raises it after
    recording diagnostics.
    """

    def __init__(self, sim, max_wall_seconds=None, max_cycles=None,
                 check_every=64, bundle_dir=None):
        self.sim = sim
        self.max_wall_seconds = max_wall_seconds
        self.max_cycles = max_cycles
        self.check_every = max(1, int(check_every))
        # Trip forensics: with flight recorders armed on the sim, a
        # budget trip exports their windows as a repro-observe-v1
        # bundle here (or to $REPRO_OBSERVE_DIR / recorder autodump
        # dirs); the path lands in diagnostics()["observe_bundle"].
        self.bundle_dir = bundle_dir
        self._start = None
        self._last_error = ""
        self._bundle_path = None

    def run(self, ncycles):
        """Run up to ``ncycles`` cycles under the configured budgets."""
        sim = self.sim
        self._start = perf_counter()
        start_cycle = sim.ncycles
        done = 0
        while done < ncycles:
            chunk = min(self.check_every, ncycles - done)
            try:
                sim.run(chunk)
            except Exception as exc:
                self._last_error = f"{type(exc).__name__}: {exc}"
                raise
            done += chunk
            if (self.max_wall_seconds is not None
                    and perf_counter() - self._start
                        > self.max_wall_seconds):
                tracing.instant("watchdog.fire", kind="wall-clock",
                                cycle=sim.ncycles)
                self._export_trip_bundle("wall-clock")
                diag = self.diagnostics()
                raise WatchdogTimeout(
                    f"watchdog: wall clock exceeded "
                    f"{self.max_wall_seconds}s after "
                    f"{sim.ncycles - start_cycle} cycles", diag)
            if (self.max_cycles is not None
                    and sim.ncycles - start_cycle >= self.max_cycles):
                tracing.instant("watchdog.fire", kind="cycle-budget",
                                cycle=sim.ncycles)
                self._export_trip_bundle("cycle-budget")
                diag = self.diagnostics()
                raise WatchdogTimeout(
                    f"watchdog: cycle budget {self.max_cycles} "
                    f"exceeded", diag)
        return done

    def _export_trip_bundle(self, kind):
        """Dump the armed flight recorders when a budget trips.

        Opt-in (bundle_dir / recorder autodump / $REPRO_OBSERVE_DIR)
        and exception-guarded: forensics never masks the timeout."""
        sim = self.sim
        out_dir = self.bundle_dir
        if out_dir is None:
            for rec in getattr(sim, "_recorders", ()):
                if rec.autodump:
                    out_dir = rec.autodump
                    break
        if out_dir is None and not os.environ.get("REPRO_OBSERVE_DIR"):
            return
        try:
            from ..observe.forensics import export_bundle
            self._bundle_path = export_bundle(
                sim, out_dir, reason=f"watchdog:{kind}",
                extra={"watchdog": {
                    "kind": kind,
                    "max_wall_seconds": self.max_wall_seconds,
                    "max_cycles": self.max_cycles}})
        except Exception:
            self._bundle_path = None

    def diagnostics(self):
        """Structured post-mortem: where the design was when killed."""
        sim = self.sim
        elapsed = (perf_counter() - self._start
                   if self._start is not None else 0.0)
        try:
            trace = sim.model.line_trace()
        except Exception as exc:
            trace = f"<line_trace unavailable: {exc}>"
        diag = {
            "cycle": sim.ncycles,
            "num_events": sim.num_events,
            "elapsed_seconds": round(elapsed, 6),
            "line_trace": trace,
            "sched": sim.sched_info(),
            "last_error": self._last_error,
        }
        if sim.trace_log:
            diag["recent_traces"] = [
                {"cycle": c, "trace": t} for c, t in sim.trace_log]
        if self._bundle_path is not None:
            diag["observe_bundle"] = self._bundle_path
        return diag

    def write_report(self, path):
        """Write :meth:`diagnostics` as JSON (for CI artifact upload)."""
        diag = self.diagnostics()
        d = os.path.dirname(path)
        if d:
            os.makedirs(d, exist_ok=True)
        with open(path, "w") as f:
            json.dump(diag, f, indent=2, default=str)
        return diag


@contextmanager
def wall_budget_alarm(seconds, label=None):
    """Arm a ``SIGALRM`` that raises :class:`WatchdogTimeout` after
    ``seconds`` of wall clock, for the duration of the ``with`` block.

    This is the in-process watchdog for code that does not drive a
    single :class:`~repro.core.simulation.SimulationTool` loop (so a
    chunked :class:`Watchdog` cannot wrap it) — most importantly fleet
    task execution, where a pure-Python hang inside a worker becomes a
    structured ``"timeout"`` result instead of a stuck process.  The
    raised timeout carries ``diagnostics["kind"] == "wall-budget"``,
    which the fleet retry policy reads as *transient* (wall clock is
    machine noise, so the attempt is worth retrying; a cycle-budget
    timeout is deterministic and is not).

    Degrades to a no-op (plain passthrough) when ``seconds`` is
    falsy, off the main thread, on platforms without ``SIGALRM``, or
    when another ``SIGALRM`` handler is already doing real work —
    arming would steal it.  A signal can only interrupt running
    *Python*; a hang inside a C kernel is the supervisor's process-
    level deadline's job.
    """
    if (not seconds
            or not hasattr(signal_mod, "SIGALRM")
            or threading.current_thread()
                is not threading.main_thread()):
        yield
        return
    current = signal_mod.getsignal(signal_mod.SIGALRM)
    if current not in (signal_mod.SIG_DFL, signal_mod.SIG_IGN, None):
        yield
        return

    def _fire(signum, frame):
        raise WatchdogTimeout(
            f"watchdog: task wall budget {seconds}s exceeded"
            + (f" ({label})" if label else ""),
            {"kind": "wall-budget", "wall_budget": seconds})

    signal_mod.signal(signal_mod.SIGALRM, _fire)
    signal_mod.setitimer(signal_mod.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal_mod.setitimer(signal_mod.ITIMER_REAL, 0.0)
        signal_mod.signal(signal_mod.SIGALRM, current)


def specialize_or_fallback(model, specializer=None, **kwargs):
    """SimJIT-specialize ``model``, degrading to the interpreter.

    Returns ``specializer(model).specialize(...)`` on success.  On any
    specialization failure (translation refusal, gcc compile/link
    error, missing cffi) it emits one structured ``simjit-fallback``
    :class:`ResilienceWarning` and returns the elaborated original
    model, which simulates identically — just slower.
    """
    if specializer is None:
        from ..core.simjit import SimJITRTL as specializer  # noqa: N813
    try:
        return specializer(model, **kwargs).specialize()
    except Exception as exc:
        warn_resilience(
            f"SimJIT specialization of {type(model).__name__} failed; "
            f"continuing on the interpreted simulator "
            f"({type(exc).__name__}: {exc})",
            kind="simjit-fallback",
            component=type(model).__name__,
            fallback="interpreted",
            detail=str(exc),
            stacklevel=3)
        if not model.is_elaborated():
            model.elaborate()
        return model
