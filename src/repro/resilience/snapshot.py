"""Checkpoint/restore and deterministic replay for SimulationTool.

A checkpoint captures *everything* a cycle-accurate replay needs:

- every net's ``.value`` and pending ``.next`` (plus which nets have a
  flop pending, normally none between cycles);
- Python-side model state: plain attributes, adapter queues, and any
  ``random.Random`` attribute, walked over ``model._all_models``;
- python-kind telemetry counters and histogram bins (signal/state
  backed counters ride along with the net/state capture);
- RNG streams registered via ``sim.track_rng(rng)``;
- the compiled instance blob of every SimJIT-specialized submodel
  (one flat ``memcpy`` of the C ``inst_t``);
- scheduler flag arrays and the cycle/event counters.

The contract — asserted across substrates by ``tests/test_checkpoint``
— is **round-trip equals uninterrupted run**: for a deterministic test
bench, ``run(N); cp = save; run(M)`` leaves the simulation in exactly
the state of ``run(N); cp = save; ...; restore(cp); run(M)``.

Checkpoints are in-memory objects tied to the simulator instance that
produced them (they hold no code, only state); persisting across
processes is out of scope.  Designs using blocking FL adapters
(``ListMemPortAdapter`` worker threads) are not checkpointable — a
paused Python thread cannot be snapshotted — and ``save_checkpoint``
refuses them with :class:`CheckpointError`.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import random
from collections import deque

from ..core.adapters import (
    BlockingTickRunner,
    ChildReqRespQueueAdapter,
    ParentReqRespQueueAdapter,
    Queue,
)
from ..core.bits import Bits
from ..core.bitstruct import BitStruct
from ..core.model import Model
from ..core.portbundle import PortBundle
from ..core.signals import Signal, _SignalSlice

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointRing",
    "save_checkpoint",
    "restore_checkpoint",
]


class CheckpointError(Exception):
    """A simulation state that cannot be checkpointed or restored."""


def _is_plain(value, depth=0):
    """True for values we can deepcopy into a checkpoint and compare
    for the fingerprint: scalars, Bits/BitStructs, and containers of
    those.  Signals, models, bundles, callables, and classes are
    structural (rebuilt from code, not state) and are skipped."""
    if value is None or isinstance(
            value, (bool, int, float, str, bytes, bytearray)):
        return True
    if isinstance(value, (Bits, BitStruct)):
        return True
    if depth >= 4:
        return False
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return all(
            _is_plain(v, depth + 1) for v in vars(value).values())
    if isinstance(value, (list, tuple, deque, set, frozenset)):
        return all(_is_plain(v, depth + 1) for v in value)
    if isinstance(value, dict):
        return all(
            _is_plain(k, depth + 1) and _is_plain(v, depth + 1)
            for k, v in value.items())
    return False


def _canon(value):
    """Canonical hashable form of a captured value (fingerprinting)."""
    if isinstance(value, Bits):
        return ("Bits", value.nbits, int(value))
    if isinstance(value, BitStruct):
        return ("BitStruct", type(value).__name__, int(value.to_bits()))
    if isinstance(value, bytearray):
        return ("bytearray", bytes(value))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (k, _canon(v)) for k, v in sorted(vars(value).items()))
    if isinstance(value, (list, tuple, deque)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_canon(v) for v in value))
    if isinstance(value, dict):
        return tuple(sorted(
            (_canon(k), _canon(v)) for k, v in value.items()))
    return value


def _is_python_counter(ctr):
    return (ctr._sig is None and ctr._state is None
            and ctr._jit_read is None)


class Checkpoint:
    """Opaque snapshot of one :class:`SimulationTool`'s state."""

    def __init__(self, ncycles, num_events, nets, pending_ids,
                 sflags, tflags, sdirty, py_state, counters,
                 histograms, rng_states, engine_blobs):
        self.ncycles = ncycles
        self.num_events = num_events
        self.nets = nets                  # [(value, next), ...]
        self.pending_ids = pending_ids    # net ids with a flop pending
        self.sflags = sflags
        self.tflags = tflags
        self.sdirty = sdirty
        self.py_state = py_state          # model idx -> {attr: entry}
        self.counters = counters          # key -> python counter value
        self.histograms = histograms      # key -> bins dict copy
        self.rng_states = rng_states
        self.engine_blobs = engine_blobs  # model idx -> bytes

    def fingerprint(self):
        """Stable digest of the *simulation-visible* state.

        Two checkpoints of the same design fingerprint equal iff nets,
        Python state, telemetry, compiled state, and the cycle count
        all match.  ``num_events`` (a settle-effort statistic, not
        state) and scheduler flag arrays (substrate bookkeeping) are
        excluded, so the digest is comparable across save points that
        arrived at the same state by different evaluation orders.
        """
        material = (
            self.ncycles,
            tuple(self.nets),
            tuple(sorted(self.pending_ids)),
            tuple(sorted(
                (idx, attr, kind, _canon(val))
                for idx, attrs in self.py_state.items()
                for attr, (kind, val) in attrs.items())),
            tuple(sorted(self.counters.items())),
            tuple(sorted(
                (k, _canon(v)) for k, v in self.histograms.items())),
            tuple(sorted(self.engine_blobs.items())),
        )
        return hashlib.sha256(repr(material).encode()).hexdigest()


def _capture_attr(value):
    """Checkpoint entry for one python model attribute, or None when
    the attribute is structural (skipped)."""
    if isinstance(value, (Signal, _SignalSlice, PortBundle, Model)):
        return None
    if isinstance(value, random.Random):
        return ("rng", value.getstate())
    if isinstance(value, Queue):
        return ("queue", copy.deepcopy(list(value._items)))
    if isinstance(value, (ChildReqRespQueueAdapter,
                          ParentReqRespQueueAdapter)):
        return ("adapter", (
            copy.deepcopy(list(value.req_q._items)),
            copy.deepcopy(list(value.resp_q._items)),
            value._skip))
    if isinstance(value, type) or callable(value):
        return None
    if _is_plain(value):
        return ("plain", copy.deepcopy(value))
    return None


def _restore_attr(model, attr, entry):
    kind, saved = entry
    if kind == "rng":
        getattr(model, attr).setstate(saved)
    elif kind == "queue":
        q = getattr(model, attr)
        q._items.clear()
        q._items.extend(copy.deepcopy(saved))
    elif kind == "adapter":
        a = getattr(model, attr)
        req, resp, skip = saved
        a.req_q._items.clear()
        a.req_q._items.extend(copy.deepcopy(req))
        a.resp_q._items.clear()
        a.resp_q._items.extend(copy.deepcopy(resp))
        a._skip = skip
    else:
        # Restore mutable sequences *in place* — tick closures, state-
        # backed counters, and adapters may hold a direct reference to
        # the container, which a rebinding setattr would orphan.
        current = getattr(model, attr, None)
        if (isinstance(current, (list, bytearray))
                and type(current) is type(saved)):
            current[:] = copy.deepcopy(saved)
        else:
            # setattr is safe here because the attribute already
            # exists with the same (plain) type.
            setattr(model, attr, copy.deepcopy(saved))


def save_checkpoint(sim):
    """Snapshot ``sim``; returns a :class:`Checkpoint`.

    The simulator must be at a cycle boundary (or a cycle-hook point):
    combinational logic is settled first (idempotent), and designs
    driven by blocking FL adapter threads are rejected."""
    for tick in sim._ticks:
        if isinstance(tick, BlockingTickRunner):
            raise CheckpointError(
                "cannot checkpoint a design with blocking FL adapters "
                "(ListMemPortAdapter runs on worker threads; thread "
                "stacks cannot be snapshotted) — use the queue "
                "adapters or a CL/RTL model instead")
    # Settle so the capture sees a quiescent combinational state; this
    # is what run()/cycle() leave behind anyway.
    sim.eval_combinational()

    model = sim.model
    # A net's ``_next`` is live only while a flop is pending on it;
    # otherwise it is residue of whenever the net last flopped (and
    # substrates leave different residue, e.g. a JIT shadow
    # invalidation rewrites every output's ``.next``).  Canonicalize
    # dead slots to None so equal states fingerprint equal.
    pending = sim._pending_flops
    nets = [(net._value, net._next if net in pending else None)
            for net in model._all_nets]
    pending_ids = tuple(net.id for net in pending)

    py_state = {}
    engine_blobs = {}
    for idx, sub in enumerate(model._all_models):
        attrs = {}
        for name, value in sub.__dict__.items():
            if name.startswith("_"):
                continue
            entry = _capture_attr(value)
            if entry is not None:
                attrs[name] = entry
        if attrs:
            py_state[idx] = attrs
        engine = getattr(sub, "jit_engine", None)
        if engine is not None:
            engine_blobs[idx] = engine.snapshot_raw()

    counters = {
        key: ctr._value
        for key, ctr in getattr(model, "_all_counters", {}).items()
        if _is_python_counter(ctr)
    }
    histograms = {
        key: dict(hist.bins)
        for key, hist in getattr(model, "_all_histograms", {}).items()
    }
    rng_states = [rng.getstate() for rng in sim._checkpoint_rngs]

    return Checkpoint(
        ncycles=sim.ncycles,
        num_events=sim.num_events,
        nets=nets,
        pending_ids=pending_ids,
        sflags=bytes(sim._sflags),
        tflags=bytes(sim._tflags),
        sdirty=sim._sdirty,
        py_state=py_state,
        counters=counters,
        histograms=histograms,
        rng_states=rng_states,
        engine_blobs=engine_blobs,
    )


def restore_checkpoint(sim, cp):
    """Rewind ``sim`` to ``cp``, in place.

    Every mutation happens *inside* the existing objects (net fields,
    flag bytearrays, counter cells, queue deques, compiled instance
    memory) because the compiled mega-cycle kernel and the sensitivity
    wiring close over those exact objects."""
    model = sim.model
    all_nets = model._all_nets
    if len(cp.nets) != len(all_nets):
        raise CheckpointError(
            f"checkpoint has {len(cp.nets)} nets but the design has "
            f"{len(all_nets)}: not a checkpoint of this simulator")

    # Quiesce the event queue: everything re-settles from restored
    # values, and stale queued blocks would fire against them.
    sim._queue.clear()
    for func in sim._all_comb_funcs:
        func._in_queue = False

    for net, (value, nxt) in zip(all_nets, cp.nets):
        net._value = value
        if nxt is not None:
            net._next = nxt
    sim._pending_flops.clear()
    for net_id in cp.pending_ids:
        sim._pending_flops[all_nets[net_id]] = True

    for idx, attrs in cp.py_state.items():
        sub = model._all_models[idx]
        for attr, entry in attrs.items():
            _restore_attr(sub, attr, entry)
    for idx, blob in cp.engine_blobs.items():
        model._all_models[idx].jit_engine.restore_raw(blob)

    all_counters = getattr(model, "_all_counters", {})
    for key, value in cp.counters.items():
        all_counters[key]._value = value
    all_histograms = getattr(model, "_all_histograms", {})
    for key, bins in cp.histograms.items():
        hist = all_histograms[key]
        hist.bins.clear()
        hist.bins.update(bins)

    if len(cp.rng_states) != len(sim._checkpoint_rngs):
        raise CheckpointError(
            f"checkpoint tracks {len(cp.rng_states)} RNG stream(s) "
            f"but the simulator tracks {len(sim._checkpoint_rngs)}")
    for rng, state in zip(sim._checkpoint_rngs, cp.rng_states):
        rng.setstate(state)

    # Flag arrays in place — the compiled kernel closed over them.
    sim._sflags[:] = cp.sflags
    sim._tflags[:] = cp.tflags
    sim._sdirty = cp.sdirty

    sim.ncycles = cp.ncycles
    sim.num_events = cp.num_events


class CheckpointRing:
    """Periodic checkpoints for replay-from-the-middle.

    Registers a cycle hook that snapshots the simulation every
    ``interval`` cycles, keeping the last ``keep`` checkpoints.  The
    hook is *prepended* to the hook list so the snapshot captures the
    state before any same-cycle fault injector or stimulus hook runs —
    replaying from the checkpoint then re-applies those hooks exactly
    as the original timeline did.

    Used by the verif flow to replay a shrunk failure from the nearest
    checkpoint instead of from cycle 0::

        ring = CheckpointRing(sim, interval=512)
        ...
        cp = ring.nearest(failing_cycle)
        sim.restore_checkpoint(cp)
        sim.run(failing_cycle - cp.ncycles)   # short replay

    Note: registering any cycle hook moves the simulator off the
    compiled mega-cycle fast path; that is the cost of observation.
    """

    def __init__(self, sim, interval=1024, keep=8):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.sim = sim
        self.interval = int(interval)
        self.checkpoints = deque(maxlen=keep)
        # Registered through the hook API (prepended) so the kernel is
        # regenerated with the hook compiled in and any armed SimJIT
        # instrumentation converts back to the hook path first.
        sim.add_cycle_hook(self._hook, prepend=True)

    def _hook(self, cycle):
        if cycle % self.interval == 0:
            self.checkpoints.append(save_checkpoint(self.sim))

    def nearest(self, cycle):
        """Latest kept checkpoint at or before ``cycle`` (None if the
        ring holds nothing that early)."""
        best = None
        for cp in self.checkpoints:
            if cp.ncycles <= cycle and (
                    best is None or cp.ncycles > best.ncycles):
                best = cp
        return best
