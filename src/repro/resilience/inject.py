"""Fault injectors: SEU bit-flips, stuck-at faults, lossy links.

Injectors are installed *post-elaboration* on a running
:class:`~repro.core.simulation.SimulationTool` and address their
targets by dotted path from the top model, e.g.::

    seu = SEUInjector("routers[3].credit", p=0.01, seed=7).install(sim)
    sticky = StuckAtFault("mesh.links[0].val", bit=0, value=0,
                          from_cycle=100, until=200).install(sim)

Design rules that make injected faults *reproducible and portable*
across every execution substrate (event, static, mega-cycle kernel,
SimJIT):

- Every fire/no-fire decision is a **pure function of the cycle
  index** (the crc32-mix idiom of
  :func:`repro.verif.strategies.backpressure_pattern`), never of
  stateful RNG draws, so two simulators of the same design see the
  same fault on the same cycle regardless of how their internals
  interleave.
- Injectors run as cycle hooks — after the pre-edge settle, before
  tick blocks — so sequential logic reads the faulted value exactly
  once, and the registered simulator falls back from the compiled
  kernel to the interpreted cycle path automatically (hooks force
  that), keeping semantics identical.
- Under SimJIT the dotted path is resolved *through* the
  :class:`JITModel` wrapper into the original model, and reads/writes
  go through the engine's ``raw_get``/``raw_set`` (nets) and
  ``state_probe``/``raw_set_state`` (CL state) APIs instead of Python
  nets.
- Faults are substrate-portable only on **sequential** state
  (registers written via ``.next``, CL state attributes).  A flip on a
  combinationally-driven wire is re-derived from its inputs at the
  next settle, and *when* that settle happens differs between the
  interpreted cycle (ticks read the flip; no re-settle until after the
  edge) and the compiled cycle (``cycle()`` begins with ``eval_comb``,
  erasing the flip).  Target flops, not wires.
"""

from __future__ import annotations

import re
import zlib

from ..core.signals import Signal

__all__ = [
    "SEUInjector",
    "StuckAtFault",
    "LinkFaultInjector",
    "fault_schedule",
    "resolve_path",
]


def _derive_seed(seed, label):
    """Stable integer seed from an int or a ``verif.strategies.RNG``.

    Accepting an RNG keeps injector seeding on the same fork tree as
    the stimulus generators: ``seed=rng`` derives an independent
    substream per (rng, label) without consuming any draws."""
    if hasattr(seed, "fork"):                 # verif.strategies.RNG
        return seed.fork(f"inject:{label}")._seed & 0xFFFFFFFF
    return int(seed) & 0xFFFFFFFF


def fault_schedule(p, seed=0, burst=1):
    """Return ``f(cycle) -> bool`` firing with probability ``p``.

    Pure function of the cycle index (crc32 mix — the
    ``backpressure_pattern`` idiom), so the same seed produces the
    same schedule on every substrate.  ``burst > 1`` makes decisions
    per ``burst``-cycle window (consecutive fault cycles), modeling
    stall bursts and multi-cycle glitches."""
    p = float(p)
    burst = max(1, int(burst))
    seed = int(seed) & 0xFFFFFFFF

    def fire(cycle):
        window = cycle // burst
        mix = zlib.crc32(f"{seed}:{window}".encode()) & 0xFFFFFFFF
        return (mix / 0xFFFFFFFF) < p

    return fire


def _cycle_mix(seed, cycle, salt):
    """Deterministic 32-bit mix for per-cycle value choices (which bit
    to flip, which mask to apply)."""
    return zlib.crc32(f"{seed}:{salt}:{cycle}".encode()) & 0xFFFFFFFF


_TOKEN = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)((?:\[\d+\])*)$")


def resolve_path(model, path):
    """Resolve a dotted path from ``model`` to an injection target.

    Returns ``(owner, attr, target, engine, indices)``:

    - ``owner`` — the model instance holding the final attribute;
    - ``attr`` — the final attribute name (state faults need it);
    - ``target`` — the resolved object (a Signal, an int, or a list);
    - ``engine`` — the innermost ``SimJITEngine`` crossed on the way
      (None on the interpreted path);
    - ``indices`` — the subscripts applied to the *final* token
      (``"priority[1]"`` -> ``(1,)``), so list-element state can be
      written back in place.

    Whenever an object along the path is a specialized ``JITModel``
    the walk drops through ``jit_engine.model`` into the original
    design, so the same path string works before and after
    specialization.
    """
    obj = model
    engine = getattr(obj, "jit_engine", None)
    if engine is not None:
        obj = engine.model
    owner, attr = obj, None
    indices = ()
    for token in path.split("."):
        m = _TOKEN.match(token.strip())
        if m is None:
            raise ValueError(f"bad path token {token!r} in {path!r}")
        name, subs = m.group(1), m.group(2)
        owner, attr = obj, name
        try:
            obj = getattr(obj, name)
        except AttributeError:
            raise AttributeError(
                f"cannot resolve {path!r}: "
                f"{type(owner).__name__} has no attribute {name!r}")
        indices = tuple(
            int(idx) for idx in re.findall(r"\[(\d+)\]", subs))
        for idx in indices:
            obj = obj[idx]
        sub_engine = getattr(obj, "jit_engine", None)
        if sub_engine is not None:
            engine = sub_engine
            obj = sub_engine.model
    return owner, attr, obj, engine, indices


class _Injector:
    """Shared install/bookkeeping for all injectors."""

    def __init__(self):
        self.sim = None
        self.n_fires = 0
        self.log = []                 # [(cycle, description)]
        self.log_limit = 64

    def install(self, sim):
        """Bind to ``sim`` and start firing (registers a cycle hook)."""
        self.sim = sim
        self._bind(sim)
        sim.add_cycle_hook(self._on_cycle)
        return self

    def _record(self, cycle, desc):
        self.n_fires += 1
        if len(self.log) < self.log_limit:
            self.log.append((cycle, desc))

    # subclasses implement:
    def _bind(self, sim):
        raise NotImplementedError

    def _on_cycle(self, cycle):
        raise NotImplementedError


class _SignalTarget:
    """Read/write access to one resolved target, uniform across the
    interpreted and SimJIT domains."""

    def __init__(self, sim, path, nbits_hint=None):
        owner, attr, target, engine, indices = resolve_path(
            sim.model, path)
        self.path = path
        self.owner = owner
        self.attr = attr
        self.indices = indices
        self.engine = None
        self.state_idx = None
        self.sig = None
        if isinstance(target, Signal):
            self.sig = target
            self.nbits = target.nbits
            net = target._net.find()
            if engine is not None and net.sim is not sim:
                # Internal net of a specialized model: Python-side
                # writes would never reach the compiled instance.
                self.engine = engine
                self.slot = engine.slot_of(target)
        elif isinstance(target, int) and engine is None:
            self.nbits = nbits_hint or 64
        elif isinstance(target, int):
            if len(indices) > 1:
                raise ValueError(
                    f"{path!r}: compiled state supports at most one "
                    f"trailing index")
            self.engine = engine
            self.state_idx = engine.state_slot(owner, attr)
            if self.state_idx is None:
                raise ValueError(
                    f"{path!r}: state attribute {attr!r} was not "
                    f"lowered to compiled state")
            self.elem = indices[0] if indices else 0
            self.nbits = nbits_hint or 64
        else:
            raise TypeError(
                f"{path!r} resolved to {type(target).__name__}; "
                f"injectable targets are signals and int state "
                f"attributes (index into lists in the path: 'mem[3]')")

    def _container(self):
        """Walk to the object whose element/attribute holds the value."""
        obj = getattr(self.owner, self.attr)
        for idx in self.indices[:-1]:
            obj = obj[idx]
        return obj

    def read(self):
        if self.engine is not None:
            if self.state_idx is not None:
                return int(self.engine.lib.get_state_at(
                    self.engine.inst, self.state_idx, self.elem))
            return self.engine.raw_get(self.slot)
        if self.sig is not None:
            return int(self.sig.value)
        if self.indices:
            return int(self._container()[self.indices[-1]])
        return int(getattr(self.owner, self.attr))

    def write(self, sim, value):
        if self.engine is not None:
            if self.state_idx is not None:
                self.engine.raw_set_state(
                    self.state_idx, self.elem, value)
            else:
                self.engine.raw_set(self.slot, value)
            # The compiled cycle() re-evaluates comb logic before the
            # tick functions run, so the fault propagates in C.
            return
        if self.sig is not None:
            self.sig.value = value
            # Tick gating skips a sequential block when none of its
            # *read* nets changed, assuming the register then holds
            # what that block last wrote — an external fault write
            # breaks that assumption (the forced value would survive
            # the flop only on substrates that gate).  Force every
            # tick to run this cycle, which is exactly the ungated
            # event-mode semantics.
            if sim._tflags:
                sim._tflags[:] = b"\x01" * len(sim._tflags)
            # Settle so downstream combinational logic sees the fault
            # before this cycle's tick blocks read it — matching the
            # compiled path, whose cycle() starts with eval_comb.
            sim.eval_combinational()
            return
        if self.indices:
            self._container()[self.indices[-1]] = value
        else:
            setattr(self.owner, self.attr, value)


class SEUInjector(_Injector):
    """Single-event-upset bit flips into named state.

    ``path`` addresses a signal (``"dut.router.credit"``) or an int
    state attribute of a CL/FL model.  Fires either with per-cycle
    probability ``p`` or exactly on the cycles in ``cycles``.  ``bit``
    pins the flipped bit; by default a deterministic per-cycle choice
    flips a different bit each fire.  ``seed`` may be an int or a
    ``verif.strategies.RNG`` (forked, not consumed).
    """

    def __init__(self, path, p=None, cycles=None, bit=None, seed=0,
                 nbits=None):
        super().__init__()
        if (p is None) == (cycles is None):
            raise ValueError("pass exactly one of p= or cycles=")
        self.path = path
        self.bit = bit
        self.nbits_hint = nbits
        self.seed = _derive_seed(seed, f"seu:{path}")
        if cycles is not None:
            fire_set = frozenset(int(c) for c in cycles)
            self._fire = fire_set.__contains__
        else:
            self._fire = fault_schedule(p, self.seed)
        self._target = None

    def _bind(self, sim):
        self._target = _SignalTarget(sim, self.path, self.nbits_hint)

    def _on_cycle(self, cycle):
        if not self._fire(cycle):
            return
        tgt = self._target
        bit = self.bit
        if bit is None:
            bit = _cycle_mix(self.seed, cycle, "bit") % tgt.nbits
        old = tgt.read()
        tgt.write(self.sim, old ^ (1 << bit))
        self._record(cycle, f"flip bit {bit} of {self.path}")


class StuckAtFault(_Injector):
    """Hold a signal bit (or a whole signal) at a fixed value.

    Re-applied every cycle of ``[from_cycle, until)`` — after the
    pre-edge settle — so flops downstream latch the forced value even
    though upstream logic keeps (re)driving the net.  ``bit=None``
    forces the whole signal to ``value``.
    """

    def __init__(self, path, value, bit=None, from_cycle=0, until=None,
                 nbits=None):
        super().__init__()
        self.path = path
        self.bit = bit
        self.value = int(value)
        self.from_cycle = int(from_cycle)
        self.until = until
        self.nbits_hint = nbits
        self._target = None

    def _bind(self, sim):
        self._target = _SignalTarget(sim, self.path, self.nbits_hint)

    def _on_cycle(self, cycle):
        if cycle < self.from_cycle:
            return
        if self.until is not None and cycle >= self.until:
            return
        tgt = self._target
        old = tgt.read()
        if self.bit is None:
            new = self.value & ((1 << tgt.nbits) - 1)
        elif self.value:
            new = old | (1 << self.bit)
        else:
            new = old & ~(1 << self.bit)
        if new != old:
            tgt.write(self.sim, new)
            self._record(cycle, f"stuck {self.path} -> {new:#x}")


def _corrupt_mask(seed, cycle, nbits):
    """1- or 2-bit XOR mask, chosen deterministically per cycle.

    Masks are limited to double-bit flips on purpose: the resilient
    link's CRC-8 (poly 0x07) has Hamming distance 4 up to 119 data
    bits, so every 1- and 2-bit corruption is *guaranteed* detected.
    Wider random masks would slip past an 8-bit CRC with probability
    ~2^-8 per frame — enough to break an exactly-once delivery test
    over thousands of frames.
    """
    b1 = _cycle_mix(seed, cycle, "c1") % nbits
    mask = 1 << b1
    if _cycle_mix(seed, cycle, "c?") & 1:
        b2 = _cycle_mix(seed, cycle, "c2") % nbits
        mask |= 1 << b2               # may equal b1 -> single flip
    return mask


class LinkFaultInjector(_Injector):
    """Drive the fault ports of an ``UnreliableChannel`` by path.

    ``path`` names the channel model (e.g. ``"link.fwd"``); the
    injector drives its ``f_drop`` / ``f_stall`` / ``f_corrupt``
    input ports every cycle from three independent pure-of-cycle
    schedules:

    - ``drop`` — probability an accepted flit vanishes;
    - ``corrupt`` — probability of XORing a 1–2 bit mask into the
      payload (see :func:`_corrupt_mask` for why not wider);
    - ``stall`` — probability of a stall *window* of ``burst`` cycles
      (randomized stall bursts: rdy deasserts for the whole window).

    Exposes ``n_drop`` / ``n_corrupt`` / ``n_stall`` schedule counters
    (cycles the fault line was asserted — the channel's own telemetry
    counts faults that actually hit a transfer).
    """

    def __init__(self, path, drop=0.0, corrupt=0.0, stall=0.0,
                 burst=4, seed=0):
        super().__init__()
        self.path = path
        base = _derive_seed(seed, f"link:{path}")
        self.seed = base
        self._drop = fault_schedule(drop, base ^ 0xD0D0)
        self._stall = fault_schedule(stall, base ^ 0x57A1, burst=burst)
        self._corrupt = fault_schedule(corrupt, base ^ 0xC0DE)
        self.n_drop = 0
        self.n_corrupt = 0
        self.n_stall = 0
        self._chan = None

    def _bind(self, sim):
        _, _, chan, engine, _ = resolve_path(sim.model, self.path)
        if engine is not None:
            raise ValueError(
                f"{self.path!r}: link fault injection drives Python "
                f"input ports and does not support specialized "
                f"channels")
        for port in ("f_drop", "f_stall", "f_corrupt"):
            if not isinstance(getattr(chan, port, None), Signal):
                raise TypeError(
                    f"{self.path!r} is not an UnreliableChannel "
                    f"(missing fault port {port!r})")
        self._chan = chan

    def _on_cycle(self, cycle):
        chan = self._chan
        drop = 1 if self._drop(cycle) else 0
        stall = 1 if self._stall(cycle) else 0
        if self._corrupt(cycle):
            mask = _corrupt_mask(self.seed, cycle, chan.f_corrupt.nbits)
        else:
            mask = 0
        chan.f_drop.value = drop
        chan.f_stall.value = stall
        chan.f_corrupt.value = mask
        if drop:
            self.n_drop += 1
        if stall:
            self.n_stall += 1
        if mask:
            self.n_corrupt += 1
        if drop or stall or mask:
            self._record(
                cycle,
                f"drop={drop} stall={stall} corrupt={mask:#x}")
        self.sim.eval_combinational()
