"""Resilience subsystem: fault injection, checkpoint/restore, guard.

Split across four modules:

- :mod:`.warnings` — :class:`ResilienceWarning`, the structured
  graceful-degradation warning every fallback path emits;
- :mod:`.inject` — SEU bit-flips, stuck-at faults, and lossy-link
  injectors installed by dotted path on a running simulator;
- :mod:`.snapshot` — checkpoint/restore with a round-trip-equals-
  uninterrupted-run guarantee, plus periodic checkpoint rings;
- :mod:`.guard` — watchdog (wall-clock/cycle budgets + diagnostics),
  oscillation diagnosis, and SimJIT specialize-or-fallback;
- :mod:`.sweeps` — portable, seed-deterministic fault-sweep campaign
  units (runnable standalone or as :mod:`repro.fleet` tasks).

Only :mod:`.warnings` is imported eagerly (the core simulator loads it
at import time); everything else resolves lazily so importing the core
never drags in the verif/telemetry dependencies of the heavier
modules.
"""

from .warnings import KINDS, ResilienceWarning, warn_resilience

__all__ = [
    "ResilienceWarning",
    "warn_resilience",
    "KINDS",
    # .inject
    "SEUInjector",
    "StuckAtFault",
    "LinkFaultInjector",
    "fault_schedule",
    "resolve_path",
    # .snapshot
    "Checkpoint",
    "CheckpointError",
    "CheckpointRing",
    "save_checkpoint",
    "restore_checkpoint",
    # .guard
    "Watchdog",
    "WatchdogTimeout",
    "diagnose_oscillation",
    "specialize_or_fallback",
    # .sweeps
    "link_fault_sweep",
]

_LAZY = {
    "SEUInjector": "inject",
    "StuckAtFault": "inject",
    "LinkFaultInjector": "inject",
    "fault_schedule": "inject",
    "resolve_path": "inject",
    "Checkpoint": "snapshot",
    "CheckpointError": "snapshot",
    "CheckpointRing": "snapshot",
    "save_checkpoint": "snapshot",
    "restore_checkpoint": "snapshot",
    "Watchdog": "guard",
    "WatchdogTimeout": "guard",
    "diagnose_oscillation": "guard",
    "specialize_or_fallback": "guard",
    "link_fault_sweep": "sweeps",
}


def __getattr__(name):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    return getattr(import_module(f".{modname}", __name__), name)
