"""Structured resilience warnings.

Every graceful-degradation path in the framework (static-schedule
construction failure, mega-cycle kernel generation failure, SimJIT
compile/link failure, and the ``sched='static'`` no-effect downgrade)
reports through one warning type so callers can filter, assert on, or
escalate them uniformly::

    warnings.filterwarnings("error", category=ResilienceWarning)

The warning carries machine-readable fields next to the human message:

``kind``
    Taxonomy tag (see DESIGN.md section 1.8): ``"static-noop"``,
    ``"sched-fallback"``, ``"kernel-fallback"``, ``"simjit-fallback"``,
    ``"instrument-fallback"`` (an observability probe could not be
    compiled into the SimJIT kernel and samples from Python instead).
``component``
    Dotted name (or class name) of the thing that degraded.
``fallback``
    What the run continues on (``"event"``, ``"interpreted"``, ...).
``detail``
    The underlying cause (usually the stringified exception).

``ResilienceWarning`` subclasses :class:`RuntimeWarning` so existing
filters and ``pytest.warns(RuntimeWarning)`` assertions keep matching.

This module must stay import-light (stdlib only): the core simulator
imports it at module load time.
"""

from __future__ import annotations

import warnings as _warnings

__all__ = ["ResilienceWarning", "warn_resilience"]

#: The closed set of degradation kinds (documented in DESIGN.md 1.8).
KINDS = ("static-noop", "sched-fallback", "kernel-fallback",
         "simjit-fallback", "instrument-fallback")


class ResilienceWarning(RuntimeWarning):
    """A component degraded gracefully instead of failing the run."""

    def __init__(self, message, kind="", component="", fallback="",
                 detail=""):
        super().__init__(message)
        self.kind = kind
        self.component = component
        self.fallback = fallback
        self.detail = detail

    def __str__(self):
        return self.args[0] if self.args else ""


def warn_resilience(message, kind, component="", fallback="",
                    detail="", stacklevel=2):
    """Emit one structured :class:`ResilienceWarning`."""
    if kind not in KINDS:
        raise ValueError(f"unknown resilience warning kind {kind!r}; "
                         f"known: {KINDS}")
    _warnings.warn(
        ResilienceWarning(message, kind=kind, component=component,
                          fallback=fallback, detail=detail),
        stacklevel=stacklevel + 1)
