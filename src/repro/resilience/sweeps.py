"""Portable fault-sweep campaign units.

The resilient-link exactly-once sweep originally lived inside the test
suite; promoting it here makes it a *campaign unit* in the fault.py
sense — a self-contained, parameterized verification component that a
single test, a CI job, or a :mod:`repro.fleet` worker process can all
run from one picklable parameter set.  Everything downstream of the
integer ``seed`` is deterministic (stimulus, fault schedules,
backpressure), so two runs of the same parameters — in the same
process or on different fleet workers — produce bit-identical results.
"""

from __future__ import annotations

from ..net.resilient_link import ResilientLink
from ..verif.cosim import CoSimHarness, DutAdapter
from ..verif.strategies import RNG, backpressure_pattern
from .inject import LinkFaultInjector

__all__ = ["link_fault_sweep"]


class ExactlyOnceViolation(AssertionError):
    """A resilient link lost, duplicated, or reordered a packet."""


def link_fault_sweep(seed, npackets=120, drop=0.05, corrupt=0.05,
                     stall=0.05, levels=("fl", "cl", "rtl"),
                     payload_nbits=16, max_cycles=60_000,
                     rdy_p=0.2, raise_on_loss=True):
    """Co-simulated exactly-once delivery sweep over the resilient link.

    Builds one :class:`~repro.net.resilient_link.ResilientLink` per
    abstraction level, installs independent pure-of-cycle fault
    injectors on the forward and reverse channels of each, drives all
    of them with the same ``npackets`` random payloads through a
    cycle-tolerant :class:`~repro.verif.cosim.CoSimHarness`, and checks
    that every level delivered every packet exactly once and in order.

    Returns a plain-dict result (JSON- and pickle-friendly)::

        {"seed":..., "npackets":..., "exactly_once": True,
         "delivered": {level: n}, "retries": {level: n},
         "giveups": {level: n}, "fault_cycles": {level: n},
         "ncycles": {level: n}, "coverage": {...},
         "counters": {"link[rtl].top.sender.ctr_retries": n, ...}}

    With ``raise_on_loss`` (the default) a delivery violation raises
    :class:`ExactlyOnceViolation` instead — co-simulation divergence
    between levels already raises ``CoSimMismatch`` from the harness.
    """
    seed = int(seed) & 0x7FFFFFFF
    duts = []
    for level in levels:
        link = ResilientLink(payload_nbits=payload_nbits, level=level)
        duts.append(DutAdapter(level, link,
                               drives={"in": link.in_},
                               captures={"out": link.out}))
    for dut in duts:
        LinkFaultInjector("fwd", drop=drop, corrupt=corrupt,
                          stall=stall, seed=seed).install(dut.sim)
        LinkFaultInjector("rev", drop=drop, corrupt=corrupt,
                          stall=stall, seed=seed + 1).install(dut.sim)

    rng = RNG(seed).fork("payloads")
    sent = [rng.getrandbits(payload_nbits) for _ in range(npackets)]
    harness = CoSimHarness(duts, compare="cycle_tolerant")
    res = harness.run(
        {"in": sent},
        backpressure=backpressure_pattern("random", rdy_p, seed=seed),
        max_cycles=max_cycles)

    out = {
        "seed": seed,
        "npackets": npackets,
        "faults": {"drop": drop, "corrupt": corrupt, "stall": stall},
        "exactly_once": True,
        "delivered": {},
        "retries": {},
        "giveups": {},
        "fault_cycles": {},
        "ncycles": {},
        "coverage": res.coverage.to_dict(),
        "counters": {},
    }
    for dut in duts:
        link, level = dut.model, dut.name
        got = [msg for _, msg in res.transfers[level]["out"]]
        if got != sent:
            out["exactly_once"] = False
            if raise_on_loss:
                raise ExactlyOnceViolation(
                    f"link[{level}] delivered {len(got)}/{len(sent)} "
                    f"packets (seed {seed}, drop={drop}, "
                    f"corrupt={corrupt}, stall={stall})")
        out["delivered"][level] = len(got)
        out["retries"][level] = link.sender.ctr_retries.value
        out["giveups"][level] = link.sender.ctr_giveups.value
        out["fault_cycles"][level] = (
            link.fwd.ctr_dropped.value + link.fwd.ctr_corrupted.value
            + link.rev.ctr_dropped.value)
        out["ncycles"][level] = res.ncycles[level]
        for name, value in dut.sim.telemetry.counters().items():
            out["counters"][f"link[{level}].{name}"] = int(value)
    return out
