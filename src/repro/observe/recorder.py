"""Flight recorder: a bounded, change-compressed signal history.

The recorder is the observatory's always-on-capable pillar (the other
two are :mod:`.watchpoints` and :mod:`.forensics`): a ring buffer of
the last ``depth`` cycles of a chosen signal set, cheap enough to leave
armed on long runs, so that when a simulation misbehaves there is a
signal-level window to inspect — without paying for full VCD tracing
from cycle 0.

Arming is one call on a running simulator::

    rec = sim.flight_recorder(
        signals=["routers[0].hold_val[0]", net.out[0].val], depth=256)
    sim.run(100_000)
    rec.window().to_vcd("tail.vcd")

Signals are named by dotted path from the top model (the
:func:`repro.resilience.inject.resolve_path` grammar, so the same
string works before and after SimJIT specialization) or passed as
``Signal``/slice objects.  Models can also pre-register interesting
signals in their constructors with ``s.observe(...)``; a recorder armed
with ``signals=None`` picks those up hierarchically.

Substrate portability: sampling happens at one architectural point —
after the clock edge and the post-edge settle, once per ``cycle()`` —
on every substrate (event, static, mega-cycle kernel, SimJIT).  Python
nets are read directly; signals that live only inside a compiled
SimJIT instance are read through the engine's ``raw_get``/
``get_state_at`` probes, so the recorded window is bit-identical across
all four execution modes.  Unlike cycle hooks, recorders do *not*
force the interpreted path: the compiled mega-cycle kernel keeps
running, and only the post-cycle sample is added.

Storage is change-compressed: per cycle the recorder stores only the
``(signal_index, new_value)`` pairs that differ from the previous
sample, plus one rolling base snapshot that evicted entries are folded
into — reconstruction of any in-window cycle is exact.
"""

from __future__ import annotations

from collections import deque

from ..core.signals import Signal, _SignalSlice

__all__ = ["FlightRecorder", "RecorderWindow", "resolve_reader"]


class _Tap:
    """One recorded signal: a stable name, a width, and a bound
    zero-argument read function returning the current int value."""

    __slots__ = ("name", "nbits", "read")

    def __init__(self, name, nbits, read):
        self.name = name
        self.nbits = nbits
        self.read = read


def _engines_of(model):
    """Every SimJIT engine reachable in a (possibly specialized)
    hierarchy, outermost first."""
    engines = []
    eng = getattr(model, "jit_engine", None)
    if eng is not None:
        engines.append(eng)
    for sub in getattr(model, "_all_models", ()):
        eng = getattr(sub, "jit_engine", None)
        if eng is not None and eng not in engines:
            engines.append(eng)
    return engines


def resolve_reader(sim, spec):
    """Resolve a signal spec to a :class:`_Tap` bound to ``sim``.

    ``spec`` is a dotted-path string, a ``Signal``, or a signal slice.
    Paths resolve through JITModel wrappers (the injector grammar) and
    may also name a telemetry :class:`~repro.telemetry.counters.Counter`
    (any backing kind); signal objects whose net is not owned by
    ``sim`` — internal state of a specialized model — are read through
    the owning engine's ``raw_get`` probe instead of the (stale)
    Python net.
    """
    if isinstance(spec, str):
        from ..resilience.inject import _SignalTarget, resolve_path
        from ..telemetry.counters import Counter
        try:
            _, _, resolved, _, _ = resolve_path(sim.model, spec)
        except Exception:
            resolved = None
        if isinstance(resolved, Counter):
            # Telemetry counters are first-class observables: the
            # Counter.value property already bridges python-, signal-,
            # and compiled-state-backed kinds.
            return _Tap(spec, 32, lambda c=resolved: int(c.value))
        target = _SignalTarget(sim, spec)
        # Specialize the per-cycle read: _SignalTarget.read() re-checks
        # its domain branches and builds a Bits value on every call,
        # which is most of the sampling cost at recorder rates.
        if target.engine is not None and target.state_idx is None:
            read = (lambda e=target.engine, s=target.slot:
                    e.raw_get(s))
        elif target.engine is None and target.sig is not None:
            net = target.sig._net.find()
            read = lambda n=net: n._value
        else:
            read = target.read
        return _Tap(spec, target.nbits, read)
    if isinstance(spec, _SignalSlice):
        name = f"{spec.signal.name or '?'}[{spec.lo}:{spec.hi}]"
        return _Tap(name, spec.nbits,
                    lambda sl=spec: int(sl.value))
    if isinstance(spec, Signal):
        net = spec._net.find()
        name = spec.name or repr(spec)
        if net.sim is sim:
            return _Tap(name, spec.nbits, lambda n=net: n._value)
        # Net not driven by this simulator: the signal lives inside a
        # compiled SimJIT instance — find the engine that lowered it.
        for engine in _engines_of(sim.model):
            try:
                slot = engine.slot_of(spec)
            except KeyError:
                continue
            return _Tap(name, spec.nbits,
                        lambda e=engine, s=slot: e.raw_get(s))
        raise ValueError(
            f"signal {name!r} is not simulated by this SimulationTool "
            f"(and no SimJIT engine lowered it); pass a dotted path or "
            f"a signal of the simulated model")
    raise TypeError(
        f"cannot observe {type(spec).__name__}; pass a dotted path "
        f"string, a Signal, or a signal slice")


def _observed_specs(model):
    """Hierarchically collect ``s.observe(...)`` registrations."""
    specs = []
    for sub in getattr(model, "_all_models", [model]):
        specs.extend(getattr(sub, "_observed_signals", ()))
    return specs


class FlightRecorder:
    """Bounded ring buffer of change-compressed signal values.

    ``signals`` is a list of specs (see :func:`resolve_reader`); with
    ``None``, the signals registered via ``Model.observe`` across the
    hierarchy are recorded.  ``depth`` bounds the window in cycles.
    ``autodump`` names a directory for automatic post-mortem bundles
    when an exception escapes ``cycle()`` (``None`` defers to the
    ``REPRO_OBSERVE_DIR`` environment variable; see
    :mod:`repro.observe.forensics`).
    """

    def __init__(self, signals=None, depth=256, autodump=None):
        depth = int(depth)
        if depth <= 0:
            raise ValueError(f"depth must be positive; got {depth}")
        self.depth = depth
        self.autodump = autodump
        self._specs = signals
        self.sim = None
        self._taps = []
        self._reads = []
        self._last = []
        self._entries = deque()
        self._base_cycle = 0
        self._base_values = []
        self.nsamples = 0
        # Compiled mode (SimJIT; see core.simjit.instrument): when the
        # taps lower to net slots of a single-engine compiled sim, the
        # kernel writes change events into a C ring and the fields
        # below replace the per-cycle _entries bookkeeping.
        self._cidx = None            # C tap indices, or None (hook path)
        self._cevents = None         # drained [(cycle, local, value)]
        self._csampled_to = 0        # last cycle accounted for
        self._instr = None           # owning KernelInstrumentation

    def attach(self, sim):
        """Bind to ``sim`` and start sampling (returns self)."""
        if self.sim is not None:
            raise RuntimeError("recorder is already attached")
        specs = self._specs
        if specs is None:
            specs = _observed_specs(sim.model)
        if isinstance(specs, (str, Signal, _SignalSlice)):
            specs = [specs]
        if not specs:
            raise ValueError(
                "nothing to record: pass signals= or register signals "
                "with Model.observe(...) in the design")
        self.sim = sim
        self._taps = [resolve_reader(sim, spec) for spec in specs]
        self._reads = [tap.read for tap in self._taps]
        # Base snapshot: the state as of the current cycle count, the
        # cycle *before* the first recorded entry.
        self._base_cycle = sim.ncycles
        self._base_values = [read() for read in self._reads]
        self._last = list(self._base_values)
        self._entries.clear()
        sim._recorders.append(self)
        instr = (sim._jit_instrumentation()
                 if hasattr(sim, "_jit_instrumentation") else None)
        if instr is not None:
            instr.try_add_recorder(self, specs)
        sim._refresh_observers()
        return self

    def detach(self):
        """Stop sampling; the recorded window stays readable."""
        sim = self.sim
        if sim is None:
            return
        if self._instr is not None:
            self._instr.remove_recorder(self)
        if self in sim._recorders:
            sim._recorders.remove(self)
            sim._refresh_observers()
        self.sim = None

    @property
    def signal_names(self):
        return [tap.name for tap in self._taps]

    # -- hot path ---------------------------------------------------------

    def sample(self, cycle):
        """Record the post-cycle values (called by the simulator)."""
        last = self._last
        changes = ()
        for i, read in enumerate(self._reads):
            value = read()
            if value != last[i]:
                last[i] = value
                if changes:
                    changes.append((i, value))
                else:
                    changes = [(i, value)]
        entries = self._entries
        entries.append((cycle, changes))
        self.nsamples += 1
        if len(entries) > self.depth:
            # Fold the evicted cycle into the rolling base snapshot so
            # the oldest retained cycle stays exactly reconstructible.
            old_cycle, old_changes = entries.popleft()
            base = self._base_values
            for i, value in old_changes:
                base[i] = value
            self._base_cycle = old_cycle

    # -- compiled mode (SimJIT) -------------------------------------------

    def _c_advance(self, now):
        """Account cycles up to ``now`` and fold events that fell out
        of the window into the rolling base — the batched equivalent of
        the per-sample eviction in :meth:`sample`.  Called by the
        instrumentation manager after each drain."""
        self.nsamples += now - self._csampled_to
        self._csampled_to = now
        cutoff = now - self.depth
        if cutoff <= self._base_cycle:
            return
        events = self._cevents
        base = self._base_values
        k = 0
        for cycle, i, value in events:
            if cycle > cutoff:
                break
            base[i] = value
            k += 1
        if k:
            del events[:k]
        self._base_cycle = cutoff

    def _c_entries(self):
        """Per-cycle change list equivalent to the hook path's deque
        (``()`` for in-window cycles with no changes)."""
        by_cycle = {}
        for cycle, i, value in self._cevents:
            by_cycle.setdefault(cycle, []).append((i, value))
        return [(c, by_cycle.get(c, ()))
                for c in range(self._base_cycle + 1,
                               self._csampled_to + 1)]

    def _materialize_compiled(self):
        """Convert compiled state into the interpreted representation
        (detach/dearm path) so the window stays readable and per-cycle
        sampling can resume seamlessly."""
        self._entries = deque(self._c_entries())
        values = list(self._base_values)
        for _cycle, changes in self._entries:
            for i, value in changes:
                values[i] = value
        self._last = values

    # -- window extraction ------------------------------------------------

    def window(self):
        """Immutable :class:`RecorderWindow` of the current contents."""
        if self._instr is not None:
            self._instr.drain()
            changes = [(c, list(ch)) for c, ch in self._c_entries()]
        else:
            changes = [(c, list(ch)) for c, ch in self._entries]
        return RecorderWindow(
            names=list(self.signal_names),
            widths=[tap.nbits for tap in self._taps],
            base_cycle=self._base_cycle,
            base_values=list(self._base_values),
            changes=changes,
        )

    def __repr__(self):
        return (f"<FlightRecorder {len(self._taps)} signals "
                f"depth={self.depth} recorded={len(self._entries)}>")


class RecorderWindow:
    """A reconstructed slice of recorded history.

    ``base_cycle``/``base_values`` give the state just before the first
    recorded cycle; ``changes`` is ``[(cycle, [(index, value), ...])]``
    for every recorded cycle in order.  Serializes to the
    ``repro-observe-v1`` window dict and to standard VCD.
    """

    def __init__(self, names, widths, base_cycle, base_values, changes):
        self.names = names
        self.widths = widths
        self.base_cycle = base_cycle
        self.base_values = base_values
        self.changes = changes

    @property
    def ncycles(self):
        return len(self.changes)

    def cycles(self):
        return [c for c, _ in self.changes]

    def rows(self):
        """Yield ``(cycle, (v0, v1, ...))`` replaying the window."""
        values = list(self.base_values)
        for cycle, changes in self.changes:
            for i, value in changes:
                values[i] = value
            yield cycle, tuple(values)

    def values_at(self, cycle):
        """Signal values after ``cycle``'s clock edge."""
        for c, values in self.rows():
            if c == cycle:
                return values
        raise KeyError(f"cycle {cycle} is not in the recorded window")

    def to_dict(self):
        return {
            "names": list(self.names),
            "widths": list(self.widths),
            "base_cycle": self.base_cycle,
            "base_values": list(self.base_values),
            "changes": [[c, [[i, v] for i, v in ch]]
                        for c, ch in self.changes],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            names=list(data["names"]),
            widths=list(data["widths"]),
            base_cycle=data["base_cycle"],
            base_values=list(data["base_values"]),
            changes=[(c, [(i, v) for i, v in ch])
                     for c, ch in data["changes"]],
        )

    def to_vcd(self, path):
        """Write the window as a standard VCD file (GTKWave-viewable).

        The dump starts at ``#base_cycle`` with the base snapshot;
        cycles with no value changes emit no timestep (the same
        compression the live :class:`~repro.tools.vcd.VCDWriter`
        applies).
        """
        from ..tools.vcd import vcd_id_codes, vcd_value_line
        codes = []
        gen = vcd_id_codes()
        with open(path, "w") as out:
            out.write("$timescale 1ns $end\n")
            out.write("$scope module observe $end\n")
            for name, nbits in zip(self.names, self.widths):
                code = next(gen)
                codes.append(code)
                safe = (name.replace(".", "__").replace("[", "_")
                        .replace("]", "").replace(":", "_"))
                out.write(f"$var wire {nbits} {code} {safe} $end\n")
            out.write("$upscope $end\n")
            out.write("$enddefinitions $end\n")
            out.write(f"#{self.base_cycle}\n")
            out.write("$dumpvars\n")
            for value, nbits, code in zip(
                    self.base_values, self.widths, codes):
                out.write(vcd_value_line(value, nbits, code))
            out.write("$end\n")
            for cycle, changes in self.changes:
                if not changes:
                    continue
                out.write(f"#{cycle}\n")
                for i, value in changes:
                    out.write(vcd_value_line(
                        value, self.widths[i], codes[i]))
        return path

    def __eq__(self, other):
        if not isinstance(other, RecorderWindow):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self):
        span = (f"cycles {self.changes[0][0]}..{self.changes[-1][0]}"
                if self.changes else "empty")
        return (f"<RecorderWindow {len(self.names)} signals {span}>")
