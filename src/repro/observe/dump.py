"""ASCII renderer + CLI for ``repro-observe-v1`` forensics bundles.

Usage::

    python -m repro.observe.dump observe_out/crash.json
    python -m repro.observe.dump --last-n 40 bundle.json

Prints the bundle summary (design, failure reason, cycle, armed
watchpoints) and an ASCII waveform of each recorded window: 1-bit
signals as ``__/~~\\__`` traces, multibit signals as hex values with
``.`` marking unchanged cycles.
"""

from __future__ import annotations

import argparse
import sys

from .forensics import load_bundle

__all__ = ["render", "render_window", "main"]


def render_window(window, last_n=None, width=72):
    """ASCII waveform of one :class:`RecorderWindow` as a string."""
    rows = list(window.rows())
    if last_n is not None:
        rows = rows[-last_n:]
    if not rows:
        return "  (empty window)\n"
    label_w = max((len(n) for n in window.names), default=0)
    label_w = min(label_w, 32)
    ncols = max(1, (width - label_w - 3))
    out = []

    # Column header: first/last cycle of the shown span.
    first_c, last_c = rows[0][0], rows[-1][0]
    out.append(f"  {'cycle':<{label_w}} | "
               f"{first_c} .. {last_c} ({len(rows)} cycles)")

    for i, (name, nbits) in enumerate(zip(window.names, window.widths)):
        label = name if len(name) <= label_w else "…" + name[-(label_w - 1):]
        if nbits == 1:
            cells = []
            prev = None
            for _, values in rows[:ncols]:
                v = values[i]
                if prev is not None and v != prev:
                    cells.append("/" if v else "\\")
                else:
                    cells.append("~" if v else "_")
                prev = v
            line = "".join(cells)
        else:
            digits = max(1, (nbits + 3) // 4)
            cells = []
            prev = None
            for _, values in rows:
                v = values[i]
                if prev is not None and v == prev:
                    cells.append("." * digits)
                else:
                    cells.append(f"{v:0{digits}x}")
                prev = v
            line = " ".join(cells)
            if len(line) > ncols:
                line = line[:ncols - 1] + "…"
        out.append(f"  {label:<{label_w}} | {line}")
    return "\n".join(out) + "\n"


def render(manifest, last_n=None, width=72):
    """Full text report of a loaded bundle (see :func:`load_bundle`)."""
    out = []
    out.append(f"repro-observe bundle: {manifest.get('design')} — "
               f"{manifest.get('reason')} at cycle "
               f"{manifest.get('cycle')}")
    if manifest.get("error"):
        out.append(f"error: {manifest['error']}")
    sched = manifest.get("sched") or {}
    if sched:
        out.append(f"schedule: mode={sched.get('mode')} "
                   f"kernel={sched.get('kernel')}")
    for wp in manifest.get("watchpoints", ()):
        status = (f"fired x{wp.get('n_fires')} "
                  f"(last at cycle {wp.get('cycle')})"
                  if wp.get("n_fires") else "never fired")
        out.append(f"watchpoint {wp.get('name')!r}: "
                   f"{wp.get('condition')} — {status}")
    for i, entry in enumerate(manifest.get("windows", ())):
        out.append("")
        out.append(f"window {i}: {len(entry['signals'])} signals, "
                   f"{entry['recorded_cycles']} recorded cycles"
                   + (f" -> {entry['vcd']}" if entry.get("vcd") else ""))
        out.append(render_window(entry["window"], last_n=last_n,
                                 width=width).rstrip("\n"))
    traces = manifest.get("recent_traces")
    if traces:
        out.append("")
        out.append("recent line traces:")
        for item in traces[-8:]:
            out.append(f"  #{item['cycle']}: {item['trace']}")
    return "\n".join(out) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe.dump",
        description="Render a repro-observe-v1 forensics bundle as an "
                    "ASCII waveform + summary.")
    parser.add_argument("bundle", help="path to the <tag>.json manifest")
    parser.add_argument("--last-n", type=int, default=None,
                        help="show only the last N recorded cycles")
    parser.add_argument("--width", type=int, default=72,
                        help="target line width (default 72)")
    args = parser.parse_args(argv)
    # One-line diagnostics, never a traceback: OSError/ValueError
    # cover missing files, truncated JSON, and wrong schema ids;
    # KeyError/TypeError/AttributeError cover structurally mangled
    # manifests (right schema stamp, missing or mistyped sections).
    try:
        manifest = load_bundle(args.bundle)
        text = render(manifest, last_n=args.last_n, width=args.width)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (KeyError, TypeError, AttributeError) as exc:
        print(f"error: {args.bundle}: malformed bundle "
              f"({type(exc).__name__}: {exc})", file=sys.stderr)
        return 2
    sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
