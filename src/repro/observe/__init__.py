"""Waveform observatory: signal-level observability for every substrate.

Three pillars, all behaving identically in event, static,
mega-cycle-kernel, and SimJIT execution:

- :mod:`.recorder` — an always-on-capable **flight recorder**: a
  bounded ring buffer of change-compressed signal values
  (``sim.flight_recorder(signals=..., depth=N)``), cheap enough to
  leave armed on long runs;
- :mod:`.watchpoints` — **temporal watchpoints**: ``rose``/``fell``/
  ``stable_for``/``implies_within``/predicate combinators armed with
  ``sim.watch(cond, ...)`` that log, call back, dump a window, or
  halt with a structured diagnostic;
- :mod:`.forensics` — **post-mortem bundles** (schema
  ``repro-observe-v1``): on co-sim divergence, Watchdog trip, or an
  unhandled exception in ``cycle()``, the recorder windows are
  exported as VCD + JSON, renderable with
  ``python -m repro.observe.dump``.

PR-3's telemetry answers "how much / how often" in aggregate; the
observatory answers "what exactly did these signals do in the last N
cycles" — the signal-level half of the paper's Section III-B
observability story, without whole-run VCD cost.
"""

from .recorder import FlightRecorder, RecorderWindow
from .watchpoints import (
    Watchpoint,
    WatchpointHit,
    rose,
    fell,
    changed,
    value_is,
    when,
    stable_for,
    implies_within,
)
from .forensics import SCHEMA, export_bundle, crash_bundle, load_bundle

__all__ = [
    "FlightRecorder",
    "RecorderWindow",
    "Watchpoint",
    "WatchpointHit",
    "rose",
    "fell",
    "changed",
    "value_is",
    "when",
    "stable_for",
    "implies_within",
    "SCHEMA",
    "export_bundle",
    "crash_bundle",
    "load_bundle",
]
