"""Post-mortem forensics: ``repro-observe-v1`` failure bundles.

The third observatory pillar: when a simulation fails — a verif co-sim
divergence, a :class:`~repro.resilience.guard.Watchdog` trip, an
unhandled exception inside ``cycle()``, or a halting watchpoint — the
armed flight recorders' windows are exported automatically as a JSON
manifest plus one standard VCD per recorder, so the last ``depth``
cycles of signal history are inspectable after the process is gone.

Bundle layout (all under one directory)::

    <tag>.json          # manifest, schema "repro-observe-v1"
    <tag>.vcd           # window of the first recorder
    <tag>.rec1.vcd      # further recorders, if any

The manifest embeds each window verbatim (``RecorderWindow.to_dict``),
so the JSON alone round-trips; the VCDs are a convenience for wave
viewers.  ``python -m repro.observe.dump <tag>.json`` renders an ASCII
waveform of a bundle.

Export destinations resolve in precedence order: explicit argument,
the ``REPRO_OBSERVE_DIR`` environment variable, then ``observe_out``
(crash auto-dump additionally requires the recorder to opt in via
``autodump=`` or the environment variable — an armed recorder alone
never writes files behind the user's back).

Every export path is exception-guarded: forensics must never mask the
original failure.
"""

from __future__ import annotations

import json
import os

SCHEMA = "repro-observe-v1"

__all__ = ["SCHEMA", "attach_trace", "export_bundle", "crash_bundle",
           "load_bundle", "read_manifest"]


def _resolve_dir(out_dir):
    return out_dir or os.environ.get("REPRO_OBSERVE_DIR") or "observe_out"


def _unique_tag(out_dir, tag):
    """Avoid silently overwriting an earlier bundle with the same tag."""
    candidate, n = tag, 1
    while os.path.exists(os.path.join(out_dir, candidate + ".json")):
        candidate = f"{tag}.{n}"
        n += 1
    return candidate


def _safe_tag(tag):
    return "".join(ch if ch.isalnum() or ch in "._-" else "_"
                   for ch in tag)


def export_bundle(sim, out_dir=None, reason="manual", tag=None,
                  extra=None):
    """Export the armed recorders of ``sim`` as a forensics bundle.

    Returns the manifest path, or ``None`` when ``sim`` has no armed
    recorder (there is no signal history to dump — watchpoint
    diagnostics alone still travel in the exception that triggered
    the export).
    """
    recorders = list(getattr(sim, "_recorders", ()))
    if not recorders:
        return None
    out_dir = _resolve_dir(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    if tag is None:
        tag = f"observe_{reason}_c{sim.ncycles}"
    tag = _unique_tag(out_dir, _safe_tag(tag))

    windows = []
    for i, rec in enumerate(recorders):
        window = rec.window()
        vcd_name = f"{tag}.vcd" if i == 0 else f"{tag}.rec{i}.vcd"
        vcd_err = None
        try:
            window.to_vcd(os.path.join(out_dir, vcd_name))
        except Exception as exc:          # keep the JSON side alive
            vcd_name, vcd_err = None, f"{type(exc).__name__}: {exc}"
        entry = {
            "signals": window.names,
            "depth": rec.depth,
            "recorded_cycles": window.ncycles,
            "vcd": vcd_name,
            "window": window.to_dict(),
        }
        if vcd_err:
            entry["vcd_error"] = vcd_err
        windows.append(entry)

    manifest = {
        "schema": SCHEMA,
        "design": type(sim.model).__name__,
        "reason": reason,
        "cycle": sim.ncycles,
        "num_events": getattr(sim, "num_events", None),
        "sched": _try(sim.sched_info),
        "windows": windows,
        "watchpoints": [wp.diagnostic()
                        for wp in getattr(sim, "_watchpoints", ())],
    }
    trace_log = getattr(sim, "trace_log", None)
    if trace_log:
        manifest["recent_traces"] = [
            {"cycle": c, "trace": t} for c, t in trace_log]
    if extra:
        manifest.update(extra)

    path = os.path.join(out_dir, tag + ".json")
    with open(path, "w") as f:
        json.dump(manifest, f, indent=2, default=str)
    return path


def crash_bundle(sim, exc, context="cycle"):
    """Auto-export on an unhandled failure, if any recorder opted in.

    Called from ``SimulationTool.cycle()``'s exception path, from the
    Watchdog, and from co-sim divergence reporting.  Only recorders
    armed with ``autodump=<dir>`` (or, with ``REPRO_OBSERVE_DIR`` set,
    any armed recorder) trigger a dump.  Exceptions the observatory
    itself raised deliberately (marked ``_observe_handled``) and
    exports that themselves fail are both ignored — the original error
    always propagates untouched.
    """
    if getattr(exc, "_observe_handled", False):
        return None
    try:
        out_dir = None
        for rec in getattr(sim, "_recorders", ()):
            if rec.autodump:
                out_dir = rec.autodump
                break
        if out_dir is None and not os.environ.get("REPRO_OBSERVE_DIR"):
            return None
        path = export_bundle(
            sim, out_dir,
            reason=f"crash:{context}",
            extra={"error": f"{type(exc).__name__}: {exc}"})
        if path is not None:
            # One dump per failure: re-raises through nested run()
            # frames must not produce duplicate bundles.
            try:
                exc._observe_handled = True
                exc._observe_bundle = path
            except Exception:
                pass
        return path
    except Exception:
        return None


def read_manifest(path):
    """Load a bundle manifest as plain JSON data (no window hydration).

    Unlike :func:`load_bundle`, the window entries stay as dicts, so
    the result is directly re-serializable — the form the fleet
    aggregator embeds into ``repro-fleet-v1`` failure diagnostics.

    Raises :class:`FileNotFoundError` for a missing file and
    :class:`ValueError` for unparseable JSON (truncated bundles — note
    ``json.JSONDecodeError`` is a ``ValueError``), a non-object
    manifest, or a schema-version mismatch.
    """
    with open(path) as f:
        manifest = json.load(f)
    if not isinstance(manifest, dict):
        raise ValueError(
            f"{path}: manifest must be a JSON object, got "
            f"{type(manifest).__name__}")
    if manifest.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {manifest.get('schema')!r} is not "
            f"{SCHEMA!r}")
    return manifest


def attach_trace(manifest_path, records, name=None):
    """Attach a host-span trace to an exported bundle.

    ``records`` are raw tracing records (see
    :mod:`repro.telemetry.tracing`); they are serialized as a sibling
    ``<bundle>.trace.json`` Chrome trace and referenced from the
    manifest's ``"trace"`` key, so a failure bundle carries the
    host-side timeline (elaborate/compile/run/shrink phases) that led
    up to the divergence.  Returns the trace path.
    """
    from ..telemetry import traceevent
    from ..telemetry.tracing import spans_to_events

    manifest = read_manifest(manifest_path)
    base, _ = os.path.splitext(manifest_path)
    trace_path = base + ".trace.json"
    pids = sorted({r["pid"] for r in records})
    events = []
    for pid in pids:
        events.append(traceevent.process_name(
            pid, name or f"task (pid {pid})"))
    events.extend(spans_to_events(list(records)))
    traceevent.write_trace(trace_path, traceevent.trace_object(
        events, metadata={"unit": "1us = 1us host wall clock"}))
    manifest["trace"] = os.path.basename(trace_path)
    with open(manifest_path, "w") as f:
        json.dump(manifest, f, indent=1)
        f.write("\n")
    return trace_path


def load_bundle(path):
    """Load a manifest written by :func:`export_bundle`.

    Returns the manifest dict with each window entry's ``"window"``
    dict replaced by a live
    :class:`~repro.observe.recorder.RecorderWindow`.
    """
    from .recorder import RecorderWindow
    with open(path) as f:
        manifest = json.load(f)
    if manifest.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {manifest.get('schema')!r} is not "
            f"{SCHEMA!r}")
    for entry in manifest.get("windows", ()):
        entry["window"] = RecorderWindow.from_dict(entry["window"])
    return manifest


def _try(fn):
    try:
        return fn()
    except Exception:
        return None
