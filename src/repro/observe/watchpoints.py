"""Temporal watchpoints: trigger combinators evaluated per cycle.

The second observatory pillar: small temporal conditions over signal
values, checked once per cycle at the same post-edge sampling point as
the flight recorder, on every substrate.  A watchpoint that fires can
log, invoke a callback, dump the recorder window, or halt the
simulation with a structured diagnostic — which makes the same
machinery serve as lightweight online protocol assertions.

Conditions are built *unbound* from signal specs (dotted paths or
``Signal`` objects, the :func:`~repro.observe.recorder.resolve_reader`
grammar) and bound to a simulator when the watchpoint is armed::

    from repro.observe import rose, fell, stable_for, implies_within

    wp = sim.watch(rose("chan.out_val") & value_is("chan.out_msg", 0),
                   name="zero-payload", halt=True)
    sim.watch(implies_within(rose("link.req_val"),
                             rose("link.resp_val"), 64),
              name="req-gets-resp", dump="observe_out")

Combinators:

- :func:`rose` / :func:`fell` — 0->nonzero / nonzero->0 edge this cycle
- :func:`changed` — any value change this cycle
- :func:`value_is` — current value equals (or is in) the given value(s)
- :func:`when` — arbitrary predicate over one or more signal values
- :func:`stable_for` — value has now been unchanged for exactly ``n``
  consecutive cycles (re-arms after the next change)
- :func:`implies_within` — antecedent fired but the consequent did NOT
  follow within ``n`` cycles (fires *as the violation*, like an SVA
  ``|-> ##[0:n]`` assertion failing)

and the boolean algebra ``&``, ``|``, ``~`` over all of the above.
Edge semantics compare against the value at the end of the previous
cycle, so they are identical in event, static, mega-cycle-kernel, and
SimJIT execution.
"""

from __future__ import annotations

from .recorder import resolve_reader

__all__ = [
    "Condition",
    "Watchpoint",
    "WatchpointHit",
    "rose",
    "fell",
    "changed",
    "value_is",
    "when",
    "stable_for",
    "implies_within",
]


class WatchpointHit(Exception):
    """Raised (out of ``cycle()``) by a halting watchpoint.

    Carries ``diagnostic``, a JSON-serializable dict with the
    watchpoint name, firing cycle, condition description, and the
    observed signal values at the moment of the hit."""

    def __init__(self, message, diagnostic=None):
        super().__init__(message)
        self.diagnostic = diagnostic or {}


# ---------------------------------------------------------------------------
# Unbound condition specs


class Condition:
    """An unbound temporal condition; build with the combinators below
    and compose with ``&``, ``|``, ``~``."""

    def bind(self, sim):
        """Return a bound evaluator with ``update(cycle) -> bool``."""
        raise NotImplementedError

    def describe(self):
        raise NotImplementedError

    def __and__(self, other):
        return _BoolOp("and", self, other)

    def __or__(self, other):
        return _BoolOp("or", self, other)

    def __invert__(self):
        return _Not(self)

    def __repr__(self):
        return f"<Condition {self.describe()}>"


class _BoolOp(Condition):
    def __init__(self, op, left, right):
        if not isinstance(left, Condition) or not isinstance(
                right, Condition):
            raise TypeError("conditions compose only with conditions")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, sim):
        lhs, rhs = self.left.bind(sim), self.right.bind(sim)
        if self.op == "and":
            # Evaluate both unconditionally: stateful conditions (edge
            # trackers, stability counters) must see every cycle.
            return _Bound(lambda cycle: (lhs.update(cycle)
                                         & rhs.update(cycle)))
        return _Bound(lambda cycle: (lhs.update(cycle)
                                     | rhs.update(cycle)))

    def describe(self):
        sym = "&" if self.op == "and" else "|"
        return f"({self.left.describe()} {sym} {self.right.describe()})"


class _Not(Condition):
    def __init__(self, inner):
        if not isinstance(inner, Condition):
            raise TypeError("~ applies only to conditions")
        self.inner = inner

    def bind(self, sim):
        bound = self.inner.bind(sim)
        return _Bound(lambda cycle: not bound.update(cycle))

    def describe(self):
        return f"~{self.inner.describe()}"


class _Bound:
    """Adapter giving composed evaluators the bound interface."""

    __slots__ = ("update",)

    def __init__(self, update):
        self.update = update


def _spec_name(spec):
    return spec if isinstance(spec, str) else (
        getattr(spec, "name", None) or repr(spec))


class _SignalCondition(Condition):
    """Base for conditions over a single signal spec."""

    def __init__(self, spec):
        self.spec = spec

    def bind(self, sim):
        tap = resolve_reader(sim, self.spec)
        return self._bound(tap)

    def _bound(self, tap):
        raise NotImplementedError


class _Edge(_SignalCondition):
    def __init__(self, spec, direction):
        super().__init__(spec)
        self.direction = direction      # "rose" | "fell" | "changed"

    def _bound(self, tap):
        read = tap.read
        direction = self.direction
        state = {"prev": read()}

        def update(cycle):
            prev = state["prev"]
            value = read()
            state["prev"] = value
            if direction == "rose":
                return prev == 0 and value != 0
            if direction == "fell":
                return prev != 0 and value == 0
            return value != prev

        return _Bound(update)

    def describe(self):
        return f"{self.direction}({_spec_name(self.spec)})"


class _ValueIs(_SignalCondition):
    def __init__(self, spec, values):
        super().__init__(spec)
        self.values = values

    def _bound(self, tap):
        read = tap.read
        values = self.values
        return _Bound(lambda cycle: read() in values)

    def describe(self):
        vals = sorted(self.values)
        shown = vals[0] if len(vals) == 1 else vals
        return f"value_is({_spec_name(self.spec)}, {shown})"


class _When(Condition):
    def __init__(self, fn, specs):
        self.fn = fn
        self.specs = specs

    def bind(self, sim):
        reads = [resolve_reader(sim, spec).read for spec in self.specs]
        fn = self.fn
        return _Bound(
            lambda cycle: bool(fn(*[read() for read in reads])))

    def describe(self):
        name = getattr(self.fn, "__name__", "<fn>")
        args = ", ".join(_spec_name(s) for s in self.specs)
        return f"when({name}, {args})"


class _StableFor(_SignalCondition):
    def __init__(self, spec, n):
        super().__init__(spec)
        n = int(n)
        if n < 1:
            raise ValueError(f"stable_for needs n >= 1; got {n}")
        self.n = n

    def _bound(self, tap):
        read = tap.read
        n = self.n
        state = {"prev": read(), "streak": 0}

        def update(cycle):
            value = read()
            if value == state["prev"]:
                state["streak"] += 1
            else:
                state["prev"] = value
                state["streak"] = 0
            # Fire exactly once per stable stretch, when it reaches n.
            return state["streak"] == n

        return _Bound(update)

    def describe(self):
        return f"stable_for({_spec_name(self.spec)}, {self.n})"


class _ImpliesWithin(Condition):
    def __init__(self, antecedent, consequent, n):
        if not isinstance(antecedent, Condition) or not isinstance(
                consequent, Condition):
            raise TypeError(
                "implies_within composes two conditions "
                "(e.g. rose(a), rose(b))")
        n = int(n)
        if n < 1:
            raise ValueError(f"implies_within needs n >= 1; got {n}")
        self.antecedent = antecedent
        self.consequent = consequent
        self.n = n

    def bind(self, sim):
        ant = self.antecedent.bind(sim)
        con = self.consequent.bind(sim)
        n = self.n
        pending = []                 # deadline cycles, oldest first

        def update(cycle):
            # Order matters: a consequent on the deadline cycle itself
            # still satisfies the obligation (##[0:n] semantics).
            if con.update(cycle) and pending:
                pending.pop(0)
            if ant.update(cycle):
                pending.append(cycle + n)
            if pending and cycle >= pending[0]:
                pending.pop(0)
                return True          # violation: deadline passed
            return False

        return _Bound(update)

    def describe(self):
        return (f"implies_within({self.antecedent.describe()}, "
                f"{self.consequent.describe()}, {self.n})")


# ---------------------------------------------------------------------------
# C lowering (SimJIT compiled watchpoints)


def lower_condition(condition, slot_of):
    """Lower a condition tree to the flat postorder node forest the
    SimJIT ``obs_t`` runtime evaluates: ``[(kind, slot, a, b, aux)]``
    with operand indices ``a``/``b`` relative to the first node and the
    root last.  Node kinds mirror the C evaluator: 0 rose, 1 fell,
    2 changed, 3 value_is, 4 and, 5 or, 6 not.

    Raises :class:`~repro.core.simjit.instrument.Unlowerable` for
    predicates the C side cannot express (``when``, ``stable_for``,
    ``implies_within``, comparison values outside the 128-bit net
    range, and any spec that does not lower to a net slot).
    """
    from ..core.simjit.instrument import Unlowerable
    nodes = []

    def emit(kind, slot=-1, a=-1, b=-1, aux=0):
        nodes.append((kind, slot, a, b, aux))
        return len(nodes) - 1

    def visit(cond):
        if isinstance(cond, _Edge):
            kind = {"rose": 0, "fell": 1, "changed": 2}[cond.direction]
            return emit(kind, slot=slot_of(cond.spec))
        if isinstance(cond, _ValueIs):
            slot = slot_of(cond.spec)
            values = sorted(cond.values)
            for value in values:
                if not 0 <= value < (1 << 128):
                    raise Unlowerable(
                        f"comparison value {value} is outside the "
                        f"128-bit net range")
            idx = emit(3, slot=slot, aux=values[0])
            for value in values[1:]:
                idx = emit(5, a=idx, b=emit(3, slot=slot, aux=value))
            return idx
        if isinstance(cond, _BoolOp):
            a = visit(cond.left)
            b = visit(cond.right)
            return emit(4 if cond.op == "and" else 5, a=a, b=b)
        if isinstance(cond, _Not):
            return emit(6, a=visit(cond.inner))
        raise Unlowerable(
            f"{cond.describe()} is a Python-only predicate "
            f"({type(cond).__name__.lstrip('_')})")

    visit(condition)
    return nodes


# ---------------------------------------------------------------------------
# Public combinator constructors


def rose(spec):
    """Fires on cycles where the signal went 0 -> nonzero."""
    return _Edge(spec, "rose")


def fell(spec):
    """Fires on cycles where the signal went nonzero -> 0."""
    return _Edge(spec, "fell")


def changed(spec):
    """Fires on cycles where the signal's value changed at all."""
    return _Edge(spec, "changed")


def value_is(spec, value, *more):
    """Fires while the signal equals ``value`` (or any of ``more``)."""
    return _ValueIs(spec, frozenset((int(value),)
                                    + tuple(int(v) for v in more)))


def when(fn, *specs):
    """Fires when ``fn(*values)`` is truthy over the named signals."""
    return _When(fn, specs)


def stable_for(spec, n):
    """Fires when the signal has held one value for ``n`` consecutive
    cycles (once per stable stretch; re-arms on the next change)."""
    return _StableFor(spec, n)


def implies_within(antecedent, consequent, n):
    """Fires as a *violation*: ``antecedent`` occurred but
    ``consequent`` did not follow within the next ``n`` cycles
    (``n >= 1``; a consequent on the deadline cycle still counts)."""
    return _ImpliesWithin(antecedent, consequent, n)


# ---------------------------------------------------------------------------
# The armed watchpoint


class Watchpoint:
    """An armed condition plus its firing policy.

    Built by ``sim.watch(cond, ...)``.  On each firing cycle the
    watchpoint appends ``(cycle, values_snapshot)`` to :attr:`fires`,
    then applies the configured actions:

    - ``callback(watchpoint, cycle)`` — arbitrary user hook;
    - ``dump`` — directory: export a ``repro-observe-v1`` bundle of
      every armed recorder's current window;
    - ``halt`` — raise :class:`WatchpointHit` out of ``cycle()`` with
      a structured diagnostic (after callback and dump ran);
    - ``once`` — disarm after the first fire.
    """

    _counter = 0

    def __init__(self, condition, name=None, callback=None, halt=False,
                 dump=None, once=False, log_limit=256):
        if not isinstance(condition, Condition):
            raise TypeError(
                f"sim.watch() takes a Condition (rose/fell/...); "
                f"got {type(condition).__name__}")
        Watchpoint._counter += 1
        self.condition = condition
        self.name = name or f"wp{Watchpoint._counter}"
        self.callback = callback
        self.halt = halt
        self.dump = dump
        self.once = once
        self.log_limit = log_limit
        self.fires = []              # [(cycle, values_dict)]
        self.n_fires = 0
        self.sim = None
        self._bound = None
        self._taps = []
        self._cwp = None             # compiled watch index (SimJIT)
        self._instr = None

    def attach(self, sim):
        self.sim = sim
        self._taps = _condition_taps(sim, self.condition)
        instr = (sim._jit_instrumentation()
                 if hasattr(sim, "_jit_instrumentation") else None)
        if instr is not None and instr.try_add_watchpoint(self):
            # Condition evaluates in C; _fire is called on hit cycles.
            self._bound = None
        else:
            self._bound = self.condition.bind(sim)
        sim._watchpoints.append(self)
        sim._refresh_observers()
        return self

    def detach(self):
        sim = self.sim
        if sim is None:
            return
        if self._instr is not None:
            self._instr.remove_watchpoint(self)
        if self in sim._watchpoints:
            sim._watchpoints.remove(self)
            sim._refresh_observers()
        self.sim = None

    @property
    def fired(self):
        return self.n_fires > 0

    def fire_cycles(self):
        return [c for c, _ in self.fires]

    def _snapshot(self):
        return {tap.name: tap.read() for tap in self._taps}

    # hot path — called once per cycle while armed
    def sample(self, cycle):
        if not self._bound.update(cycle):
            return
        self._fire(cycle)

    def _fire(self, cycle):
        """Firing actions, shared between the hook path (via
        :meth:`sample`) and compiled hits reported by the SimJIT
        instrumentation runtime."""
        self.n_fires += 1
        sim = self.sim
        values = self._snapshot()
        if len(self.fires) < self.log_limit:
            self.fires.append((cycle, values))
        if self.once:
            self.detach()
        if self.callback is not None:
            self.callback(self, cycle)
        if self.dump is not None:
            from .forensics import export_bundle
            export_bundle(
                sim, self.dump,
                reason=f"watchpoint:{self.name}",
                tag=f"watchpoint_{self.name}_c{cycle}",
                extra={"watchpoint": self.diagnostic(cycle, values)})
        if self.halt:
            diag = self.diagnostic(cycle, values)
            exc = WatchpointHit(
                f"watchpoint {self.name!r} hit at cycle {cycle}: "
                f"{self.condition.describe()}", diag)
            # Crash forensics in cycle() must not double-dump: a
            # halting watchpoint is a *deliberate* stop, and its own
            # dump= already captured the window if asked for.
            exc._observe_handled = True
            raise exc

    def diagnostic(self, cycle=None, values=None):
        """JSON-serializable description of the (last) firing."""
        if cycle is None and self.fires:
            cycle, values = self.fires[-1]
        return {
            "name": self.name,
            "condition": self.condition.describe(),
            "cycle": cycle,
            "values": values or {},
            "n_fires": self.n_fires,
            "halt": self.halt,
        }

    def __repr__(self):
        state = "armed" if self.sim is not None else "detached"
        return (f"<Watchpoint {self.name!r} "
                f"{self.condition.describe()} fires={self.n_fires} "
                f"{state}>")


def _condition_taps(sim, condition):
    """Resolve every signal spec inside a condition tree, for firing
    snapshots (de-duplicated by name, declaration order)."""
    taps = []
    seen = set()

    def visit(cond):
        if isinstance(cond, _When):
            specs = cond.specs
        elif isinstance(cond, _SignalCondition):
            specs = (cond.spec,)
        else:
            specs = ()
        for spec in specs:
            tap = resolve_reader(sim, spec)
            if tap.name not in seen:
                seen.add(tap.name)
                taps.append(tap)
        for child in ("left", "right", "inner", "antecedent",
                      "consequent"):
            sub = getattr(cond, child, None)
            if isinstance(sub, Condition):
                visit(sub)

    visit(condition)
    return taps
