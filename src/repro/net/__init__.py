"""On-chip network substrate: messages, FL crossbar network, CL/RTL
mesh routers, structural mesh, and traffic harness (paper Section
III-D)."""

from .mem_over_net import (
    RemoteMemClient,
    RemoteMemServer,
    RemoteMemSystem,
)
from .mesh import MeshNetworkStructural
from .msgs import NetMsg
from .resilient_link import ResilientLink, UnreliableChannel, crc8
from .ring import RingNetworkStructural, RouterRingCL
from .network_fl import NetworkFL
from .router_cl import RouterCL
from .router_rtl import RouterRTL
from .traffic import (
    NetworkTrafficHarness,
    TrafficStats,
    find_saturation_point,
    measure_saturation,
    measure_zero_load_latency,
)

__all__ = [
    "NetMsg", "NetworkFL", "RouterCL", "RouterRTL",
    "MeshNetworkStructural",
    "ResilientLink", "UnreliableChannel", "crc8",
    "RemoteMemClient", "RemoteMemServer", "RemoteMemSystem",
    "RingNetworkStructural", "RouterRingCL",
    "NetworkTrafficHarness", "TrafficStats",
    "measure_zero_load_latency", "measure_saturation",
    "find_saturation_point",
]
