"""Memory-over-network: a shared memory node behind the mesh.

A composability showcase in the spirit of paper Figure 5(a)'s
multi-tile system: client adapters turn latency-insensitive memory
transactions into network packets, a memory-server node at another
terminal services them, and everything rides the same FL/CL/RTL mesh
models — so a processor can execute programs out of a *remote* memory
across the on-chip network without changing a line of its code.

Packet format: ``NetMsg`` with a payload wide enough to carry a packed
``MemReqMsg`` (65 bits); responses carry a packed ``MemRespMsg``.
"""

from __future__ import annotations

from collections import deque

from ..core import (
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    InValRdyBundle,
    Model,
    OutValRdyBundle,
)
from ..mem.msgs import MEM_REQ_WRITE, MemMsg, MemReqMsg, MemRespMsg
from .mesh import MeshNetworkStructural
from .msgs import NetMsg
from .router_cl import RouterCL

#: payload must hold a packed MemReqMsg plus the requester id is in src
MEM_PAYLOAD_NBITS = MemReqMsg.nbits


class RemoteMemClient(Model):
    """Bridges a local memory interface onto network terminals.

    The local requester (processor, cache, test bench) talks ordinary
    val/rdy memory transactions into ``mem_ifc``; each request is
    wrapped in a network packet to ``server_id`` and the matching
    response packet is unwrapped back.  Requests are pipelined (the
    network preserves ordering between one source/dest pair).
    """

    def __init__(s, my_id, server_id, nrouters, nmsgs=256):
        net_msg = NetMsg(nrouters, nmsgs, MEM_PAYLOAD_NBITS)
        s.msg_type = net_msg
        s.mem_ifc = ChildReqRespBundle(MemMsg())
        s.net_out = OutValRdyBundle(net_msg)
        s.net_in = InValRdyBundle(net_msg)
        s.my_id = my_id
        s.server_id = server_id

        s.mem = ChildReqRespQueueAdapter(s.mem_ifc)
        s.send_q = deque()
        s.seq = 0

        @s.tick_fl
        def logic():
            s.mem.xtick()
            if s.reset:
                s.send_q.clear()
                s.net_out.val.next = 0
                s.net_in.rdy.next = 0
                return

            # Outgoing: wrap memory requests into packets.
            if not s.mem.req_q.empty():
                req = s.mem.get_req()
                packet = s.msg_type()
                packet.dest = s.server_id
                packet.src = s.my_id
                packet.opaque = s.seq % 256
                packet.payload = int(req)
                s.seq += 1
                s.send_q.append(int(packet))

            if int(s.net_out.val) and int(s.net_out.rdy):
                s.send_q.popleft()
            if s.send_q:
                s.net_out.val.next = 1
                s.net_out.msg.next = s.send_q[0]
            else:
                s.net_out.val.next = 0

            # Incoming: unwrap responses.
            if int(s.net_in.val) and int(s.net_in.rdy):
                payload = int(s.net_in.msg.value.payload)
                s.mem.push_resp(MemRespMsg(payload & ((1 << 33) - 1)))
            s.net_in.rdy.next = not s.mem.resp_q.full()

    def line_trace(s):
        return f"c{s.my_id}[{len(s.send_q)}]"


class RemoteMemServer(Model):
    """Memory node: services packed memory requests from the network.

    Functionally a magic memory (like :class:`~repro.mem.TestMemory`)
    reachable only through its network terminal; responses go back to
    each packet's ``src``.
    """

    def __init__(s, my_id, nrouters, nmsgs=256, size=1 << 20):
        net_msg = NetMsg(nrouters, nmsgs, MEM_PAYLOAD_NBITS)
        s.msg_type = net_msg
        s.net_out = OutValRdyBundle(net_msg)
        s.net_in = InValRdyBundle(net_msg)
        s.my_id = my_id
        s.size = size
        s.storage = bytearray(size)
        s.resp_q = deque()

        @s.tick_fl
        def logic():
            if s.reset:
                s.resp_q.clear()
                s.net_out.val.next = 0
                s.net_in.rdy.next = 0
                return

            if int(s.net_out.val) and int(s.net_out.rdy):
                s.resp_q.popleft()

            if int(s.net_in.val) and int(s.net_in.rdy):
                packet = s.net_in.msg.value
                req = MemReqMsg(int(packet.payload))
                resp = s._process(req)
                reply = s.msg_type()
                reply.dest = int(packet.src)
                reply.src = s.my_id
                reply.opaque = int(packet.opaque)
                reply.payload = int(resp)
                s.resp_q.append(int(reply))

            if s.resp_q:
                s.net_out.val.next = 1
                s.net_out.msg.next = s.resp_q[0]
            else:
                s.net_out.val.next = 0
            s.net_in.rdy.next = len(s.resp_q) < 8

    def _process(s, req):
        addr = int(req.addr) & (s.size - 1) & ~0x3
        if int(req.type_) == MEM_REQ_WRITE:
            data = int(req.data)
            s.storage[addr:addr + 4] = data.to_bytes(4, "little")
            return MemRespMsg.mk(MEM_REQ_WRITE, 0)
        value = int.from_bytes(s.storage[addr:addr + 4], "little")
        return MemRespMsg.mk(0, value)

    # backdoor access for tests
    def write_word(s, addr, value):
        addr &= (s.size - 1) & ~0x3
        s.storage[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little")

    def read_word(s, addr):
        addr &= (s.size - 1) & ~0x3
        return int.from_bytes(s.storage[addr:addr + 4], "little")

    def load(s, base, words):
        for i, word in enumerate(words):
            s.write_word(base + 4 * i, word)

    def line_trace(s):
        return f"srv[{len(s.resp_q)}]"


class RemoteMemSystem(Model):
    """Mesh + memory server at terminal 0 + clients elsewhere.

    Exposes one memory interface bundle per client; the backing
    storage lives in ``s.server``.
    """

    def __init__(s, nclients=3, nrouters=4, router_type=RouterCL,
                 nentries=2, nmsgs=256):
        assert nclients < nrouters
        s.nclients = nclients
        s.net = MeshNetworkStructural(
            router_type, nrouters, nmsgs, MEM_PAYLOAD_NBITS, nentries)
        s.server = RemoteMemServer(0, nrouters, nmsgs)
        s.clients = [
            RemoteMemClient(i + 1, 0, nrouters, nmsgs)
            for i in range(nclients)
        ]
        s.mem_ifcs = [client.mem_ifc for client in s.clients]

        s.connect(s.server.net_out, s.net.in_[0])
        s.connect(s.net.out[0], s.server.net_in)
        for i, client in enumerate(s.clients):
            s.connect(client.net_out, s.net.in_[i + 1])
            s.connect(s.net.out[i + 1], client.net_in)

    def line_trace(s):
        return " ".join(
            [s.server.line_trace()]
            + [c.line_trace() for c in s.clients]
        )
