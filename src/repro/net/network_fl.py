"""FL network: functional model, behaviorally an ideal crossbar.

A direct reproduction of paper Figure 10: packets teleport from any
input to the destination's output FIFO in one cycle.  Resource
constraints exist only at the interfaces — multiple packets may enter
one output FIFO per cycle, but only one may leave per cycle.
"""

from __future__ import annotations

from collections import deque
from math import sqrt

from ..core import InValRdyBundle, Model, OutValRdyBundle
from .msgs import NetMsg


class NetworkFL(Model):
    """Ideal-crossbar functional network (paper Figure 10)."""

    def __init__(s, nrouters, nmsgs, data_nbits, nentries):
        # ensure nrouters is a perfect square (mesh-shaped interface)
        assert sqrt(nrouters) % 1 == 0

        net_msg = NetMsg(nrouters, nmsgs, data_nbits)
        s.msg_type = net_msg
        s.nrouters = nrouters
        s.in_ = InValRdyBundle[nrouters](net_msg)
        s.out = OutValRdyBundle[nrouters](net_msg)

        s.nentries = nentries
        s.output_fifos = [deque() for _ in range(nrouters)]

        @s.tick_fl
        def network_logic():
            if s.reset:
                for fifo in s.output_fifos:
                    fifo.clear()
                for i in range(s.nrouters):
                    s.out[i].val.next = 0
                    s.in_[i].rdy.next = 0
                return

            # dequeue logic
            for i, outport in enumerate(s.out):
                if int(outport.val) and int(outport.rdy):
                    s.output_fifos[i].popleft()

            # enqueue logic
            for inport in s.in_:
                if int(inport.val) and int(inport.rdy):
                    dest = int(inport.msg.value.dest)
                    msg = inport.msg.value.to_bits().uint()
                    s.output_fifos[dest].append(msg)

            # set output signals
            for i, fifo in enumerate(s.output_fifos):
                is_full = len(fifo) >= s.nentries
                is_empty = len(fifo) == 0

                s.out[i].val.next = not is_empty
                s.in_[i].rdy.next = not is_full
                if not is_empty:
                    s.out[i].msg.next = fifo[0]

    def line_trace(s):
        return "|".join(str(len(f)) for f in s.output_fifos)
