"""Traffic generation and measurement harness for network models.

Drives a network's terminal ports with synthetic traffic and measures
delivered-packet latency, throughput, and loss.  Used by the network
tests, the Section III-D zero-load/saturation experiments, and the
Figure 14/15 performance benchmarks.

The harness pokes ports directly from Python (it is the test bench, not
a model), embedding the injection timestamp in each packet's payload
field so latency needs no side tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core import SimulationTool


@dataclass
class TrafficStats:
    """Results of a traffic run."""

    ncycles: int = 0
    nterminals: int = 1
    injected: int = 0
    ejected: int = 0
    latencies: list = field(default_factory=list)

    @property
    def avg_latency(self):
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    @property
    def throughput(self):
        """Delivered packets per terminal per cycle."""
        return self.ejected / max(1, self.ncycles) / max(1, self.nterminals)


class NetworkTrafficHarness:
    """Uniform-random traffic driver for any network exposing
    ``in_``/``out`` lists of val/rdy bundles and a ``msg_type``."""

    def __init__(self, network, sim=None, seed=0):
        if not network.is_elaborated():
            network.elaborate()
        self.net = network
        self.sim = sim if sim is not None else SimulationTool(network)
        self.nterminals = len(network.in_)
        self.msg_type = network.msg_type
        self.rng = random.Random(seed)
        self.seqnum = 0
        # Precomputed field offsets: the harness builds/parses raw int
        # messages on the hot path instead of BitStruct objects.
        msg_type = network.msg_type
        self._dest_shift = msg_type.field_slice("dest")[0]
        self._src_shift = msg_type.field_slice("src")[0]
        self._seq_shift = msg_type.field_slice("opaque")[0]
        seq_lo, seq_hi = msg_type.field_slice("opaque")
        self._seq_mask = (1 << (seq_hi - seq_lo)) - 1
        pay_lo, pay_hi = msg_type.field_slice("payload")
        self._payload_shift = pay_lo
        self._payload_mask = (1 << (pay_hi - pay_lo)) - 1

    def _mk_msg(self, src, dest, timestamp):
        """Raw-int network message with the timestamp as payload."""
        seq = self.seqnum & self._seq_mask
        self.seqnum += 1
        return ((dest << self._dest_shift)
                | (src << self._src_shift)
                | (seq << self._seq_shift)
                | ((timestamp & self._payload_mask)
                   << self._payload_shift))

    def run_uniform_random(self, injection_rate, ncycles,
                           warmup=0, drain=1000):
        """Bernoulli uniform-random traffic.

        Each terminal independently injects with probability
        ``injection_rate`` per cycle to a uniformly random destination.
        Packets injected during the first ``warmup`` cycles are not
        measured.  After ``ncycles``, injection stops and up to
        ``drain`` extra cycles let in-flight packets arrive.
        """
        from time import perf_counter_ns

        from ..telemetry import tracing

        net, sim, rng = self.net, self.sim, self.rng
        sim.reset()
        # The harness drives per-cycle, so the simulator's own batch
        # instrumentation never fires; the whole measurement+drain
        # loop is one honest "sim.run" span instead.
        tracer = tracing.active()
        t0 = perf_counter_ns() if tracer is not None else 0
        stats = TrafficStats(nterminals=self.nterminals)
        pending = [None] * self.nterminals    # staged packet per input

        for port in net.out:
            port.rdy.value = 1

        pay_shift, pay_mask = self._payload_shift, self._payload_mask

        def service_outputs():
            for i in range(self.nterminals):
                port = net.out[i]
                if port.val.uint():
                    ts = (port.msg.uint() >> pay_shift) & pay_mask
                    stats.ejected += 1
                    if ts != 0:
                        stats.latencies.append(sim.ncycles - ts)

        def step():
            # The handshake fires at the coming edge with the rdy value
            # visible *now* — snapshot acceptance before cycling.
            accepted = [
                pending[i] is not None and int(net.in_[i].rdy)
                for i in range(self.nterminals)
            ]
            sim.cycle()
            for i in range(self.nterminals):
                if accepted[i]:
                    pending[i] = None
            service_outputs()

        for cycle in range(ncycles):
            measured = cycle >= warmup
            for i in range(self.nterminals):
                port = net.in_[i]
                if pending[i] is None and rng.random() < injection_rate:
                    dest = rng.randrange(self.nterminals)
                    ts = sim.ncycles if measured else 0
                    pending[i] = self._mk_msg(i, dest, ts)
                    stats.injected += 1
                if pending[i] is not None:
                    port.val.value = 1
                    port.msg.value = pending[i]
                else:
                    port.val.value = 0
            step()

        # Drain phase: finish offering staged packets, inject nothing new.
        for _ in range(drain):
            if stats.ejected >= stats.injected:
                break
            for i in range(self.nterminals):
                net.in_[i].val.value = 1 if pending[i] is not None else 0
            step()

        stats.ncycles = ncycles
        if tracer is not None:
            tracer.add_span("sim.run", t0, perf_counter_ns(),
                            design=type(net).__name__,
                            ncycles=sim.ncycles)
        return stats

    def send_single(self, src, dest, max_cycles=200):
        """Inject one packet and return its delivery latency."""
        net, sim = self.net, self.sim
        sim.reset()
        for port in net.out:
            port.rdy.value = 1
        msg = self._mk_msg(src, dest, 0)
        want_seq = (msg >> self._seq_shift) & self._seq_mask
        port = net.in_[src]
        port.msg.value = msg
        port.val.value = 1
        inject_cycle = None
        for _ in range(max_cycles):
            offered = int(port.val) and int(port.rdy)
            sim.cycle()
            if offered and inject_cycle is None:
                inject_cycle = sim.ncycles - 1
                port.val.value = 0
            if int(net.out[dest].val):
                got_seq = (net.out[dest].msg.uint()
                           >> self._seq_shift) & self._seq_mask
                if got_seq == want_seq:
                    return sim.ncycles - inject_cycle
        raise AssertionError(
            f"packet {src}->{dest} not delivered in {max_cycles} cycles"
        )


def measure_zero_load_latency(network, npairs=20, seed=0):
    """Average single-packet latency over random src/dest pairs."""
    harness = NetworkTrafficHarness(network, seed=seed)
    rng = random.Random(seed)
    n = harness.nterminals
    total = 0
    for _ in range(npairs):
        src = rng.randrange(n)
        dest = rng.randrange(n)
        while dest == src:
            dest = rng.randrange(n)
        total += harness.send_single(src, dest)
    return total / npairs


def measure_saturation(network_factory, rates, ncycles=600, warmup=100,
                       seed=0):
    """Sweep injection rate; return [(rate, avg_latency, throughput)].

    ``network_factory`` builds a fresh network per rate (state from an
    overloaded run must not leak into the next point).
    """
    results = []
    for rate in rates:
        harness = NetworkTrafficHarness(network_factory(), seed=seed)
        stats = harness.run_uniform_random(rate, ncycles, warmup=warmup)
        results.append((rate, stats.avg_latency, stats.throughput))
    return results


def find_saturation_point(sweep, zero_load=None, factor=3.0,
                          throughput_frac=0.95):
    """First injection rate at which the network saturates.

    Two conventional criteria, either of which triggers: average
    latency exceeds ``factor`` x the zero-load latency, or delivered
    throughput falls below ``throughput_frac`` of the offered rate
    (the network can no longer accept the offered load).
    """
    for rate, latency, throughput in sweep:
        if zero_load is not None and latency > factor * zero_load:
            return rate
        if throughput < throughput_frac * rate:
            return rate
    return None
