"""Ring network: a second topology over the same router discipline.

Demonstrates the structural-composition story beyond the paper's mesh
(Section III-D): a 3-port ring router (terminal, clockwise,
counter-clockwise) with shortest-direction routing and the same
elastic-buffer val/rdy flow control, composed into a bidirectional
ring.  Written in the SimJIT-CL translatable subset like ``RouterCL``.

Known property (faithfully modeled, not a simulator bug): without
virtual channels or bubble flow control, a ring's channel-dependency
cycle can deadlock once buffers fill — drive it below saturation
(uniform-random rates under ~15% at 16 terminals).  The XY-routed mesh
has no such cycle.  Deadlock-free ring flow control is classic NoC
material and out of scope for this reproduction.
"""

from __future__ import annotations

from ..core import InValRdyBundle, Model, OutValRdyBundle
from .msgs import NetMsg


class RouterRingCL(Model):
    """Cycle-level 3-port ring router with shortest-path routing."""

    TERM = 0
    CW = 1       # to the next-higher router id
    CCW = 2      # to the next-lower router id
    NPORTS = 3

    def __init__(s, router_id, nrouters, nmsgs, data_nbits, nentries):
        net_msg = NetMsg(nrouters, nmsgs, data_nbits)
        s.msg_type = net_msg
        s.in_ = InValRdyBundle[s.NPORTS](net_msg)
        s.out = OutValRdyBundle[s.NPORTS](net_msg)

        s.router_id = router_id
        s.nrouters = nrouters
        s.nentries = nentries
        dest_lo, dest_hi = net_msg.field_slice("dest")
        s.dest_shift = dest_lo
        s.dest_mask = (1 << (dest_hi - dest_lo)) - 1

        s.buf_data = [0] * (s.NPORTS * nentries)
        s.buf_head = [0] * s.NPORTS
        s.buf_count = [0] * s.NPORTS
        s.grants = [-1] * s.NPORTS
        s.priority = [0] * s.NPORTS

        @s.tick_cl
        def router_logic():
            if s.reset.uint():
                for i in range(s.NPORTS):
                    s.buf_head[i] = 0
                    s.buf_count[i] = 0
                    s.grants[i] = -1
                    s.in_[i].rdy.next = 0
                    s.out[i].val.next = 0
            else:
                for o in range(s.NPORTS):
                    if s.out[o].val.uint() and s.out[o].rdy.uint():
                        src = s.grants[o]
                        s.buf_head[src] = (s.buf_head[src] + 1) \
                            % s.nentries
                        s.buf_count[src] = s.buf_count[src] - 1
                        s.priority[o] = (src + 1) % s.NPORTS

                for i in range(s.NPORTS):
                    if s.in_[i].val.uint() and s.in_[i].rdy.uint():
                        tail = (s.buf_head[i] + s.buf_count[i]) \
                            % s.nentries
                        s.buf_data[i * s.nentries + tail] = \
                            s.in_[i].msg.uint()
                        s.buf_count[i] = s.buf_count[i] + 1

                claimed = [0] * s.NPORTS
                for o in range(s.NPORTS):
                    s.grants[o] = -1
                    choice = -1
                    for k in range(s.NPORTS):
                        i = (s.priority[o] + k) % s.NPORTS
                        if claimed[i] or s.buf_count[i] == 0 \
                                or choice >= 0:
                            continue
                        head = s.buf_data[i * s.nentries
                                          + s.buf_head[i]]
                        dest = (head >> s.dest_shift) & s.dest_mask
                        # Shortest-direction routing around the ring
                        # (offset kept non-negative so the modulo is
                        # portable across Python/C/Verilog semantics).
                        fwd = (dest - s.router_id + s.nrouters) \
                            % s.nrouters
                        if fwd == 0:
                            route = s.TERM
                        elif fwd <= s.nrouters // 2:
                            route = s.CW
                        else:
                            route = s.CCW
                        if route == o:
                            choice = i
                    if choice >= 0:
                        claimed[choice] = 1
                        s.grants[o] = choice
                        s.out[o].val.next = 1
                        s.out[o].msg.next = \
                            s.buf_data[choice * s.nentries
                                       + s.buf_head[choice]]
                    else:
                        s.out[o].val.next = 0

                for i in range(s.NPORTS):
                    s.in_[i].rdy.next = s.buf_count[i] < s.nentries

    def line_trace(s):
        return "".join(str(c) for c in s.buf_count)


class RingNetworkStructural(Model):
    """Bidirectional ring composed of :class:`RouterRingCL` routers."""

    def __init__(s, nrouters, nmsgs, data_nbits, nentries,
                 RouterType=RouterRingCL):
        net_msg = NetMsg(nrouters, nmsgs, data_nbits)
        s.msg_type = net_msg
        s.nrouters = nrouters
        s.in_ = InValRdyBundle[nrouters](net_msg)
        s.out = OutValRdyBundle[nrouters](net_msg)

        R = RouterType
        s.routers = [
            R(i, nrouters, nmsgs, data_nbits, nentries)
            for i in range(nrouters)
        ]
        for i in range(nrouters):
            s.connect(s.in_[i], s.routers[i].in_[R.TERM])
            s.connect(s.out[i], s.routers[i].out[R.TERM])
        for i in range(nrouters):
            nxt = (i + 1) % nrouters
            s.connect(s.routers[i].out[R.CW],
                      s.routers[nxt].in_[R.CCW])
            s.connect(s.routers[i].in_[R.CW],
                      s.routers[nxt].out[R.CCW])

    def line_trace(s):
        return "|".join(r.line_trace() for r in s.routers)
