"""RTL mesh router: input-queued, XY-routed, round-robin arbitrated.

Same architecture as :class:`RouterCL` but at register-transfer level:
input buffering uses real ``NormalQueue`` instances, the switch is a
combinational route/arbitrate/crossbar block, and the per-output
round-robin pointers are explicit registers.  Combinational cycles
between routers are broken by the queues' registered ``rdy``/``val``.
"""

from __future__ import annotations

from math import isqrt

from ..components.queues import NormalQueue
from ..core import InValRdyBundle, Model, OutValRdyBundle, Wire, bw
from .msgs import NetMsg


class RouterRTL(Model):
    """Register-transfer-level 5-port XY mesh router."""

    TERM = 0
    NORTH = 1
    EAST = 2
    SOUTH = 3
    WEST = 4
    NPORTS = 5

    def __init__(s, router_id, nrouters, nmsgs, data_nbits, nentries):
        net_msg = NetMsg(nrouters, nmsgs, data_nbits)
        s.msg_type = net_msg
        s.in_ = InValRdyBundle[s.NPORTS](net_msg)
        s.out = OutValRdyBundle[s.NPORTS](net_msg)

        s.router_id = router_id
        s.nrouters = nrouters
        s.dim = isqrt(nrouters)
        s.my_x = router_id % s.dim
        s.my_y = router_id // s.dim
        s.dest_lo, s.dest_hi = net_msg.field_slice("dest")

        # Input queues.
        s.queues = [NormalQueue(nentries, net_msg) for _ in range(s.NPORTS)]
        for i in range(s.NPORTS):
            s.connect(s.in_[i], s.queues[i].enq)

        # Arbitration state: grant per output, round-robin pointer,
        # and a registered hold: an offer that stalled (val & !rdy at
        # the edge) pins its grant so the pending payload stays stable
        # until accepted (val/rdy protocol).
        s.grant = [Wire(bw(s.NPORTS)) for _ in range(s.NPORTS)]
        s.grant_val = [Wire(1) for _ in range(s.NPORTS)]
        s.priority = [Wire(bw(s.NPORTS)) for _ in range(s.NPORTS)]
        s.hold_val = [Wire(1) for _ in range(s.NPORTS)]
        s.hold_grant = [Wire(bw(s.NPORTS)) for _ in range(s.NPORTS)]

        from ..telemetry.counters import enabled as _telemetry_enabled
        if _telemetry_enabled():
            # Telemetry registers in their own gateable tick; nothing
            # is declared when telemetry is disabled, keeping the
            # disabled design structurally unchanged.
            s.flit_count = [Wire(32) for _ in range(s.NPORTS)]
            s.stall_count = [Wire(32) for _ in range(s.NPORTS)]
            for o in range(s.NPORTS):
                s.counter(f"flits_out{o}",
                          f"flits accepted downstream on port {o}",
                          sig=s.flit_count[o])
                s.counter(f"stalls_out{o}",
                          f"cycles port {o} offered a flit that "
                          "stalled",
                          sig=s.stall_count[o])

            @s.tick_rtl
            def telemetry_logic():
                if s.reset:
                    for o in range(s.NPORTS):
                        s.flit_count[o].next = 0
                        s.stall_count[o].next = 0
                else:
                    for o in range(s.NPORTS):
                        if s.grant_val[o].uint() \
                                and s.out[o].rdy.uint():
                            s.flit_count[o].next = s.flit_count[o] + 1
                        if s.grant_val[o].uint() \
                                and not s.out[o].rdy.uint():
                            s.stall_count[o].next = s.stall_count[o] + 1

        @s.combinational
        def switch_logic():
            # Hoist per-queue head state into locals once per run: the
            # arbitration loop below would otherwise re-walk the
            # queue/bundle attribute chains 25 times.
            msgs = [0] * s.NPORTS
            vals = [0] * s.NPORTS
            routes = [0] * s.NPORTS
            for i in range(s.NPORTS):
                # Route each queue's head packet (XY dimension-ordered,
                # written inline so the block is SimJIT-translatable).
                msg = s.queues[i].deq.msg.uint()
                msgs[i] = msg
                vals[i] = s.queues[i].deq.val.uint()
                dest = (msg >> s.dest_lo) & \
                    ((1 << (s.dest_hi - s.dest_lo)) - 1)
                dest_x = dest % s.dim
                dest_y = dest // s.dim
                if dest_x > s.my_x:
                    routes[i] = s.EAST
                elif dest_x < s.my_x:
                    routes[i] = s.WEST
                elif dest_y > s.my_y:
                    routes[i] = s.SOUTH
                elif dest_y < s.my_y:
                    routes[i] = s.NORTH
                else:
                    routes[i] = s.TERM

            # Held grants claim their inputs first: a stalled output
            # must re-offer the same packet, and no other output may
            # steal that input meanwhile.
            claimed = [0] * s.NPORTS
            choices = [-1] * s.NPORTS
            for o in range(s.NPORTS):
                if s.hold_val[o].uint():
                    i = s.hold_grant[o].uint()
                    if claimed[i] == 0 and vals[i] and routes[i] == o:
                        choices[o] = i
                        claimed[i] = 1
            for o in range(s.NPORTS):
                choice = choices[o]
                if choice < 0:
                    base = s.priority[o].uint()
                    for k in range(s.NPORTS):
                        i = (base + k) % s.NPORTS
                        if (choice < 0 and claimed[i] == 0
                                and vals[i] and routes[i] == o):
                            choice = i
                    if choice >= 0:
                        claimed[choice] = 1
                if choice >= 0:
                    s.grant[o].value = choice
                    s.grant_val[o].value = 1
                    s.out[o].val.value = 1
                    s.out[o].msg.value = msgs[choice]
                else:
                    s.grant[o].value = 0
                    s.grant_val[o].value = 0
                    s.out[o].val.value = 0
                    s.out[o].msg.value = 0

            # Dequeue-side flow control back into the winning queues.
            for i in range(s.NPORTS):
                s.queues[i].deq.rdy.value = 0
            for o in range(s.NPORTS):
                if s.grant_val[o].uint():
                    s.queues[s.grant[o].uint()].deq.rdy.value = \
                        s.out[o].rdy.uint()

        @s.tick_rtl
        def priority_logic():
            if s.reset:
                for o in range(s.NPORTS):
                    s.priority[o].next = 0
                    s.hold_val[o].next = 0
                    s.hold_grant[o].next = 0
            else:
                for o in range(s.NPORTS):
                    if s.grant_val[o].uint() and s.out[o].rdy.uint():
                        s.priority[o].next = \
                            (s.grant[o].uint() + 1) % s.NPORTS
                    # Pin the grant of an offer that stalled this edge.
                    if s.grant_val[o].uint() \
                            and not s.out[o].rdy.uint():
                        s.hold_val[o].next = 1
                        s.hold_grant[o].next = s.grant[o].uint()
                    else:
                        s.hold_val[o].next = 0

    def route(s, dest):
        """XY dimension-ordered routing (same policy as RouterCL)."""
        dest = int(dest)
        dest_x = dest % s.dim
        dest_y = dest // s.dim
        if dest_x > s.my_x:
            return s.EAST
        if dest_x < s.my_x:
            return s.WEST
        if dest_y > s.my_y:
            return s.SOUTH
        if dest_y < s.my_y:
            return s.NORTH
        return s.TERM

    def line_trace(s):
        return "".join(str(int(q.count)) for q in s.queues)
