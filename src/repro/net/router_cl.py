"""CL mesh router: XY dimension-ordered routing, elastic-buffer flow
control, cycle-level detail.

Five ports per router (terminal + four mesh directions).  Input packets
buffer in per-port FIFOs; each output port arbitrates round-robin among
the input FIFOs whose head packet routes to it.  Backpressure
propagates through val/rdy, so buffers never overflow.

The model is written in the SimJIT-CL *translatable subset* (paper
Section IV-A): all state is plain integers and fixed-size integer
lists (the FIFOs are flat ring buffers), and the tick block uses only
integer arithmetic — so ``SimJITCL`` can compile it to C.
"""

from __future__ import annotations

from math import isqrt

from ..core import InValRdyBundle, Model, OutValRdyBundle
from .msgs import NetMsg


class RouterCL(Model):
    """Cycle-level 5-port XY mesh router."""

    TERM = 0
    NORTH = 1
    EAST = 2
    SOUTH = 3
    WEST = 4
    NPORTS = 5

    def __init__(s, router_id, nrouters, nmsgs, data_nbits, nentries):
        net_msg = NetMsg(nrouters, nmsgs, data_nbits)
        s.msg_type = net_msg
        s.in_ = InValRdyBundle[s.NPORTS](net_msg)
        s.out = OutValRdyBundle[s.NPORTS](net_msg)

        s.router_id = router_id
        s.nrouters = nrouters
        s.nentries = nentries
        s.dim = isqrt(nrouters)
        s.my_x = router_id % s.dim
        s.my_y = router_id // s.dim
        dest_lo, dest_hi = net_msg.field_slice("dest")
        s.dest_shift = dest_lo
        s.dest_mask = (1 << (dest_hi - dest_lo)) - 1

        # Per-port FIFOs as flat ring buffers (SimJIT-CL subset).
        s.buf_data = [0] * (s.NPORTS * nentries)
        s.buf_head = [0] * s.NPORTS
        s.buf_count = [0] * s.NPORTS
        # Which input FIFO feeds each output (-1 = none); round-robin
        # priority pointer per output.
        s.grants = [-1] * s.NPORTS
        s.priority = [0] * s.NPORTS

        # Per-output telemetry, kept as flat int lists updated with
        # subset-style statements so the block stays SimJIT-CL
        # translatable (and the counters survive specialization as
        # state-backed reads).
        s.ctr_flits = [0] * s.NPORTS
        s.ctr_stalls = [0] * s.NPORTS
        for o in range(s.NPORTS):
            s.counter(f"flits_out{o}",
                      f"flits accepted downstream on port {o}",
                      state=("ctr_flits", o))
            s.counter(f"stalls_out{o}",
                      f"cycles port {o} offered a flit that stalled",
                      state=("ctr_stalls", o))

        @s.tick_cl
        def router_logic():
            if s.reset.uint():
                for i in range(s.NPORTS):
                    s.buf_head[i] = 0
                    s.buf_count[i] = 0
                    s.grants[i] = -1
                    s.ctr_flits[i] = 0
                    s.ctr_stalls[i] = 0
                    s.in_[i].rdy.next = 0
                    s.out[i].val.next = 0
            else:
                # 1. Packets accepted by downstream on the last edge
                #    leave their input FIFO.
                for o in range(s.NPORTS):
                    if s.out[o].val.uint() and s.out[o].rdy.uint():
                        src = s.grants[o]
                        s.buf_head[src] = (s.buf_head[src] + 1) % s.nentries
                        s.buf_count[src] = s.buf_count[src] - 1
                        s.priority[o] = (src + 1) % s.NPORTS
                        s.ctr_flits[o] = s.ctr_flits[o] + 1

                # 2. Packets offered by upstream on the last edge enter.
                for i in range(s.NPORTS):
                    if s.in_[i].val.uint() and s.in_[i].rdy.uint():
                        tail = (s.buf_head[i] + s.buf_count[i]) % s.nentries
                        s.buf_data[i * s.nentries + tail] = \
                            s.in_[i].msg.uint()
                        s.buf_count[i] = s.buf_count[i] + 1

                # 3. Route + arbitrate for each output.  An offer that
                #    stalled (val high, rdy low at the edge) holds its
                #    grant: a pending offer's payload must stay stable
                #    until accepted (val/rdy protocol), so a stalled
                #    output may not re-arbitrate.
                claimed = [0] * s.NPORTS
                held = [0] * s.NPORTS
                for o in range(s.NPORTS):
                    if (s.out[o].val.uint() and not s.out[o].rdy.uint()
                            and s.grants[o] >= 0):
                        held[o] = 1
                        claimed[s.grants[o]] = 1
                        s.ctr_stalls[o] = s.ctr_stalls[o] + 1
                for o in range(s.NPORTS):
                    if held[o]:
                        continue        # val/msg registers keep the offer
                    s.grants[o] = -1
                    choice = -1
                    for k in range(s.NPORTS):
                        i = (s.priority[o] + k) % s.NPORTS
                        if claimed[i] or s.buf_count[i] == 0 or choice >= 0:
                            continue
                        head = s.buf_data[i * s.nentries + s.buf_head[i]]
                        dest = (head >> s.dest_shift) & s.dest_mask
                        dest_x = dest % s.dim
                        dest_y = dest // s.dim
                        if dest_x > s.my_x:
                            route = s.EAST
                        elif dest_x < s.my_x:
                            route = s.WEST
                        elif dest_y > s.my_y:
                            route = s.SOUTH
                        elif dest_y < s.my_y:
                            route = s.NORTH
                        else:
                            route = s.TERM
                        if route == o:
                            choice = i
                    if choice >= 0:
                        claimed[choice] = 1
                        s.grants[o] = choice
                        s.out[o].val.next = 1
                        s.out[o].msg.next = \
                            s.buf_data[choice * s.nentries
                                       + s.buf_head[choice]]
                    else:
                        s.out[o].val.next = 0

                # 4. Input flow control for next cycle.
                for i in range(s.NPORTS):
                    s.in_[i].rdy.next = s.buf_count[i] < s.nentries

    def route(s, dest):
        """XY dimension-ordered routing: X first, then Y, then eject."""
        dest = int(dest)
        dest_x = dest % s.dim
        dest_y = dest // s.dim
        if dest_x > s.my_x:
            return s.EAST
        if dest_x < s.my_x:
            return s.WEST
        if dest_y > s.my_y:
            return s.SOUTH
        if dest_y < s.my_y:
            return s.NORTH
        return s.TERM

    def line_trace(s):
        return "".join(str(c) for c in s.buf_count)
