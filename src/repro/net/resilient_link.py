"""Resilient val/rdy link: CRC-8 frames, ack/nack, bounded retry.

A :class:`ResilientLink` transports payload words across a pair of
*unreliable* channels (forward frames, reverse acks) that the fault
injectors (:mod:`repro.resilience.inject`) can disturb with flit
drops, payload corruption, and randomized stall bursts — and still
delivers every accepted payload **exactly once, in order**:

- frames carry a CRC-8 (polynomial 0x07) over sequence + payload;
  corrupted frames are NACKed and retransmitted.  CRC-8/0x07 has
  Hamming distance 4 up to 119 data bits, so the injectors' 1–2 bit
  corruptions are always detected;
- a stop-and-wait sender with a ``seq_bits``-bit sequence number,
  per-frame timeout, and bounded retry with exponential backoff
  (``backoff_base << min(attempt, backoff_cap)`` cycles);
- the receiver delivers in-sequence frames once, re-acks duplicates
  (retransmissions whose ack was lost) without redelivering, and
  NACKs CRC failures;
- retry/timeout/duplicate/give-up counts are exposed as telemetry
  counters at every level.

The sender and receiver exist at FL, CL, and RTL — same protocol,
modeled in the style of each abstraction level — around *shared*
structural :class:`UnreliableChannel` instances, so the PR 2 co-sim
harness can sweep one fault schedule across all three levels and
compare delivered streams.
"""

from __future__ import annotations

from ..core import InPort, InValRdyBundle, Model, OutValRdyBundle, Wire

__all__ = [
    "ResilientLink",
    "UnreliableChannel",
    "crc8",
    "CRC_BITS",
]

CRC_BITS = 8
_CRC_POLY = 0x07

# Sender FSM states (shared encoding at every level).
_IDLE, _SEND, _WAIT, _BACKOFF = 0, 1, 2, 3
_ACK, _NACK = 1, 0


def crc8(value, nbits):
    """CRC-8 (poly 0x07, init 0) over the low ``nbits`` of ``value``,
    MSB first."""
    crc = 0
    for i in range(nbits - 1, -1, -1):
        fb = ((crc >> 7) & 1) ^ ((value >> i) & 1)
        crc = (crc << 1) & 0xFF
        if fb:
            crc ^= _CRC_POLY
    return crc


def pack_frame(seq, payload, seq_bits, payload_nbits):
    """``[crc8 | seq | payload]`` frame word (MSB first)."""
    body = ((seq & ((1 << seq_bits) - 1)) << payload_nbits) \
        | (payload & ((1 << payload_nbits) - 1))
    return (crc8(body, seq_bits + payload_nbits)
            << (seq_bits + payload_nbits)) | body


def pack_ack(kind, seq, seq_bits):
    """``[crc8 | kind | seq]`` ack word (kind 1=ACK, 0=NACK)."""
    body = ((kind & 1) << seq_bits) | (seq & ((1 << seq_bits) - 1))
    return (crc8(body, 1 + seq_bits) << (1 + seq_bits)) | body


class UnreliableChannel(Model):
    """Single-entry registered channel with fault-injection ports.

    Data path: ``in_`` (val/rdy) -> one-deep buffer -> ``out``.  Three
    input ports model the physical faults; all default to 0 (a clean
    wire) and are meant to be driven by a
    :class:`~repro.resilience.inject.LinkFaultInjector`:

    - ``f_drop`` — an accepted flit vanishes (the handshake completes,
      nothing is stored);
    - ``f_corrupt`` — XOR mask applied to the stored flit;
    - ``f_stall`` — deasserts ``in_.rdy`` (a stall burst).

    Telemetry counts faults that actually hit a transfer, not cycles
    the fault lines were merely asserted.
    """

    def __init__(s, nbits):
        s.nbits = nbits
        s.in_ = InValRdyBundle(nbits)
        s.out = OutValRdyBundle(nbits)
        s.f_drop = InPort(1)
        s.f_stall = InPort(1)
        s.f_corrupt = InPort(nbits)

        s.buf = Wire(nbits)
        s.full = Wire(1)

        s.ctr_dropped = s.counter(
            "dropped", "flits consumed and discarded by f_drop")
        s.ctr_corrupted = s.counter(
            "corrupted", "flits stored with a corruption mask applied")
        s.ctr_stalled = s.counter(
            "stalled", "offered flits held off by a stall cycle")

        @s.combinational
        def chan_comb():
            s.in_.rdy.value = (not s.full.uint()) \
                and (not s.f_stall.uint())
            s.out.val.value = s.full.uint()
            s.out.msg.value = s.buf.uint()

        @s.tick_rtl
        def chan_seq():
            if s.reset.uint():
                s.full.next = 0
            else:
                if s.full.uint() and s.out.rdy.uint():
                    s.full.next = 0
                if s.in_.val.uint() and s.f_stall.uint():
                    s.ctr_stalled.incr()
                if s.in_.val.uint() and not s.full.uint() \
                        and not s.f_stall.uint():
                    if s.f_drop.uint():
                        s.ctr_dropped.incr()
                    else:
                        if s.f_corrupt.uint():
                            s.ctr_corrupted.incr()
                        s.buf.next = s.in_.msg.uint() \
                            ^ s.f_corrupt.uint()
                        s.full.next = 1

    def is_empty(s):
        return not int(s.full.value)

    def line_trace(s):
        return "*" if int(s.full.value) else "."


class _SenderParams:
    """Shared protocol parameterization for the three sender levels."""

    def _init_params(s, payload_nbits, seq_bits, max_retries,
                     timeout, backoff_base, backoff_cap):
        s.payload_nbits = payload_nbits
        s.seq_bits = seq_bits
        s.seq_mask = (1 << seq_bits) - 1
        s.frame_nbits = CRC_BITS + seq_bits + payload_nbits
        s.ack_nbits = CRC_BITS + 1 + seq_bits
        s.max_retries = max_retries
        s.timeout = timeout
        s.backoff_base = backoff_base
        s.backoff_cap = backoff_cap
        s.in_ = InValRdyBundle(payload_nbits)
        s.frame = OutValRdyBundle(s.frame_nbits)
        s.ack = InValRdyBundle(s.ack_nbits)
        s.ctr_sent = s.counter(
            "frames_sent", "frame transmissions accepted by the "
            "forward channel (includes retransmissions)")
        s.ctr_acked = s.counter(
            "acked", "payloads acknowledged end-to-end")
        s.ctr_retries = s.counter(
            "retries", "retransmission attempts (timeout or NACK)")
        s.ctr_timeouts = s.counter(
            "timeouts", "ack timeouts expired while waiting")
        s.ctr_giveups = s.counter(
            "giveups", "payloads abandoned after max_retries")
        s.ctr_ack_crc = s.counter(
            "ack_crc_drops", "acks discarded for CRC failure")

    def _parse_ack(s, word):
        """(crc_ok, kind, seq) of a received ack word."""
        body_bits = 1 + s.seq_bits
        body = word & ((1 << body_bits) - 1)
        ok = (word >> body_bits) == crc8(body, body_bits)
        return ok, (body >> s.seq_bits) & 1, body & s.seq_mask

    def _backoff(s, attempt):
        shift = attempt if attempt < s.backoff_cap else s.backoff_cap
        return s.backoff_base << shift


class SenderFL(Model, _SenderParams):
    """Functional-level sender: the protocol as one behavioral loop
    over a plain state dict (checkpointable python state)."""

    def __init__(s, payload_nbits, seq_bits=4, max_retries=16,
                 timeout=8, backoff_base=2, backoff_cap=3):
        s._init_params(payload_nbits, seq_bits, max_retries,
                       timeout, backoff_base, backoff_cap)
        s.proto = {"state": _IDLE, "seq": 0, "pay": 0,
                   "attempt": 0, "timer": 0}

        @s.tick_fl
        def sender_fl():
            p = s.proto
            if s.reset.uint():
                p.update(state=_IDLE, seq=0, pay=0, attempt=0, timer=0)
                s.in_.rdy.next = 0
                s.frame.val.next = 0
                s.ack.rdy.next = 1
                return
            st0 = p["state"]
            # Frame accepted by the channel on the last edge?
            if st0 == _SEND and s.frame.val.uint() \
                    and s.frame.rdy.uint():
                p["state"] = _WAIT
                p["timer"] = s.timeout
                s.ctr_sent.incr()
            # Ack words are consumed every cycle (rdy is always 1).
            if s.ack.val.uint():
                ok, kind, aseq = s._parse_ack(s.ack.msg.uint())
                if not ok:
                    s.ctr_ack_crc.incr()
                elif p["state"] != _IDLE and aseq == p["seq"]:
                    if kind == _ACK:
                        p["state"] = _IDLE
                        p["seq"] = (p["seq"] + 1) & s.seq_mask
                        p["attempt"] = 0
                        s.ctr_acked.incr()
                    else:
                        s._retry(p)
            # Timers advance only in a state no event just changed.
            if p["state"] == st0:
                if st0 == _WAIT:
                    p["timer"] -= 1
                    if p["timer"] <= 0:
                        s.ctr_timeouts.incr()
                        s._retry(p)
                elif st0 == _BACKOFF:
                    p["timer"] -= 1
                    if p["timer"] <= 0:
                        p["state"] = _SEND
            # New payload latched on the last edge?
            if p["state"] == _IDLE and s.in_.val.uint() \
                    and s.in_.rdy.uint():
                p["pay"] = s.in_.msg.uint()
                p["state"] = _SEND
            s.in_.rdy.next = 1 if p["state"] == _IDLE else 0
            s.frame.val.next = 1 if p["state"] == _SEND else 0
            s.frame.msg.next = pack_frame(
                p["seq"], p["pay"], s.seq_bits, s.payload_nbits)
            s.ack.rdy.next = 1

    def _retry(s, p):
        p["attempt"] += 1
        if p["attempt"] > s.max_retries:
            s.ctr_giveups.incr()
            p["state"] = _IDLE
            p["seq"] = (p["seq"] + 1) & s.seq_mask
            p["attempt"] = 0
        else:
            s.ctr_retries.incr()
            p["state"] = _BACKOFF
            p["timer"] = s._backoff(p["attempt"])

    def is_idle(s):
        return s.proto["state"] == _IDLE

    def line_trace(s):
        return f"S{s.proto['state']}"


class SenderCL(Model, _SenderParams):
    """Cycle-level sender: flat integer state, registered outputs
    (SimJIT-CL-style int state, RouterCL idiom)."""

    def __init__(s, payload_nbits, seq_bits=4, max_retries=16,
                 timeout=8, backoff_base=2, backoff_cap=3):
        s._init_params(payload_nbits, seq_bits, max_retries,
                       timeout, backoff_base, backoff_cap)
        s.st = _IDLE
        s.seq = 0
        s.pay = 0
        s.att = 0
        s.tmr = 0

        @s.tick_cl
        def sender_cl():
            if s.reset.uint():
                s.st = _IDLE
                s.seq = 0
                s.pay = 0
                s.att = 0
                s.tmr = 0
                s.in_.rdy.next = 0
                s.frame.val.next = 0
                s.ack.rdy.next = 1
            else:
                st0 = s.st
                if st0 == _SEND and s.frame.val.uint() \
                        and s.frame.rdy.uint():
                    s.st = _WAIT
                    s.tmr = s.timeout
                    s.ctr_sent.incr()
                if s.ack.val.uint():
                    ok, kind, aseq = s._parse_ack(s.ack.msg.uint())
                    if not ok:
                        s.ctr_ack_crc.incr()
                    elif s.st != _IDLE and aseq == s.seq:
                        if kind == _ACK:
                            s.st = _IDLE
                            s.seq = (s.seq + 1) & s.seq_mask
                            s.att = 0
                            s.ctr_acked.incr()
                        else:
                            s._retry_cl()
                if s.st == st0:
                    if st0 == _WAIT:
                        s.tmr = s.tmr - 1
                        if s.tmr <= 0:
                            s.ctr_timeouts.incr()
                            s._retry_cl()
                    elif st0 == _BACKOFF:
                        s.tmr = s.tmr - 1
                        if s.tmr <= 0:
                            s.st = _SEND
                if s.st == _IDLE and s.in_.val.uint() \
                        and s.in_.rdy.uint():
                    s.pay = s.in_.msg.uint()
                    s.st = _SEND
                s.in_.rdy.next = 1 if s.st == _IDLE else 0
                s.frame.val.next = 1 if s.st == _SEND else 0
                s.frame.msg.next = pack_frame(
                    s.seq, s.pay, s.seq_bits, s.payload_nbits)
                s.ack.rdy.next = 1

    def _retry_cl(s):
        s.att = s.att + 1
        if s.att > s.max_retries:
            s.ctr_giveups.incr()
            s.st = _IDLE
            s.seq = (s.seq + 1) & s.seq_mask
            s.att = 0
        else:
            s.ctr_retries.incr()
            s.st = _BACKOFF
            s.tmr = s._backoff(s.att)

    def is_idle(s):
        return s.st == _IDLE

    def line_trace(s):
        return f"S{s.st}"


class SenderRTL(Model, _SenderParams):
    """RTL sender: a Moore FSM in ``Wire`` registers with a
    combinational output decode (immediate, un-registered outputs)."""

    def __init__(s, payload_nbits, seq_bits=4, max_retries=16,
                 timeout=8, backoff_base=2, backoff_cap=3):
        s._init_params(payload_nbits, seq_bits, max_retries,
                       timeout, backoff_base, backoff_cap)
        s.r_state = Wire(2)
        s.r_seq = Wire(seq_bits)
        s.r_pay = Wire(payload_nbits)
        s.r_att = Wire(6)
        s.r_tmr = Wire(8)

        @s.combinational
        def sender_out():
            st = s.r_state.uint()
            s.in_.rdy.value = 1 if st == _IDLE else 0
            s.frame.val.value = 1 if st == _SEND else 0
            s.frame.msg.value = pack_frame(
                s.r_seq.uint(), s.r_pay.uint(),
                s.seq_bits, s.payload_nbits)
            s.ack.rdy.value = 1

        @s.tick_rtl
        def sender_seq():
            if s.reset.uint():
                s.r_state.next = _IDLE
                s.r_seq.next = 0
                s.r_pay.next = 0
                s.r_att.next = 0
                s.r_tmr.next = 0
            else:
                st = st0 = s.r_state.uint()
                seq = s.r_seq.uint()
                att = s.r_att.uint()
                tmr = s.r_tmr.uint()
                if st == _SEND and s.frame.rdy.uint():
                    # frame.val is combinational (st == SEND), so rdy
                    # alone completes the handshake this edge.
                    st = _WAIT
                    tmr = s.timeout
                    s.ctr_sent.incr()
                if s.ack.val.uint():
                    ok, kind, aseq = s._parse_ack(s.ack.msg.uint())
                    if not ok:
                        s.ctr_ack_crc.incr()
                    elif st != _IDLE and aseq == seq:
                        if kind == _ACK:
                            st = _IDLE
                            seq = (seq + 1) & s.seq_mask
                            att = 0
                            s.ctr_acked.incr()
                        else:
                            st, seq, att, tmr = s._retry_rtl(
                                seq, att)
                if st == st0:
                    if st0 == _WAIT:
                        tmr = tmr - 1
                        if tmr <= 0:
                            s.ctr_timeouts.incr()
                            st, seq, att, tmr = s._retry_rtl(
                                seq, att)
                    elif st0 == _BACKOFF:
                        tmr = tmr - 1
                        if tmr <= 0:
                            st = _SEND
                            tmr = 0
                if st0 == _IDLE and s.in_.val.uint():
                    # in_.rdy is combinational on the *registered*
                    # state, so a handshake only happened this edge if
                    # the cycle started in IDLE (st0, not st).
                    s.r_pay.next = s.in_.msg.uint()
                    st = _SEND
                s.r_state.next = st
                s.r_seq.next = seq
                s.r_att.next = att
                s.r_tmr.next = max(tmr, 0)

    def _retry_rtl(s, seq, att):
        att = att + 1
        if att > s.max_retries:
            s.ctr_giveups.incr()
            return _IDLE, (seq + 1) & s.seq_mask, 0, 0
        s.ctr_retries.incr()
        return _BACKOFF, seq, att, s._backoff(att)

    def is_idle(s):
        return int(s.r_state.value) == _IDLE

    def line_trace(s):
        return f"S{int(s.r_state.value)}"


class _ReceiverParams:
    def _init_params(s, payload_nbits, seq_bits):
        s.payload_nbits = payload_nbits
        s.seq_bits = seq_bits
        s.seq_mask = (1 << seq_bits) - 1
        s.frame_nbits = CRC_BITS + seq_bits + payload_nbits
        s.ack_nbits = CRC_BITS + 1 + seq_bits
        s.frame = InValRdyBundle(s.frame_nbits)
        s.out = OutValRdyBundle(payload_nbits)
        s.ack_o = OutValRdyBundle(s.ack_nbits)
        s.ctr_delivered = s.counter(
            "delivered", "in-sequence payloads delivered downstream")
        s.ctr_dups = s.counter(
            "dup_frames", "duplicate frames re-acked, not redelivered")
        s.ctr_crc = s.counter(
            "crc_drops", "frames rejected for CRC failure (NACKed)")

    def _parse_frame(s, word):
        """(crc_ok, seq, payload) of a received frame word."""
        body_bits = s.seq_bits + s.payload_nbits
        body = word & ((1 << body_bits) - 1)
        ok = (word >> body_bits) == crc8(body, body_bits)
        return (ok, (body >> s.payload_nbits) & s.seq_mask,
                body & ((1 << s.payload_nbits) - 1))


class ReceiverFL(Model, _ReceiverParams):
    """Functional-level receiver: dict state, behavioral tick."""

    def __init__(s, payload_nbits, seq_bits=4):
        s._init_params(payload_nbits, seq_bits)
        s.proto = {"expect": 0}

        @s.tick_fl
        def receiver_fl():
            if s.reset.uint():
                s.proto["expect"] = 0
                s.out.val.next = 0
                s.ack_o.val.next = 0
                s.frame.rdy.next = 0
                return
            out_p = bool(s.out.val.uint()) \
                and not s.out.rdy.uint()
            if s.out.val.uint() and s.out.rdy.uint():
                s.out.val.next = 0
            ack_p = bool(s.ack_o.val.uint()) \
                and not s.ack_o.rdy.uint()
            if s.ack_o.val.uint() and s.ack_o.rdy.uint():
                s.ack_o.val.next = 0
            if s.frame.val.uint() and s.frame.rdy.uint():
                ok, fseq, pay = s._parse_frame(s.frame.msg.uint())
                if not ok:
                    s.ctr_crc.incr()
                    s.ack_o.msg.next = pack_ack(
                        _NACK, s.proto["expect"], s.seq_bits)
                elif fseq == s.proto["expect"]:
                    s.out.msg.next = pay
                    s.out.val.next = 1
                    out_p = True
                    s.proto["expect"] = (fseq + 1) & s.seq_mask
                    s.ctr_delivered.incr()
                    s.ack_o.msg.next = pack_ack(
                        _ACK, fseq, s.seq_bits)
                else:
                    s.ctr_dups.incr()
                    s.ack_o.msg.next = pack_ack(
                        _ACK, fseq, s.seq_bits)
                s.ack_o.val.next = 1
                ack_p = True
            s.frame.rdy.next = 0 if (out_p or ack_p) else 1

    def is_idle(s):
        return not int(s.out.val.value) and not int(s.ack_o.val.value)

    def line_trace(s):
        return f"R{s.proto['expect']}"


class ReceiverCL(Model, _ReceiverParams):
    """Cycle-level receiver: int state, registered outputs."""

    def __init__(s, payload_nbits, seq_bits=4):
        s._init_params(payload_nbits, seq_bits)
        s.expect = 0

        @s.tick_cl
        def receiver_cl():
            if s.reset.uint():
                s.expect = 0
                s.out.val.next = 0
                s.ack_o.val.next = 0
                s.frame.rdy.next = 0
            else:
                out_p = 1 if (s.out.val.uint()
                              and not s.out.rdy.uint()) else 0
                if s.out.val.uint() and s.out.rdy.uint():
                    s.out.val.next = 0
                ack_p = 1 if (s.ack_o.val.uint()
                              and not s.ack_o.rdy.uint()) else 0
                if s.ack_o.val.uint() and s.ack_o.rdy.uint():
                    s.ack_o.val.next = 0
                if s.frame.val.uint() and s.frame.rdy.uint():
                    ok, fseq, pay = s._parse_frame(
                        s.frame.msg.uint())
                    if not ok:
                        s.ctr_crc.incr()
                        s.ack_o.msg.next = pack_ack(
                            _NACK, s.expect, s.seq_bits)
                    elif fseq == s.expect:
                        s.out.msg.next = pay
                        s.out.val.next = 1
                        out_p = 1
                        s.expect = (fseq + 1) & s.seq_mask
                        s.ctr_delivered.incr()
                        s.ack_o.msg.next = pack_ack(
                            _ACK, fseq, s.seq_bits)
                    else:
                        s.ctr_dups.incr()
                        s.ack_o.msg.next = pack_ack(
                            _ACK, fseq, s.seq_bits)
                    s.ack_o.val.next = 1
                    ack_p = 1
                s.frame.rdy.next = 0 if (out_p or ack_p) else 1

    def is_idle(s):
        return not int(s.out.val.value) and not int(s.ack_o.val.value)

    def line_trace(s):
        return f"R{s.expect}"


class ReceiverRTL(Model, _ReceiverParams):
    """RTL receiver: ``Wire`` registers holding the pending offers,
    combinational decode of ``frame.rdy`` and the output channels."""

    def __init__(s, payload_nbits, seq_bits=4):
        s._init_params(payload_nbits, seq_bits)
        s.r_expect = Wire(seq_bits)
        s.r_oval = Wire(1)
        s.r_omsg = Wire(payload_nbits)
        s.r_aval = Wire(1)
        s.r_amsg = Wire(s.ack_nbits)

        @s.combinational
        def receiver_out():
            s.out.val.value = s.r_oval.uint()
            s.out.msg.value = s.r_omsg.uint()
            s.ack_o.val.value = s.r_aval.uint()
            s.ack_o.msg.value = s.r_amsg.uint()
            s.frame.rdy.value = (not s.r_oval.uint()) \
                and (not s.r_aval.uint()) and (not s.reset.uint())

        @s.tick_rtl
        def receiver_seq():
            if s.reset.uint():
                s.r_expect.next = 0
                s.r_oval.next = 0
                s.r_aval.next = 0
            else:
                if s.r_oval.uint() and s.out.rdy.uint():
                    s.r_oval.next = 0
                if s.r_aval.uint() and s.ack_o.rdy.uint():
                    s.r_aval.next = 0
                if s.frame.val.uint() and s.frame.rdy.uint():
                    ok, fseq, pay = s._parse_frame(
                        s.frame.msg.uint())
                    if not ok:
                        s.ctr_crc.incr()
                        s.r_amsg.next = pack_ack(
                            _NACK, s.r_expect.uint(), s.seq_bits)
                    elif fseq == s.r_expect.uint():
                        s.r_omsg.next = pay
                        s.r_oval.next = 1
                        s.r_expect.next = (fseq + 1) & s.seq_mask
                        s.ctr_delivered.incr()
                        s.r_amsg.next = pack_ack(
                            _ACK, fseq, s.seq_bits)
                    else:
                        s.ctr_dups.incr()
                        s.r_amsg.next = pack_ack(
                            _ACK, fseq, s.seq_bits)
                    s.r_aval.next = 1

    def is_idle(s):
        return not int(s.r_oval.value) and not int(s.r_aval.value)

    def line_trace(s):
        return f"R{int(s.r_expect.value)}"


_SENDERS = {"fl": SenderFL, "cl": SenderCL, "rtl": SenderRTL}
_RECEIVERS = {"fl": ReceiverFL, "cl": ReceiverCL, "rtl": ReceiverRTL}


class ResilientLink(Model):
    """Reliable transport over two unreliable channels.

    ::

        in_ -> sender -> fwd(UnreliableChannel) -> receiver -> out
                  ^                                    |
                  +------ rev(UnreliableChannel) <-- ack

    ``level`` picks the sender/receiver modeling level (``"fl"``,
    ``"cl"``, ``"rtl"``); the two channels are always the same
    structural model so a fault schedule addressed as ``"fwd.f_drop"``
    etc. hits every level identically.
    """

    def __init__(s, payload_nbits=16, level="rtl", seq_bits=4,
                 max_retries=16, timeout=8, backoff_base=2,
                 backoff_cap=3):
        if level not in _SENDERS:
            raise ValueError(
                f"level must be one of {sorted(_SENDERS)}; "
                f"got {level!r}")
        s.payload_nbits = payload_nbits
        s.level = level
        s.in_ = InValRdyBundle(payload_nbits)
        s.out = OutValRdyBundle(payload_nbits)

        s.sender = _SENDERS[level](
            payload_nbits, seq_bits=seq_bits, max_retries=max_retries,
            timeout=timeout, backoff_base=backoff_base,
            backoff_cap=backoff_cap)
        s.receiver = _RECEIVERS[level](payload_nbits,
                                       seq_bits=seq_bits)
        s.fwd = UnreliableChannel(s.sender.frame_nbits)
        s.rev = UnreliableChannel(s.sender.ack_nbits)

        s.connect(s.in_, s.sender.in_)
        s.connect(s.sender.frame, s.fwd.in_)
        s.connect(s.fwd.out, s.receiver.frame)
        s.connect(s.receiver.out, s.out)
        s.connect(s.receiver.ack_o, s.rev.in_)
        s.connect(s.rev.out, s.sender.ack)

    def is_idle(s):
        """True when no payload, frame, or ack is anywhere in flight."""
        return (s.sender.is_idle() and s.receiver.is_idle()
                and not int(s.fwd.full.value)
                and not int(s.rev.full.value))

    def line_trace(s):
        return (f"{s.in_.to_str()} {s.sender.line_trace()}"
                f"{s.fwd.line_trace()}{s.receiver.line_trace()}"
                f"{s.rev.line_trace()} {s.out.to_str()}")
