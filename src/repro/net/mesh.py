"""Structural mesh network, parameterized by router type.

A direct reproduction of paper Figure 11: the network is composed
structurally from ``nrouters`` router instances whose class is passed
in as a parameter, so the same top-level code instantiates FL, CL, or
RTL meshes (and mixed ones) — the key multi-level-modeling trick of
Section III-D.
"""

from __future__ import annotations

from math import sqrt

from ..core import InValRdyBundle, Model, OutValRdyBundle
from .msgs import NetMsg


class MeshNetworkStructural(Model):
    """2-D mesh composed of ``RouterType`` instances (paper Figure 11)."""

    def __init__(s, RouterType, nrouters, nmsgs, data_nbits, nentries):
        # ensure nrouters is a perfect square
        assert sqrt(nrouters) % 1 == 0

        s.RouterType = RouterType
        s.nrouters = nrouters
        s.params = [nrouters, nmsgs, data_nbits, nentries]

        net_msg = NetMsg(nrouters, nmsgs, data_nbits)
        s.msg_type = net_msg
        s.in_ = InValRdyBundle[nrouters](net_msg)
        s.out = OutValRdyBundle[nrouters](net_msg)

        # instantiate routers
        R = s.RouterType
        s.routers = [R(x, *s.params) for x in range(s.nrouters)]

        # connect injection terminals
        for i in range(s.nrouters):
            s.connect(s.in_[i], s.routers[i].in_[R.TERM])
            s.connect(s.out[i], s.routers[i].out[R.TERM])

        # connect mesh routers
        nrouters_1d = int(sqrt(s.nrouters))
        for j in range(nrouters_1d):
            for i in range(nrouters_1d):
                idx = i + j * nrouters_1d
                cur = s.routers[idx]
                if i + 1 < nrouters_1d:
                    east = s.routers[idx + 1]
                    s.connect(cur.out[R.EAST], east.in_[R.WEST])
                    s.connect(cur.in_[R.EAST], east.out[R.WEST])
                if j + 1 < nrouters_1d:
                    south = s.routers[idx + nrouters_1d]
                    s.connect(cur.out[R.SOUTH], south.in_[R.NORTH])
                    s.connect(cur.in_[R.SOUTH], south.out[R.NORTH])

    def line_trace(s):
        return "|".join(r.line_trace() for r in s.routers)
