"""Network message type (paper Figures 10-11's ``NetMsg``)."""

from __future__ import annotations

from ..core import bw, mk_bitstruct


def NetMsg(nrouters, nmsgs, data_nbits):
    """Create a network message BitStruct parameterized like the
    paper's ``NetMsg(nrouters, nmsgs, payload_nbits)``.

    Fields (MSB first): ``dest``, ``src`` (router ids), ``opaque``
    (sequence number, ``clog2(nmsgs)`` bits), ``payload``.
    """
    id_bits = bw(nrouters)
    seq_bits = bw(nmsgs)
    return mk_bitstruct(
        f"NetMsg_{nrouters}_{nmsgs}_{data_nbits}",
        [
            ("dest", id_bits),
            ("src", id_bits),
            ("opaque", seq_bits),
            ("payload", data_nbits),
        ],
    )
