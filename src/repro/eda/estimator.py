"""Analytic area/energy/timing estimation for RTL models.

This is the documented substitution for the paper's Synopsys EDA flow
(Figure 5b): since no synthesis tools are available offline, we
estimate post-synthesis metrics from the elaborated RTL itself using a
NAND2-gate-equivalent (GE) model:

- **Area**: every register bit costs a flip-flop GE; combinational
  logic is costed by walking each behavioral block's IR and charging
  per-operator GE as a function of operand width (ripple-carry adders,
  array multipliers, mux trees for dynamic indexing, ...).  Large
  storage arrays get an SRAM discount.
- **Timing**: each combinational block's delay is the maximum
  expression depth in gate levels; the cycle time is the longest path
  through the comb-block dependency graph plus flop overhead.
- **Energy**: switched-capacitance proxy — GE count x activity factor
  x energy per gate toggle.

Absolute numbers are arbitrary-but-consistent; the paper's Figure 5b
claims are *relative* (accelerator adds ~4% area, ~5% cycle time), and
a consistent GE model preserves relative comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.ast_ir import (
    AssignLocal,
    AssignSig,
    BinOp,
    BoolOp,
    Cmp,
    Const,
    DeclLocalArray,
    For,
    If,
    IfExp,
    LocalRead,
    SigRead,
    StateRead,
    TranslationError,
    UnOp,
    translate_block,
)
from ..core.elaboration import elaborate

# -- technology constants (NAND2-equivalent model) ---------------------------

GE_FLOP = 6.0                 # D flip-flop, per bit
GE_SRAM_BIT = 1.2             # dense array storage, per bit
SRAM_THRESHOLD_BITS = 1024    # arrays above this use the SRAM model
GE_AREA_UM2 = 0.8             # um^2 per GE (generic planar node)
GATE_DELAY_PS = 15.0          # one logic level
FLOP_OVERHEAD_LEVELS = 3.0    # clk-to-q + setup, in levels
ACTIVITY_FACTOR = 0.10
ENERGY_PER_GE_TOGGLE_FJ = 0.6


@dataclass
class ModuleEstimate:
    """Per-module area/timing contribution."""

    name: str
    kind: str
    reg_bits: int = 0
    sram_bits: int = 0
    comb_ge: float = 0.0
    delay_levels: float = 0.0

    @property
    def area_ge(self):
        return (self.reg_bits * GE_FLOP
                + self.sram_bits * GE_SRAM_BIT
                + self.comb_ge)


@dataclass
class EdaReport:
    """Whole-design estimate (the Figure 5b stand-in)."""

    modules: list = field(default_factory=list)

    @property
    def area_ge(self):
        return sum(m.area_ge for m in self.modules)

    @property
    def area_um2(self):
        return self.area_ge * GE_AREA_UM2

    @property
    def area_mm2(self):
        return self.area_um2 / 1e6

    @property
    def critical_path_levels(self):
        return max((m.delay_levels for m in self.modules), default=0.0) \
            + FLOP_OVERHEAD_LEVELS

    @property
    def cycle_time_ps(self):
        return self.critical_path_levels * GATE_DELAY_PS

    @property
    def max_frequency_mhz(self):
        return 1e6 / self.cycle_time_ps

    @property
    def energy_per_cycle_pj(self):
        return (self.area_ge * ACTIVITY_FACTOR
                * ENERGY_PER_GE_TOGGLE_FJ) / 1000.0

    def by_module_class(self):
        """Aggregate area per model class name."""
        totals = {}
        for m in self.modules:
            totals[m.kind] = totals.get(m.kind, 0.0) + m.area_ge
        return totals

    def summary(self):
        lines = [
            f"area           : {self.area_ge:10.0f} GE "
            f"({self.area_mm2:.4f} mm2)",
            f"critical path  : {self.critical_path_levels:10.1f} levels "
            f"({self.cycle_time_ps:.0f} ps, "
            f"{self.max_frequency_mhz:.0f} MHz)",
            f"energy/cycle   : {self.energy_per_cycle_pj:10.2f} pJ",
        ]
        return "\n".join(lines)


def estimate(model):
    """Estimate area/energy/timing for an elaborated RTL design."""
    if not model.is_elaborated():
        elaborate(model)
    report = EdaReport()
    for sub in model._all_models:
        report.modules.append(_estimate_module(sub))
    return report


def _estimate_module(model):
    est = ModuleEstimate(name=model.full_name(),
                         kind=type(model).__name__)

    # Register/array bits: signals written via .next.
    flopped = {}
    irs = []
    for blk in model.get_comb_blocks():
        irs.append(("comb", _lower(model, blk, "comb")))
    for blk in model.get_tick_blocks():
        kind = "tick_cl" if blk.level in ("cl", "fl") else "tick_rtl"
        irs.append(("tick", _lower(model, blk, kind)))

    for kind, ir in irs:
        if ir is None:
            continue
        if kind == "tick":
            for ref in ir.sig_writes:
                for sig in ref.signals:
                    flopped[id(sig)] = sig.nbits

    # Array-shaped storage gets the SRAM model when large.
    array_bits = _array_bits(model, flopped)
    plain_bits = sum(flopped.values()) - array_bits["flop_covered"]
    est.reg_bits = max(0, plain_bits) + array_bits["small"]
    est.sram_bits = array_bits["large"]

    # Combinational cost + depth per block.
    for kind, ir in irs:
        if ir is None:
            continue
        ge, depth = _block_cost(ir.body)
        est.comb_ge += ge
        est.delay_levels = max(est.delay_levels, depth)
    return est


def _lower(model, blk, kind):
    try:
        return translate_block(model, blk, kind)
    except TranslationError:
        # FL-style blocks have no hardware estimate.
        return None


def _array_bits(model, flopped):
    """Classify flopped bits belonging to signal-list attributes."""
    from ..core.signals import Signal
    small = large = covered = 0
    for name, attr in model.__dict__.items():
        if name.startswith("_") or not isinstance(attr, list):
            continue
        sigs = [x for x in attr if isinstance(x, Signal)]
        if not sigs or len(sigs) != len(attr):
            continue
        bits = sum(s.nbits for s in sigs if id(s) in flopped)
        if not bits:
            continue
        covered += bits
        if bits >= SRAM_THRESHOLD_BITS:
            large += bits
        else:
            small += bits
    return {"small": small, "large": large, "flop_covered": covered}


# -- per-operator models -------------------------------------------------------


def _op_ge(op, width):
    if op in ("+", "-"):
        return 7.0 * width
    if op == "*":
        return 5.0 * width * width / 8.0
    if op in ("//", "%"):
        return 12.0 * width * width / 8.0
    if op in ("&", "|", "^"):
        return 1.0 * width
    if op in ("<<", ">>"):
        return 3.0 * width * max(1.0, math.log2(max(2, width)))
    raise ValueError(op)


def _op_levels(op, width):
    lg = math.log2(max(2, width))
    if op in ("+", "-"):
        return lg + 2
    if op == "*":
        return 2 * lg + 4
    if op in ("//", "%"):
        return 4 * lg + 8
    if op in ("&", "|", "^"):
        return 1
    if op in ("<<", ">>"):
        return lg
    raise ValueError(op)


def _expr_cost(node):
    """Return (ge, depth_levels, width) of an expression."""
    if isinstance(node, Const):
        return 0.0, 0.0, max(1, node.value.bit_length())
    if isinstance(node, SigRead):
        ref = node.ref
        width = ref.width
        if ref.is_dynamic():
            ge_i, d_i, _ = _expr_cost(ref.index)
            n = len(ref.signals)
            return (ge_i + 2.5 * width * n,
                    d_i + math.log2(max(2, n)), width)
        return 0.0, 0.0, width
    if isinstance(node, (LocalRead, StateRead)):
        extra = (0.0, 0.0)
        if getattr(node, "index", None) is not None:
            ge_i, d_i, _ = _expr_cost(node.index)
            extra = (ge_i + 32.0, d_i + 2)
        return extra[0], extra[1], 32
    if isinstance(node, BinOp):
        ge_l, d_l, w_l = _expr_cost(node.left)
        ge_r, d_r, w_r = _expr_cost(node.right)
        width = max(w_l, w_r)
        # Constant shifts are wiring.
        if node.op in ("<<", ">>") and isinstance(node.right, Const):
            return ge_l + ge_r, max(d_l, d_r), width
        return (ge_l + ge_r + _op_ge(node.op, width),
                max(d_l, d_r) + _op_levels(node.op, width), width)
    if isinstance(node, UnOp):
        ge, depth, width = _expr_cost(node.operand)
        return ge + width * 0.5, depth + 1, width
    if isinstance(node, Cmp):
        ge_l, d_l, w_l = _expr_cost(node.left)
        ge_r, d_r, w_r = _expr_cost(node.right)
        width = max(w_l, w_r)
        if node.op in ("==", "!="):
            ge, lv = 1.5 * width, math.log2(max(2, width)) + 1
        else:
            ge, lv = 7.0 * width, math.log2(max(2, width)) + 2
        return ge_l + ge_r + ge, max(d_l, d_r) + lv, 1
    if isinstance(node, BoolOp):
        parts = [_expr_cost(v) for v in node.values]
        return (sum(p[0] for p in parts) + len(parts),
                max(p[1] for p in parts) + 1, 1)
    if isinstance(node, IfExp):
        ge_c, d_c, _ = _expr_cost(node.cond)
        ge_t, d_t, w_t = _expr_cost(node.then)
        ge_e, d_e, w_e = _expr_cost(node.orelse)
        width = max(w_t, w_e)
        return (ge_c + ge_t + ge_e + 2.5 * width,
                max(d_c, d_t, d_e) + 1, width)
    return 0.0, 0.0, 1


def _block_cost(stmts, mux_depth=0):
    """Return (ge, max_depth) of a statement list."""
    total_ge = 0.0
    max_depth = 0.0
    for stmt in stmts:
        if isinstance(stmt, AssignSig):
            ge, depth, _ = _expr_cost(stmt.expr)
            width = stmt.ref.width
            # Writes under conditionals imply enable/select muxing.
            ge += 2.5 * width * max(1, mux_depth)
            if stmt.ref.is_dynamic():
                ge += 1.0 * len(stmt.ref.signals) * width
            total_ge += ge
            max_depth = max(max_depth, depth + mux_depth)
        elif isinstance(stmt, AssignLocal):
            ge, depth, _ = _expr_cost(stmt.expr)
            total_ge += ge
            max_depth = max(max_depth, depth + mux_depth)
        elif isinstance(stmt, If):
            ge_c, d_c, _ = _expr_cost(stmt.cond)
            total_ge += ge_c + 1
            ge_b, d_b = _block_cost(stmt.body, mux_depth + 1)
            ge_e, d_e = _block_cost(stmt.orelse, mux_depth + 1)
            total_ge += ge_b + ge_e
            max_depth = max(max_depth, d_c + mux_depth, d_b, d_e)
        elif isinstance(stmt, For):
            trips = max(
                0, (stmt.stop - stmt.start + stmt.step - 1) // stmt.step)
            ge_b, d_b = _block_cost(stmt.body, mux_depth)
            total_ge += ge_b * trips
            max_depth = max(max_depth, d_b)
        elif isinstance(stmt, DeclLocalArray):
            pass
    return total_ge, max_depth
