"""Analytic EDA estimation (area / energy / timing) for RTL designs —
the documented substitution for the paper's Synopsys flow."""

from .estimator import EdaReport, ModuleEstimate, estimate

__all__ = ["estimate", "EdaReport", "ModuleEstimate"]
