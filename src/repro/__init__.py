"""repro: reproduction of PyMTL (Lockhart, Zibrat, Batten — MICRO-47 2014).

A unified framework for functional-level (FL), cycle-level (CL), and
register-transfer-level (RTL) hardware modeling in Python, including:

- a concurrent-structural domain-specific embedded language
  (:mod:`repro.core`);
- an event-driven simulator (:class:`repro.core.SimulationTool`);
- a Verilog-2001 translator (:class:`repro.core.TranslationTool`);
- SimJIT specializers that compile CL/RTL models to C for fast
  simulation (:mod:`repro.core.simjit`);
- a component library, test memories and caches, a small RISC
  processor, a dot-product accelerator, and a mesh on-chip network —
  each at multiple abstraction levels.

Quickstart::

    from repro import Model, InPort, OutPort, SimulationTool

    class Register(Model):
        def __init__(s, nbits):
            s.in_ = InPort(nbits)
            s.out = OutPort(nbits)

            @s.tick_rtl
            def seq_logic():
                s.out.next = s.in_.value

    model = Register(8).elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_.value = 42
    sim.cycle()
    assert model.out == 42
"""

from .core import (
    Bits,
    BitStruct,
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    ElaborationError,
    Field,
    InPort,
    InValRdyBundle,
    ListMemPortAdapter,
    Model,
    OutPort,
    OutValRdyBundle,
    ParentReqRespBundle,
    ParentReqRespQueueAdapter,
    PortBundle,
    Queue,
    ReqRespMsgTypes,
    SimulationError,
    SimulationTool,
    Signal,
    Wire,
    bw,
    clog2,
    concat,
    elaborate,
    mk_bitstruct,
    sext,
    zext,
)

from .core.translation import TranslationTool, translate
from .core.simjit import SimJITCL, SimJITRTL, auto_specialize
from .resilience import (
    CheckpointRing,
    LinkFaultInjector,
    ResilienceWarning,
    SEUInjector,
    StuckAtFault,
    Watchdog,
    WatchdogTimeout,
    specialize_or_fallback,
)
from .telemetry import (
    Telemetry,
    TelemetryReport,
    TxTracer,
    set_enabled as set_telemetry_enabled,
    enabled as telemetry_enabled,
)
from .observe import (
    FlightRecorder,
    RecorderWindow,
    Watchpoint,
    WatchpointHit,
    rose,
    fell,
    changed,
    value_is,
    when,
    stable_for,
    implies_within,
    export_bundle,
    load_bundle,
)

__version__ = "0.1.0"

__all__ = [
    "Bits", "BitStruct", "Field", "mk_bitstruct",
    "InPort", "OutPort", "Signal", "Wire",
    "Model", "elaborate", "ElaborationError",
    "SimulationTool", "SimulationError",
    "PortBundle", "InValRdyBundle", "OutValRdyBundle",
    "ChildReqRespBundle", "ParentReqRespBundle", "ReqRespMsgTypes",
    "ChildReqRespQueueAdapter", "ParentReqRespQueueAdapter",
    "ListMemPortAdapter", "Queue",
    "bw", "clog2", "concat", "sext", "zext",
    "TranslationTool", "translate",
    "SimJITRTL", "SimJITCL", "auto_specialize",
    "Telemetry", "TelemetryReport", "TxTracer",
    "set_telemetry_enabled", "telemetry_enabled",
    "ResilienceWarning", "SEUInjector", "StuckAtFault",
    "LinkFaultInjector", "CheckpointRing",
    "Watchdog", "WatchdogTimeout", "specialize_or_fallback",
    "FlightRecorder", "RecorderWindow",
    "Watchpoint", "WatchpointHit",
    "rose", "fell", "changed", "value_is", "when",
    "stable_for", "implies_within",
    "export_bundle", "load_bundle",
    "__version__",
]
