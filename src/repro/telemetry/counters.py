"""Hardware performance counters and histograms.

Models declare counters in their constructors through the
:class:`~repro.core.model.Model` API::

    s.hits = s.counter("hits", "read hits")          # python-kind
    s.ctr_insts = s.counter("insts", sig=s.instret)  # signal-backed
    s.ctr_flits = s.counter("f0", state=("nflits", 0))  # state-backed
    s.lat = s.histogram("lat", "load-use latency")

The elaborator collects every declared counter hierarchically (see
``top._all_counters``) and ``sim.telemetry.report()`` aggregates them
per-instance and per-subtree.  Three counter kinds cover the three
modeling substrates:

``python``
    A plain accumulator bumped with :meth:`Counter.incr` from FL/CL
    tick code.  Increments are ordinary Python, so the elaborator's
    tick analysis automatically keeps such blocks un-gated — the count
    is exact in event mode, static mode, and inside the compiled
    mega-cycle kernel.

``signal``
    Backed by a ``Wire`` the model already increments in RTL tick
    logic.  The counter holds no state of its own; reading it reads
    the wire.  Because the wire is in its own read set, an
    activity-gated tick that increments it re-triggers itself, so
    totals match event mode bit-for-bit — and the increment logic is
    compiled into the mega-cycle kernel and SimJIT C code like any
    other register update.

``state``
    Backed by a plain int (or an element of a flat int list) on the
    model — the SimJIT-CL translatable subset.  ``state=("attr",)``
    reads ``model.attr``; ``state=("attr", i)`` reads
    ``model.attr[i]``.  After SimJIT specialization the read is
    redirected into the compiled instance struct.

Counters are incremented from **tick blocks only**: combinational
blocks may legitimately re-run several times per settle in event mode,
so a counter bumped there would not be mode-invariant.

The module-level enable switch implements the zero-overhead-when-
disabled contract: with :func:`set_enabled` ``(False)`` at
construction time, python-kind declarations return a shared
:class:`NullCounter` and models skip declaring telemetry-only logic,
so the elaborated design is structurally identical to one built before
this subsystem existed.

>>> c = Counter("hits", "read hits")
>>> c.incr(); c.incr(3)
>>> c.value
4
>>> int(c)
4
>>> h = Histogram("lat")
>>> for v in (3, 3, 7):
...     h.observe(v)
>>> h.count, h.total, h.mean
(3, 13, 4.333333333333333)
>>> h.bins_sorted()
[(3, 2), (7, 1)]
"""

from __future__ import annotations

__all__ = [
    "Counter", "Histogram", "NullCounter", "NULL_COUNTER",
    "NULL_HISTOGRAM", "enabled", "set_enabled",
]

_ENABLED = True


def enabled():
    """True when telemetry declaration is globally enabled."""
    return _ENABLED


def set_enabled(flag):
    """Globally enable/disable telemetry declaration.

    Takes effect at *model construction* time: models consult this
    switch when declaring counters and telemetry-only logic blocks.
    Returns the previous value so callers can restore it.
    """
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(flag)
    return prev


class Counter:
    """One named hardware event counter.

    ``sig`` and ``state`` select the backing storage (see module
    docstring); with neither, the counter is a plain Python
    accumulator driven by :meth:`incr`.
    """

    __slots__ = ("name", "desc", "owner", "_value", "_sig", "_state",
                 "_jit_read", "_jit_probe")

    def __init__(self, name, desc="", owner=None, sig=None, state=None):
        if sig is not None and state is not None:
            raise ValueError("a counter is sig- or state-backed, not both")
        if state is not None and owner is None:
            raise ValueError("state-backed counters need an owner model")
        self.name = name
        self.desc = desc
        self.owner = owner
        self._value = 0
        self._sig = sig
        if state is not None and len(state) == 1:
            state = (state[0], None)
        self._state = state
        self._jit_read = None       # set when the owner was SimJIT'ed
        # Bulk-readback address, set alongside _jit_read by the
        # specializer: (engine, kind, idx, elem) consumed by
        # SimJITEngine.read_probes so sim.telemetry.counters() reads
        # every compiled counter in one FFI call per engine.
        self._jit_probe = None

    @property
    def kind(self):
        if self._sig is not None:
            return "signal"
        if self._state is not None:
            return "state"
        return "python"

    def incr(self, n=1):
        """Add ``n`` events (python-kind counters only)."""
        if self._sig is not None or self._state is not None:
            raise TypeError(
                f"counter {self.name!r} is {self.kind}-backed; increment "
                "the backing storage in model logic instead")
        self._value += n

    @property
    def value(self):
        jit = self._jit_read
        if jit is not None:
            return jit()
        if self._sig is not None:
            return int(self._sig)
        if self._state is not None:
            attr, idx = self._state
            val = getattr(self.owner, attr)
            return int(val[idx]) if idx is not None else int(val)
        return self._value

    def __int__(self):
        return self.value

    __index__ = __int__

    def __repr__(self):
        return f"<Counter {self.name}={self.value} ({self.kind})>"


class Histogram:
    """Sparse histogram over integer-valued observations.

    Bins are exact values (sparse dict), which suits the quantities
    hardware telemetry observes — latencies, occupancies, burst
    lengths — where the support is small even when the range is not.

    A histogram may be *signal-backed* (``sig=``): the simulator then
    samples the signal's value once per cycle at the post-edge point,
    optionally gated by a one-bit enable signal (``when=``), so the
    model needs no Python observe calls.  Under SimJIT the binning is
    compiled into the C kernel and merged into ``bins`` lazily through
    ``_jit_sync`` — every read-side accessor syncs first, so the
    Python view is always exact.
    """

    __slots__ = ("name", "desc", "owner", "bins", "_sig", "_when",
                 "_jit_sync")

    def __init__(self, name, desc="", owner=None, sig=None, when=None):
        if when is not None and sig is None:
            raise ValueError(
                "histogram when= needs a sig= to sample")
        self.name = name
        self.desc = desc
        self.owner = owner
        self.bins = {}
        self._sig = sig
        self._when = when
        self._jit_sync = None   # set when binning was compiled (SimJIT)

    @property
    def kind(self):
        return "signal" if self._sig is not None else "python"

    def _sync(self):
        sync = self._jit_sync
        if sync is not None:
            sync()

    def observe(self, value, n=1):
        value = int(value)
        self.bins[value] = self.bins.get(value, 0) + n

    @property
    def count(self):
        self._sync()
        return sum(self.bins.values())

    @property
    def total(self):
        self._sync()
        return sum(v * n for v, n in self.bins.items())

    @property
    def mean(self):
        count = self.count
        return self.total / count if count else 0.0

    @property
    def min(self):
        self._sync()
        return min(self.bins) if self.bins else 0

    @property
    def max(self):
        self._sync()
        return max(self.bins) if self.bins else 0

    def percentile(self, p):
        """Smallest observed value covering fraction ``p`` of the mass.

        >>> h = Histogram("lat")
        >>> for v, n in [(1, 50), (2, 40), (10, 10)]:
        ...     h.observe(v, n)
        >>> h.percentile(0.5), h.percentile(0.9), h.percentile(0.99)
        (1, 2, 10)
        """
        self._sync()
        count = self.count
        if not count:
            return 0
        need = p * count
        seen = 0
        for value in sorted(self.bins):
            seen += self.bins[value]
            if seen >= need:
                return value
        return self.max

    def bins_sorted(self):
        """``[(value, count), ...]`` in ascending value order."""
        self._sync()
        return sorted(self.bins.items())

    def to_dict(self):
        """Exact summary dict — the ``repro-telemetry-v1`` histogram
        shape (count/mean/min/max plus the full sparse bin list), also
        the unit the fleet aggregator merges across worker processes.

        >>> h = Histogram("lat")
        >>> h.observe(3, 2); h.observe(7)
        >>> h.to_dict()["bins"]
        [[3, 2], [7, 1]]
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "bins": [[v, n] for v, n in self.bins_sorted()],
        }

    @classmethod
    def from_dict(cls, data, name="<merged>"):
        """Rebuild a histogram from :meth:`to_dict` output (the summary
        fields are recomputed from the bins, which carry the full
        information)."""
        hist = cls(name)
        for value, count in (data or {}).get("bins", ()):
            hist.observe(value, count)
        return hist

    def merge(self, other):
        """Fold another histogram (or a :meth:`to_dict` dict) into this
        one.  Bin-exact, so merging is associative and commutative —
        the property the fleet aggregator's determinism rests on.

        >>> a, b = Histogram("lat"), Histogram("lat")
        >>> a.observe(3); b.observe(3); b.observe(9)
        >>> a.merge(b); a.bins_sorted()
        [(3, 2), (9, 1)]
        """
        if isinstance(other, dict):
            pairs = other.get("bins", ())
        else:
            pairs = other.bins_sorted()
        for value, count in pairs:
            self.observe(value, count)

    def __repr__(self):
        return (f"<Histogram {self.name} n={self.count} "
                f"mean={self.mean:.2f}>")


class NullCounter:
    """No-op stand-in returned when telemetry is disabled.

    Supports the full declaration-side API (``incr``/``observe``) so
    model code never branches on the enable switch at increment sites.

    >>> n = NULL_COUNTER
    >>> n.incr(); n.observe(5)
    >>> n.value, int(n), n.bins_sorted()
    (0, 0, [])
    """

    __slots__ = ()
    name = "<disabled>"
    desc = ""
    kind = "null"
    bins = {}

    def incr(self, n=1):
        pass

    def observe(self, value, n=1):
        pass

    value = property(lambda self: 0)
    count = property(lambda self: 0)
    total = property(lambda self: 0)
    mean = property(lambda self: 0.0)

    def percentile(self, p):
        return 0

    def bins_sorted(self):
        return []

    def __int__(self):
        return 0

    __index__ = __int__

    def __repr__(self):
        return "<NullCounter>"


#: Shared no-op instances handed out while telemetry is disabled.
NULL_COUNTER = NullCounter()
NULL_HISTOGRAM = NullCounter()
