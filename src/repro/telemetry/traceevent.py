"""Shared Chrome trace-event serialization.

One schema, one writer: every trace the framework emits — transaction
timelines from :class:`~repro.telemetry.txtrace.TxTracer`, host-side
span timelines from :mod:`repro.telemetry.tracing`, and merged fleet
campaign traces from :mod:`repro.fleet.live` — is built from the
constructors here and written by :func:`write_trace`, so a single
golden test pins the wire format and every producer stays loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

The format is the Chrome trace-event JSON Object Format::

    {"traceEvents": [...], "displayTimeUnit": "ms", "metadata": {...}}

Event phases used by this codebase:

=====  =========================  ==========================
phase  constructor                meaning
=====  =========================  ==========================
``M``  process_name/thread_name   track naming metadata
``X``  :func:`complete`           a slice with ``ts`` + ``dur``
``b``  :func:`async_begin`        async arrow start (id-matched)
``e``  :func:`async_end`          async arrow end
``i``  :func:`instant`            zero-duration marker
``C``  :func:`counter`            sampled counter track
=====  =========================  ==========================

Timestamps (``ts``/``dur``) are **microseconds** by convention of the
format; producers choose the mapping (the transaction tracer maps one
simulated cycle to 1us, the span tracer divides wall-clock ns by 1e3).
:func:`validate` checks an assembled trace object against this schema
and is what the CI trace job runs over merged campaign traces.
"""

from __future__ import annotations

import json

__all__ = [
    "async_begin",
    "async_end",
    "complete",
    "counter",
    "instant",
    "process_name",
    "process_sort_index",
    "thread_name",
    "trace_object",
    "validate",
    "write_trace",
]


# -- event constructors -------------------------------------------------------


def process_name(pid, name):
    """``M`` metadata event naming a pid track."""
    return {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": name}}


def process_sort_index(pid, index):
    """``M`` metadata event pinning a pid track's display order."""
    return {"ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
            "args": {"sort_index": index}}


def thread_name(pid, tid, name):
    """``M`` metadata event naming a tid track within a pid."""
    return {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name}}


def complete(name, pid, tid, ts, dur, cat=None, args=None):
    """``X`` complete event: a slice from ``ts`` lasting ``dur`` us."""
    event = {"ph": "X", "pid": pid, "tid": tid,
             "ts": ts, "dur": dur, "name": name}
    if cat is not None:
        event["cat"] = cat
    if args is not None:
        event["args"] = args
    return event


def instant(name, pid, tid, ts, cat=None, args=None, scope="t"):
    """``i`` instant event (``scope``: t=thread, p=process, g=global)."""
    event = {"ph": "i", "pid": pid, "tid": tid,
             "ts": ts, "name": name, "s": scope}
    if cat is not None:
        event["cat"] = cat
    if args is not None:
        event["args"] = args
    return event


def async_begin(name, pid, tid, ts, id, cat, args=None):
    """``b`` async-span begin; pairs with :func:`async_end` on
    ``(cat, id)``."""
    event = {"ph": "b", "pid": pid, "tid": tid,
             "ts": ts, "name": name, "cat": cat, "id": id}
    if args is not None:
        event["args"] = args
    return event


def async_end(name, pid, tid, ts, id, cat, args=None):
    """``e`` async-span end; pairs with :func:`async_begin`."""
    event = {"ph": "e", "pid": pid, "tid": tid,
             "ts": ts, "name": name, "cat": cat, "id": id}
    if args is not None:
        event["args"] = args
    return event


def counter(name, pid, ts, values, tid=0):
    """``C`` counter sample; ``values`` maps series name -> number."""
    return {"ph": "C", "pid": pid, "tid": tid,
            "ts": ts, "name": name, "args": dict(values)}


# -- assembly / io ------------------------------------------------------------


def trace_object(events, display_time_unit="ms", metadata=None):
    """Wrap an event list in the trace-event Object Format envelope."""
    obj = {"traceEvents": list(events),
           "displayTimeUnit": display_time_unit}
    if metadata is not None:
        obj["metadata"] = metadata
    return obj


def write_trace(path, trace):
    """Serialize a trace object (or bare event list) to ``path``.

    ``indent=1`` keeps files diffable without doubling their size;
    returns ``path``.
    """
    if isinstance(trace, list):
        trace = trace_object(trace)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return path


# -- validation ---------------------------------------------------------------

_PHASES = {"M", "X", "b", "e", "i", "C"}
_META_NAMES = {"process_name", "process_sort_index", "thread_name",
               "process_labels"}


def validate(trace):
    """Validate a trace object against the schema this module emits.

    Returns the event list on success; raises :class:`ValueError`
    describing the first offending event otherwise.  Checks the
    envelope, per-phase required fields, numeric timestamps, and that
    every async ``b`` has a matching ``e`` on the same ``(cat, id)``.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    open_async = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: event must be an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                raise ValueError(f"{where}: missing/non-int {field!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"{where}: missing event name")
        if ph == "M":
            if ev["name"] not in _META_NAMES:
                raise ValueError(
                    f"{where}: unknown metadata record {ev['name']!r}")
            if not isinstance(ev.get("args"), dict):
                raise ValueError(f"{where}: metadata needs args")
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            raise ValueError(f"{where}: missing/non-numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: X event needs dur >= 0")
        elif ph in ("b", "e"):
            if "id" not in ev or "cat" not in ev:
                raise ValueError(f"{where}: async event needs cat+id")
            key = (ev["cat"], ev["id"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    raise ValueError(
                        f"{where}: async end without begin for {key!r}")
                open_async[key] -= 1
        elif ph == "i":
            if ev.get("s") not in (None, "t", "p", "g"):
                raise ValueError(f"{where}: bad instant scope {ev['s']!r}")
        elif ph == "C":
            if not isinstance(ev.get("args"), dict):
                raise ValueError(f"{where}: counter needs args")
    dangling = sorted(k for k, n in open_async.items() if n)
    if dangling:
        raise ValueError(f"unclosed async span(s): {dangling}")
    return events
