"""Simulator self-profiling: where does host time go?

Two views of a run:

- :class:`ActivityReport` — *simulated* activity: how many block
  events fired, which blocks fired most (requires
  ``collect_stats=True`` on the simulator).
- :class:`SimProfiler` — *host* time: per-phase (settle / tick / flop)
  and per-block wall-clock attribution, simulated cycles per second,
  and the schedule-mode provenance of the run, so a BENCH regression
  can be root-caused to the phase or block that slowed down (requires
  ``profile=True`` on the simulator; profiling refuses the mega-cycle
  kernel because per-block timers need the interpreted path).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass


@dataclass
class ActivityReport:
    """Aggregate combinational activity of a simulation run."""

    ncycles: int
    num_events: int
    hot_blocks: list      # [(name, count)], descending

    @property
    def events_per_cycle(self):
        return self.num_events / max(1, self.ncycles)

    def summary(self, top=10):
        lines = [
            f"cycles            : {self.ncycles}",
            f"comb block events : {self.num_events}",
            f"events/cycle      : {self.events_per_cycle:.1f}",
            "hottest blocks:",
        ]
        for name, count in self.hot_blocks[:top]:
            lines.append(f"  {count:10}  {name}")
        return "\n".join(lines)


#: Phase keys in cycle order.
PHASES = ("settle_pre", "hooks", "tick", "flop", "settle_post")


class SimProfiler:
    """Accumulates host-time attribution for a profiled simulation.

    Two feeding paths:

    - the interpreted profiled cycle loop calls :meth:`add_block`
      after every timed block call and :meth:`add_span` once per
      phase per cycle (plain dict/float math so the profiled run
      stays representative);
    - :meth:`ingest_spans` / :meth:`from_tracer` fold records from
      :mod:`repro.telemetry.tracing` into the same phase table —
      self-time per span name, cycle counts from ``sim.run`` span
      attributes — so phase attribution works identically for SimJIT
      runs, where the interpreted per-cycle path never executes.

    :meth:`add_phases` (one kwargs call per cycle) is the legacy
    ad-hoc timing entry point, kept as a deprecated shim.
    """

    def __init__(self):
        self.block_time = {}        # func -> [calls, seconds]
        self.phase_time = {name: 0.0 for name in PHASES}
        self.cycles = 0
        self.total_time = 0.0

    def add_block(self, func, dt):
        entry = self.block_time.get(func)
        if entry is None:
            self.block_time[func] = [1, dt]
        else:
            entry[0] += 1
            entry[1] += dt

    def add_span(self, name, seconds, cycles=0):
        """Attribute ``seconds`` of host time to phase ``name``
        (created on first use), advancing the cycle count by
        ``cycles``."""
        self.phase_time[name] = self.phase_time.get(name, 0.0) + seconds
        self.total_time += seconds
        self.cycles += cycles

    def add_phases(self, **phases):
        """Deprecated: use :meth:`add_span` per phase (the simulator's
        profiled cycle loop does) or :meth:`ingest_spans`.  One call
        still counts one cycle."""
        warnings.warn(
            "SimProfiler.add_phases is deprecated; use add_span / "
            "ingest_spans (span-fed phase attribution)",
            DeprecationWarning, stacklevel=2)
        for i, (name, dt) in enumerate(phases.items()):
            self.add_span(name, dt, cycles=1 if i == 0 else 0)

    def ingest_spans(self, records, cycles_from=("sim.run",)):
        """Fold tracing records into the phase table.

        Each ``X`` record contributes its **self time** (duration
        minus enclosed child spans, computed per ``(pid, tid)`` by
        interval containment) under its span name; records named in
        ``cycles_from`` also contribute their ``ncycles`` argument to
        the cycle count.  Returns self.
        """
        by_thread = {}
        for rec in records:
            if rec.get("ph", "X") != "X":
                continue
            by_thread.setdefault(
                (rec["pid"], rec["tid"]), []).append(rec)
        for recs in by_thread.values():
            # Parent spans start no later and end no earlier than
            # their children: sort by (start, -duration) so parents
            # precede children, then walk with a containment stack.
            recs.sort(key=lambda r: (r["ts"], -r["dur"]))
            self_ns = {}
            stack = []
            for rec in recs:
                end = rec["ts"] + rec["dur"]
                while stack and rec["ts"] >= stack[-1][1]:
                    stack.pop()
                if stack:
                    self_ns[stack[-1][2]] -= rec["dur"]
                self_ns[id(rec)] = rec["dur"]
                stack.append((rec["ts"], end, id(rec)))
            for rec in recs:
                args = rec.get("args") or {}
                cycles = (int(args.get("ncycles", 0))
                          if rec["name"] in cycles_from else 0)
                self.add_span(rec["name"], self_ns[id(rec)] / 1e9,
                              cycles=cycles)
        return self

    @classmethod
    def from_tracer(cls, tracer, cycles_from=("sim.run",)):
        """Build a profiler from a :class:`~repro.telemetry.tracing.
        Tracer`'s retained records."""
        return cls().ingest_spans(tracer.events, cycles_from=cycles_from)

    @property
    def cycles_per_sec(self):
        if self.total_time <= 0.0:
            return 0.0
        return self.cycles / self.total_time

    def report(self, sim=None, top=20):
        """Structured profile dict (the profile section of the
        telemetry export schema)."""
        names = {}
        if sim is not None:
            for sub in sim.model._all_models:
                for blk in sub.get_comb_blocks():
                    names[blk.func] = blk.name
                for blk in sub.get_tick_blocks():
                    names[blk.func] = blk.name
        blocks = sorted(
            ((names.get(func, getattr(func, "__qualname__", "?")),
              calls, seconds)
             for func, (calls, seconds) in self.block_time.items()),
            key=lambda item: -item[2],
        )
        out = {
            "cycles": self.cycles,
            "host_seconds": self.total_time,
            "cycles_per_sec": self.cycles_per_sec,
            "phase_seconds": dict(self.phase_time),
            "hot_blocks": [
                {"name": name, "calls": calls, "seconds": seconds}
                for name, calls, seconds in blocks[:top]
            ],
        }
        if sim is not None:
            out["sched"] = sim.sched_info()
        return out

    def summary(self, sim=None, top=10):
        rep = self.report(sim, top=top)
        lines = [
            f"profiled cycles   : {rep['cycles']}",
            f"host seconds      : {rep['host_seconds']:.4f}",
            f"cycles/sec        : {rep['cycles_per_sec']:.0f}",
            "phase breakdown:",
        ]
        total = max(rep["host_seconds"], 1e-12)
        extra = sorted(set(rep["phase_seconds"]) - set(PHASES))
        for name in (*PHASES, *extra):
            dt = rep["phase_seconds"].get(name, 0.0)
            lines.append(
                f"  {name:<12} {dt:8.4f}s  {100.0 * dt / total:5.1f}%")
        lines.append("hottest blocks (host time):")
        for blk in rep["hot_blocks"]:
            lines.append(
                f"  {blk['seconds']:8.4f}s  {blk['calls']:9} calls  "
                f"{blk['name']}")
        return "\n".join(lines)
