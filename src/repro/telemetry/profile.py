"""Simulator self-profiling: where does host time go?

Two views of a run:

- :class:`ActivityReport` — *simulated* activity: how many block
  events fired, which blocks fired most (requires
  ``collect_stats=True`` on the simulator).
- :class:`SimProfiler` — *host* time: per-phase (settle / tick / flop)
  and per-block wall-clock attribution, simulated cycles per second,
  and the schedule-mode provenance of the run, so a BENCH regression
  can be root-caused to the phase or block that slowed down (requires
  ``profile=True`` on the simulator; profiling refuses the mega-cycle
  kernel because per-block timers need the interpreted path).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ActivityReport:
    """Aggregate combinational activity of a simulation run."""

    ncycles: int
    num_events: int
    hot_blocks: list      # [(name, count)], descending

    @property
    def events_per_cycle(self):
        return self.num_events / max(1, self.ncycles)

    def summary(self, top=10):
        lines = [
            f"cycles            : {self.ncycles}",
            f"comb block events : {self.num_events}",
            f"events/cycle      : {self.events_per_cycle:.1f}",
            "hottest blocks:",
        ]
        for name, count in self.hot_blocks[:top]:
            lines.append(f"  {count:10}  {name}")
        return "\n".join(lines)


#: Phase keys in cycle order.
PHASES = ("settle_pre", "hooks", "tick", "flop", "settle_post")


class SimProfiler:
    """Accumulates host-time attribution for a profiled simulation.

    The simulator drives it: :meth:`add_block` after every timed block
    call, :meth:`add_phases` once per cycle.  All bookkeeping is plain
    dict/float math so the profiled run stays representative.
    """

    def __init__(self):
        self.block_time = {}        # func -> [calls, seconds]
        self.phase_time = {name: 0.0 for name in PHASES}
        self.cycles = 0
        self.total_time = 0.0

    def add_block(self, func, dt):
        entry = self.block_time.get(func)
        if entry is None:
            self.block_time[func] = [1, dt]
        else:
            entry[0] += 1
            entry[1] += dt

    def add_phases(self, **phases):
        total = 0.0
        for name, dt in phases.items():
            self.phase_time[name] += dt
            total += dt
        self.cycles += 1
        self.total_time += total

    @property
    def cycles_per_sec(self):
        if self.total_time <= 0.0:
            return 0.0
        return self.cycles / self.total_time

    def report(self, sim=None, top=20):
        """Structured profile dict (the profile section of the
        telemetry export schema)."""
        names = {}
        if sim is not None:
            for sub in sim.model._all_models:
                for blk in sub.get_comb_blocks():
                    names[blk.func] = blk.name
                for blk in sub.get_tick_blocks():
                    names[blk.func] = blk.name
        blocks = sorted(
            ((names.get(func, getattr(func, "__qualname__", "?")),
              calls, seconds)
             for func, (calls, seconds) in self.block_time.items()),
            key=lambda item: -item[2],
        )
        out = {
            "cycles": self.cycles,
            "host_seconds": self.total_time,
            "cycles_per_sec": self.cycles_per_sec,
            "phase_seconds": dict(self.phase_time),
            "hot_blocks": [
                {"name": name, "calls": calls, "seconds": seconds}
                for name, calls, seconds in blocks[:top]
            ],
        }
        if sim is not None:
            out["sched"] = sim.sched_info()
        return out

    def summary(self, sim=None, top=10):
        rep = self.report(sim, top=top)
        lines = [
            f"profiled cycles   : {rep['cycles']}",
            f"host seconds      : {rep['host_seconds']:.4f}",
            f"cycles/sec        : {rep['cycles_per_sec']:.0f}",
            "phase breakdown:",
        ]
        total = max(rep["host_seconds"], 1e-12)
        for name in PHASES:
            dt = rep["phase_seconds"][name]
            lines.append(
                f"  {name:<12} {dt:8.4f}s  {100.0 * dt / total:5.1f}%")
        lines.append("hottest blocks (host time):")
        for blk in rep["hot_blocks"]:
            lines.append(
                f"  {blk['seconds']:8.4f}s  {blk['calls']:9} calls  "
                f"{blk['name']}")
        return "\n".join(lines)
