"""Transaction tracing: passive taps on val/rdy interfaces.

A :class:`TxTracer` observes any number of ``InValRdyBundle`` /
``OutValRdyBundle`` channels once per cycle (just before the clock
edge, via the simulator's cycle hooks) and records every completed
transfer with its cycle stamp.  Each tap wraps a
:class:`repro.verif.monitors.ValRdyMonitor`, so protocol violations
(val-drop, payload instability) are flagged for free while tracing.

Exports:

- **Chrome trace-event JSON** (:meth:`TxTracer.chrome_trace`) —
  open the file in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``; each tap is a named track, each transfer a
  one-cycle slice, each matched src→dst pair an async arrow span;
- **latency histograms** between paired taps
  (:meth:`TxTracer.latency_histogram`) — cycles from a message's
  transfer at the source tap to its transfer at the destination tap;
- **occupancy histograms** (:meth:`TxTracer.occupancy_histogram`) —
  messages in flight between the paired taps, weighted per cycle.

Typical use::

    tracer = TxTracer()
    tracer.tap(net.in_[0], "in0")
    tracer.tap(net.out[5], "out5")
    tracer.pair("in0", "out5", key=seqnum_of)
    tracer.attach(sim)
    ... run ...
    tracer.write_chrome_trace("mesh.trace.json")
"""

from __future__ import annotations

from . import traceevent

__all__ = ["TxTracer", "Tap"]


class Tap:
    """One observed val/rdy channel."""

    __slots__ = ("name", "val", "rdy", "msg", "monitor", "stall_cycles",
                 "_cidx", "_cstate", "_tracer")

    def __init__(self, name, val, rdy, msg, monitor):
        self.name = name
        self.val = val
        self.rdy = rdy
        self.msg = msg
        self.monitor = monitor
        self.stall_cycles = 0       # cycles with val & !rdy
        self._cidx = None           # compiled tap index (SimJIT)
        self._cstate = None         # replay state (see instrument)
        self._tracer = None

    def _sync(self):
        if self._tracer is not None:
            self._tracer._sync()

    @property
    def transfers(self):
        """``[(cycle, msg), ...]`` recorded so far."""
        self._sync()
        return self.monitor.transfers

    @property
    def violations(self):
        self._sync()
        return self.monitor.violations


class TxTracer:
    """Passive multi-channel transaction tracer.

    ``check_protocol=False`` disables val/rdy rule checking on all
    taps (use for channels observed only part of the time, where
    protocol rules over a partial view would false-positive).
    """

    def __init__(self, check_protocol=True):
        self.check_protocol = check_protocol
        self.taps = []
        self._by_name = {}
        self.pairs = []             # (name, src_tap, dst_tap, key_fn)
        self.sim = None
        self._instr = None          # KernelInstrumentation when compiled

    # -- declaration ------------------------------------------------------

    def tap(self, bundle, name=None):
        """Observe one val/rdy bundle; returns the :class:`Tap`."""
        # Function-level import: repro.verif.__init__ pulls in cosim
        # (and through it the core simulator); importing it at module
        # scope would make telemetry<->core imports circular.
        from ..verif.monitors import ValRdyMonitor
        if name is None:
            name = getattr(bundle, "name", None) or f"tap{len(self.taps)}"
        if name in self._by_name:
            raise ValueError(f"duplicate tap name {name!r}")
        tap = Tap(name, bundle.val, bundle.rdy, bundle.msg,
                  ValRdyMonitor(name, check=self.check_protocol))
        tap._tracer = self
        self.taps.append(tap)
        self._by_name[name] = tap
        if self._instr is not None:
            # Already attached in compiled mode: lower the new tap too
            # (or fall back to the hook path for every tap at once).
            if not self._instr.try_add_tx_tap(tap):
                self._to_hook_path()
        return tap

    def tap_model(self, model, prefix=""):
        """Tap every ``InValRdyBundle``/``OutValRdyBundle`` found
        directly on ``model`` (including inside lists); returns the
        new taps."""
        from ..core.portbundle import InValRdyBundle, OutValRdyBundle
        kinds = (InValRdyBundle, OutValRdyBundle)
        new = []
        for attr_name, attr in model.__dict__.items():
            if attr_name.startswith("_"):
                continue
            bundles = []
            if isinstance(attr, kinds):
                bundles.append((attr_name, attr))
            elif isinstance(attr, list):
                for i, item in enumerate(attr):
                    if isinstance(item, kinds):
                        bundles.append((f"{attr_name}[{i}]", item))
            for local, bundle in bundles:
                new.append(self.tap(bundle, f"{prefix}{local}"))
        return new

    def pair(self, src, dst, name=None, key=None):
        """Declare a latency pair between two tap names.

        ``key(msg)`` projects each message to a matching key (e.g. a
        sequence-number field); without it messages match in FIFO
        order.  Latency/occupancy histograms and Chrome-trace async
        spans are derived per pair at export time.
        """
        src_tap = self._by_name[src]
        dst_tap = self._by_name[dst]
        if name is None:
            name = f"{src}->{dst}"
        self.pairs.append((name, src_tap, dst_tap, key))
        return name

    # -- simulation plumbing ------------------------------------------------

    def attach(self, sim):
        """Register with a simulator; sampling happens just before
        every clock edge from then on.  On a single-engine SimJIT sim
        the taps compile into the C kernel (run-boundary events
        drained per batch, bit-identical to per-cycle observation);
        otherwise — or when any tap is unlowerable — a Python cycle
        hook samples every cycle."""
        self.sim = sim
        instr = (sim._jit_instrumentation()
                 if hasattr(sim, "_jit_instrumentation") else None)
        if instr is not None and instr.register_tracer(self):
            self._instr = instr
            for tap in list(self.taps):
                if not instr.try_add_tx_tap(tap):
                    self._to_hook_path()
                    break
        else:
            sim.add_cycle_hook(self._observe)
        return self

    def _to_hook_path(self):
        """Convert the whole tracer to per-cycle hook sampling (a tap
        could not be lowered): drain and expand what the kernel already
        captured, then register the Python hook.  Registering the hook
        dearms any *other* compiled instrumentation too — hooks force
        the interpreted per-cycle loop."""
        instr = self._instr
        self._instr = None
        instr.remove_tracer(self)
        self.sim.add_cycle_hook(self._observe)

    def _sync(self):
        """Drain pending compiled events before any read accessor."""
        if self._instr is not None:
            self._instr.drain()

    def _observe(self, cycle):
        for tap in self.taps:
            val = int(tap.val)
            rdy = int(tap.rdy)
            tap.monitor.observe(cycle, val, rdy, int(tap.msg))
            if val and not rdy:
                tap.stall_cycles += 1

    def reset_monitors(self):
        """Forget pending-offer state (call after sim.reset())."""
        self._sync()
        for tap in self.taps:
            tap.monitor.reset()
            if tap._cidx is not None:
                self._instr.rearm_tx_tap(tap)

    # -- pairing/aggregation -------------------------------------------------

    def matched_spans(self, pair_name):
        """``[(key, src_cycle, dst_cycle), ...]`` for one pair."""
        for name, src_tap, dst_tap, key in self.pairs:
            if name == pair_name:
                break
        else:
            raise KeyError(pair_name)
        if key is None:
            return [
                (i, sc, dc)
                for i, ((sc, _), (dc, _)) in enumerate(
                    zip(src_tap.transfers, dst_tap.transfers))
            ]
        pending = {}
        for cycle, msg in src_tap.transfers:
            pending.setdefault(key(msg), []).append(cycle)
        spans = []
        for cycle, msg in dst_tap.transfers:
            k = key(msg)
            queue = pending.get(k)
            if queue:
                spans.append((k, queue.pop(0), cycle))
        return spans

    def latency_histogram(self, pair_name):
        """Histogram of dst_cycle - src_cycle over matched messages."""
        from .counters import Histogram
        hist = Histogram(f"latency:{pair_name}")
        for _, src_cycle, dst_cycle in self.matched_spans(pair_name):
            hist.observe(dst_cycle - src_cycle)
        return hist

    def occupancy_histogram(self, pair_name):
        """Histogram of in-flight message count between the paired
        taps, weighted by the number of cycles at each occupancy."""
        from .counters import Histogram
        hist = Histogram(f"occupancy:{pair_name}")
        deltas = {}
        for _, src_cycle, dst_cycle in self.matched_spans(pair_name):
            deltas[src_cycle] = deltas.get(src_cycle, 0) + 1
            deltas[dst_cycle] = deltas.get(dst_cycle, 0) - 1
        level = 0
        prev = None
        for cycle in sorted(deltas):
            if prev is not None and cycle > prev:
                hist.observe(level, cycle - prev)
            level += deltas[cycle]
            prev = cycle
        return hist

    # -- export ------------------------------------------------------------

    def chrome_trace(self):
        """Chrome trace-event JSON object (Perfetto-compatible).

        One simulated cycle maps to 1us of trace time; each tap is a
        thread (track), transfers are ``X`` complete events, matched
        pairs are ``b``/``e`` async spans.  All events come from the
        shared :mod:`~repro.telemetry.traceevent` serializer.
        """
        events = [traceevent.process_name(0, "repro-sim")]
        for tid, tap in enumerate(self.taps, start=1):
            events.append(traceevent.thread_name(0, tid, tap.name))
            for cycle, msg in tap.transfers:
                events.append(traceevent.complete(
                    "xfer", 0, tid, float(cycle), 1.0, cat="valrdy",
                    args={"msg": f"{msg:#x}", "cycle": cycle}))
        span_id = 0
        for name, src_tap, dst_tap, _ in self.pairs:
            for key, src_cycle, dst_cycle in self.matched_spans(name):
                span_id += 1
                events.append(traceevent.async_begin(
                    name, 0, self._tid(src_tap), float(src_cycle),
                    span_id, cat="latency", args={"key": str(key)}))
                events.append(traceevent.async_end(
                    name, 0, self._tid(dst_tap), float(dst_cycle),
                    span_id, cat="latency"))
        return traceevent.trace_object(
            events, metadata={"unit": "1us = 1 simulated cycle"})

    def _tid(self, tap):
        return self.taps.index(tap) + 1

    def write_chrome_trace(self, path):
        """Serialize :meth:`chrome_trace` to ``path``; returns it."""
        return traceevent.write_trace(path, self.chrome_trace())

    def summary(self):
        """Structured per-tap / per-pair summary (telemetry schema)."""
        self._sync()
        taps = {}
        for tap in self.taps:
            taps[tap.name] = {
                "transfers": len(tap.transfers),
                "stall_cycles": tap.stall_cycles,
                "violations": len(tap.violations),
            }
        pairs = {}
        for name, _, _, _ in self.pairs:
            lat = self.latency_histogram(name)
            pairs[name] = {
                "matched": lat.count,
                "latency_mean": lat.mean,
                "latency_min": lat.min,
                "latency_max": lat.max,
                "latency_p99": lat.percentile(0.99),
            }
        return {"taps": taps, "pairs": pairs}
