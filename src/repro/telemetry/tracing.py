"""Host-side hierarchical span tracing.

Where :mod:`repro.telemetry.txtrace` observes the *design* (simulated
cycles, val/rdy transfers), this module observes the *framework
itself*: how long elaboration, schedule construction, SimJIT
compilation, co-simulation phases, and ``run()`` batches take on the
host, across threads and worker processes.  It is the observability
spine of the fleet layer (see :mod:`repro.fleet.live`) and the metrics
substrate the service layer will expose.

Design points:

- **Spans are hierarchical.**  ``with tracer.span("cosim.run"):``
  nests: a per-thread depth counter stamps each record, and exported
  Chrome ``X`` events nest naturally by interval containment.
- **Monotonic clock.**  Timestamps are ``time.perf_counter_ns()``
  integers — immune to wall-clock steps, cheap, and high-resolution.
- **Ring-buffered.**  Records land in a ``deque(maxlen=capacity)``;
  a long campaign can trace forever and keep the most recent window.
  ``dropped`` counts evictions.
- **Near-zero cost when disarmed.**  Instrumented code calls the
  module-level :func:`span` / :func:`instant` helpers, which consult a
  single module global; when no tracer is armed, :func:`span` returns
  a shared no-op context manager and :func:`instant` returns
  immediately — no allocation, no clock read.  Hot paths may also
  check :func:`active` once per batch and skip instrumentation
  entirely.
- **Process-aware.**  Each record carries ``pid``/``tid``; fleet
  workers arm a fresh tracer post-fork and stream drained records to
  the parent, which merges them into one timeline with a pid track
  per worker.  The fleet supervisor itself records scheduling
  instants in the parent track: ``fleet.retry`` (a failed attempt
  was rescheduled with backoff), ``fleet.respawn`` (a dead worker
  was replaced), and ``fleet.quarantine`` (a task exhausted its
  attempts and was emitted as a ``"poisoned"`` result); workers
  record a ``fleet.task`` span per attempt.

Typical use::

    from repro.telemetry import tracing

    tracer = tracing.arm()              # module-global arming
    with tracing.span("sim.run", ncycles=1000):
        sim.run(1000)
    tracing.instant("watchdog.fire", cycle=sim.ncycles)
    tracing.disarm()
    tracer.write_chrome_trace("host.trace.json")

Records are plain dicts (picklable for the fleet side-channel)::

    {"name": str, "ph": "X"|"i", "ts": ns, "dur": ns (X only),
     "pid": int, "tid": int, "depth": int, "args": dict|None}
"""

from __future__ import annotations

import os
import threading
from collections import deque
from time import perf_counter_ns

from . import traceevent

__all__ = ["Tracer", "active", "arm", "disarm", "instant", "span"]


class _Span:
    """Context manager recording one complete span on exit.

    Returned by :meth:`Tracer.span`; also exposes :meth:`set` so
    instrumented code can attach attributes discovered mid-span
    (e.g. a task's final status)."""

    __slots__ = ("_tracer", "_name", "_args", "_t0", "_depth")

    def __init__(self, tracer, name, args):
        self._tracer = tracer
        self._name = name
        self._args = args

    def set(self, **attrs):
        """Attach/overwrite span attributes; returns self."""
        if self._args is None:
            self._args = {}
        self._args.update(attrs)
        return self

    def __enter__(self):
        tls = self._tracer._tls
        self._depth = getattr(tls, "depth", 0)
        tls.depth = self._depth + 1
        self._t0 = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        t1 = perf_counter_ns()
        tracer = self._tracer
        tracer._tls.depth = self._depth
        if exc_type is not None:
            self.set(error=exc_type.__name__)
        tracer._append({
            "name": self._name, "ph": "X",
            "ts": self._t0, "dur": t1 - self._t0,
            "pid": tracer.pid, "tid": threading.get_ident(),
            "depth": self._depth, "args": self._args,
        })
        return False


class _NullSpan:
    """Shared do-nothing span for the disarmed path."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Ring-buffered span/instant recorder for one process.

    Thread-safe for recording (deque appends are atomic; per-thread
    nesting state lives in a ``threading.local``).  ``capacity`` bounds
    retained records; the oldest are evicted (counted in ``dropped``).
    """

    def __init__(self, capacity=65536):
        self.capacity = int(capacity)
        self.pid = os.getpid()
        self.dropped = 0
        self._events = deque(maxlen=self.capacity)
        self._tls = threading.local()

    # -- recording --------------------------------------------------------

    def span(self, name, **attrs):
        """Context manager timing a hierarchical span."""
        return _Span(self, name, attrs or None)

    def instant(self, name, **attrs):
        """Record a zero-duration marker at now."""
        tls = self._tls
        self._append({
            "name": name, "ph": "i", "ts": perf_counter_ns(),
            "pid": self.pid, "tid": threading.get_ident(),
            "depth": getattr(tls, "depth", 0),
            "args": attrs or None,
        })

    def add_span(self, name, t0_ns, t1_ns, **attrs):
        """Record an externally-timed span (ns timestamps from
        ``perf_counter_ns``) — used by timers that predate the tracer,
        e.g. the SimJIT phase timer."""
        tls = self._tls
        self._append({
            "name": name, "ph": "X", "ts": int(t0_ns),
            "dur": int(t1_ns) - int(t0_ns),
            "pid": self.pid, "tid": threading.get_ident(),
            "depth": getattr(tls, "depth", 0),
            "args": attrs or None,
        })

    def _append(self, record):
        events = self._events
        if len(events) == events.maxlen:
            self.dropped += 1
        events.append(record)

    # -- reading ----------------------------------------------------------

    @property
    def events(self):
        """Snapshot of retained records (oldest first)."""
        return list(self._events)

    def __len__(self):
        return len(self._events)

    def drain(self):
        """Pop and return all retained records — the fleet workers'
        streaming primitive (drain after each task, ship the batch)."""
        out = []
        events = self._events
        while events:
            try:
                out.append(events.popleft())
            except IndexError:    # racing drainer; nothing left
                break
        return out

    # -- export -----------------------------------------------------------

    def chrome_events(self, base_ns=None):
        """Convert records to Chrome trace events (us timestamps).

        ``base_ns`` rebases timestamps (defaults to the earliest
        record) so traces start near t=0.
        """
        return spans_to_events(self.events, base_ns=base_ns)

    def chrome_trace(self, name="repro-host"):
        """Full trace object: pid/tid naming metadata + events."""
        records = self.events
        events = [traceevent.process_name(self.pid, name)]
        for tid in sorted({r["tid"] for r in records}):
            events.append(traceevent.thread_name(
                self.pid, tid, f"thread {tid}"))
        events.extend(spans_to_events(records))
        return traceevent.trace_object(
            events, metadata={"unit": "1us = 1us host wall clock"})

    def write_chrome_trace(self, path, name="repro-host"):
        return traceevent.write_trace(path, self.chrome_trace(name))


def spans_to_events(records, base_ns=None):
    """Map raw span/instant records to Chrome trace events.

    Pure and reusable: the fleet collector calls this per worker with
    a campaign-wide ``base_ns`` so all pid tracks share one timeline.
    """
    if base_ns is None:
        base_ns = min((r["ts"] for r in records), default=0)
    events = []
    for r in records:
        ts = (r["ts"] - base_ns) / 1e3
        if r["ph"] == "i":
            events.append(traceevent.instant(
                r["name"], r["pid"], r["tid"], ts,
                cat="host", args=r["args"]))
        else:
            events.append(traceevent.complete(
                r["name"], r["pid"], r["tid"], ts, r["dur"] / 1e3,
                cat="host", args=r["args"]))
    return events


# -- module-global arming -----------------------------------------------------
#
# Instrumented code throughout the framework calls the module-level
# helpers; a single global keeps the disarmed fast path to one
# attribute load and one comparison.

_ACTIVE = None


def arm(tracer=None, capacity=65536):
    """Install ``tracer`` (or a fresh one) as the process-wide active
    tracer; returns it."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer(capacity=capacity)
    _ACTIVE = tracer
    return tracer


def disarm():
    """Deactivate tracing; returns the previously active tracer (or
    ``None``)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active():
    """The armed :class:`Tracer`, or ``None`` when disarmed."""
    return _ACTIVE


def span(name, **attrs):
    """Open a span on the active tracer; no-op context when disarmed."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def instant(name, **attrs):
    """Record an instant on the active tracer; no-op when disarmed."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **attrs)
