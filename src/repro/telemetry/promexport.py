"""OpenMetrics / Prometheus text exposition for telemetry and fleets.

Two producers, one wire format:

- :func:`telemetry_families` — the per-simulator
  :class:`~repro.telemetry.export.Telemetry` facade: every declared
  counter as a ``repro_sim_counter`` sample labeled with its
  hierarchical name, histograms as ``_count``/``_sum`` pairs;
- :func:`collector_families` — the fleet
  :class:`~repro.fleet.live.LiveCollector`: campaign progress (tasks
  done/failed/retried/poisoned), throughput (cycles, cycles/sec),
  per-worker liveness/RSS/CPU, and the summed memory footprint.
  RSS is exposed in **bytes** (``worker_snapshot`` normalizes the
  platform-dependent ``ru_maxrss`` unit), the same number the
  ``--live`` ticker and the Perfetto counter track show.

:func:`render` serializes a family list as OpenMetrics 1.0 text
(``# TYPE``/``# HELP`` headers, ``_total`` suffix on counters,
escaped label values, terminating ``# EOF``).  The output is
**deterministic** for deterministic inputs — families and samples are
emitted in sorted order — which is what lets a golden file pin the
exposition format (``tests/golden/metrics.prom``).

Scrape-ability comes from :class:`repro.insight.metricsd.MetricsServer`
which serves :func:`render` output over stdlib HTTP; none of this
touches the deterministic ``repro-fleet-v1`` report.
"""

from __future__ import annotations

__all__ = [
    "CONTENT_TYPE",
    "collector_families",
    "render",
    "render_collector",
    "render_telemetry",
    "telemetry_families",
]

#: the content type OpenMetrics scrapers negotiate.
CONTENT_TYPE = ("application/openmetrics-text; version=1.0.0; "
                "charset=utf-8")


def _escape_label(value):
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _sanitize(name):
    out = []
    for i, ch in enumerate(name):
        if ch.isalnum() and (i or not ch.isdigit()) or ch in "_:":
            out.append(ch)
        else:
            out.append("_")
    return "".join(out)


def _fmt_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:                       # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def _fmt_labels(labels):
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render(families):
    """Serialize families as OpenMetrics text.

    ``families`` is an iterable of dicts::

        {"name": "repro_fleet_tasks_done", "type": "counter",
         "help": "...", "samples": [({"pid": 123}, 4), ...]}

    Counter sample lines get the mandatory ``_total`` suffix; sample
    order within a family follows the sorted label sets, family order
    follows sorted names.
    """
    lines = []
    for family in sorted(families, key=lambda f: f["name"]):
        name = _sanitize(family["name"])
        ftype = family.get("type", "gauge")
        lines.append(f"# TYPE {name} {ftype}")
        if family.get("help"):
            lines.append(f"# HELP {name} "
                         + _escape_label(family["help"]))
        suffix = "_total" if ftype == "counter" else ""
        samples = sorted(
            family.get("samples", ()),
            key=lambda s: sorted((s[0] or {}).items()))
        for labels, value in samples:
            lines.append(f"{name}{suffix}{_fmt_labels(labels)} "
                         f"{_fmt_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- fleet LiveCollector ------------------------------------------------------


def collector_families(collector, elapsed=None):
    """Metric families for a :class:`~repro.fleet.live.LiveCollector`.

    ``elapsed`` overrides the collector's wall clock (the golden test
    pins the format with a fixed value; live serving uses the default).
    """
    if elapsed is None:
        elapsed = collector.elapsed
    cycles = collector.cycles
    families = [
        {"name": "repro_fleet_tasks_done", "type": "counter",
         "help": "tasks completed (any status)",
         "samples": [({}, collector.tasks_done)]},
        {"name": "repro_fleet_tasks_failed", "type": "counter",
         "help": "tasks that finished with a non-ok status",
         "samples": [({}, collector.tasks_failed)]},
        {"name": "repro_fleet_tasks_retried", "type": "counter",
         "help": "retry decisions (crash/deadline/transient timeout)",
         "samples": [({}, collector.retries)]},
        {"name": "repro_fleet_tasks_poisoned", "type": "counter",
         "help": "tasks quarantined after exhausting attempts",
         "samples": [({}, len(collector.quarantined))]},
        {"name": "repro_fleet_workers_respawned", "type": "counter",
         "help": "replacement workers spawned after a death",
         "samples": [({}, collector.respawns)]},
        {"name": "repro_fleet_workers_live", "type": "gauge",
         "help": "workers that have reported a metrics snapshot",
         "samples": [({}, len(collector.metrics_by_pid))]},
        {"name": "repro_fleet_cycles", "type": "counter",
         "help": "cumulative simulated cycles across workers",
         "samples": [({}, cycles)]},
        {"name": "repro_fleet_cycles_per_second", "type": "gauge",
         "help": "simulated cycles per wall second",
         "samples": [({}, cycles / elapsed if elapsed > 0 else 0.0)]},
        {"name": "repro_fleet_rss_bytes", "type": "gauge",
         "help": "peak RSS summed across workers (bytes)",
         "samples": [({}, collector.rss_bytes)]},
        {"name": "repro_fleet_elapsed_seconds", "type": "gauge",
         "help": "campaign wall clock",
         "samples": [({}, elapsed)]},
    ]
    if collector.ntasks is not None:
        families.append(
            {"name": "repro_fleet_tasks", "type": "gauge",
             "help": "total tasks in the campaign",
             "samples": [({}, collector.ntasks)]})
    per_worker = list(collector.metrics_by_pid.items())
    if per_worker:
        families.extend([
            {"name": "repro_fleet_worker_tasks_done", "type": "counter",
             "help": "tasks completed per worker",
             "samples": [({"pid": pid}, snap.get("tasks_done", 0))
                         for pid, snap in per_worker]},
            {"name": "repro_fleet_worker_rss_bytes", "type": "gauge",
             "help": "per-worker peak RSS (bytes)",
             "samples": [({"pid": pid}, snap.get("rss_bytes", 0))
                         for pid, snap in per_worker]},
            {"name": "repro_fleet_worker_cpu_seconds", "type": "counter",
             "help": "per-worker user+system CPU time",
             "samples": [({"pid": pid}, snap.get("cpu_seconds", 0.0))
                         for pid, snap in per_worker]},
        ])
    counters = collector.counter_totals()
    if counters:
        families.append(
            {"name": "repro_fleet_counter", "type": "counter",
             "help": "telemetry counter totals across workers",
             "samples": [({"name": name}, value)
                         for name, value in counters.items()]})
    return families


def render_collector(collector, elapsed=None):
    return render(collector_families(collector, elapsed=elapsed))


# -- per-simulator Telemetry facade -------------------------------------------


def telemetry_families(telemetry):
    """Metric families for a :class:`~repro.telemetry.export.Telemetry`
    facade bound to a (possibly still running) simulator."""
    sim = telemetry.sim
    families = [
        {"name": "repro_sim_cycles", "type": "counter",
         "help": "simulated cycles",
         "samples": [({}, sim.ncycles)]},
        {"name": "repro_sim_events", "type": "counter",
         "help": "simulator events processed",
         "samples": [({}, sim.num_events)]},
    ]
    counters = telemetry.counters()
    if counters:
        families.append(
            {"name": "repro_sim_counter", "type": "counter",
             "help": "declared design counters (hierarchical name)",
             "samples": [({"name": name}, value)
                         for name, value in counters.items()]})
    histograms = telemetry.histograms()
    if histograms:
        families.append(
            {"name": "repro_sim_histogram_count", "type": "counter",
             "help": "observations per declared histogram",
             "samples": [({"name": name}, hist.count)
                         for name, hist in histograms.items()]})
        families.append(
            {"name": "repro_sim_histogram_sum", "type": "counter",
             "help": "summed observed values per declared histogram",
             "samples": [({"name": name}, hist.total)
                         for name, hist in histograms.items()]})
    return families


def render_telemetry(telemetry):
    return render(telemetry_families(telemetry))
