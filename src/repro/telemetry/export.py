"""Structured export: one schema for counters, traces, and profiles.

``sim.telemetry`` is a :class:`Telemetry` view bound to a running
simulator.  It reads the hierarchical counter/histogram registries the
elaborator collected, any attached transaction tracers, the optional
self-profiler, and the scheduling provenance, and renders them through
a single :class:`TelemetryReport` with JSON / CSV / text-summary
output — the shape ``benchmarks/bench_telemetry_overhead.py`` and the
CI telemetry job consume.

The schema (``repro-telemetry-v1``)::

    {
      "schema": "repro-telemetry-v1",
      "design": "MeshNetworkStructural",
      "ncycles": 2000,
      "num_events": 81234,
      "sched": {...sim.sched_info()...},
      "counters":   {"top.routers[0].flits_out0": 17, ...},
      "subtrees":   {"top.routers[0]": {"flits_out0": 17, ...}, ...},
      "leaf_totals": {"flits_out0": 204, ...},
      "derived":    {"top.proc.cpi": 1.8, ...},
      "histograms": {"top.x.lat": {"count":..,"mean":..,"bins":[[v,n]..]}},
      "transactions": [ ...per-tracer summary()... ],
      "profile":    {...SimProfiler.report()...} | null,
      "observe":    {"recorders": [...], "watchpoints": [...]} | null
    }

The ``observe`` section summarizes the waveform-observatory
attachments (:mod:`repro.observe`): per armed flight recorder its
signal list, depth, and recorded span; per watchpoint its condition
and fire count.  It is ``null`` when nothing is armed.
"""

from __future__ import annotations

import json

from .counters import Histogram
from .profile import ActivityReport

__all__ = ["Telemetry", "TelemetryReport"]


class Telemetry:
    """Per-simulator telemetry facade (``sim.telemetry``).

    Construction is free of side effects: nothing is read or computed
    until a report is requested, preserving the zero-overhead-when-
    disabled contract.
    """

    def __init__(self, sim):
        self.sim = sim
        self.tracers = []

    # -- tracers ----------------------------------------------------------

    def trace(self, check_protocol=True):
        """Create a :class:`~repro.telemetry.txtrace.TxTracer`, attach
        it to this simulator, and return it."""
        from .txtrace import TxTracer
        tracer = TxTracer(check_protocol=check_protocol)
        tracer.attach(self.sim)
        self.tracers.append(tracer)
        return tracer

    # -- raw registries -----------------------------------------------------

    def counters(self):
        """``{hierarchical_name: int_value}`` for every declared
        counter (empty when telemetry was disabled at construction).

        Counters lowered into a SimJIT instance are read back in bulk
        — one ``read_probes`` FFI round trip per engine instead of one
        ``raw_get``/``get_state_at`` call per counter."""
        registry = getattr(self.sim.model, "_all_counters", {})
        by_engine = {}      # id(engine) -> (engine, [name], [probe])
        for name, ctr in registry.items():
            probe = getattr(ctr, "_jit_probe", None)
            if probe is not None:
                entry = by_engine.setdefault(
                    id(probe[0]), (probe[0], [], []))
                entry[1].append(name)
                entry[2].append(probe[1:])
        bulk = {}
        for engine, names, probes in by_engine.values():
            for name, value in zip(names, engine.read_probes(probes)):
                bulk[name] = int(value)
        return {
            name: bulk[name] if name in bulk else ctr.value
            for name, ctr in registry.items()
        }

    def histograms(self):
        """``{hierarchical_name: Histogram}``."""
        return dict(getattr(self.sim.model, "_all_histograms", {}))

    def subtree_totals(self, counters=None):
        """Roll counter values up the hierarchy: for every instance
        prefix, the sum of each leaf counter name underneath it."""
        if counters is None:
            counters = self.counters()
        totals = {}
        for full, value in counters.items():
            path, _, leaf = full.rpartition(".")
            parts = path.split(".") if path else []
            for i in range(1, len(parts) + 1):
                prefix = ".".join(parts[:i])
                bucket = totals.setdefault(prefix, {})
                bucket[leaf] = bucket.get(leaf, 0) + value
        return totals

    def leaf_totals(self, counters=None):
        """Design-wide sum per leaf counter name (e.g. total
        ``flits_out0`` over all routers)."""
        if counters is None:
            counters = self.counters()
        totals = {}
        for full, value in counters.items():
            leaf = full.rpartition(".")[2]
            totals[leaf] = totals.get(leaf, 0) + value
        return totals

    def activity(self):
        """Simulated-activity view (:class:`ActivityReport`).

        Requires the simulator to have been built with
        ``collect_stats=True``.
        """
        sim = self.sim
        if not sim.collect_stats:
            raise ValueError(
                "pass collect_stats=True to SimulationTool to gather "
                "activity statistics"
            )
        names = {}
        for sub in sim.model._all_models:
            for blk in sub.get_comb_blocks():
                names[blk.func] = blk.name
        hot = sorted(
            ((names.get(func, getattr(func, "__name__", "?")), count)
             for func, count in sim.block_calls.items()),
            key=lambda item: -item[1],
        )
        return ActivityReport(
            ncycles=sim.ncycles,
            num_events=sim.num_events,
            hot_blocks=hot,
        )

    def observe_summary(self):
        """Waveform-observatory state: armed recorders/watchpoints
        (``None`` when the observatory is idle)."""
        sim = self.sim
        recorders = getattr(sim, "_recorders", ())
        watchpoints = getattr(sim, "_watchpoints", ())
        if not recorders and not watchpoints:
            return None
        return {
            "recorders": [
                {
                    "signals": rec.signal_names,
                    "depth": rec.depth,
                    "samples": rec.nsamples,
                    "window_cycles": len(rec._entries),
                }
                for rec in recorders
            ],
            "watchpoints": [wp.diagnostic() for wp in watchpoints],
        }

    # -- report -------------------------------------------------------------

    def report(self):
        """Snapshot everything into a :class:`TelemetryReport`."""
        sim = self.sim
        counters = self.counters()
        derived = {}
        for full, value in counters.items():
            if full.endswith(".insts_retired") and value:
                prefix = full.rpartition(".")[0]
                derived[f"{prefix}.cpi"] = sim.ncycles / value
        profile = None
        if sim.profiler is not None:
            profile = sim.profiler.report(sim)
        return TelemetryReport(
            design=type(sim.model).__name__,
            ncycles=sim.ncycles,
            num_events=sim.num_events,
            sched=sim.sched_info(),
            counters=counters,
            subtrees=self.subtree_totals(counters),
            leaf_totals=self.leaf_totals(counters),
            derived=derived,
            histograms=self.histograms(),
            transactions=[t.summary() for t in self.tracers],
            profile=profile,
            observe=self.observe_summary(),
        )

    def close(self):
        """Finalize sinks (called by ``SimulationTool.close()``)."""
        self.tracers = list(self.tracers)   # nothing held open today


class TelemetryReport:
    """Immutable snapshot with JSON / CSV / text renderings."""

    SCHEMA = "repro-telemetry-v1"

    def __init__(self, design, ncycles, num_events, sched, counters,
                 subtrees, leaf_totals, derived, histograms,
                 transactions, profile, observe=None):
        self.design = design
        self.ncycles = ncycles
        self.num_events = num_events
        self.sched = sched
        self.counters = counters
        self.subtrees = subtrees
        self.leaf_totals = leaf_totals
        self.derived = derived
        self.histograms = histograms
        self.transactions = transactions
        self.profile = profile
        self.observe = observe

    def to_dict(self):
        return {
            "schema": self.SCHEMA,
            "design": self.design,
            "ncycles": self.ncycles,
            "num_events": self.num_events,
            "sched": self.sched,
            "counters": dict(self.counters),
            "subtrees": {k: dict(v) for k, v in self.subtrees.items()},
            "leaf_totals": dict(self.leaf_totals),
            "derived": dict(self.derived),
            "histograms": {
                name: _hist_dict(hist)
                for name, hist in self.histograms.items()
            },
            "transactions": self.transactions,
            "profile": self.profile,
            "observe": self.observe,
        }

    def to_json(self, path=None):
        """JSON text; also written to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text

    def to_csv(self, path=None):
        """Flat ``kind,name,value`` rows for spreadsheet-style
        consumption; also written to ``path`` when given."""
        rows = [("kind", "name", "value")]
        for name, value in self.counters.items():
            rows.append(("counter", name, value))
        for name, value in self.derived.items():
            rows.append(("derived", name, value))
        for name, hist in self.histograms.items():
            rows.append(("histogram_count", name, hist.count))
            rows.append(("histogram_mean", name, hist.mean))
        for tx in self.transactions:
            for tap, info in tx["taps"].items():
                rows.append(("tap_transfers", tap, info["transfers"]))
                rows.append(("tap_stalls", tap, info["stall_cycles"]))
        text = "\n".join(",".join(str(c) for c in row) for row in rows)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text

    def summary(self, top=15):
        """Human-readable multi-line summary."""
        sched = self.sched
        lines = [
            f"telemetry report: {self.design}",
            f"  cycles={self.ncycles} events={self.num_events} "
            f"sched={sched['mode']} "
            f"kernel={'yes' if sched['kernel'] else 'no'}",
        ]
        if self.counters:
            lines.append("  counters:")
            shown = sorted(self.counters.items(),
                           key=lambda kv: (-kv[1], kv[0]))[:top]
            for name, value in shown:
                lines.append(f"    {value:10}  {name}")
            if len(self.counters) > top:
                lines.append(
                    f"    ... {len(self.counters) - top} more")
        for name, value in sorted(self.derived.items()):
            lines.append(f"  {name} = {value:.3f}")
        for name, hist in self.histograms.items():
            lines.append(
                f"  histogram {name}: n={hist.count} "
                f"mean={hist.mean:.2f} max={hist.max}")
        for tx in self.transactions:
            for tap, info in tx["taps"].items():
                lines.append(
                    f"  tap {tap}: {info['transfers']} transfers, "
                    f"{info['stall_cycles']} stall cycles, "
                    f"{info['violations']} violations")
            for pair, info in tx["pairs"].items():
                lines.append(
                    f"  pair {pair}: {info['matched']} matched, "
                    f"latency mean={info['latency_mean']:.1f} "
                    f"p99={info['latency_p99']}")
        if self.profile is not None:
            lines.append(
                f"  profile: {self.profile['cycles_per_sec']:.0f} "
                "cycles/sec")
        if self.observe is not None:
            for rec in self.observe["recorders"]:
                lines.append(
                    f"  recorder: {len(rec['signals'])} signals, "
                    f"depth {rec['depth']}, "
                    f"{rec['window_cycles']} cycles held")
            for wp in self.observe["watchpoints"]:
                lines.append(
                    f"  watchpoint {wp['name']}: {wp['condition']} "
                    f"fired x{wp['n_fires']}")
        return "\n".join(lines)


def _hist_dict(hist):
    if isinstance(hist, Histogram):
        return hist.to_dict()
    return {"count": 0, "mean": 0.0, "min": 0, "max": 0, "bins": []}
