"""Unified telemetry: counters, transaction traces, self-profiling.

The observability layer over the paper's model/tool split: models
declare *what* to count (``s.counter`` / ``s.histogram``), tools decide
*whether* and *how* to collect — the same design description serves
runs with telemetry fully disabled (zero overhead), counter-only runs,
and deep-inspection runs with transaction tracing and simulator
self-profiling.  ``sim.telemetry`` (a :class:`Telemetry` view on every
``SimulationTool``) aggregates all of it into one export schema.

See TUTORIAL.md chapter 8 and DESIGN.md section 1.7.
"""

from __future__ import annotations

from . import traceevent, tracing
from .counters import (
    Counter,
    Histogram,
    NullCounter,
    enabled,
    set_enabled,
)
from .export import Telemetry, TelemetryReport
from .profile import ActivityReport, SimProfiler
from .tracing import Tracer
from .txtrace import Tap, TxTracer

__all__ = [
    "ActivityReport",
    "Counter",
    "Histogram",
    "NullCounter",
    "SimProfiler",
    "Tap",
    "Telemetry",
    "TelemetryReport",
    "Tracer",
    "TxTracer",
    "enabled",
    "set_enabled",
    "traceevent",
    "tracing",
]
