"""RTL memcpy (DMA) accelerator: read/write FSM in the translatable
subset."""

from __future__ import annotations

from ..core import ChildReqRespBundle, Model, ParentReqRespBundle, Wire

# FSM states.
_IDLE = 0
_READ_REQ = 1
_READ_WAIT = 2
_WRITE_REQ = 3
_WRITE_WAIT = 4
_RESP = 5

# Protocol control ids (shared with the FL/CL models).
_CTRL_GO = 0
_CTRL_SIZE = 1
_CTRL_SRC = 2
_CTRL_DST = 4


class MemcpyRTL(Model):
    """Register-transfer-level DMA engine (one word in flight)."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.state = Wire(3)
        s.size = Wire(32)
        s.src = Wire(32)
        s.dst = Wire(32)
        s.count = Wire(32)
        s.word = Wire(32)

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.state.next = _IDLE
            elif s.state.uint() == _IDLE:
                if s.cpu_ifc.req_val.uint() and s.cpu_ifc.req_rdy.uint():
                    ctrl = s.cpu_ifc.req_msg.ctrl_msg.value.uint()
                    data = s.cpu_ifc.req_msg.data.value
                    if ctrl == _CTRL_SIZE:
                        s.size.next = data
                    elif ctrl == _CTRL_SRC:
                        s.src.next = data
                    elif ctrl == _CTRL_DST:
                        s.dst.next = data
                    elif ctrl == _CTRL_GO:
                        s.count.next = 0
                        if s.size.uint() == 0:
                            s.state.next = _RESP
                        else:
                            s.state.next = _READ_REQ
            elif s.state.uint() == _READ_REQ:
                if s.mem_ifc.req_rdy.uint():
                    s.state.next = _READ_WAIT
            elif s.state.uint() == _READ_WAIT:
                if s.mem_ifc.resp_val.uint():
                    s.word.next = s.mem_ifc.resp_msg.data.value
                    s.state.next = _WRITE_REQ
            elif s.state.uint() == _WRITE_REQ:
                if s.mem_ifc.req_rdy.uint():
                    s.state.next = _WRITE_WAIT
            elif s.state.uint() == _WRITE_WAIT:
                if s.mem_ifc.resp_val.uint():
                    if s.count.uint() + 1 == s.size.uint():
                        s.state.next = _RESP
                    else:
                        s.state.next = _READ_REQ
                    s.count.next = s.count + 1
            elif s.state.uint() == _RESP:
                if s.cpu_ifc.resp_val.uint() \
                        and s.cpu_ifc.resp_rdy.uint():
                    s.state.next = _IDLE

        @s.combinational
        def comb_logic():
            state = s.state.uint()
            if s.reset.uint():
                state = -1
            s.cpu_ifc.req_rdy.value = state == _IDLE
            s.cpu_ifc.resp_val.value = state == _RESP
            s.cpu_ifc.resp_msg.data.value = s.size.value

            read = state == _READ_REQ
            write = state == _WRITE_REQ
            s.mem_ifc.req_val.value = 1 if (read or write) else 0
            s.mem_ifc.req_msg.type_.value = 0 if read else 1
            if read:
                s.mem_ifc.req_msg.addr.value = \
                    (s.src.uint() + 4 * s.count.uint()) & 0xFFFFFFFF
            else:
                s.mem_ifc.req_msg.addr.value = \
                    (s.dst.uint() + 4 * s.count.uint()) & 0xFFFFFFFF
            s.mem_ifc.req_msg.data.value = s.word.value
            s.mem_ifc.resp_rdy.value = \
                1 if (state == _READ_WAIT or state == _WRITE_WAIT) else 0

    def line_trace(s):
        return f"st={int(s.state)} n={int(s.count)}/{int(s.size)}"
