"""Software kernels for the tile case study (paper Section III-C).

Generates MinRISC assembly for matrix-vector multiplication, the
workload the paper uses to evaluate the dot-product accelerator:

- :func:`mvmult_scalar` — straightforward scalar inner loop;
- :func:`mvmult_unrolled` — inner loop unrolled 4x (the paper's
  "traditional scalar implementation with loop-unrolling
  optimizations" baseline);
- :func:`mvmult_xcel` — offloads each row's dot product to the
  accelerator via ``xcel`` configuration/go messages.

All kernels compute y = A @ x for a ``rows`` x ``cols`` matrix laid
out row-major at ``a_base``, vector at ``x_base``, result at
``y_base``, and leave the last row's result in r10.
"""

from __future__ import annotations

A_BASE = 0x2000
X_BASE = 0x8000
Y_BASE = 0xA000


def mvmult_data(rows, cols, a_base=A_BASE, x_base=X_BASE, seed=1):
    """Deterministic input data: {addr: word} plus the expected y."""
    a = [[(seed + i * cols + j) % 64 for j in range(cols)]
         for i in range(rows)]
    x = [(seed * 3 + j) % 32 for j in range(cols)]
    data = {}
    for i in range(rows):
        for j in range(cols):
            data[a_base + 4 * (i * cols + j)] = a[i][j]
    for j in range(cols):
        data[x_base + 4 * j] = x[j]
    expected = [
        sum(a[i][j] * x[j] for j in range(cols)) & 0xFFFFFFFF
        for i in range(rows)
    ]
    return data, expected


def mvmult_scalar(rows, cols, a_base=A_BASE, x_base=X_BASE, y_base=Y_BASE):
    """Scalar matrix-vector multiply."""
    return f"""
        li   r1, {a_base}        # A pointer (walks the whole matrix)
        li   r9, {x_base}        # x base
        li   r8, {y_base}        # y pointer
        li   r3, {rows}
    row_loop:
        li   r4, {cols}
        li   r10, 0
        mv   r2, r9
    inner:
        lw   r5, 0(r1)
        lw   r6, 0(r2)
        mul  r7, r5, r6
        add  r10, r10, r7
        addi r1, r1, 4
        addi r2, r2, 4
        addi r4, r4, -1
        bne  r4, r0, inner
        sw   r10, 0(r8)
        addi r8, r8, 4
        addi r3, r3, -1
        bne  r3, r0, row_loop
        halt
    """


def mvmult_unrolled(rows, cols, a_base=A_BASE, x_base=X_BASE,
                    y_base=Y_BASE):
    """Matrix-vector multiply with the inner loop unrolled 4x
    (requires ``cols % 4 == 0``)."""
    if cols % 4:
        raise ValueError("unrolled kernel requires cols divisible by 4")
    body = []
    for k in range(4):
        body.append(f"""
        lw   r5, {4 * k}(r1)
        lw   r6, {4 * k}(r2)
        mul  r7, r5, r6
        add  r10, r10, r7""")
    unrolled = "".join(body)
    return f"""
        li   r1, {a_base}
        li   r9, {x_base}
        li   r8, {y_base}
        li   r3, {rows}
    row_loop:
        li   r4, {cols // 4}
        li   r10, 0
        mv   r2, r9
    inner:{unrolled}
        addi r1, r1, 16
        addi r2, r2, 16
        addi r4, r4, -1
        bne  r4, r0, inner
        sw   r10, 0(r8)
        addi r8, r8, 4
        addi r3, r3, -1
        bne  r3, r0, row_loop
        halt
    """


def copy_scalar(nwords, src=A_BASE, dst=Y_BASE):
    """Scalar word-copy loop (the software baseline for the DMA
    accelerator)."""
    return f"""
        li   r1, {src}
        li   r2, {dst}
        li   r3, {nwords}
    loop:
        lw   r4, 0(r1)
        sw   r4, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        addi r3, r3, -1
        bne  r3, r0, loop
        halt
    """


def copy_xcel(nwords, src=A_BASE, dst=Y_BASE):
    """Offload the copy to the memcpy/DMA coprocessor (ctrl ids from
    repro.accel.memcpy_fl: 1 = size, 2 = src, 4 = dst, 0 = go)."""
    return f"""
        li   r1, {nwords}
        xcel r0, r1, 1
        li   r2, {src}
        xcel r0, r2, 2
        li   r3, {dst}
        xcel r0, r3, 4
        xcel r10, r0, 0      # go: r10 = words copied
        halt
    """


def mvmult_xcel(rows, cols, a_base=A_BASE, x_base=X_BASE, y_base=Y_BASE):
    """Matrix-vector multiply offloading each row's dot product to the
    accelerator (paper Section III-C protocol)."""
    return f"""
        li   r1, {cols}
        xcel r0, r1, 1           # size = cols
        li   r9, {x_base}
        xcel r0, r9, 3           # src1 = x (set once)
        li   r2, {a_base}
        li   r8, {y_base}
        li   r3, {rows}
        li   r12, {4 * cols}     # row stride
    row_loop:
        xcel r0, r2, 2           # src0 = current row
        xcel r10, r0, 0          # go: r10 = dot(row, x)
        sw   r10, 0(r8)
        add  r2, r2, r12
        addi r8, r8, 4
        addi r3, r3, -1
        bne  r3, r0, row_loop
        halt
    """
