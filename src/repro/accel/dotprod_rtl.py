"""RTL dot-product accelerator (paper Figure 9).

Register-transfer-level implementation split into a datapath and a
control unit connected by ``connect_auto`` over ``CtrlSignals`` /
``StatusSignals`` BitStruct buses — the structure of paper Figure 9.

Microarchitecture (four stages, as in the paper):

- **M** (memory request): issue pipelined reads, alternating
  src0[i]/src1[i], as fast as the memory accepts them;
- **R** (memory response): latch returned words into the src0/src1
  operand registers (responses return in order);
- **X** (execute): a 4-stage pipelined integer multiplier; a valid-bit
  shift register in the control unit tracks pipeline occupancy;
- **A** (accumulate): running sum; when ``size`` products have been
  accumulated the result is returned to the processor.

The datapath owns all message-field signals; the control unit owns all
val/rdy signals.  Both expose the ``cpu_ifc``/``mem_ifc`` bundles and
are tied to the same top-level nets, so each drives only its half.
"""

from __future__ import annotations

from ..components.arith import IntPipelinedMultiplier
from ..core import (
    BitStruct,
    ChildReqRespBundle,
    Field,
    InPort,
    Model,
    OutPort,
    ParentReqRespBundle,
    Wire,
)

_NSTAGES = 4

# Control FSM states.
_IDLE = 0
_RUN = 1
_RESP = 2


class CtrlSignals(BitStruct):
    """Control bus: ctrl -> dpath (paper Figure 9's ``cs``)."""

    update_M = Field(1)
    counters_clear = Field(1)
    sent_en = Field(1)
    got_en = Field(1)
    accum_en_A = Field(1)


class StatusSignals(BitStruct):
    """Status bus: dpath -> ctrl (paper Figure 9's ``ss``)."""

    go = Field(1)
    sent_done = Field(1)
    got_parity = Field(1)
    accum_done = Field(1)


class DotProductDpath(Model):
    """Datapath: M/R/X/A stage registers and the multiply-accumulate."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)
        s.cs = InPort(CtrlSignals)
        s.ss = OutPort(StatusSignals)

        # --- Stage M: configuration + request generation -------------
        s.size = Wire(32)
        s.src0_addr_M = Wire(32)
        s.src1_addr_M = Wire(32)
        s.sent = Wire(32)
        s.got = Wire(32)
        s.go_r = Wire(1)

        @s.tick_rtl
        def stage_seq_M():
            go_next = 0
            if s.cs.update_M.value.uint():
                ctrl_msg = s.cpu_ifc.req_msg.ctrl_msg.value.uint()
                cpu_data = s.cpu_ifc.req_msg.data.value
                if ctrl_msg == 1:
                    s.size.next = cpu_data
                elif ctrl_msg == 2:
                    s.src0_addr_M.next = cpu_data
                elif ctrl_msg == 3:
                    s.src1_addr_M.next = cpu_data
                elif ctrl_msg == 0:
                    go_next = 1
            s.go_r.next = go_next

            if s.cs.counters_clear.value.uint():
                s.sent.next = 0
                s.got.next = 0
            else:
                if s.cs.sent_en.value.uint():
                    s.sent.next = s.sent + 1
                if s.cs.got_en.value.uint():
                    s.got.next = s.got + 1

        @s.combinational
        def stage_comb_M():
            if s.sent.uint() & 1:
                base_addr_M = s.src1_addr_M.uint()
            else:
                base_addr_M = s.src0_addr_M.uint()

            s.mem_ifc.req_msg.type_.value = 0
            s.mem_ifc.req_msg.addr.value = \
                (base_addr_M + ((s.sent.uint() >> 1) << 2)) & 0xFFFFFFFF
            s.mem_ifc.req_msg.data.value = 0

            s.ss.sent_done.value = s.sent.uint() == (s.size.uint() << 1)
            s.ss.got_parity.value = s.got.uint() & 1
            s.ss.go.value = s.go_r.value

        # --- Stage R: memory response ---------------------------------
        s.src0_data_R = Wire(32)
        s.src1_data_R = Wire(32)

        @s.tick_rtl
        def stage_seq_R():
            if s.cs.got_en.value.uint():
                if s.got.uint() & 1:
                    s.src1_data_R.next = s.mem_ifc.resp_msg.data.value
                else:
                    s.src0_data_R.next = s.mem_ifc.resp_msg.data.value

        # --- Stage X: execute (pipelined multiply) ---------------------
        s.result_X = Wire(32)
        s.mul = IntPipelinedMultiplier(nbits=32, nstages=_NSTAGES)
        s.connect_dict({
            s.mul.op_a: s.src0_data_R,
            s.mul.op_b: s.src1_data_R,
            s.mul.product: s.result_X,
        })

        # --- Stage A: accumulate ----------------------------------------
        s.accum_A = Wire(32)
        s.accum_out = Wire(32)
        s.acc_count = Wire(32)

        @s.tick_rtl
        def stage_seq_A():
            if s.reset.uint() or s.cs.counters_clear.value.uint():
                s.accum_A.next = 0
                s.acc_count.next = 0
            elif s.cs.accum_en_A.value.uint():
                s.accum_A.next = s.accum_out.value
                s.acc_count.next = s.acc_count + 1

        @s.combinational
        def stage_comb_A():
            s.accum_out.value = (s.result_X.uint() + s.accum_A.uint()) \
                & 0xFFFFFFFF
            s.cpu_ifc.resp_msg.data.value = s.accum_A.value
            s.ss.accum_done.value = s.acc_count.uint() == s.size.uint()


class DotProductCtrl(Model):
    """Control unit: interface handshaking and the multiplier
    occupancy pipeline."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)
        s.cs = OutPort(CtrlSignals)
        s.ss = InPort(StatusSignals)

        s.state = Wire(2)
        s.valid = Wire(_NSTAGES + 1)     # X-stage occupancy bits

        @s.combinational
        def ctrl_comb():
            state = s.state.uint()
            if s.reset.uint():
                state = -1
            idle = state == _IDLE
            run = state == _RUN

            s.cpu_ifc.req_rdy.value = idle
            s.cpu_ifc.resp_val.value = state == _RESP

            s.mem_ifc.req_val.value = \
                run and not s.ss.sent_done.value.uint()
            s.mem_ifc.resp_rdy.value = run

            s.cs.update_M.value = idle and s.cpu_ifc.req_val.uint()
            s.cs.counters_clear.value = idle
            s.cs.sent_en.value = (
                s.mem_ifc.req_val.uint() and s.mem_ifc.req_rdy.uint()
            )
            s.cs.got_en.value = (
                s.mem_ifc.resp_val.uint() and s.mem_ifc.resp_rdy.uint()
            )
            s.cs.accum_en_A.value = (s.valid.uint() >> _NSTAGES) & 1

        @s.tick_rtl
        def ctrl_seq():
            if s.reset:
                s.state.next = _IDLE
                s.valid.next = 0
            elif s.state.uint() == _IDLE:
                s.valid.next = 0
                if s.ss.go.value.uint():
                    s.state.next = _RUN
            elif s.state.uint() == _RUN:
                pair_in = (
                    s.cs.got_en.value.uint()
                    and s.ss.got_parity.value.uint()
                )
                s.valid.next = (s.valid.uint() << 1) | (1 if pair_in else 0)
                if s.ss.accum_done.value.uint():
                    s.state.next = _RESP
            elif s.state.uint() == _RESP:
                if s.cpu_ifc.resp_val.uint() and s.cpu_ifc.resp_rdy.uint():
                    s.state.next = _IDLE


class DotProductRTL(Model):
    """Top level: datapath + control connected by ``connect_auto``
    (paper Figure 9)."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.dpath = DotProductDpath(mem_ifc_types, cpu_ifc_types)
        s.ctrl = DotProductCtrl(mem_ifc_types, cpu_ifc_types)
        s.connect_auto(s.dpath, s.ctrl)

        # Dpath and ctrl each drive half of the shared interfaces
        # (messages vs. handshakes); tie both to the top-level bundles.
        s.connect(s.cpu_ifc, s.dpath.cpu_ifc)
        s.connect(s.mem_ifc, s.dpath.mem_ifc)
        s.connect(s.cpu_ifc, s.ctrl.cpu_ifc)
        s.connect(s.mem_ifc, s.ctrl.mem_ifc)

        from ..telemetry.counters import enabled as _telemetry_enabled
        if _telemetry_enabled():
            # Handshake-observing telemetry registers on the top-level
            # bundles; declared only when telemetry is enabled so the
            # disabled design is structurally unchanged.
            s.op_count = Wire(32)
            s.mem_read_count = Wire(32)
            s.counter("xcel_ops", "dot products computed",
                      sig=s.op_count)
            s.counter("mem_reads",
                      "vector elements fetched from memory",
                      sig=s.mem_read_count)

            @s.tick_rtl
            def telemetry_logic():
                if s.reset:
                    s.op_count.next = 0
                    s.mem_read_count.next = 0
                else:
                    if s.cpu_ifc.resp_val.uint() \
                            and s.cpu_ifc.resp_rdy.uint():
                        s.op_count.next = s.op_count + 1
                    if s.mem_ifc.req_val.uint() \
                            and s.mem_ifc.req_rdy.uint():
                        s.mem_read_count.next = s.mem_read_count + 1

    def line_trace(s):
        return (f"st={int(s.ctrl.state)} sent={int(s.dpath.sent)} "
                f"got={int(s.dpath.got)} acc={int(s.dpath.accum_A):x}")
