"""FL dot-product accelerator (paper Figure 7).

Functional-level coprocessor: configuration requests set the vector
size and source base addresses; "go" computes the dot product by
passing two list-like memory proxies straight into ``numpy.dot``.  The
``ListMemPortAdapter`` proxies transparently expand each element access
into a latency-insensitive memory transaction, so this model composes
with FL, CL, or RTL memories and processors.
"""

from __future__ import annotations

import numpy

from ..core import (
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    ListMemPortAdapter,
    Model,
    ParentReqRespBundle,
)
from .msgs import XcelRespMsg


class DotProductFL(Model):
    """Functional-level dot-product coprocessor."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.cpu = ChildReqRespQueueAdapter(s.cpu_ifc)
        s.src0 = ListMemPortAdapter(s.mem_ifc)
        s.src1 = ListMemPortAdapter(s.mem_ifc)

        s.ctr_ops = s.counter("xcel_ops", "dot products computed")
        s.ctr_mem_reads = s.counter(
            "mem_reads", "vector elements fetched from memory")

        @s.tick_fl
        def logic():
            s.cpu.xtick()
            if not s.cpu.req_q.empty() and not s.cpu.resp_q.full():
                req = s.cpu.get_req()
                if req.ctrl_msg == 1:
                    s.src0.set_size(int(req.data))
                    s.src1.set_size(int(req.data))
                elif req.ctrl_msg == 2:
                    s.src0.set_base(int(req.data))
                elif req.ctrl_msg == 3:
                    s.src1.set_base(int(req.data))
                elif req.ctrl_msg == 0:
                    result = numpy.dot(
                        numpy.array(list(s.src0), dtype=object),
                        numpy.array(list(s.src1), dtype=object),
                    )
                    s.ctr_ops.incr()
                    s.ctr_mem_reads.incr(len(s.src0) + len(s.src1))
                    s.cpu.push_resp(XcelRespMsg.mk(int(result) & 0xFFFFFFFF))

    def line_trace(s):
        return f"{s.cpu_ifc.req.to_str()}>{s.cpu_ifc.resp.to_str()}"
