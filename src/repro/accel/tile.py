"""Compute tile: processor + L1 caches + accelerator (paper Figure 5a).

The tile composes a MinRISC processor, an instruction cache, a data
cache shared between the processor and the dot-product accelerator
through a :class:`MemArbiter`, and a backing magic memory.  Each of the
three major components is independently selectable as FL, CL, or RTL —
the 27 ⟨P, C, A⟩ configurations of the paper's Figure 13 experiment.
"""

from __future__ import annotations

from ..core import Model, SimulationTool
from ..mem.cache_cl import CacheCL
from ..mem.cache_fl import CacheFL
from ..mem.cache_rtl import CacheRTL
from ..mem.msgs import MemMsg
from ..mem.test_memory import TestMemory
from ..proc.proc_cl import ProcCL
from ..proc.proc_fl import ProcFL
from ..proc.proc_rtl import ProcRTL
from .arbiter import MemArbiter
from .dotprod_cl import DotProductCL
from .dotprod_fl import DotProductFL
from .dotprod_rtl import DotProductRTL
from .msgs import XcelMsg

PROC_IMPLS = {"fl": ProcFL, "cl": ProcCL, "rtl": ProcRTL}
CACHE_IMPLS = {"fl": CacheFL, "cl": CacheCL, "rtl": CacheRTL}
ACCEL_IMPLS = {"fl": DotProductFL, "cl": DotProductCL, "rtl": DotProductRTL}

# Level-of-detail score per abstraction level (paper Figure 13).
LOD_SCORE = {"fl": 1, "cl": 2, "rtl": 3}


class Tile(Model):
    """Accelerator-augmented compute tile (paper Figure 5a).

    ``levels`` is a ⟨P, C, A⟩ tuple of 'fl' | 'cl' | 'rtl' choosing the
    abstraction level of the processor, caches, and accelerator.
    """

    def __init__(s, levels=("fl", "fl", "fl"), mem_latency=2,
                 cache_nlines=64, cache_assoc=1, mem_size=1 << 20,
                 jit=False, accel_impls=None):
        proc_level, cache_level, accel_level = levels
        s.levels = tuple(levels)
        accel_impls = accel_impls or ACCEL_IMPLS
        mem_msg = MemMsg()
        xcel_msg = XcelMsg()

        s.proc = _maybe_jit(
            PROC_IMPLS[proc_level](mem_msg, xcel_msg),
            jit and proc_level == "rtl")
        s.icache = _maybe_jit(
            CACHE_IMPLS[cache_level](*_cache_args(
                cache_level, mem_msg, cache_nlines, cache_assoc)),
            jit and cache_level == "rtl")
        s.dcache = _maybe_jit(
            CACHE_IMPLS[cache_level](*_cache_args(
                cache_level, mem_msg, cache_nlines, cache_assoc)),
            jit and cache_level == "rtl")
        s.accel = _maybe_jit(
            accel_impls[accel_level](mem_msg, xcel_msg),
            jit and accel_level == "rtl")
        s.arbiter = _maybe_jit(MemArbiter(mem_msg), jit)
        s.mem = TestMemory(nports=2, latency=mem_latency, size=mem_size)

        # Processor <-> instruction cache.
        s.connect(s.proc.imem_ifc.req, s.icache.cpu_ifc.req)
        s.connect(s.proc.imem_ifc.resp, s.icache.cpu_ifc.resp)
        # Processor + accelerator <-> arbiter <-> data cache.
        s.connect(s.proc.dmem_ifc.req, s.arbiter.clients[0].req)
        s.connect(s.proc.dmem_ifc.resp, s.arbiter.clients[0].resp)
        s.connect(s.accel.mem_ifc.req, s.arbiter.clients[1].req)
        s.connect(s.accel.mem_ifc.resp, s.arbiter.clients[1].resp)
        s.connect(s.arbiter.mem_ifc.req, s.dcache.cpu_ifc.req)
        s.connect(s.arbiter.mem_ifc.resp, s.dcache.cpu_ifc.resp)
        # Processor <-> accelerator control interface.
        s.connect(s.proc.xcel_ifc.req, s.accel.cpu_ifc.req)
        s.connect(s.proc.xcel_ifc.resp, s.accel.cpu_ifc.resp)
        # Caches <-> backing memory.
        s.connect(s.icache.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.icache.mem_ifc.resp, s.mem.ports[0].resp)
        s.connect(s.dcache.mem_ifc.req, s.mem.ports[1].req)
        s.connect(s.dcache.mem_ifc.resp, s.mem.ports[1].resp)

    def lod(s):
        """Level-of-detail score: LOD = p + c + a (paper Figure 13)."""
        return sum(LOD_SCORE[level] for level in s.levels)

    def line_trace(s):
        return f"{s.proc.line_trace()} {s.arbiter.line_trace()}"


def _cache_args(level, mem_msg, nlines, assoc=1):
    if level == "fl":
        return (mem_msg, mem_msg)
    return (mem_msg, mem_msg, nlines, assoc)


def _maybe_jit(component, enable):
    """Specialize an RTL component with SimJIT-RTL (paper Figure 13:
    'SimJIT-RTL specialization applied to all RTL components')."""
    if not enable:
        return component
    from ..core.simjit import SimJITRTL
    return SimJITRTL(component.elaborate()).specialize()


def run_tile(levels, words, data=None, max_cycles=2_000_000,
             mem_latency=2, progress=None, jit=False, sched="auto"):
    """Build a tile, load a program + data, run to completion.

    ``sched`` selects the simulator's scheduling mode (see
    :class:`SimulationTool`).  Returns ``(tile, ncycles)``.
    """
    tile = Tile(levels, mem_latency=mem_latency, jit=jit).elaborate()
    tile.mem.load(0, words)
    for addr, value in (data or {}).items():
        tile.mem.write_word(addr, value)
    sim = SimulationTool(tile, sched=sched)
    sim.reset()
    while not int(tile.proc.done):
        sim.cycle()
        if progress is not None and sim.ncycles % 10000 == 0:
            progress(sim.ncycles)
        if sim.ncycles > max_cycles:
            raise AssertionError(
                f"tile {levels} did not halt within {max_cycles} cycles"
            )
    return tile, sim.ncycles
