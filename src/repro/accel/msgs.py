"""Accelerator coprocessor interface message types.

The processor talks to the accelerator over a latency-insensitive
request/response interface (paper Section III-C): requests carry a
control-message id plus a data word; responses carry a data word.
Control-message ids follow the paper's protocol (1 = set size, 2 = set
src0 base, 3 = set src1 base, 0 = go; only "go" produces a response).
"""

from __future__ import annotations

from ..core import BitStruct, Field, ReqRespMsgTypes


class XcelReqMsg(BitStruct):
    ctrl_msg = Field(3)
    data = Field(32)

    @classmethod
    def mk(cls, ctrl_msg, data):
        msg = cls()
        msg.ctrl_msg = ctrl_msg
        msg.data = data
        return msg


class XcelRespMsg(BitStruct):
    data = Field(32)

    @classmethod
    def mk(cls, data):
        msg = cls()
        msg.data = data
        return msg


class XcelMsg(ReqRespMsgTypes):
    """Coprocessor interface types: ``XcelMsg().req`` / ``.resp``."""

    def __init__(self):
        super().__init__(XcelReqMsg, XcelRespMsg)
