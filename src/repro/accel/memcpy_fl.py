"""FL memcpy (DMA) accelerator.

A second coprocessor on the same latency-insensitive interface as the
dot-product unit, demonstrating that the accelerator protocol and tile
plumbing are generic.  Protocol: ctrl 1 = word count, 2 = source base,
4 = destination base, 0 = go (responds with the number of words
copied).

The FL model exercises the *write* path of ``ListMemPortAdapter``
(``dst[i] = src[i]``), which the dot-product case study never touches.
"""

from __future__ import annotations

from ..core import (
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    ListMemPortAdapter,
    Model,
    ParentReqRespBundle,
)
from .msgs import XcelRespMsg

CTRL_GO = 0
CTRL_SIZE = 1
CTRL_SRC = 2
CTRL_DST = 4


class MemcpyFL(Model):
    """Functional-level DMA engine."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.cpu = ChildReqRespQueueAdapter(s.cpu_ifc)
        s.src = ListMemPortAdapter(s.mem_ifc)
        s.dst = ListMemPortAdapter(s.mem_ifc)

        @s.tick_fl
        def logic():
            s.cpu.xtick()
            if not s.cpu.req_q.empty() and not s.cpu.resp_q.full():
                req = s.cpu.get_req()
                if req.ctrl_msg == CTRL_SIZE:
                    s.src.set_size(int(req.data))
                    s.dst.set_size(int(req.data))
                elif req.ctrl_msg == CTRL_SRC:
                    s.src.set_base(int(req.data))
                elif req.ctrl_msg == CTRL_DST:
                    s.dst.set_base(int(req.data))
                elif req.ctrl_msg == CTRL_GO:
                    for i in range(len(s.src)):
                        s.dst[i] = s.src[i]
                    s.cpu.push_resp(XcelRespMsg.mk(len(s.src)))

    def line_trace(s):
        return f"{s.cpu_ifc.req.to_str()}"
