"""Accelerator substrate: dot-product coprocessor at FL/CL/RTL detail,
the shared-cache-port arbiter, the compute tile, and software kernels
(paper Section III-C)."""

from .arbiter import MemArbiter
from .dotprod_cl import DotProductCL
from .dotprod_fl import DotProductFL
from .dotprod_rtl import DotProductCtrl, DotProductDpath, DotProductRTL
from .kernels import (
    mvmult_data,
    mvmult_scalar,
    mvmult_unrolled,
    mvmult_xcel,
)
from .memcpy_cl import MemcpyCL
from .memcpy_fl import MemcpyFL
from .memcpy_rtl import MemcpyRTL
from .msgs import XcelMsg, XcelReqMsg, XcelRespMsg

_TILE_EXPORTS = ("Tile", "run_tile", "PROC_IMPLS", "CACHE_IMPLS",
                 "ACCEL_IMPLS")


def __getattr__(name):
    # Tile pulls in the processors, which import this package for the
    # coprocessor message types — import it lazily to break the cycle.
    if name in _TILE_EXPORTS:
        from . import tile
        return getattr(tile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "XcelMsg", "XcelReqMsg", "XcelRespMsg",
    "DotProductFL", "DotProductCL", "DotProductRTL",
    "DotProductDpath", "DotProductCtrl",
    "MemcpyFL", "MemcpyCL", "MemcpyRTL",
    "MemArbiter",
    "Tile", "run_tile", "PROC_IMPLS", "CACHE_IMPLS", "ACCEL_IMPLS",
    "mvmult_scalar", "mvmult_unrolled", "mvmult_xcel", "mvmult_data",
]
