"""CL dot-product accelerator (paper Figure 8).

Cycle-level model: once "go" arrives, all memory read addresses are
pre-generated (src0/src1 interleaved) and issued in a pipelined manner
as backpressure allows; responses accumulate into a list and the final
dot product is computed with ``numpy.dot`` when the last word returns.
Captures the cycle-approximate behaviour — pipelined memory requests —
without modeling the real datapath.
"""

from __future__ import annotations

import numpy

from ..core import (
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    Model,
    ParentReqRespBundle,
    ParentReqRespQueueAdapter,
)
from ..mem.msgs import MemReqMsg
from .msgs import XcelRespMsg


def gen_addresses(size, src0, src1):
    """Interleaved word addresses for two vectors (src0[i], src1[i]).

    Returned reversed so ``list.pop()`` yields them in order (the
    idiom used by paper Figure 8's ``s.addrs.pop()``).
    """
    addrs = []
    for i in range(size):
        addrs.append(src0 + 4 * i)
        addrs.append(src1 + 4 * i)
    addrs.reverse()
    return addrs


class DotProductCL(Model):
    """Cycle-level dot-product coprocessor."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.cpu = ChildReqRespQueueAdapter(s.cpu_ifc)
        s.mem = ParentReqRespQueueAdapter(s.mem_ifc)

        s.go = False
        s.size = 0
        s.src0 = 0
        s.src1 = 0
        s.data = []
        s.addrs = []

        s.ctr_ops = s.counter("xcel_ops", "dot products computed")
        s.ctr_mem_reads = s.counter(
            "mem_reads", "vector elements fetched from memory")

        @s.tick_cl
        def logic():
            s.cpu.xtick()
            s.mem.xtick()

            if s.reset:
                s.go = False
                s.data = []
                s.addrs = []
                return

            if s.go:
                if s.addrs and not s.mem.req_q.full():
                    s.mem.push_req(MemReqMsg.mk_rd(s.addrs.pop()))
                    s.ctr_mem_reads.incr()
                if not s.mem.resp_q.empty():
                    s.data.append(int(s.mem.get_resp().data))

                if len(s.data) == s.size * 2 and not s.cpu.resp_q.full():
                    result = numpy.dot(
                        numpy.array(s.data[0::2], dtype=object),
                        numpy.array(s.data[1::2], dtype=object),
                    )
                    s.cpu.push_resp(XcelRespMsg.mk(int(result) & 0xFFFFFFFF))
                    s.ctr_ops.incr()
                    s.go = False

            elif not s.cpu.req_q.empty() and not s.cpu.resp_q.full():
                req = s.cpu.get_req()
                if req.ctrl_msg == 1:
                    s.size = int(req.data)
                elif req.ctrl_msg == 2:
                    s.src0 = int(req.data)
                elif req.ctrl_msg == 3:
                    s.src1 = int(req.data)
                elif req.ctrl_msg == 0:
                    s.addrs = gen_addresses(s.size, s.src0, s.src1)
                    s.data = []
                    s.go = True

    def line_trace(s):
        return f"go={int(s.go)} got={len(s.data)}/{2 * s.size}"
