"""CL memcpy (DMA) accelerator: pipelined reads chased by writes."""

from __future__ import annotations

from ..core import (
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    Model,
    ParentReqRespBundle,
    ParentReqRespQueueAdapter,
)
from ..mem.msgs import MEM_REQ_WRITE, MemReqMsg
from .memcpy_fl import CTRL_DST, CTRL_GO, CTRL_SIZE, CTRL_SRC
from .msgs import XcelRespMsg


class MemcpyCL(Model):
    """Cycle-level DMA engine: one memory request per cycle, reads
    issued ahead, each returned word immediately turned into a write."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.cpu = ChildReqRespQueueAdapter(s.cpu_ifc)
        s.mem = ParentReqRespQueueAdapter(s.mem_ifc)

        s.go = False
        s.size = 0
        s.src = 0
        s.dst = 0
        s.reads_sent = 0
        s.writes_sent = 0
        s.acks = 0
        s.read_data = []

        @s.tick_cl
        def logic():
            s.cpu.xtick()
            s.mem.xtick()
            if s.reset:
                s.go = False
                s.read_data = []
                return

            if s.go:
                if not s.mem.req_q.full():
                    if s.read_data:
                        # Drain pending writes first (keeps ordering).
                        value = s.read_data.pop(0)
                        s.mem.push_req(MemReqMsg.mk_wr(
                            s.dst + 4 * s.writes_sent, value))
                        s.writes_sent += 1
                    elif s.reads_sent < s.size:
                        s.mem.push_req(MemReqMsg.mk_rd(
                            s.src + 4 * s.reads_sent))
                        s.reads_sent += 1
                if not s.mem.resp_q.empty():
                    resp = s.mem.get_resp()
                    if int(resp.type_) == MEM_REQ_WRITE:
                        s.acks += 1
                    else:
                        s.read_data.append(int(resp.data))
                if s.acks == s.size and not s.cpu.resp_q.full():
                    s.cpu.push_resp(XcelRespMsg.mk(s.size))
                    s.go = False

            elif not s.cpu.req_q.empty() and not s.cpu.resp_q.full():
                req = s.cpu.get_req()
                if req.ctrl_msg == CTRL_SIZE:
                    s.size = int(req.data)
                elif req.ctrl_msg == CTRL_SRC:
                    s.src = int(req.data)
                elif req.ctrl_msg == CTRL_DST:
                    s.dst = int(req.data)
                elif req.ctrl_msg == CTRL_GO:
                    s.reads_sent = 0
                    s.writes_sent = 0
                    s.acks = 0
                    s.read_data = []
                    s.go = True

    def line_trace(s):
        return (f"go={int(s.go)} r={s.reads_sent} w={s.writes_sent} "
                f"a={s.acks}")
