"""Memory-port arbiter: processor and accelerator share one cache port.

The paper's tile (Figure 5a) gives the accelerator coprocessor a
*shared* port to the L1 data cache, arbitrated against the processor.
``MemArbiter`` multiplexes two request/response client interfaces onto
one memory-side interface: the winning client holds the port until all
its outstanding responses return (responses are not tagged, so
interleaving across clients is not allowed); up to ``max_outstanding``
requests from the owner may pipeline.
"""

from __future__ import annotations

from ..core import ChildReqRespBundle, Model, ParentReqRespBundle, Wire


class MemArbiter(Model):
    """Two-client, single-owner memory-port arbiter (RTL)."""

    def __init__(s, ifc_types, max_outstanding=3):
        s.clients = [ChildReqRespBundle(ifc_types) for _ in range(2)]
        s.mem_ifc = ParentReqRespBundle(ifc_types)
        s.max_outstanding = max_outstanding

        s.owner = Wire(1)
        s.count = Wire(4)
        s.last_grant = Wire(1)

        @s.combinational
        def arb_comb():
            if s.reset.uint():
                s.mem_ifc.req_val.value = 0
                s.mem_ifc.resp_rdy.value = 0
                for i in range(2):
                    s.clients[i].req_rdy.value = 0
                    s.clients[i].resp_val.value = 0
            else:
                busy = s.count.uint() != 0
                if busy:
                    grant = s.owner.uint()
                elif s.clients[s.last_grant.uint() ^ 1].req_val.uint():
                    grant = s.last_grant.uint() ^ 1
                else:
                    grant = s.last_grant.uint()

                can_issue = s.count.uint() < s.max_outstanding
                for i in range(2):
                    if i == grant:
                        s.clients[i].req_rdy.value = (
                            s.mem_ifc.req_rdy.uint() and can_issue
                        )
                        s.clients[i].resp_val.value = \
                            s.mem_ifc.resp_val.value
                    else:
                        s.clients[i].req_rdy.value = 0
                        s.clients[i].resp_val.value = 0
                    s.clients[i].resp_msg.value = s.mem_ifc.resp_msg.value

                s.mem_ifc.req_val.value = (
                    s.clients[grant].req_val.uint() and can_issue
                )
                s.mem_ifc.req_msg.value = s.clients[grant].req_msg.value
                s.mem_ifc.resp_rdy.value = s.clients[grant].resp_rdy.value

        @s.tick_rtl
        def arb_seq():
            if s.reset:
                s.owner.next = 0
                s.count.next = 0
                s.last_grant.next = 0
            else:
                busy = s.count.uint() != 0
                if busy:
                    grant = s.owner.uint()
                elif s.clients[s.last_grant.uint() ^ 1].req_val.uint():
                    grant = s.last_grant.uint() ^ 1
                else:
                    grant = s.last_grant.uint()

                req_fire = (
                    s.mem_ifc.req_val.uint() and s.mem_ifc.req_rdy.uint()
                )
                resp_fire = (
                    s.mem_ifc.resp_val.uint() and s.mem_ifc.resp_rdy.uint()
                )
                delta = (1 if req_fire else 0) - (1 if resp_fire else 0)
                s.count.next = s.count.uint() + delta
                if req_fire:
                    s.owner.next = grant
                    s.last_grant.next = grant

    def line_trace(s):
        return f"own={int(s.owner)} n={int(s.count)}"
