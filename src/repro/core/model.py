"""The ``Model`` base class: concurrent-structural model description.

A PyMTL-style model (paper Figure 1) is a Python class inheriting from
``Model`` whose constructor declares ports, wires, submodels, structural
connectivity, and concurrent logic blocks:

    class Register(Model):
        def __init__(s, nbits):
            s.in_ = InPort(nbits)
            s.out = OutPort(nbits)

            @s.tick_rtl
            def seq_logic():
                s.out.next = s.in_.value

``Model.__new__`` initializes the bookkeeping state so user classes do
not need to call ``super().__init__()`` — constructors read exactly
like the paper's examples.

Concurrent logic is declared with decorators:

- ``@s.combinational`` — combinational logic; re-executed whenever a
  signal in its sensitivity list changes.
- ``@s.tick_rtl`` / ``@s.tick_cl`` / ``@s.tick_fl`` — sequential logic
  executed once per simulated cycle (RTL / cycle-level / functional
  level respectively; the level tag drives translatability checks and
  SimJIT eligibility).
- ``@s.posedge_clk`` — alias of ``@s.tick_rtl``.

Structural connectivity is declared with ``s.connect(a, b)`` (signals,
signal slices, or integer constants), ``s.connect_dict`` for bulk
connections, and ``s.connect_auto`` for name-based autoconnection of
two submodels (paper Figure 9).
"""

from __future__ import annotations

from .signals import InPort, OutPort, Signal, Wire, _SignalSlice


class _TickBlock:
    """A sequential logic block plus its abstraction-level tag."""

    __slots__ = ("func", "level", "model", "reads", "writes", "gateable")

    def __init__(self, func, level, model):
        self.func = func
        self.level = level        # 'fl' | 'cl' | 'rtl'
        self.model = model
        self.reads = []           # signals read (when statically known)
        self.writes = []          # signals written (when statically known)
        self.gateable = False     # True when the block is a pure function
                                  # of `reads` and may be skipped while
                                  # they are unchanged

    @property
    def name(self):
        return f"{self.model.full_name()}.{self.func.__name__}"


class _CombBlock:
    """A combinational logic block; sensitivity and read/write sets
    resolved at elaboration."""

    __slots__ = ("func", "model", "signals", "reads", "writes",
                 "writes_known")

    def __init__(self, func, model):
        self.func = func
        self.model = model
        self.signals = []         # sensitivity list, filled by elaborator
        self.reads = []           # precise read set (static scheduling)
        self.writes = []          # statically-visible written signals
        self.writes_known = False  # True when `writes` bounds all writes

    @property
    def name(self):
        return f"{self.model.full_name()}.{self.func.__name__}"


class Model:
    """Base class for all hardware models."""

    def __new__(cls, *args, **kwargs):
        self = super().__new__(cls)
        # Bookkeeping initialized here so user constructors need no
        # super().__init__() call (matching the paper's examples).
        self._connections = []
        self._tick_blocks = []
        self._comb_blocks = []
        self._submodels = []
        self._elaborated = False
        self._telemetry_counters = {}
        self._telemetry_histograms = {}
        self._observed_signals = []
        self.name = None
        self.parent = None
        # Implicit signals every model has (used by RTL reset logic and
        # required for Verilog translation).
        self.clk = InPort(1)
        self.reset = InPort(1)
        return self

    # -- behavioral block decorators --------------------------------------

    def combinational(self, func):
        """Register ``func`` as combinational logic."""
        self._comb_blocks.append(_CombBlock(func, self))
        return func

    def tick_fl(self, func):
        """Register ``func`` as functional-level sequential logic."""
        self._tick_blocks.append(_TickBlock(func, "fl", self))
        return func

    def tick_cl(self, func):
        """Register ``func`` as cycle-level sequential logic."""
        self._tick_blocks.append(_TickBlock(func, "cl", self))
        return func

    def tick_rtl(self, func):
        """Register ``func`` as register-transfer-level sequential logic."""
        self._tick_blocks.append(_TickBlock(func, "rtl", self))
        return func

    # Verilog-flavored alias
    posedge_clk = tick_rtl

    # -- telemetry declaration ----------------------------------------------

    def counter(self, name, desc="", sig=None, state=None):
        """Declare a named performance counter on this model.

        With no backing, returns a python-kind accumulator to bump
        with ``.incr()`` from tick code.  ``sig=`` backs the counter
        by a ``Wire`` the model's RTL already increments; ``state=``
        backs it by a plain int attribute (``("attr",)``) or a flat
        int-list element (``("attr", i)``) — the SimJIT-translatable
        kinds.  The elaborator collects declared counters
        hierarchically for ``sim.telemetry.report()``.

        When telemetry is globally disabled
        (:func:`repro.telemetry.set_enabled`), nothing is registered:
        unbacked declarations return a shared no-op
        :class:`~repro.telemetry.counters.NullCounter`, and backed
        declarations return an unregistered reader.
        """
        from ..telemetry.counters import NULL_COUNTER, Counter, enabled
        if not enabled():
            if sig is None and state is None:
                return NULL_COUNTER
            return Counter(name, desc=desc, owner=self, sig=sig,
                           state=state)
        if name in self._telemetry_counters:
            raise ValueError(
                f"duplicate counter {name!r} on {type(self).__name__}")
        ctr = Counter(name, desc=desc, owner=self, sig=sig, state=state)
        self._telemetry_counters[name] = ctr
        return ctr

    def observe(self, *signals):
        """Mark signals of this model as flight-recorder-worthy.

        Called in the constructor (the DSEL idiom, like
        :meth:`counter`)::

            s.state = Wire(3)
            s.observe(s.state, s.req_addr)

        A :class:`~repro.observe.recorder.FlightRecorder` armed with
        ``signals=None`` records every registration collected across
        the hierarchy.  Accepts Signal/slice objects; registration is
        free until a recorder is armed.  Returns the signals (single
        object if one was passed) for inline use."""
        self._observed_signals.extend(signals)
        return signals[0] if len(signals) == 1 else signals

    def histogram(self, name, desc="", sig=None, when=None):
        """Declare a named histogram; collected like :meth:`counter`.

        With no backing, returns a python-kind histogram to feed with
        ``.observe(value)`` from tick code.  ``sig=`` makes it
        *signal-backed*: the simulator samples the signal once per
        cycle at the post-edge observation point, optionally gated by
        ``when=`` (a one-bit enable signal), and under SimJIT the
        binning is compiled into the generated C kernel."""
        from ..telemetry.counters import NULL_HISTOGRAM, Histogram, enabled
        if not enabled():
            return NULL_HISTOGRAM
        if name in self._telemetry_histograms:
            raise ValueError(
                f"duplicate histogram {name!r} on {type(self).__name__}")
        hist = Histogram(name, desc=desc, owner=self, sig=sig, when=when)
        self._telemetry_histograms[name] = hist
        return hist

    # -- structural connectivity --------------------------------------------

    def connect(self, left, right):
        """Structurally connect two signals (or a signal and a constant).

        Full-signal connections form a net (bidirectional, one shared
        storage).  Slice connections and constants become directional
        connector logic, with the driver inferred from port kinds.
        """
        from .portbundle import PortBundle
        if isinstance(left, PortBundle) and isinstance(right, PortBundle):
            for sig_a, sig_b in left.connectable(right):
                self._connections.append((sig_a, sig_b))
            return
        valid = (Signal, _SignalSlice, int)
        if not isinstance(left, valid) or not isinstance(right, valid):
            raise TypeError(
                f"connect() arguments must be signals, slices, or ints; "
                f"got {type(left).__name__} and {type(right).__name__}"
            )
        if isinstance(left, int) and isinstance(right, int):
            raise TypeError("cannot connect two constants")
        self._connections.append((left, right))

    def connect_dict(self, mapping):
        """Connect pairs given as a dict (paper Figure 9)."""
        for left, right in mapping.items():
            self.connect(left, right)

    def connect_auto(self, model_a, model_b):
        """Connect same-named ports of two submodels, pairing an
        ``OutPort`` on one side with the same-named ``InPort`` or
        ``Wire`` on the other (paper Figure 9's dpath/ctrl hookup).

        Ports with no same-named counterpart are left unconnected.
        """
        ports_a = _port_dict(model_a)
        ports_b = _port_dict(model_b)
        for name in sorted(set(ports_a) & set(ports_b)):
            a, b = ports_a[name], ports_b[name]
            if isinstance(a, OutPort) and isinstance(b, InPort):
                self.connect(a, b)
            elif isinstance(a, InPort) and isinstance(b, OutPort):
                self.connect(b, a)

    # -- elaboration -----------------------------------------------------------

    def elaborate(self):
        """Elaborate this model as the top of a design hierarchy.

        Names every signal and submodel, resolves connections into
        nets, and infers combinational sensitivity lists.  Returns
        ``self`` for chaining.
        """
        from .elaboration import elaborate
        elaborate(self)
        return self

    def is_elaborated(self):
        return self._elaborated

    # -- introspection -----------------------------------------------------------

    def full_name(self):
        """Hierarchical dotted name (``top.child.grandchild``)."""
        # A model may declare its own attribute named ``parent`` (e.g.
        # a ParentReqRespBundle); only a Model parent is the hierarchy
        # pointer.
        if not isinstance(self.parent, Model):
            return self.name or type(self).__name__.lower()
        return f"{self.parent.full_name()}.{self.name}"

    def get_ports(self):
        """All InPort/OutPort signals declared on this model."""
        ports = []
        for attr in self.__dict__.values():
            ports.extend(_collect(attr, (InPort, OutPort)))
        return ports

    def get_inports(self):
        return [p for p in self.get_ports() if isinstance(p, InPort)]

    def get_outports(self):
        return [p for p in self.get_ports() if isinstance(p, OutPort)]

    def get_wires(self):
        wires = []
        for attr in self.__dict__.values():
            wires.extend(_collect(attr, (Wire,)))
        return wires

    def get_submodels(self):
        return list(self._submodels)

    def get_tick_blocks(self):
        return list(self._tick_blocks)

    def get_comb_blocks(self):
        return list(self._comb_blocks)

    def level(self):
        """Highest-detail abstraction level of this model's own blocks:
        'rtl' > 'cl' > 'fl'.  Structural models report 'struct'."""
        levels = {blk.level for blk in self._tick_blocks}
        if self._comb_blocks:
            levels.add("rtl")
        for order in ("rtl", "cl", "fl"):
            if order in levels:
                return order
        return "struct"

    def line_trace(self):
        """One-line textual state trace; models override for debugging."""
        return ""

    def __repr__(self):
        return f"<{type(self).__name__} {self.full_name()}>"


def _collect(attr, kinds, _depth=0):
    """Collect signals of the given kinds from an attribute value,
    descending into (possibly nested) lists."""
    if isinstance(attr, kinds):
        return [attr]
    if isinstance(attr, list) and _depth < 4:
        found = []
        for item in attr:
            found.extend(_collect(item, kinds, _depth + 1))
        return found
    from .portbundle import PortBundle
    if isinstance(attr, PortBundle):
        return [s for s in attr.get_signals() if isinstance(s, kinds)]
    return []


def _port_dict(model):
    """Map of local port name -> port for autoconnection."""
    ports = {}
    for name, attr in model.__dict__.items():
        if isinstance(attr, (InPort, OutPort)) and name not in ("clk", "reset"):
            ports[name] = attr
    return ports
