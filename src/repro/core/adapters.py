"""Adapters: programmer-friendly proxies over latency-insensitive ports.

The paper's FL/CL accelerator examples (Figures 7-8) never touch raw
val/rdy signals; they use adapters that hide the handshake protocol:

- ``ChildReqRespQueueAdapter`` — queue-based view of a
  ``ChildReqRespBundle`` (requests pop out of ``req_q``, responses push
  into ``resp_q``); the model calls ``xtick()`` once per cycle.
- ``ParentReqRespQueueAdapter`` — mirror image for a parent requester
  (push into ``req_q``, responses pop out of ``resp_q``).
- ``ListMemPortAdapter`` — a list-like proxy whose element accesses
  become memory read transactions over a ``ParentReqRespBundle``.  The
  paper implements this with greenlets; greenlets are unavailable here,
  so we substitute lock-step worker threads (one runs at a time, strict
  handoff), which preserves the observable behaviour: an FL block can
  pass the proxy straight into ``numpy.dot`` and each element access
  transparently expands into a multi-cycle memory transaction.
"""

from __future__ import annotations

import threading
from collections import deque

from .bits import Bits


class Queue:
    """Bounded FIFO used by the queue adapters."""

    def __init__(self, maxsize=2):
        self.maxsize = maxsize
        self._items = deque()

    def empty(self):
        return not self._items

    def full(self):
        return len(self._items) >= self.maxsize

    def enq(self, item):
        if self.full():
            raise IndexError("enqueue on full queue")
        self._items.append(item)

    def deq(self):
        if self.empty():
            raise IndexError("dequeue on empty queue")
        return self._items.popleft()

    def front(self):
        if self.empty():
            raise IndexError("front of empty queue")
        return self._items[0]

    def __len__(self):
        return len(self._items)


class ChildReqRespQueueAdapter:
    """Queue-based adapter for a child device's request/response
    interface (paper Figures 7-8).

    Usage inside a tick block::

        s.cpu.xtick()
        if not s.cpu.req_q.empty() and not s.cpu.resp_q.full():
            req = s.cpu.get_req()
            ...
            s.cpu.push_resp(result)
    """

    def __init__(self, bundle, req_qsize=2, resp_qsize=2):
        self.bundle = bundle
        self.req_q = Queue(req_qsize)
        self.resp_q = Queue(resp_qsize)
        self._skip = False

    def xtick(self):
        """Service the ports; call once at the top of the tick block."""
        if self._skip:
            # Already serviced by a BlockingTickRunner this cycle.
            self._skip = False
            return
        bundle = self.bundle
        # Response accepted by the other side on the last edge?
        if int(bundle.resp_val) and int(bundle.resp_rdy):
            self.resp_q.deq()
        # Incoming request latched on the last edge?
        if int(bundle.req_val) and int(bundle.req_rdy):
            self.req_q.enq(bundle.req_msg.value)
        # Drive next-cycle outputs.
        bundle.req_rdy.next = not self.req_q.full()
        if not self.resp_q.empty():
            bundle.resp_val.next = 1
            bundle.resp_msg.next = self.resp_q.front()
        else:
            bundle.resp_val.next = 0

    def get_req(self):
        return self.req_q.deq()

    def push_resp(self, msg):
        self.resp_q.enq(msg)


class ParentReqRespQueueAdapter:
    """Queue-based adapter for a parent requester's interface (the
    memory port in paper Figure 8)."""

    def __init__(self, bundle, req_qsize=2, resp_qsize=2):
        self.bundle = bundle
        self.req_q = Queue(req_qsize)
        self.resp_q = Queue(resp_qsize)
        self._skip = False

    def xtick(self):
        if self._skip:
            self._skip = False
            return
        bundle = self.bundle
        if int(bundle.req_val) and int(bundle.req_rdy):
            self.req_q.deq()
        if int(bundle.resp_val) and int(bundle.resp_rdy):
            self.resp_q.enq(bundle.resp_msg.value)
        bundle.resp_rdy.next = not self.resp_q.full()
        if not self.req_q.empty():
            bundle.req_val.next = 1
            bundle.req_msg.next = self.req_q.front()
        else:
            bundle.req_val.next = 0

    def push_req(self, msg):
        self.req_q.enq(msg)

    def get_resp(self):
        return self.resp_q.deq()


# -- blocking (coroutine-style) adapters ------------------------------------------


class _Handoff:
    """Strict lock-step handoff between the simulator thread and one
    worker thread: exactly one side runs at a time."""

    def __init__(self):
        self.to_worker = threading.Event()
        self.to_sim = threading.Event()

    def run_worker(self):
        """Called from the sim thread: let the worker run until it
        yields back."""
        self.to_worker.set()
        self.to_sim.wait()
        self.to_sim.clear()

    def yield_to_sim(self):
        """Called from the worker thread: pause until resumed."""
        self.to_sim.set()
        self.to_worker.wait()
        self.to_worker.clear()


class BlockingTickRunner:
    """Runs an FL tick block that may block inside adapters.

    Each simulated cycle: service every adapter's port logic, then give
    the worker thread a chance to run — either resuming a blocked
    invocation whose data arrived, or starting a fresh invocation of
    the block.  The worker only ever runs while the sim thread waits,
    so execution stays deterministic.
    """

    def __init__(self, func, adapters):
        self.func = func
        self.adapters = list(adapters)
        self.blocking = [
            a for a in self.adapters if isinstance(a, ListMemPortAdapter)
        ]
        self.handoff = _Handoff()
        self.state = "idle"        # idle | blocked | running
        self._thread = None
        self._worker_exc = None
        for adapter in self.blocking:
            adapter._runner = self

    def _worker_loop(self):
        while True:
            self.handoff.yield_to_sim()     # wait for first resume
            try:
                self.func()
            except BaseException as exc:    # noqa: BLE001
                # Hand the exception to the sim thread; a silently
                # dead worker would deadlock the next run_worker().
                self._worker_exc = exc
            finally:
                self.state = "idle"

    def __call__(self):
        for adapter in self.adapters:
            if isinstance(adapter, ListMemPortAdapter):
                adapter.xtick()
            else:
                # Queue adapters must be serviced even while the FL
                # block is paused mid-invocation; the user's own
                # xtick() call is then skipped once.
                adapter._skip = False
                adapter.xtick()
                adapter._skip = True
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._worker_loop, daemon=True
            )
            self._thread.start()
            # Let the worker reach its first yield point.
            self.handoff.to_sim.wait()
            self.handoff.to_sim.clear()
        if self.state == "blocked":
            if all(a.ready() for a in self.blocking if a.is_waiting()):
                self.state = "running"
                self.handoff.run_worker()
        elif self.state == "idle":
            self.state = "running"
            self.handoff.run_worker()
        if self._worker_exc is not None:
            exc = self._worker_exc
            self._worker_exc = None
            raise exc

    def block(self):
        """Called from the worker when an adapter must wait for data."""
        self.state = "blocked"
        self.handoff.yield_to_sim()


class ListMemPortAdapter:
    """List-like proxy that turns element accesses into memory
    transactions over a ``ParentReqRespBundle`` (paper Figure 7).

    ``proxy[i]`` issues a read of ``base + i*4`` and blocks the FL block
    until the response returns; ``proxy[i] = v`` issues a write.  With
    ``set_size``/``set_base`` configured, the proxy satisfies the
    sequence protocol, so ``numpy.dot(proxy0, proxy1)`` works unchanged.
    """

    WORD_BYTES = 4

    def __init__(self, bundle):
        self.bundle = bundle
        self._base = 0
        self._size = 0
        self._runner = None           # wired up by BlockingTickRunner
        self._pending = None          # ('rd'|'wr', addr, data)
        self._sent = False
        self._result = None
        self._have_result = False

    # -- configuration (paper Figure 7) ----------------------------------

    def set_base(self, base):
        self._base = int(base)

    def set_size(self, size):
        self._size = int(size)

    def __len__(self):
        return self._size

    # -- sequence protocol -------------------------------------------------

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [self[i] for i in range(*idx.indices(self._size))]
        addr = self._base + int(idx) * self.WORD_BYTES
        return self._transact("rd", addr, 0)

    def __setitem__(self, idx, value):
        addr = self._base + int(idx) * self.WORD_BYTES
        self._transact("wr", addr, int(value))

    def __iter__(self):
        for i in range(self._size):
            yield self[i]

    # -- transaction engine --------------------------------------------------

    def _transact(self, kind, addr, data):
        runner = self._runner
        if runner is None or runner._thread is None \
                or threading.current_thread() is not runner._thread:
            # Blocking from any thread but the runner's worker (e.g.
            # straight from a test bench) would deadlock the handoff.
            raise RuntimeError(
                "ListMemPortAdapter used outside a blocking FL tick block"
            )
        self._pending = (kind, addr, data)
        self._sent = False
        self._have_result = False
        self._runner.block()          # sim ticks until response arrives
        result = self._result
        self._pending = None
        return result

    def is_waiting(self):
        return self._pending is not None

    def ready(self):
        return self._have_result

    def xtick(self):
        """Drive the memory port; called by the runner each cycle.

        Only touches the ports while it owns a transaction, so several
        adapters can share one memory bundle (the FL block serializes
        accesses, so at most one adapter is active at a time — paper
        Figure 7 hangs two proxies off one ``mem_ifc``).
        """
        if self._pending is None:
            return
        bundle = self.bundle
        if self._sent:
            if int(bundle.resp_val) and int(bundle.resp_rdy):
                self._result = int(bundle.resp_msg.value.data)
                self._have_result = True
                bundle.resp_rdy.next = 0
        elif int(bundle.req_val) and int(bundle.req_rdy):
            # Request accepted on the last edge.
            self._sent = True
            bundle.req_val.next = 0
            bundle.resp_rdy.next = 1
        else:
            kind, addr, data = self._pending
            req = bundle.ifc_types.req()
            req.type_ = 0 if kind == "rd" else 1
            req.addr = addr
            req.data = data
            bundle.req_msg.next = req
            bundle.req_val.next = 1


def wrap_fl_ticks(model):
    """Replace the FL tick blocks of ``model`` (and submodels) that use
    blocking adapters with ``BlockingTickRunner`` wrappers.

    Returns a mapping from original tick function to wrapper; the
    ``SimulationTool`` applies it when constructing the tick schedule.
    """
    wrappers = {}
    for sub in getattr(model, "_all_models", [model]):
        blocking = [
            attr for attr in sub.__dict__.values()
            if isinstance(attr, ListMemPortAdapter)
        ]
        if not blocking:
            continue
        queue_adapters = [
            attr for attr in sub.__dict__.values()
            if isinstance(
                attr, (ChildReqRespQueueAdapter, ParentReqRespQueueAdapter)
            )
        ]
        for blk in sub.get_tick_blocks():
            if blk.level == "fl":
                wrappers[blk.func] = BlockingTickRunner(
                    blk.func, blocking + queue_adapters
                )
    return wrappers
