"""Fixed-bitwidth value type with Verilog-like semantics.

``Bits`` is the workhorse message type of the framework (paper Section
III-A).  A ``Bits`` instance pairs a bitwidth with an unsigned value and
implements wrap-around (modular) arithmetic, bit slicing, concatenation,
and both unsigned and two's-complement signed interpretation.

``Bits`` values are immutable: every operation returns a new instance.
This keeps net storage in the simulator alias-free and makes ``Bits``
hashable (usable as dict keys, e.g. in instruction decoders).

Width rules follow common HDL practice:

- binary arithmetic/bitwise ops between two ``Bits`` produce a result of
  the *maximum* operand width, truncated to that width;
- ints mixed with ``Bits`` are coerced to the ``Bits`` operand's width;
- comparisons compare unsigned values;
- shifts keep the left operand's width.
"""

from __future__ import annotations


class Bits:
    """An immutable fixed-width bit vector.

    >>> b = Bits(8, 0xAB)
    >>> b.uint(), b.int()
    (171, -85)
    >>> (b + 0xFF).uint()   # wrap-around at 8 bits
    170
    >>> b[0:4].uint()       # little-endian slice: bits 3..0
    11
    """

    __slots__ = ("nbits", "_uint")

    def __init__(self, nbits, value=0, trunc=False):
        if nbits < 1:
            raise ValueError(f"nbits must be >= 1, got {nbits}")
        value = int(value)
        mask = (1 << nbits) - 1
        if trunc:
            value &= mask
        else:
            if value > mask or value < -(1 << (nbits - 1)):
                raise ValueError(
                    f"value {value} does not fit in {nbits} bits"
                )
            value &= mask
        object.__setattr__(self, "nbits", nbits)
        object.__setattr__(self, "_uint", value)

    # -- immutability -----------------------------------------------------

    def __setattr__(self, name, value):
        raise AttributeError("Bits objects are immutable")

    # Immutable values need no copying — sharing the instance is safe,
    # and ``copy.deepcopy`` would otherwise trip over __setattr__.
    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    # -- value access ------------------------------------------------------

    def uint(self):
        """Return the unsigned integer interpretation."""
        return self._uint

    def int(self):
        """Return the two's-complement signed interpretation."""
        if self._uint >> (self.nbits - 1):
            return self._uint - (1 << self.nbits)
        return self._uint

    def __int__(self):
        return self._uint

    def __index__(self):
        return self._uint

    def __bool__(self):
        return self._uint != 0

    def __hash__(self):
        return hash((self.nbits, self._uint))

    # -- display ------------------------------------------------------------

    def __repr__(self):
        return f"Bits{self.nbits}({self.hex()})"

    def __str__(self):
        nchars = (self.nbits + 3) // 4
        return f"{self._uint:0{nchars}x}"

    def hex(self):
        """Return the value as a fixed-width hex literal string."""
        nchars = (self.nbits + 3) // 4
        return f"0x{self._uint:0{nchars}x}"

    def bin(self):
        """Return the value as a fixed-width binary literal string."""
        return f"0b{self._uint:0{self.nbits}b}"

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _coerce(other, nbits):
        if isinstance(other, Bits):
            return other._uint, other.nbits
        if isinstance(other, int):
            return other & ((1 << nbits) - 1), nbits
        return NotImplemented, 0

    def _binop(self, other, op):
        val, obits = self._coerce(other, self.nbits)
        if val is NotImplemented:
            return NotImplemented
        nbits = max(self.nbits, obits)
        return Bits(nbits, op(self._uint, val), trunc=True)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other):
        return self._binop(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binop(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._binop(other, lambda a, b: b - a)

    def __mul__(self, other):
        return self._binop(other, lambda a, b: a * b)

    __rmul__ = __mul__

    def __floordiv__(self, other):
        return self._binop(other, lambda a, b: a // b)

    def __mod__(self, other):
        return self._binop(other, lambda a, b: a % b)

    def __neg__(self):
        return Bits(self.nbits, -self._uint, trunc=True)

    # -- bitwise -------------------------------------------------------------

    def __and__(self, other):
        return self._binop(other, lambda a, b: a & b)

    __rand__ = __and__

    def __or__(self, other):
        return self._binop(other, lambda a, b: a | b)

    __ror__ = __or__

    def __xor__(self, other):
        return self._binop(other, lambda a, b: a ^ b)

    __rxor__ = __xor__

    def __invert__(self):
        return Bits(self.nbits, ~self._uint, trunc=True)

    def __lshift__(self, other):
        shamt = int(other)
        if shamt >= self.nbits:
            return Bits(self.nbits, 0)
        return Bits(self.nbits, self._uint << shamt, trunc=True)

    def __rshift__(self, other):
        shamt = int(other)
        if shamt >= self.nbits:
            return Bits(self.nbits, 0)
        return Bits(self.nbits, self._uint >> shamt)

    # -- comparisons (unsigned) ------------------------------------------------

    def _cmp_val(self, other):
        if isinstance(other, Bits):
            return other._uint
        if isinstance(other, int):
            return other & ((1 << max(self.nbits, other.bit_length() or 1)) - 1) \
                if other >= 0 else other
        return NotImplemented

    def __eq__(self, other):
        val = self._cmp_val(other)
        if val is NotImplemented:
            return NotImplemented
        return self._uint == val

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other):
        val = self._cmp_val(other)
        if val is NotImplemented:
            return NotImplemented
        return self._uint < val

    def __le__(self, other):
        val = self._cmp_val(other)
        if val is NotImplemented:
            return NotImplemented
        return self._uint <= val

    def __gt__(self, other):
        val = self._cmp_val(other)
        if val is NotImplemented:
            return NotImplemented
        return self._uint > val

    def __ge__(self, other):
        val = self._cmp_val(other)
        if val is NotImplemented:
            return NotImplemented
        return self._uint >= val

    # -- slicing ----------------------------------------------------------------

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            start, stop = _norm_slice(idx, self.nbits)
            return Bits(stop - start, (self._uint >> start) & ((1 << (stop - start)) - 1))
        i = int(idx)
        if not 0 <= i < self.nbits:
            raise IndexError(f"bit index {i} out of range for Bits{self.nbits}")
        return Bits(1, (self._uint >> i) & 1)

    def __len__(self):
        return self.nbits

    # -- width adjustment ----------------------------------------------------------

    def zext(self, nbits):
        """Zero-extend to ``nbits`` bits."""
        if nbits < self.nbits:
            raise ValueError("zext target narrower than source")
        return Bits(nbits, self._uint)

    def sext(self, nbits):
        """Sign-extend to ``nbits`` bits."""
        if nbits < self.nbits:
            raise ValueError("sext target narrower than source")
        return Bits(nbits, self.int(), trunc=True)


def _norm_slice(idx, nbits):
    """Normalize a little-endian bit slice against a width."""
    if idx.step is not None:
        raise ValueError("Bits slices do not support a step")
    start = 0 if idx.start is None else int(idx.start)
    stop = nbits if idx.stop is None else int(idx.stop)
    if not 0 <= start < stop <= nbits:
        raise IndexError(
            f"invalid slice [{start}:{stop}] for {nbits}-bit value"
        )
    return start, stop


def concat(*values):
    """Concatenate ``Bits`` values, first argument in the most-significant
    position (matching Verilog's ``{a, b, c}``).

    >>> concat(Bits(4, 0xA), Bits(4, 0xB)).hex()
    '0xab'
    """
    if not values:
        raise ValueError("concat requires at least one value")
    result = 0
    nbits = 0
    for value in values:
        if not isinstance(value, Bits):
            # Coerce signals and signal slices through their value.
            coerced = getattr(value, "value", None)
            if isinstance(coerced, Bits):
                value = coerced
            else:
                raise TypeError(
                    "concat arguments must be Bits, signals, or slices"
                )
        result = (result << value.nbits) | value.uint()
        nbits += value.nbits
    return Bits(nbits, result)


def zext(value, nbits):
    """Zero-extend ``value`` to ``nbits``."""
    return value.zext(nbits)


def sext(value, nbits):
    """Sign-extend ``value`` to ``nbits``."""
    return value.sext(nbits)


def clog2(value):
    """Ceiling log2 — the classic HDL 'bits needed to count to N-1'.

    >>> [clog2(n) for n in (1, 2, 3, 4, 8, 9)]
    [0, 1, 2, 2, 3, 4]
    """
    if value < 1:
        raise ValueError("clog2 requires a positive argument")
    return (value - 1).bit_length()


def bw(nports):
    """Bitwidth needed to select among ``nports`` choices (min 1 bit).

    This is the helper the paper's Mux example calls ``bw``.
    """
    return max(1, clog2(nports))
