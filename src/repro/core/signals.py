"""Signals: ports and wires with ``.value``/``.next`` semantics.

Signals are the connective tissue of a concurrent-structural model
(paper Section III-A):

- ``InPort`` / ``OutPort`` declare a model's port-based interface;
- ``Wire`` declares internal state/connectivity;
- signals written inside ``@s.combinational`` blocks behave like wires
  and are updated through ``.value``;
- signals written inside ``@s.tick_*`` blocks behave like registers and
  are updated through ``.next`` (the write takes effect at the end of
  the simulated cycle).

Every signal owns a private ``_Net`` at construction time; elaboration
merges the nets of structurally connected signals (union-find) so that
all signals on a net share one storage slot.  Reading ``.value`` works
before a simulator exists (it just reads the net), which keeps
elaboration-time code and test benches simple.

Signals also forward arithmetic/comparison operators to their current
value so RTL blocks can write ``s.count + 1`` instead of
``s.count.value + 1`` — matching the paper's examples.
"""

from __future__ import annotations

from .bits import Bits, _norm_slice
from .bitstruct import BitStruct


class _Net:
    """Shared storage for a set of connected signals.

    Before simulation the net is freestanding: writes store immediately
    and nothing is notified.  The ``SimulationTool`` attaches itself and
    a list of dependent combinational blocks at construction time.
    """

    __slots__ = ("nbits", "_value", "_next", "parent", "sim", "blocks",
                 "id", "sreaders", "treaders")

    def __init__(self, nbits):
        self.nbits = nbits
        self._value = 0
        self._next = 0
        self.parent = self      # union-find parent
        self.sim = None         # owning SimulationTool, if any
        self.blocks = ()        # event-driven blocks sensitive to this net
        self.id = None          # dense index assigned by the simulator
        self.sreaders = ()      # static-schedule slots reading this net
        self.treaders = ()      # gated-tick slots reading this net

    def find(self):
        """Union-find root with path compression."""
        root = self
        while root.parent is not root:
            root = root.parent
        node = self
        while node.parent is not root:
            node.parent, node = root, node.parent
        return root

    def read(self):
        return self._value

    def write(self, value):
        if value != self._value:
            self._value = value
            sim = self.sim
            if sim is not None:
                sim._notify(self)

    def write_next(self, value):
        self._next = value
        sim = self.sim
        if sim is not None:
            sim._register_flop(self)


def _msg_nbits(msg_type):
    """Width (in bits) of a port message-type specification."""
    if isinstance(msg_type, int):
        return msg_type
    if isinstance(msg_type, Bits):
        return msg_type.nbits
    if isinstance(msg_type, type) and issubclass(msg_type, BitStruct):
        return msg_type.nbits
    if isinstance(msg_type, BitStruct):
        return type(msg_type).nbits
    raise TypeError(f"unsupported message type spec: {msg_type!r}")


def _msg_struct(msg_type):
    """BitStruct class of a message-type spec, or None for plain Bits."""
    if isinstance(msg_type, type) and issubclass(msg_type, BitStruct):
        return msg_type
    if isinstance(msg_type, BitStruct):
        return type(msg_type)
    return None


class _ArrayableMeta(type):
    """Enables the ``InPort[n](msg_type)`` list-of-ports shorthand from
    the paper's Mux example."""

    def __getitem__(cls, count):
        def make(*args, **kwargs):
            return [cls(*args, **kwargs) for _ in range(count)]
        return make


class Signal(metaclass=_ArrayableMeta):
    """Base class for ports and wires."""

    def __init__(self, msg_type):
        self.msg_type = msg_type
        self.nbits = _msg_nbits(msg_type)
        self._struct = _msg_struct(msg_type)
        self.name = None      # dotted name, assigned at elaboration
        self.parent = None    # owning Model, assigned at elaboration
        self._net = _Net(self.nbits)

    # -- value access ---------------------------------------------------

    @property
    def value(self):
        """Current value as ``Bits`` (or ``BitStruct`` view)."""
        # Hot path: elaboration compresses ``_net`` to the union-find
        # root, so skip the ``find()`` call once compressed.
        net = self._net
        if net.parent is not net:
            net = net.find()
            self._net = net
        if self._struct is not None:
            return self._struct(net._value)
        return Bits(self.nbits, net._value)

    @value.setter
    def value(self, value):
        net = self._net
        if net.parent is not net:
            net = net.find()
            self._net = net
        net.write(int(value) & ((1 << self.nbits) - 1))

    @property
    def next(self):
        raise AttributeError(
            ".next is write-only; read the current value via .value"
        )

    @next.setter
    def next(self, value):
        net = self._net
        if net.parent is not net:
            net = net.find()
            self._net = net
        net.write_next(int(value) & ((1 << self.nbits) - 1))

    def uint(self):
        net = self._net
        if net.parent is not net:
            net = net.find()
            self._net = net
        return net._value

    # -- slicing and struct-field access ------------------------------------

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            lo, hi = _norm_slice(idx, self.nbits)
        else:
            i = int(idx)
            if not 0 <= i < self.nbits:
                raise IndexError(
                    f"bit index {i} out of range for {self.nbits}-bit signal"
                )
            lo, hi = i, i + 1
        return _SignalSlice(self, lo, hi)

    def __getattr__(self, name):
        # Only called for attributes not found normally: resolve
        # BitStruct field names to sub-signal slices.
        struct = self.__dict__.get("_struct")
        if struct is not None:
            try:
                lo, hi = struct.field_slice(name)
            except AttributeError:
                pass
            else:
                field = next(f for f in struct._fields if f.name == name)
                return _SignalSlice(self, lo, hi, field.struct_type)
        raise AttributeError(
            f"{type(self).__name__} {self.__dict__.get('name')} "
            f"has no attribute {name!r}"
        )

    def __len__(self):
        return self.nbits

    # -- operator forwarding --------------------------------------------------

    def __int__(self):
        net = self._net
        return (net if net.parent is net else net.find())._value

    def __index__(self):
        net = self._net
        return (net if net.parent is net else net.find())._value

    def __bool__(self):
        net = self._net
        return (net if net.parent is net else net.find())._value != 0

    def __add__(self, other):
        return self.value + other

    def __radd__(self, other):
        return self.value + other

    def __sub__(self, other):
        return self.value - other

    def __rsub__(self, other):
        return other - int(self) if isinstance(other, int) else other - self.value

    def __mul__(self, other):
        return self.value * other

    __rmul__ = __mul__

    def __and__(self, other):
        return self.value & other

    __rand__ = __and__

    def __or__(self, other):
        return self.value | other

    __ror__ = __or__

    def __xor__(self, other):
        return self.value ^ other

    __rxor__ = __xor__

    def __invert__(self):
        return ~self.value

    def __lshift__(self, other):
        return self.value << other

    def __rshift__(self, other):
        return self.value >> other

    def __eq__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value == other

    def __ne__(self, other):
        return not self.__eq__(other)

    def __lt__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value < other

    def __le__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value <= other

    def __gt__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value > other

    def __ge__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value >= other

    def __hash__(self):
        return id(self)

    def __repr__(self):
        kind = type(self).__name__
        return f"{kind}({self.name or '?'}, {self.nbits}b)"


class InPort(Signal):
    """An input port of a model."""


class OutPort(Signal):
    """An output port of a model."""


class Wire(Signal):
    """An internal wire (or register, when written via ``.next``)."""


class _SignalSlice:
    """Read/write view of a bit range of a signal.

    Returned by ``sig[lo:hi]``, ``sig[i]``, and BitStruct field access
    on a signal.  Supports ``.value``/``.next`` and forwards operators,
    so slices compose like full signals in behavioral blocks and can be
    used in ``s.connect``.
    """

    __slots__ = ("signal", "lo", "hi", "nbits", "_struct")

    def __init__(self, signal, lo, hi, struct_type=None):
        self.signal = signal
        self.lo = lo
        self.hi = hi
        self.nbits = hi - lo
        self._struct = struct_type

    @property
    def value(self):
        raw = self.signal._net.find().read()
        val = (raw >> self.lo) & ((1 << self.nbits) - 1)
        if self._struct is not None:
            return self._struct(val)
        return Bits(self.nbits, val)

    @value.setter
    def value(self, value):
        net = self.signal._net.find()
        raw = net.read()
        mask = ((1 << self.nbits) - 1) << self.lo
        val = (int(value) & ((1 << self.nbits) - 1)) << self.lo
        net.write((raw & ~mask) | val)

    @property
    def next(self):
        raise AttributeError(".next is write-only")

    @next.setter
    def next(self, value):
        net = self.signal._net.find()
        # Merge into the pending next value so multiple slice writes to
        # one register within a tick compose.
        raw = net._next if net.sim is not None and net in getattr(
            net.sim, "_pending_flops", ()) else net.read()
        mask = ((1 << self.nbits) - 1) << self.lo
        val = (int(value) & ((1 << self.nbits) - 1)) << self.lo
        net.write_next((raw & ~mask) | val)

    def __getattr__(self, name):
        struct = object.__getattribute__(self, "_struct")
        if struct is not None:
            lo, hi = struct.field_slice(name)
            field = next(f for f in struct._fields if f.name == name)
            return _SignalSlice(
                self.signal, self.lo + lo, self.lo + hi, field.struct_type
            )
        raise AttributeError(name)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            lo, hi = _norm_slice(idx, self.nbits)
        else:
            i = int(idx)
            lo, hi = i, i + 1
        return _SignalSlice(self.signal, self.lo + lo, self.lo + hi)

    def __len__(self):
        return self.nbits

    def __int__(self):
        return int(self.value)

    def __index__(self):
        return int(self.value)

    def __bool__(self):
        return int(self.value) != 0

    def __add__(self, other):
        return self.value + other

    def __radd__(self, other):
        return self.value + other

    def __sub__(self, other):
        return self.value - other

    def __and__(self, other):
        return self.value & other

    def __or__(self, other):
        return self.value | other

    def __xor__(self, other):
        return self.value ^ other

    def __invert__(self):
        return ~self.value

    def __lshift__(self, other):
        return self.value << other

    def __rshift__(self, other):
        return self.value >> other

    def __eq__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value == other

    def __ne__(self, other):
        return not self.__eq__(other)

    def __lt__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value < other

    def __le__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value <= other

    def __gt__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value > other

    def __ge__(self, other):
        if isinstance(other, (Signal, _SignalSlice)):
            other = other.value
        return self.value >= other

    def __hash__(self):
        return hash((id(self.signal), self.lo, self.hi))

    def __repr__(self):
        return f"{self.signal!r}[{self.lo}:{self.hi}]"
