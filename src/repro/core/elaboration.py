"""Elaboration: turn a model description into a simulatable instance.

Elaboration (paper Figure 3) walks the hierarchy built by the user's
constructors and produces an in-memory design representation that the
tools (simulator, translator, SimJIT) consume:

1. every signal and submodel gets a hierarchical name and parent link;
2. ``clk``/``reset`` propagate implicitly from parent to child;
3. full-signal connections are merged into *nets* (union-find), so all
   signals on a net share one storage slot;
4. slice connections and constant ties become directional *connector*
   specs (the driver inferred from port kinds and hierarchy);
5. each ``@combinational`` block gets a sensitivity list inferred by
   static AST analysis of the signals it reads.

The result is stored on the top model: ``_all_models``, ``_all_signals``,
``_all_nets``, ``_connectors``, ``_const_ties``.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from .model import Model, _CombBlock
from .portbundle import PortBundle
from .signals import InPort, OutPort, Signal, Wire, _SignalSlice


class ElaborationError(Exception):
    """Raised for malformed structure (width mismatches, bad drivers)."""


def elaborate(top):
    """Elaborate ``top`` as the root of a design hierarchy."""
    if top._elaborated:
        return top
    if top.name is None:
        top.name = "top"

    _name_model(top)

    all_models = []
    _collect_models(top, all_models)

    # Implicit clk/reset propagation from each parent to its children.
    for model in all_models:
        for child in model._submodels:
            model._connections.append((model.clk, child.clk))
            model._connections.append((model.reset, child.reset))

    connectors = []
    const_ties = []
    for model in all_models:
        for left, right in model._connections:
            _process_connection(model, left, right, connectors, const_ties)

    all_signals = []
    for model in all_models:
        all_signals.extend(_model_signals(model))

    # Collapse union-find chains: each signal points directly at its root
    # net so simulation-time reads skip the find().
    nets = {}
    for sig in all_signals:
        root = sig._net.find()
        sig._net = root
        nets[id(root)] = root
    all_nets = list(nets.values())

    for model in all_models:
        for blk in model._comb_blocks:
            if not blk.signals:
                blk.signals = _infer_sensitivity(blk)

    top._all_models = all_models
    top._all_signals = all_signals
    top._all_nets = all_nets
    top._connectors = connectors
    top._const_ties = const_ties
    for model in all_models:
        model._elaborated = True
    return top


# -- naming -------------------------------------------------------------------


def _name_model(model):
    """Assign names/parents to this model's signals, bundles, and
    submodels, recursing into children."""
    for attr_name, attr in list(model.__dict__.items()):
        if attr_name.startswith("_") or attr_name in ("name", "parent"):
            continue
        _name_attr(model, attr_name, attr)
    for child in model._submodels:
        _name_model(child)


def _name_attr(model, name, attr, depth=0):
    if isinstance(attr, Signal):
        attr.name = name
        attr.parent = model
    elif isinstance(attr, PortBundle):
        attr.name = name
        attr.parent = model
        for sig_name, sig in attr.get_named_signals():
            sig.name = f"{name}.{sig_name}"
            sig.parent = model
    elif isinstance(attr, Model):
        if attr.parent is None:
            attr.name = name
            attr.parent = model
            model._submodels.append(attr)
    elif isinstance(attr, list) and depth < 4:
        for i, item in enumerate(attr):
            _name_attr(model, f"{name}[{i}]", item, depth + 1)


def _collect_models(model, out):
    out.append(model)
    for child in model._submodels:
        _collect_models(child, out)


def _model_signals(model):
    signals = []
    for attr in model.__dict__.values():
        signals.extend(_attr_signals(attr))
    return signals


def _attr_signals(attr, depth=0):
    if isinstance(attr, Signal):
        return [attr]
    if isinstance(attr, PortBundle):
        return attr.get_signals()
    if isinstance(attr, list) and depth < 4:
        found = []
        for item in attr:
            found.extend(_attr_signals(item, depth + 1))
        return found
    return []


# -- connections ---------------------------------------------------------------


def _process_connection(model, left, right, connectors, const_ties):
    # Constant tie: applied once at simulator init.
    if isinstance(left, int) or isinstance(right, int):
        sig, const = (right, left) if isinstance(left, int) else (left, right)
        target = sig.signal if isinstance(sig, _SignalSlice) else sig
        if const >> _width_of(sig):
            raise ElaborationError(
                f"constant {const} too wide for {_describe(sig)}"
            )
        const_ties.append((sig, const))
        return

    if _width_of(left) != _width_of(right):
        raise ElaborationError(
            f"connected widths differ: {_describe(left)} is "
            f"{_width_of(left)}b but {_describe(right)} is {_width_of(right)}b"
        )

    if isinstance(left, Signal) and isinstance(right, Signal):
        # Full connection: merge nets (bidirectional, shared storage).
        root_l = left._net.find()
        root_r = right._net.find()
        if root_l is not root_r:
            root_r.parent = root_l
        return

    # Slice connection: directional connector, driver inferred.
    src, dst = _infer_driver(model, left, right)
    connectors.append((src, dst))


def _width_of(end):
    return end.nbits


def _describe(end):
    if isinstance(end, _SignalSlice):
        return f"{_describe(end.signal)}[{end.lo}:{end.hi}]"
    return f"{type(end).__name__} {end.name or '?'}"


def _drives(model, end):
    """Does this endpoint act as a driver from ``model``'s perspective?

    Standard structural semantics: a child's OutPort and the enclosing
    model's own InPort drive; a child's InPort and the model's own
    OutPort are driven.  Wires are bidirectional (None = unknown).
    """
    sig = end.signal if isinstance(end, _SignalSlice) else end
    inside = sig.parent is model
    if isinstance(sig, Wire):
        return None
    if isinstance(sig, OutPort):
        return not inside
    if isinstance(sig, InPort):
        return inside
    return None


def _infer_driver(model, left, right):
    l_drives = _drives(model, left)
    r_drives = _drives(model, right)
    if l_drives and r_drives:
        raise ElaborationError(
            f"both ends drive: {_describe(left)} <-> {_describe(right)}"
        )
    if l_drives or (r_drives is False):
        return left, right
    if r_drives or (l_drives is False):
        return right, left
    # Two wires sliced together: pick left as driver (documented choice).
    return left, right


# -- sensitivity inference ----------------------------------------------------------


def _infer_sensitivity(blk):
    """Infer the signals a combinational block reads.

    Parses the block's source and collects every attribute/subscript
    chain rooted at the model reference that is read (Load context).
    Dynamic indices widen to every element of the indexed list.  Falls
    back to all input ports and wires of the model when source is not
    available.
    """
    model = blk.model
    try:
        src = textwrap.dedent(inspect.getsource(blk.func))
        tree = ast.parse(src)
    except (OSError, TypeError, SyntaxError):
        return _fallback_sensitivity(model)

    func_def = tree.body[0]
    if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return _fallback_sensitivity(model)

    root_names = _model_ref_names(blk.func, model)
    if not root_names:
        return _fallback_sensitivity(model)

    # Signals assigned by this block must not be in its own sensitivity
    # list (a comb block writing a net mid-execution would re-trigger
    # itself forever on the intermediate value).
    write_paths = set()
    for node in ast.walk(func_def):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            path = _extract_path(target, root_names, any_ctx=True)
            if path is not None:
                write_paths.add(path)
    written = set()
    for path in write_paths:
        written.update(id(sig) for sig in _resolve_path(model, path))

    paths = set()
    for node in ast.walk(func_def):
        path = _extract_path(node, root_names)
        if path is not None:
            paths.add(path)

    signals = []
    seen = set()
    for path in paths:
        for sig in _resolve_path(model, path):
            if id(sig) not in seen and id(sig) not in written:
                seen.add(id(sig))
                signals.append(sig)
    if not signals:
        return _fallback_sensitivity(model)
    return signals


def _model_ref_names(func, model):
    """Names in the function's closure/globals bound to the model."""
    names = set()
    code = func.__code__
    if func.__closure__:
        for var, cell in zip(code.co_freevars, func.__closure__):
            try:
                if cell.cell_contents is model:
                    names.add(var)
            except ValueError:
                pass
    for var, val in func.__globals__.items():
        if val is model:
            names.add(var)
    return names


_VALUE_ATTRS = {"value", "next", "uint", "int"}
_WILDCARD = "*"


def _extract_path(node, root_names, any_ctx=False):
    """If ``node`` is a read of ``<root>.a[i].b...``, return the access
    path as a tuple; otherwise None.  Only Load contexts count unless
    ``any_ctx`` is set (used for assignment targets)."""
    if not isinstance(node, (ast.Attribute, ast.Subscript)):
        return None
    if not any_ctx and not isinstance(getattr(node, "ctx", None), ast.Load):
        return None
    parts = []
    cur = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(("attr", cur.attr))
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            idx = cur.slice
            if isinstance(idx, ast.Constant) and isinstance(idx.value, int):
                parts.append(("index", idx.value))
            else:
                parts.append(("index", _WILDCARD))
            cur = cur.value
        elif isinstance(cur, ast.Name):
            if cur.id in root_names:
                parts.reverse()
                # Strip trailing .value/.next/.uint accessor.
                while parts and parts[-1][0] == "attr" \
                        and parts[-1][1] in _VALUE_ATTRS:
                    parts.pop()
                return tuple(parts) if parts else None
            return None
        else:
            return None


def _resolve_path(model, path):
    """Resolve an access path against the live model, returning the
    signals it touches."""
    objs = [model]
    for kind, key in path:
        next_objs = []
        for obj in objs:
            if isinstance(obj, (Signal, _SignalSlice)):
                # Deeper access on a signal (slices, struct fields) still
                # reads the same underlying signal.
                next_objs.append(obj)
                continue
            if kind == "attr":
                try:
                    got = getattr(obj, key)
                except AttributeError:
                    continue
                next_objs.append(got)
            else:
                if isinstance(obj, list):
                    if key == _WILDCARD:
                        next_objs.extend(obj)
                    elif isinstance(key, int) and key < len(obj):
                        next_objs.append(obj[key])
        objs = next_objs

    signals = []
    for obj in objs:
        if isinstance(obj, _SignalSlice):
            signals.append(obj.signal)
        elif isinstance(obj, Signal):
            signals.append(obj)
        elif isinstance(obj, PortBundle):
            signals.extend(obj.get_signals())
        elif isinstance(obj, list):
            signals.extend(s for s in obj if isinstance(s, Signal))
    return signals


def _fallback_sensitivity(model):
    return model.get_inports() + model.get_wires()
