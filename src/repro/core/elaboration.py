"""Elaboration: turn a model description into a simulatable instance.

Elaboration (paper Figure 3) walks the hierarchy built by the user's
constructors and produces an in-memory design representation that the
tools (simulator, translator, SimJIT) consume:

1. every signal and submodel gets a hierarchical name and parent link;
2. ``clk``/``reset`` propagate implicitly from parent to child;
3. full-signal connections are merged into *nets* (union-find), so all
   signals on a net share one storage slot;
4. slice connections and constant ties become directional *connector*
   specs (the driver inferred from port kinds and hierarchy);
5. each ``@combinational`` block gets a sensitivity list inferred by
   static AST analysis of the signals it reads, plus precise
   read/write sets used by the simulator's static scheduling pass.

The result is stored on the top model: ``_all_models``, ``_all_signals``,
``_all_nets``, ``_connectors``, ``_const_ties``.

Sensitivity vs. read/write analysis
-----------------------------------

Two related analyses run over each combinational block's AST:

- the *sensitivity list* (``blk.signals``) drives the event-driven
  simulator: the block re-executes when any listed signal's net
  changes.  It deliberately over-approximates — e.g. a write to
  ``s.enq.rdy.value`` leaves the ``s.enq`` prefix in the list, so the
  whole bundle counts as read — because extra triggers only cost
  re-execution, never correctness.
- the *read/write sets* (``blk.reads`` / ``blk.writes``) feed the
  static scheduler, which needs them tight: phantom bundle-prefix
  "reads" would manufacture cycles in the block dataflow graph (a
  queue's ``rdy`` driver would appear to read the very handshake it
  drives).  Reads therefore exclude pure assignment-target prefixes,
  and writes resolve every statically-visible assignment target.
  When a block's writes cannot be bounded statically (writes through
  local aliases, calls into non-signal model attributes, unavailable
  source), ``blk.writes_known`` is False and the simulator schedules
  the block event-driven.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from .model import Model, _CombBlock
from .portbundle import PortBundle
from .signals import InPort, OutPort, Signal, Wire, _SignalSlice


class ElaborationError(Exception):
    """Raised for malformed structure (width mismatches, bad drivers)."""


def elaborate(top):
    """Elaborate ``top`` as the root of a design hierarchy."""
    if top._elaborated:
        return top
    from ..telemetry import tracing
    with tracing.span("sim.elaborate", design=type(top).__name__):
        return _elaborate(top)


def _elaborate(top):
    if top.name is None:
        top.name = "top"

    _name_model(top)

    all_models = []
    _collect_models(top, all_models)

    # Implicit clk/reset propagation from each parent to its children.
    for model in all_models:
        for child in model._submodels:
            model._connections.append((model.clk, child.clk))
            model._connections.append((model.reset, child.reset))

    connectors = []
    const_ties = []
    for model in all_models:
        for left, right in model._connections:
            _process_connection(model, left, right, connectors, const_ties)

    all_signals = []
    for model in all_models:
        all_signals.extend(_model_signals(model))

    # Collapse union-find chains: each signal points directly at its root
    # net so simulation-time reads skip the find().
    nets = {}
    for sig in all_signals:
        root = sig._net.find()
        sig._net = root
        nets[id(root)] = root
    all_nets = list(nets.values())

    for model in all_models:
        for blk in model._comb_blocks:
            if not blk.signals:
                _analyze_block(blk)
        for blk in model._tick_blocks:
            _analyze_tick(blk)

    # Hierarchical telemetry registries: counters/histograms declared
    # via Model.counter()/Model.histogram(), keyed by full dotted name.
    all_counters = {}
    all_histograms = {}
    for model in all_models:
        prefix = model.full_name()
        for cname, ctr in model._telemetry_counters.items():
            all_counters[f"{prefix}.{cname}"] = ctr
        for hname, hist in model._telemetry_histograms.items():
            all_histograms[f"{prefix}.{hname}"] = hist

    top._all_models = all_models
    top._all_signals = all_signals
    top._all_nets = all_nets
    top._connectors = connectors
    top._const_ties = const_ties
    top._all_counters = all_counters
    top._all_histograms = all_histograms
    for model in all_models:
        model._elaborated = True
    return top


# -- naming -------------------------------------------------------------------


def _name_model(model):
    """Assign names/parents to this model's signals, bundles, and
    submodels, recursing into children."""
    for attr_name, attr in list(model.__dict__.items()):
        if attr_name.startswith("_") or attr_name in ("name", "parent"):
            continue
        _name_attr(model, attr_name, attr)
    for child in model._submodels:
        _name_model(child)


def _name_attr(model, name, attr, depth=0):
    if isinstance(attr, Signal):
        attr.name = name
        attr.parent = model
    elif isinstance(attr, PortBundle):
        attr.name = name
        attr.parent = model
        for sig_name, sig in attr.get_named_signals():
            sig.name = f"{name}.{sig_name}"
            sig.parent = model
    elif isinstance(attr, Model):
        if attr.parent is None:
            attr.name = name
            attr.parent = model
            model._submodels.append(attr)
    elif isinstance(attr, list) and depth < 4:
        for i, item in enumerate(attr):
            _name_attr(model, f"{name}[{i}]", item, depth + 1)


def _collect_models(model, out):
    out.append(model)
    for child in model._submodels:
        _collect_models(child, out)


def _model_signals(model):
    signals = []
    for attr in model.__dict__.values():
        signals.extend(_attr_signals(attr))
    return signals


def _attr_signals(attr, depth=0):
    if isinstance(attr, Signal):
        return [attr]
    if isinstance(attr, PortBundle):
        return attr.get_signals()
    if isinstance(attr, list) and depth < 4:
        found = []
        for item in attr:
            found.extend(_attr_signals(item, depth + 1))
        return found
    return []


# -- connections ---------------------------------------------------------------


def _process_connection(model, left, right, connectors, const_ties):
    # Constant tie: applied once at simulator init.
    if isinstance(left, int) or isinstance(right, int):
        sig, const = (right, left) if isinstance(left, int) else (left, right)
        target = sig.signal if isinstance(sig, _SignalSlice) else sig
        if const >> _width_of(sig):
            raise ElaborationError(
                f"constant {const} too wide for {_describe(sig)}"
            )
        const_ties.append((sig, const))
        return

    if _width_of(left) != _width_of(right):
        raise ElaborationError(
            f"connected widths differ: {_describe(left)} is "
            f"{_width_of(left)}b but {_describe(right)} is {_width_of(right)}b"
        )

    if isinstance(left, Signal) and isinstance(right, Signal):
        # Full connection: merge nets (bidirectional, shared storage).
        root_l = left._net.find()
        root_r = right._net.find()
        if root_l is not root_r:
            root_r.parent = root_l
        return

    # Slice connection: directional connector, driver inferred.
    src, dst = _infer_driver(model, left, right)
    connectors.append((src, dst))


def _width_of(end):
    return end.nbits


def _describe(end):
    if isinstance(end, _SignalSlice):
        return f"{_describe(end.signal)}[{end.lo}:{end.hi}]"
    return f"{type(end).__name__} {end.name or '?'}"


def _drives(model, end):
    """Does this endpoint act as a driver from ``model``'s perspective?

    Standard structural semantics: a child's OutPort and the enclosing
    model's own InPort drive; a child's InPort and the model's own
    OutPort are driven.  Wires are bidirectional (None = unknown).
    """
    sig = end.signal if isinstance(end, _SignalSlice) else end
    inside = sig.parent is model
    if isinstance(sig, Wire):
        return None
    if isinstance(sig, OutPort):
        return not inside
    if isinstance(sig, InPort):
        return inside
    return None


def _infer_driver(model, left, right):
    l_drives = _drives(model, left)
    r_drives = _drives(model, right)
    if l_drives and r_drives:
        raise ElaborationError(
            f"both ends drive: {_describe(left)} <-> {_describe(right)}"
        )
    if l_drives or (r_drives is False):
        return left, right
    if r_drives or (l_drives is False):
        return right, left
    # Two wires sliced together: pick left as driver (documented choice).
    return left, right


# -- sensitivity + read/write inference ---------------------------------------


def _analyze_block(blk):
    """Infer sensitivity (``blk.signals``) and the precise read/write
    sets (``blk.reads``/``blk.writes``/``blk.writes_known``) of a
    combinational block.

    Parses the block's source and collects every attribute/subscript
    chain rooted at the model reference.  Dynamic indices widen to
    every element of the indexed list (a sound superset for both reads
    and writes).  Falls back to all input ports and wires — with the
    read/write sets marked unknown — when source is not available.
    """
    model = blk.model
    blk.reads = []
    blk.writes = []
    blk.writes_known = False
    try:
        src = textwrap.dedent(inspect.getsource(blk.func))
        tree = ast.parse(src)
    except (OSError, TypeError, SyntaxError):
        blk.signals = _fallback_sensitivity(model)
        return

    func_def = tree.body[0]
    if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        blk.signals = _fallback_sensitivity(model)
        return

    root_names = _model_ref_names(blk.func, model)
    if not root_names:
        blk.signals = _fallback_sensitivity(model)
        return

    # -- assignment targets: write paths + target spines ------------------
    #
    # The "spine" of a target like ``s.enq.rdy.value`` is the chain of
    # attribute/subscript nodes down to the root name.  Its inner nodes
    # carry Load context, so the plain read walk would count ``s.enq``
    # as a read of the whole bundle — a phantom read that must not
    # reach the precise read set.  Subscript *index* expressions are
    # not part of the spine; they are genuine reads.
    tainted = _tainted_locals(func_def, root_names)
    write_paths = set()
    writes_known = True
    spine_ids = set()
    for node in ast.walk(func_def):
        if isinstance(node, ast.Assign):
            targets, plain = node.targets, True
        elif isinstance(node, ast.AnnAssign):
            targets, plain = [node.target], True
        elif isinstance(node, ast.AugAssign):
            # Augmented assignment reads its target: keep the spine
            # visible to the read walk.
            targets, plain = [node.target], False
        else:
            continue
        for target in _flatten_targets(targets):
            if isinstance(target, ast.Name):
                continue            # local variable: no signal write
            path = _extract_path(target, root_names, any_ctx=True)
            if path is None:
                root = _root_name(target)
                if root is not None and root not in tainted:
                    # Subscript/attribute write into a pure local
                    # container (``routes[i] = ...``): no signal write.
                    continue
                # Write through a possible alias of a model object; the
                # written signal (if any) is not statically visible.
                writes_known = False
                continue
            write_paths.add(path)
            if plain:
                _mark_spine(target, spine_ids)

    # -- calls: method calls on non-signal model attributes may write -----
    #
    # Calls through bare names (``int``, ``len``, ``concat``, module
    # helpers) are assumed pure, as are value-accessor calls that
    # resolve to a signal (``s.count.uint()``).  A call on a
    # model-rooted path that does *not* resolve to signals (``s.helper()``,
    # ``s.buf.popleft()``) may write anything — as may a non-accessor
    # method call on a local that aliases a model object: writes
    # become unknown.
    for node in ast.walk(func_def):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        path = _extract_path(node.func, root_names, any_ctx=True)
        if path is None:
            root = _root_name(node.func)
            if (root is not None and root in tainted
                    and node.func.attr not in _VALUE_ATTRS):
                writes_known = False
            continue
        resolved = _resolve_path(model, path)
        if not resolved:
            writes_known = False

    written = set()
    writes = []
    for path in write_paths:
        for sig in _resolve_path(model, path):
            if id(sig) not in written:
                written.add(id(sig))
                writes.append(sig)

    # -- read walk ---------------------------------------------------------
    paths = set()           # every load path (legacy sensitivity)
    precise_paths = set()   # loads that are not assignment-target spines
    for node in ast.walk(func_def):
        path = _extract_path(node, root_names)
        if path is not None:
            paths.add(path)
            if id(node) not in spine_ids:
                precise_paths.add(path)

    signals = []
    seen = set()
    for path in paths:
        for sig in _resolve_path(model, path):
            if id(sig) not in seen and id(sig) not in written:
                seen.add(id(sig))
                signals.append(sig)

    # Reads exclude self-written signals, mirroring the event
    # simulator's semantics: a block that writes a signal and reads it
    # back sees its own just-written value (write-before-read), which
    # is sequential Python, not combinational feedback.
    reads = []
    seen_reads = set()
    for path in precise_paths:
        for sig in _resolve_path(model, path):
            if id(sig) not in seen_reads and id(sig) not in written:
                seen_reads.add(id(sig))
                reads.append(sig)

    if not signals:
        # Nothing statically readable: mirror the event simulator's
        # conservative fallback and keep the block out of the static
        # schedule.
        blk.signals = _fallback_sensitivity(model)
        return
    blk.signals = signals
    blk.reads = reads
    blk.writes = writes
    blk.writes_known = writes_known


def _infer_sensitivity(blk):
    """Legacy entry point: return the sensitivity list only."""
    _analyze_block(blk)
    return blk.signals


_CONST_TYPES = (int, float, bool, str, bytes, type(None), type)


def _analyze_tick(blk):
    """Decide whether a tick block is *gateable*: a pure function of a
    statically-known signal read set, writing only signals.

    A gateable tick whose reads are unchanged since its last execution
    would recompute exactly the same writes, so the simulator's static
    mode may skip it — the bulk of per-cycle time in large designs is
    idle registers re-evaluating to themselves.  The analysis is
    deliberately conservative: any construct that could smuggle state
    across invocations (reads of non-signal model attributes, writes
    through aliases, generator/coroutine bodies, bare references to the
    model object) leaves ``gateable`` False and the block runs every
    cycle, exactly as in event mode.
    """
    blk.reads = []
    blk.writes = []
    blk.gateable = False
    model = blk.model
    try:
        src = textwrap.dedent(inspect.getsource(blk.func))
        tree = ast.parse(src)
    except (OSError, TypeError, SyntaxError):
        return
    func_def = tree.body[0]
    if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return
    # The ``@s.tick_*`` decorator would read as a bound-method access
    # on the model: not part of the block's body.
    func_def.decorator_list = []
    root_names = _model_ref_names(blk.func, model)
    if not root_names:
        return

    # Chain-base nodes: the ``.value`` child of every attribute /
    # subscript node.  A path is classified only at its maximal node;
    # inner prefixes (bundles, submodels) are covered by the outer
    # chain.  A root name used *outside* any chain passes the whole
    # model somewhere we cannot see: reject.
    chain_bases = set()
    for node in ast.walk(func_def):
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            chain_bases.add(id(node.value))
    for node in ast.walk(func_def):
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await,
                             ast.Global, ast.Nonlocal, ast.Lambda,
                             ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func_def:
                return
        if (isinstance(node, ast.Name) and node.id in root_names
                and id(node) not in chain_bases):
            return

    tainted = _tainted_locals(func_def, root_names)

    # Any dereference of a local that may alias a model object makes
    # the read set unreliable: reject outright.
    for node in ast.walk(func_def):
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            root = _root_name(node)
            if root is not None and root in tainted:
                return

    # -- writes ------------------------------------------------------------
    write_paths = set()
    spine_ids = set()
    for node in ast.walk(func_def):
        if isinstance(node, ast.Assign):
            targets, plain = node.targets, True
        elif isinstance(node, ast.AnnAssign):
            targets, plain = [node.target], True
        elif isinstance(node, ast.AugAssign):
            targets, plain = [node.target], False
        else:
            continue
        for target in _flatten_targets(targets):
            if isinstance(target, ast.Name):
                continue
            path = _extract_path(target, root_names, any_ctx=True)
            if path is None:
                root = _root_name(target)
                if root is not None and root not in tainted:
                    continue        # pure local container write
                return              # write through a possible alias
            # Only registered updates are gateable: a ``.value`` write
            # (or a rebind of a model container slot) takes effect
            # immediately and may interleave with other writers.
            if not (isinstance(target, ast.Attribute)
                    and target.attr == "next"):
                return
            write_paths.add(path)
            if plain:
                _mark_spine(target, spine_ids)

    # -- calls must be pure ------------------------------------------------
    for node in ast.walk(func_def):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            continue                # bare-name call: assumed pure
        if not isinstance(func, ast.Attribute):
            return
        path = _extract_path(func, root_names, any_ctx=True)
        if path is not None:
            if not _resolve_path(model, path):
                return              # method on non-signal model state
            continue
        root = _root_name(func)
        if (root is not None and root in tainted
                and func.attr not in _VALUE_ATTRS):
            return

    writes = []
    written = set()
    for path in write_paths:
        sigs = _resolve_path(model, path)
        if not sigs:
            return                  # writes plain model state
        for sig in sigs:
            if id(sig) not in written:
                written.add(id(sig))
                writes.append(sig)

    # -- reads: every maximal model-rooted path must resolve to signals
    #    or immutable constants -------------------------------------------
    reads = []
    seen = set()
    for node in ast.walk(func_def):
        if id(node) in chain_bases or id(node) in spine_ids:
            continue
        path = _extract_path(node, root_names)
        if path is None:
            continue
        objs = _walk_path(model, path)
        if not objs:
            return                  # unresolvable (dynamic attribute)
        sigs = []
        for obj in objs:
            if isinstance(obj, _SignalSlice):
                sigs.append(obj.signal)
            elif isinstance(obj, Signal):
                sigs.append(obj)
            elif isinstance(obj, PortBundle):
                sigs.extend(obj.get_signals())
            elif isinstance(obj, list):
                if not all(isinstance(s, Signal) for s in obj):
                    return
                sigs.extend(obj)
            elif not isinstance(obj, _CONST_TYPES):
                return              # mutable non-signal state
        for sig in sigs:
            if id(sig) not in seen:
                seen.add(id(sig))
                reads.append(sig)

    blk.reads = reads
    blk.writes = writes
    blk.gateable = True


def _flatten_targets(targets):
    """Expand tuple/list/starred assignment targets into leaves."""
    leaves = []
    stack = list(targets)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        else:
            leaves.append(node)
    return leaves


def _mark_spine(target, spine_ids):
    """Record the attribute/subscript chain of an assignment target so
    the read walk can skip it (indices stay readable)."""
    cur = target
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        spine_ids.add(id(cur))
        cur = cur.value


def _root_name(node):
    """The root ``Name`` id of an attribute/subscript chain, or None
    when the chain is rooted in something else (a call result, etc.)."""
    cur = node
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    return cur.id if isinstance(cur, ast.Name) else None


def _tainted_locals(func_def, root_names):
    """Local names that may alias model-owned objects (signals,
    bundles, submodels).

    A write through an untainted local (``routes[i] = ...``) is a pure
    Python container update; a write through a tainted one may reach a
    signal, so the caller must treat the block's write set as unknown.
    Taint flows from model-rooted paths, call results (conservative),
    other tainted names, and ``for`` targets whose iterable is not a
    plain ``range``/``enumerate``/``zip`` over untainted values.
    """
    def expr_taints(node, tainted):
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            root = _root_name(node)
            return root is None or root in root_names or root in tainted
        if isinstance(node, ast.Name):
            return node.id in root_names or node.id in tainted
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                    "range", "enumerate", "zip", "len", "min", "max",
                    "int", "bool", "abs"):
                return any(expr_taints(a, tainted) for a in node.args)
            return True
        if isinstance(node, ast.IfExp):
            return (expr_taints(node.body, tainted)
                    or expr_taints(node.orelse, tainted))
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(expr_taints(e, tainted) for e in node.elts)
        if isinstance(node, ast.Starred):
            return expr_taints(node.value, tainted)
        return False

    tainted = set()
    # Flow-insensitive fixpoint: taint propagates through chained
    # local assignments regardless of statement order.
    while True:
        before = len(tainted)
        for node in ast.walk(func_def):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                value, targets = node.iter, [node.target]
            elif isinstance(node, ast.comprehension):
                value, targets = node.iter, [node.target]
            elif isinstance(node, (ast.withitem,)):
                if node.optional_vars is None:
                    continue
                value, targets = node.context_expr, [node.optional_vars]
            else:
                continue
            if value is None or not expr_taints(value, tainted):
                continue
            for target in _flatten_targets(targets):
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
        if len(tainted) == before:
            return tainted


def _model_ref_names(func, model):
    """Names in the function's closure/globals bound to the model."""
    names = set()
    code = func.__code__
    if func.__closure__:
        for var, cell in zip(code.co_freevars, func.__closure__):
            try:
                if cell.cell_contents is model:
                    names.add(var)
            except ValueError:
                pass
    for var, val in func.__globals__.items():
        if val is model:
            names.add(var)
    return names


_VALUE_ATTRS = {"value", "next", "uint", "int"}
_WILDCARD = "*"


def _extract_path(node, root_names, any_ctx=False):
    """If ``node`` is a read of ``<root>.a[i].b...``, return the access
    path as a tuple; otherwise None.  Only Load contexts count unless
    ``any_ctx`` is set (used for assignment targets)."""
    if not isinstance(node, (ast.Attribute, ast.Subscript)):
        return None
    if not any_ctx and not isinstance(getattr(node, "ctx", None), ast.Load):
        return None
    parts = []
    cur = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(("attr", cur.attr))
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            idx = cur.slice
            if isinstance(idx, ast.Constant) and isinstance(idx.value, int):
                parts.append(("index", idx.value))
            else:
                parts.append(("index", _WILDCARD))
            cur = cur.value
        elif isinstance(cur, ast.Name):
            if cur.id in root_names:
                parts.reverse()
                # Strip trailing .value/.next/.uint accessor.
                while parts and parts[-1][0] == "attr" \
                        and parts[-1][1] in _VALUE_ATTRS:
                    parts.pop()
                return tuple(parts) if parts else None
            return None
        else:
            return None


def _walk_path(model, path):
    """Resolve an access path against the live model, returning the
    raw objects it reaches."""
    objs = [model]
    for kind, key in path:
        next_objs = []
        for obj in objs:
            if isinstance(obj, (Signal, _SignalSlice)):
                # Deeper access on a signal (slices, struct fields) still
                # reads the same underlying signal.
                next_objs.append(obj)
                continue
            if kind == "attr":
                try:
                    got = getattr(obj, key)
                except AttributeError:
                    continue
                next_objs.append(got)
            else:
                if isinstance(obj, list):
                    if key == _WILDCARD:
                        next_objs.extend(obj)
                    elif isinstance(key, int) and key < len(obj):
                        next_objs.append(obj[key])
        objs = next_objs
    return objs


def _resolve_path(model, path):
    """Resolve an access path against the live model, returning the
    signals it touches."""
    signals = []
    for obj in _walk_path(model, path):
        if isinstance(obj, _SignalSlice):
            signals.append(obj.signal)
        elif isinstance(obj, Signal):
            signals.append(obj)
        elif isinstance(obj, PortBundle):
            signals.extend(obj.get_signals())
        elif isinstance(obj, list):
            signals.extend(s for s in obj if isinstance(s, Signal))
    return signals


def _fallback_sensitivity(model):
    return model.get_inports() + model.get_wires()
