"""BitStruct: fixed-width message types with named bitfields.

The paper (Section III-C) uses ``BitStructs`` as message types to give
named access to bitfields of control/status buses and network or memory
messages.  A ``BitStruct`` subclass declares its fields at class scope:

    class MemReqMsg(BitStruct):
        type_ = Field(1)
        addr  = Field(32)
        data  = Field(32)

Fields are packed most-significant-first in declaration order, so
``type_`` above occupies the top bit and ``data`` the bottom 32 bits.

A ``BitStruct`` *class* doubles as a port message type (it exposes
``nbits`` and field offsets), while ``BitStruct`` *instances* wrap a
concrete ``Bits`` value and expose each field as an attribute returning
a ``Bits`` slice.  Signals whose message type is a ``BitStruct`` expose
the same field names as writable sub-signal slices (see ``signals.py``).
"""

from __future__ import annotations

from .bits import Bits


class Field:
    """Declares one bitfield of a ``BitStruct``.

    ``nbits`` may be an int, or a nested ``BitStruct`` subclass (the
    field then spans that struct's width and reads back as an instance
    of it).
    """

    __slots__ = ("nbits", "struct_type", "name", "lo", "hi")

    def __init__(self, nbits):
        if isinstance(nbits, type) and issubclass(nbits, BitStruct):
            self.struct_type = nbits
            self.nbits = nbits.nbits
        else:
            self.struct_type = None
            self.nbits = int(nbits)
        if self.nbits < 1:
            raise ValueError("Field width must be >= 1")
        self.name = None   # filled in by the metaclass
        self.lo = None
        self.hi = None

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        value = obj._bits[self.lo:self.hi]
        if self.struct_type is not None:
            return self.struct_type(value)
        return value

    def __set__(self, obj, value):
        obj._bits = _splice(obj._bits, self.lo, self.hi, value)


def _splice(bits, lo, hi, value):
    """Return ``bits`` with the slice [lo:hi] replaced by ``value``."""
    width = hi - lo
    val = int(value) & ((1 << width) - 1)
    mask = ((1 << width) - 1) << lo
    return Bits(bits.nbits, (bits.uint() & ~mask) | (val << lo))


class _BitStructMeta(type):
    """Assigns bit offsets to declared fields (MSB-first) and computes
    the total struct width."""

    def __new__(mcs, name, bases, namespace):
        cls = super().__new__(mcs, name, bases, namespace)
        fields = []
        for base in reversed(cls.__mro__):
            for key, attr in vars(base).items():
                if isinstance(attr, Field) and attr not in fields:
                    attr.name = key
                    fields.append(attr)
        total = sum(f.nbits for f in fields)
        offset = total
        for field in fields:
            offset -= field.nbits
            field.lo = offset
            field.hi = offset + field.nbits
        cls._fields = fields
        cls.nbits = max(total, 1) if fields else 0
        return cls


class BitStruct(metaclass=_BitStructMeta):
    """Base class for fixed-width messages with named bitfields."""

    def __init__(self, value=0):
        if isinstance(value, BitStruct):
            value = value._bits
        if isinstance(value, Bits):
            self._bits = Bits(type(self).nbits, value.uint(), trunc=True)
        else:
            self._bits = Bits(type(self).nbits, int(value), trunc=True)

    @classmethod
    def field_slice(cls, name):
        """Return the (lo, hi) bit range of field ``name``."""
        for field in cls._fields:
            if field.name == name:
                return field.lo, field.hi
        raise AttributeError(f"{cls.__name__} has no field {name!r}")

    @classmethod
    def field_names(cls):
        return [f.name for f in cls._fields]

    def to_bits(self):
        """Return the packed ``Bits`` representation."""
        return self._bits

    def uint(self):
        return self._bits.uint()

    def int(self):
        return self._bits.int()

    def __int__(self):
        return self._bits.uint()

    def __index__(self):
        return self._bits.uint()

    def __eq__(self, other):
        if isinstance(other, BitStruct):
            return self._bits == other._bits
        return self._bits == other

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash((type(self).__name__, self._bits))

    def __repr__(self):
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)}" for f in self._fields
        )
        return f"{type(self).__name__}({parts})"

    def __str__(self):
        return ":".join(str(getattr(self, f.name)) for f in self._fields)


def mk_bitstruct(name, fields):
    """Dynamically create a ``BitStruct`` subclass.

    ``fields`` is a list of ``(name, nbits)`` pairs, most-significant
    field first.

    >>> Msg = mk_bitstruct('Msg', [('dest', 4), ('payload', 8)])
    >>> Msg.nbits
    12
    """
    namespace = {fname: Field(nbits) for fname, nbits in fields}
    return _BitStructMeta(name, (BitStruct,), namespace)
