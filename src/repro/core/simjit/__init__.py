"""SimJIT: just-in-time specialization of CL and RTL models to C
(paper Section IV)."""

from .auto import auto_specialize
from .specializer import (
    JITModel,
    SimJITCL,
    SimJITEngine,
    SimJITRTL,
    SpecializationError,
)

__all__ = [
    "SimJITRTL", "SimJITCL", "JITModel", "SimJITEngine",
    "SpecializationError", "auto_specialize",
]
