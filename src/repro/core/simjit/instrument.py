"""Compiled-instrumentation manager for SimJIT simulations.

:class:`KernelInstrumentation` is the Python half of the ``obs_t``
runtime in :mod:`.cgen`: it lowers observability attachments — flight
recorder taps, val/rdy transaction taps, watchpoint condition trees,
and signal-backed histograms — to net slots of one compiled engine,
registers them with the C side, and drains the C event buffers back
into the exact Python data structures the hook path would have filled.

The contract is bit-identity with the interpreted hook path:

- recorder events are change-compressed ``(cycle, tap, value)``
  samples taken after the post-edge settle, reassembled into the same
  rolling-base window a :class:`~repro.observe.recorder.FlightRecorder`
  builds per cycle;
- val/rdy taps emit run-boundary events sampled after the *pre*-edge
  settle (cycle-hook semantics); the replay feeds each boundary through
  the tap's :class:`~repro.verif.monitors.ValRdyMonitor` and
  bulk-expands the constant runs in between, so transfers, stalls, and
  protocol violations are identical to per-cycle observation;
- watchpoint predicates evaluate post-edge inside ``obs_run`` and stop
  the batch on the hit cycle, so halt/callback/dump actions fire at
  exactly the cycle the hook path would have fired them;
- histogram tables merge lazily into ``Histogram.bins`` through
  ``_jit_sync``.

Anything the lowering cannot express (``when``/``stable_for``/
``implies_within`` predicates, counter or compiled-state taps, signals
outside this engine) degrades per-attachment to the hook path with an
``instrument-fallback`` :class:`~repro.resilience.warnings
.ResilienceWarning` naming the reason.  Registering a Python cycle
hook while compiled attachments are armed converts ("dearms") all of
them back to the interpreted path, preserving accumulated state.
"""

from __future__ import annotations

from ...resilience.warnings import warn_resilience
from .cgen import (OBS_MAX_HIST, OBS_MAX_NODES, OBS_MAX_REC, OBS_MAX_TX,
                   OBS_MAX_WP)

__all__ = ["KernelInstrumentation", "Unlowerable"]

#: Entries per per-histogram C hash table (mirrors OBS_HIST_CAP in C).
OBS_HIST_CAP = 1024


class Unlowerable(Exception):
    """A probe construct the C lowering cannot express."""


class _TxState:
    """Replay state of one compiled val/rdy tap.

    ``next_cycle`` is the first cycle not yet accounted for; ``have``
    is False until the first boundary event arrives (the C side always
    emits one at the first sampled cycle)."""

    __slots__ = ("have", "vr", "msg", "next_cycle")

    def __init__(self, start_cycle):
        self.have = False
        self.vr = 0
        self.msg = 0
        self.next_cycle = start_cycle


class KernelInstrumentation:
    """Bridges observability attachments to a SimJIT ``obs_t``."""

    REC_CAP = 1 << 16
    TX_CAP = 1 << 16

    def __init__(self, sim, engine):
        self.sim = sim
        self.engine = engine
        self.lib = engine.lib
        ffi = engine._ffi
        self.ffi = ffi
        self.obs = self.lib.obs_new(engine.inst, self.REC_CAP,
                                    self.TX_CAP)
        if self.obs == ffi.NULL:
            raise MemoryError("obs_new failed")
        self._rec_out = ffi.new("uint64_t[]", 4 * self.REC_CAP)
        self._tx_out = ffi.new("uint64_t[]", 5 * self.TX_CAP)
        self._hist_vals = ffi.new("int64_t[]", OBS_HIST_CAP)
        self._hist_cnts = ffi.new("long long[]", OBS_HIST_CAP)
        self._rec_owner = {}     # C tap idx -> (recorder, local idx)
        self._tx_owner = {}      # C tap idx -> txtrace Tap
        self._recorders = []
        self._tracers = []
        self._watchpoints = []   # arming order (wp._cwp set)
        self._hists = []         # (C hist idx, Histogram)
        self._live = 0
        self.disabled = False

    @property
    def active(self):
        return self._live > 0 and not self.disabled

    def _warn(self, what, reason, fallback="hooks"):
        warn_resilience(
            f"{what} could not be compiled into the SimJIT kernel and "
            f"samples from Python instead ({reason})",
            kind="instrument-fallback",
            component=type(self.sim.model).__name__,
            fallback=fallback, detail=str(reason), stacklevel=4)

    # -- slot lowering ----------------------------------------------------

    def slot_of_signal(self, sig):
        try:
            return self.engine.slot_of(sig)
        except Exception as exc:
            raise Unlowerable(
                f"signal has no net slot in this engine: {exc}") from exc

    def slot_of_spec(self, spec):
        """Net slot for a tap spec (dotted path or Signal).

        Counter taps, compiled-state probes, signal slices, and
        signals outside this engine raise :class:`Unlowerable`."""
        from ...core.signals import Signal, _SignalSlice
        if isinstance(spec, str):
            from ...resilience.inject import _SignalTarget
            try:
                target = _SignalTarget(self.sim, spec)
            except Exception as exc:
                raise Unlowerable(
                    f"path {spec!r} does not resolve to a lowerable "
                    f"signal ({exc})") from exc
            if target.state_idx is not None:
                raise Unlowerable(
                    f"path {spec!r} resolves to compiled CL state, "
                    f"not a net slot")
            if target.engine is self.engine:
                return target.slot
            if target.sig is not None:
                return self.slot_of_signal(target.sig)
            raise Unlowerable(
                f"path {spec!r} does not name a signal of this engine")
        if isinstance(spec, _SignalSlice):
            raise Unlowerable("signal slices are sampled from Python")
        if isinstance(spec, Signal):
            return self.slot_of_signal(spec)
        raise Unlowerable(
            f"{type(spec).__name__} taps are sampled from Python")

    # -- flight recorders -------------------------------------------------

    def try_add_recorder(self, rec, specs):
        """Compile every tap of ``rec`` or none (all-or-nothing, so one
        recorder's window never mixes sampling paths)."""
        if self.disabled:
            return False
        try:
            slots = [self.slot_of_spec(spec) for spec in specs]
        except Unlowerable as exc:
            self._warn(f"flight recorder tap", exc)
            return False
        lib, obs = self.lib, self.obs
        with_room = True  # C side also checks; mirror for the warning
        if len(self._rec_owner) + len(slots) > OBS_MAX_REC:
            with_room = False
        if not with_room:
            self._warn("flight recorder",
                       f"recorder tap capacity ({OBS_MAX_REC}) exceeded")
            return False
        # Sync the C instance with the Python-driven ports so the C
        # change detector starts from the same base values attach()
        # just read.
        self.engine._push_inputs()
        cidx = []
        for slot in slots:
            idx = lib.obs_add_rec_tap(obs, slot)
            if idx < 0:
                for i in cidx:
                    lib.obs_del_rec_tap(obs, i)
                    self._rec_owner.pop(i, None)
                    self._live -= 1
                self._warn("flight recorder", "C tap table full")
                return False
            self._rec_owner[idx] = (rec, len(cidx))
            cidx.append(idx)
            self._live += 1
        rec._cidx = cidx
        rec._cevents = []
        rec._csampled_to = rec._base_cycle
        rec._instr = self
        self._recorders.append(rec)
        return True

    def remove_recorder(self, rec):
        """Drain, convert ``rec`` to interpreted window state, and
        unregister its C taps (detach and dearm path)."""
        self.drain()
        rec._materialize_compiled()
        for idx in rec._cidx:
            self.lib.obs_del_rec_tap(self.obs, idx)
            self._rec_owner.pop(idx, None)
            self._live -= 1
        rec._cidx = None
        rec._cevents = None
        rec._instr = None
        self._recorders.remove(rec)

    # -- transaction tracers ----------------------------------------------

    def register_tracer(self, tracer):
        if self.disabled:
            return False
        self._tracers.append(tracer)
        return True

    def try_add_tx_tap(self, tap):
        """Compile one val/rdy tap; returns False on Unlowerable (the
        tracer then converts itself to the hook path)."""
        try:
            val = self.slot_of_spec(tap.val)
            rdy = self.slot_of_spec(tap.rdy)
            msg = self.slot_of_spec(tap.msg)
        except Unlowerable as exc:
            self._warn(f"val/rdy tap {tap.name!r}", exc)
            return False
        self.engine._push_inputs()
        idx = self.lib.obs_add_tx_tap(self.obs, val, rdy, msg)
        if idx < 0:
            self._warn(f"val/rdy tap {tap.name!r}",
                       f"tap capacity ({OBS_MAX_TX}) exceeded")
            return False
        tap._cidx = idx
        tap._cstate = _TxState(self.sim.ncycles)
        self._tx_owner[idx] = tap
        self._live += 1
        return True

    def remove_tracer(self, tracer):
        """Drain and unregister every compiled tap of ``tracer``."""
        self.drain()
        for tap in tracer.taps:
            if getattr(tap, "_cidx", None) is not None:
                self.lib.obs_del_tx_tap(self.obs, tap._cidx)
                self._tx_owner.pop(tap._cidx, None)
                self._live -= 1
                tap._cidx = None
                tap._cstate = None
        if tracer in self._tracers:
            self._tracers.remove(tracer)

    def rearm_tx_tap(self, tap):
        """After a monitor reset: force a boundary event at the next
        sampled cycle so the replay re-observes the live values."""
        self.lib.obs_tx_rearm(self.obs, tap._cidx)
        tap._cstate = _TxState(self.sim.ncycles)

    # -- watchpoints ------------------------------------------------------

    def try_add_watchpoint(self, wp):
        if self.disabled:
            return False
        from ...observe.watchpoints import lower_condition
        try:
            nodes = lower_condition(wp.condition, self.slot_of_spec)
        except Unlowerable as exc:
            self._warn(f"watchpoint {wp.name!r}", exc)
            return False
        if (len(self._watchpoints) >= OBS_MAX_WP
                or len(nodes) > OBS_MAX_NODES):
            self._warn(f"watchpoint {wp.name!r}",
                       "watchpoint capacity exceeded")
            return False
        self.engine._push_inputs()
        packed = []
        for kind, slot, a, b, aux in nodes:
            packed += [kind, slot, a, b,
                       aux & 0xFFFFFFFFFFFFFFFF, (aux >> 64) & 0xFFFFFFFFFFFFFFFF]
        arr = self.ffi.new("int64_t[]", packed)
        idx = self.lib.obs_add_watch(self.obs, len(nodes), arr)
        if idx < 0:
            self._warn(f"watchpoint {wp.name!r}",
                       "C watchpoint node table full")
            return False
        wp._cwp = idx
        wp._instr = self
        self._watchpoints.append(wp)
        self._live += 1
        return True

    def remove_watchpoint(self, wp):
        self.lib.obs_del_watch(self.obs, wp._cwp)
        wp._cwp = None
        wp._instr = None
        if wp in self._watchpoints:
            self._watchpoints.remove(wp)
        self._live -= 1

    def fire_hits(self):
        """Fire the Python actions of the watchpoints that hit on the
        cycle the last batch stopped at (arming order; a halting
        watchpoint raises, like the hook observer loop)."""
        cyc = int(self.lib.obs_hit_cycle(self.obs))
        if cyc < 0:
            return
        mask = int(self.lib.obs_hit_mask(self.obs))
        for wp in list(self._watchpoints):
            if wp._cwp is not None and (mask >> wp._cwp) & 1:
                wp._fire(cyc)

    @property
    def has_hit(self):
        return int(self.lib.obs_hit_cycle(self.obs)) >= 0

    # -- signal-backed histograms -----------------------------------------

    def try_add_histogram(self, hist):
        if self.disabled:
            return False
        try:
            if hist._sig.nbits > 63:
                raise Unlowerable(
                    f"{hist._sig.nbits}-bit signal exceeds the 63-bit "
                    f"compiled binning range")
            slot = self.slot_of_spec(hist._sig)
            when = (self.slot_of_spec(hist._when)
                    if hist._when is not None else -1)
        except Unlowerable as exc:
            self._warn(f"histogram {hist.name!r}", exc)
            return False
        idx = self.lib.obs_add_hist(self.obs, slot, when)
        if idx < 0:
            self._warn(f"histogram {hist.name!r}",
                       f"histogram capacity ({OBS_MAX_HIST}) exceeded")
            return False
        hist._jit_sync = lambda: self._sync_hist(idx, hist)
        self._hists.append((idx, hist))
        self._live += 1
        return True

    def _sync_hist(self, idx, hist):
        n = int(self.lib.obs_hist_drain(self.obs, idx, self._hist_vals,
                                        self._hist_cnts))
        if n:
            bins = hist.bins
            vals, cnts = self._hist_vals, self._hist_cnts
            for i in range(n):
                v = int(vals[i])
                bins[v] = bins.get(v, 0) + int(cnts[i])

    def reset_histograms(self):
        """Discard compiled histogram contents (sim.reset path: the
        Python ``bins`` are cleared by the caller)."""
        for idx, _hist in self._hists:
            self.lib.obs_hist_drain(self.obs, idx, self._hist_vals,
                                    self._hist_cnts)

    def remove_histogram(self, hist):
        for entry in self._hists:
            if entry[1] is hist:
                self._sync_hist(entry[0], hist)
                self.lib.obs_del_hist(self.obs, entry[0])
                self._hists.remove(entry)
                hist._jit_sync = None
                self._live -= 1
                return

    # -- running ----------------------------------------------------------

    def run_batch(self, n):
        """Push inputs and run up to ``n`` compiled cycles; returns the
        number of cycles actually run.  Stops early on a buffer-full
        condition (caller drains and retries) or a watchpoint hit
        (``has_hit``)."""
        from .specializer import SpecializationError
        eng = self.engine
        eng._push_inputs()
        self.lib.obs_set_cycle(self.obs, self.sim.ncycles)
        ran = int(self.lib.obs_run(self.obs, n))
        if ran < 0:
            raise SpecializationError("combinational loop in C model")
        return ran

    def step(self):
        """One compiled cycle with full sampling; returns True when a
        watchpoint hit this cycle.  Used by ``cycle()`` so per-cycle
        driving (cosim, interactive test benches) shares the compiled
        sampling path."""
        ran = self.run_batch(1)
        if ran == 0:
            self.drain()
            ran = self.run_batch(1)
            if ran == 0:
                raise RuntimeError(
                    "compiled instrumentation made no progress after a "
                    "drain (buffer accounting bug)")
        self.engine._pull_outputs(as_next=False)
        return self.has_hit

    # -- draining ---------------------------------------------------------

    def drain(self):
        """Move every buffered C event into the Python-side recorders
        and monitors.  Idempotent and cheap when buffers are empty."""
        lib, obs = self.lib, self.obs
        now = self.sim.ncycles
        n = int(lib.obs_rec_drain(obs, self._rec_out))
        if n:
            out = self._rec_out
            owner = self._rec_owner
            for i in range(n):
                base = 4 * i
                rec, local = owner[out[base + 1]]
                rec._cevents.append((
                    out[base], local,
                    int(out[base + 2]) | (int(out[base + 3]) << 64)))
        for rec in self._recorders:
            rec._c_advance(now)
        n = int(lib.obs_tx_drain(obs, self._tx_out))
        if n:
            out = self._tx_out
            owner = self._tx_owner
            for i in range(n):
                base = 5 * i
                tap = owner.get(out[base + 1])
                if tap is None:
                    continue
                self._tx_boundary(
                    tap, int(out[base]), int(out[base + 2]),
                    int(out[base + 3]) | (int(out[base + 4]) << 64))
        for tap in self._tx_owner.values():
            self._tx_expand(tap, now)
        # Histogram tables stay in C until a read accessor syncs them,
        # except when obs_run stopped early because one was near-full.
        for idx, hist in self._hists:
            self._sync_hist(idx, hist)

    @staticmethod
    def _tx_expand(tap, upto):
        """Account the constant run ``[state.next_cycle, upto)`` with
        the bulk equivalents of per-cycle monitor.observe calls."""
        state = tap._cstate
        n = upto - state.next_cycle
        if n <= 0:
            return
        if state.have:
            vr = state.vr
            if vr == 3:                     # val & rdy: n transfers
                msg = state.msg
                tap.monitor.transfers.extend(
                    (c, msg) for c in range(state.next_cycle, upto))
            elif vr == 1:                   # val & !rdy: n stall cycles
                tap.stall_cycles += n
        state.next_cycle = upto

    def _tx_boundary(self, tap, cycle, vr, msg):
        self._tx_expand(tap, cycle)
        tap.monitor.observe(cycle, vr & 1, (vr >> 1) & 1, msg)
        if vr == 1:
            tap.stall_cycles += 1
        state = tap._cstate
        state.have = True
        state.vr = vr
        state.msg = msg
        state.next_cycle = cycle + 1

    # -- dearm ------------------------------------------------------------

    def dearm(self, reason):
        """Convert every compiled attachment back to the interpreted
        hook/observer path, preserving accumulated state.  Called when
        a Python cycle hook is registered (hooks need the interpreted
        per-cycle loop) — further arming attempts fall back silently."""
        if self.disabled:
            return
        self.drain()
        self.disabled = True
        sim = self.sim
        converted = []
        for rec in list(self._recorders):
            self.remove_recorder(rec)
            converted.append("recorder")
        for tracer in list(self._tracers):
            had = any(getattr(t, "_cidx", None) is not None
                      for t in tracer.taps)
            self.remove_tracer(tracer)
            tracer._instr = None
            # Re-observe per cycle from Python; appended directly (the
            # caller is add_cycle_hook itself).
            sim._cycle_hooks.append(tracer._observe)
            if had:
                converted.append("tracer")
        for wp in list(self._watchpoints):
            self.remove_watchpoint(wp)
            # The C edge trackers left prev == current value, exactly
            # what a fresh bind reads, so rebinding preserves edge
            # semantics across the conversion.
            wp._bound = wp.condition.bind(sim)
            converted.append(f"watchpoint {wp.name!r}")
        for idx, hist in list(self._hists):
            self._sync_hist(idx, hist)
            self.lib.obs_del_hist(self.obs, idx)
            hist._jit_sync = None
            self._live -= 1
            sim._add_hist_sampler(hist)
        self._hists = []
        sim._refresh_observers()
        if converted:
            self._warn(
                f"compiled instrumentation ({', '.join(converted)})",
                reason)
