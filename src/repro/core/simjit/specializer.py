"""SimJIT specializers: compile elaborated models to C (paper Section IV).

``SimJITRTL`` and ``SimJITCL`` take an elaborated PyMTL-style model,
lower every behavioral block to IR, emit a single C translation unit
(one net-state array, one function per block, a statically scheduled
combinational fixpoint), compile it with gcc, load it through cffi, and
hand back a drop-in :class:`JITModel` exposing the original port
interface — exactly the flow of paper Figure 12, with our own RTL→C
compiler standing in for Verilator (see DESIGN.md).

Per-phase overheads (elab / veri / cgen / comp / wrap / simc) are
recorded on the returned engine for the Figure 16 experiment.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import subprocess
import tempfile
import time

from ...telemetry import tracing
from ..ast_ir import BlockIR, TranslationError, translate_block
from ..elaboration import elaborate
from ..model import Model
from ..portbundle import PortBundle
from ..signals import InPort, OutPort, Signal, _SignalSlice
from .cgen import C_HEADER_DECLS, C_OBS_DECLS, CBackend

_CACHE_ENV = "SIMJIT_CACHE_DIR"
_CACHE_OPTOUT_ENV = "REPRO_SIMJIT_CACHE"


class SpecializationError(Exception):
    """Raised when a model cannot be specialized."""


def _default_cache_dir():
    return os.environ.get(
        _CACHE_ENV,
        os.path.join(tempfile.gettempdir(), "repro-simjit-cache"),
    )


@contextlib.contextmanager
def _build_lock(lock_path):
    """Advisory inter-process lock serializing builders of one cache key.

    Fleet campaigns fan workers across processes that all need the same
    design hash on their first task; without the lock every worker that
    passes the exists() check before the first publication compiles its
    own copy (correct — publication is an atomic replace — but N-1
    compiles are wasted).  Holding an ``flock`` on ``<digest>.so.lock``
    makes the race deterministic: exactly one process compiles, the
    rest block briefly and take the cache hit.  Yields ``True`` when
    the lock is held; on platforms without ``fcntl`` (or an unwritable
    cache dir) it degrades to the lock-free behavior and yields
    ``False``.  The lock file itself is left in place — unlinking it
    would reopen the race it exists to close.
    """
    try:
        import fcntl
        handle = open(lock_path, "a")
    except (ImportError, OSError):
        yield False
        return
    locked = False
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        locked = True
    except OSError:
        pass
    try:
        yield locked
    finally:
        if locked:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
        handle.close()


class _Timer:
    """Accumulates wall time into ``record[key]``; with host-span
    tracing armed, each timed phase also lands as a ``simjit.<key>``
    span (``perf_counter`` and ``perf_counter_ns`` read the same
    clock, so the converted timestamps nest correctly under the
    enclosing ``simjit.compile`` span)."""

    def __init__(self, record, key):
        self.record = record
        self.key = key

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        end = time.perf_counter()
        self.record[self.key] = self.record.get(self.key, 0.0) \
            + end - self.start
        tracer = tracing.active()
        if tracer is not None:
            tracer.add_span(f"simjit.{self.key}",
                            int(self.start * 1e9), int(end * 1e9))
        return False


class SimJITEngine:
    """Runtime half of a specialized model: owns the compiled library
    and the Python<->C port synchronization."""

    def __init__(self, model, lib, slot_of, overheads):
        self.model = model
        self.lib = lib
        self.slot_of = slot_of
        self.inst = lib.new_instance()
        self.overheads = overheads
        import cffi
        self._ffi = cffi.FFI()
        self._buf = self._ffi.new("uint64_t[2]")
        # CL-state addressing metadata: attached by the specializer
        # (``engine.state_index``/``engine.model_index``) so external
        # tools (fault injection, checkpointing) can reach compiled
        # state by (model, attr) instead of C variable names.
        self.state_index = {}
        self.model_index = {}
        # (signal, slot) maps; nets resolved lazily (the parent design
        # may re-merge nets after specialization).
        self._in_ports = [
            (sig, slot_of(sig)) for sig in _flat_ports(model, InPort)
        ]
        self._out_ports = [
            (sig, slot_of(sig)) for sig in _flat_ports(model, OutPort)
        ]
        self._in_nets = None
        self._shadow = {}

    def _bind(self):
        import cffi
        ffi = cffi.FFI()
        self._in_nets = [
            (sig._net.find(), slot) for sig, slot in self._in_ports
        ]
        n_out = len(self._out_ports)
        self._out_slots = ffi.new(
            "int[]", [slot for _, slot in self._out_ports])
        self._out_buf = ffi.new("uint64_t[]", 2 * max(1, n_out))
        self._out_shadow = [None] * n_out

    def _push_inputs(self):
        if self._in_nets is None:
            self._bind()
        shadow = self._shadow
        set_net = self.lib.set_net
        inst = self.inst
        for net, slot in self._in_nets:
            value = net.read()
            if shadow.get(slot) != value:
                shadow[slot] = value
                set_net(inst, slot, value & 0xFFFFFFFFFFFFFFFF,
                        value >> 64)

    def _read_slot(self, slot):
        self.lib.get_net(self.inst, slot, self._buf)
        return self._buf[0] | (self._buf[1] << 64)

    def _pull_outputs(self, as_next):
        """Batch-read all output nets from C; write back only values
        that changed since the last pull (hot-path optimization — this
        Python<->C boundary is exactly the overhead the paper attacks
        with PyPy)."""
        out_ports = self._out_ports
        n = len(out_ports)
        buf = self._out_buf
        self.lib.get_nets(self.inst, self._out_slots, n, buf)
        shadow = self._out_shadow
        for i in range(n):
            value = buf[2 * i] | (buf[2 * i + 1] << 64)
            if shadow[i] != value:
                shadow[i] = value
                sig = out_ports[i][0]
                if as_next:
                    sig.next = value
                else:
                    sig.value = value

    def eval_comb(self):
        self._push_inputs()
        if self.lib.eval_comb(self.inst) < 0:
            raise SpecializationError("combinational loop in C model")
        self._pull_outputs(as_next=False)

    def tick(self):
        self._push_inputs()
        if self.lib.cycle(self.inst, 1) < 0:
            raise SpecializationError("combinational loop in C model")
        self._pull_outputs(as_next=True)

    # Direct-drive API for standalone benchmarking (no Python nets).
    def raw_cycle(self, n=1):
        if self.lib.cycle(self.inst, n) < 0:
            raise SpecializationError("combinational loop in C model")

    def raw_set(self, slot, value):
        self.lib.set_net(self.inst, slot,
                         value & 0xFFFFFFFFFFFFFFFF, value >> 64)
        # The forced value must survive the next input push even when
        # the Python-side net did not change: drop the push cache entry
        # so the slot re-syncs only when Python actually drives it.
        self._shadow.pop(slot, None)

    def raw_get(self, slot):
        return self._read_slot(slot)

    def raw_set_state(self, idx, elem, value):
        """Write one CL state variable (``state_index`` addressing)."""
        self.lib.set_state_at(self.inst, idx, int(elem), int(value))

    def state_slot(self, model, attr):
        """``state_index`` slot of ``model.attr``, or None when the
        attribute was not lowered to compiled state."""
        key = f"st_m{self.model_index[id(model)]}_{attr}"
        return self.state_index.get(key)

    def read_probes(self, probes):
        """Bulk counter readback: one C call for any mix of probes.

        ``probes`` is a list of ``(kind, idx, elem)`` triples — kind 0
        reads net slot ``idx`` (unsigned, up to 128 bits), kind 1 reads
        CL state ``state_index`` entry ``idx`` element ``elem`` (signed
        int64).  Returns the values in order.  This extends the
        per-counter ``raw_get``/``get_state_at`` readback path to one
        FFI round trip per engine.
        """
        n = len(probes)
        if not n:
            return []
        ffi = self._ffi
        req = ffi.new("int64_t[]", [int(x) for p in probes for x in p])
        out = ffi.new("uint64_t[]", 2 * n)
        self.lib.read_probes(self.inst, req, n, out)
        values = []
        for i, (kind, _, _) in enumerate(probes):
            lo, hi = out[2 * i], out[2 * i + 1]
            if kind == 0:
                values.append(lo | (hi << 64))
            else:
                values.append(lo - (1 << 64) if lo >= (1 << 63) else lo)
        return values

    # -- checkpoint/restore (resilience.snapshot) -------------------------

    def snapshot_raw(self):
        """Entire compiled instance state (nets + CL state) as bytes."""
        n = int(self.lib.inst_size())
        buf = self._ffi.new("char[]", n)
        self.lib.save_inst(self.inst, buf)
        return bytes(self._ffi.buffer(buf, n))

    def restore_raw(self, blob):
        """Overwrite the compiled instance state from a snapshot blob."""
        self.lib.load_inst(self.inst, blob)
        self.invalidate_shadows()

    def invalidate_shadows(self):
        """Drop the Python<->C change-detection caches after any
        out-of-band state mutation, so the next push/pull re-syncs
        every port."""
        self._shadow = {}
        if self._in_nets is not None:
            self._out_shadow = [None] * len(self._out_ports)


class JITModel(Model):
    """Drop-in replacement model wrapping a SimJIT engine.

    Adopts the original model's port objects so every attribute path a
    test bench uses (``m.in_[3].val`` …) keeps working unchanged.
    """

    def __init__(s, orig, engine):
        s.jit_engine = engine
        s._orig_class = type(orig).__name__
        from ..bitstruct import BitStruct
        for name, attr in list(orig.__dict__.items()):
            if name.startswith("_"):
                continue
            if _is_portlike(attr):
                setattr(s, name, attr)
                _clear_parent(attr)
            elif isinstance(attr, (int, str)) or (
                    isinstance(attr, type)
                    and issubclass(attr, BitStruct)):
                # Plain metadata (sizes, message types) that test
                # harnesses read off the model.
                setattr(s, name, attr)

        @s.tick_fl
        def jit_tick():
            engine.tick()

        @s.combinational
        def jit_comb():
            engine.eval_comb()

    def line_trace(s):
        return f"[jit:{s._orig_class}]"


def _is_portlike(attr, depth=0):
    if isinstance(attr, (InPort, OutPort, PortBundle)):
        return True
    if isinstance(attr, list) and depth < 3 and attr:
        return all(_is_portlike(a, depth + 1) for a in attr)
    return False


def _clear_parent(attr):
    if isinstance(attr, (Signal, PortBundle)):
        attr.parent = None
    elif isinstance(attr, list):
        for item in attr:
            _clear_parent(item)


def _flat_ports(model, kind):
    ports = []
    for name, attr in model.__dict__.items():
        if name.startswith("_"):
            continue
        ports.extend(_collect_ports(attr, kind))
    return ports


def _collect_ports(attr, kind, depth=0):
    if isinstance(attr, kind):
        return [attr]
    if isinstance(attr, PortBundle):
        return [s for s in attr.get_signals() if isinstance(s, kind)]
    if isinstance(attr, list) and depth < 3:
        found = []
        for item in attr:
            found.extend(_collect_ports(item, kind, depth + 1))
        return found
    return []


class _Specializer:
    """Shared flatten/lower/compile pipeline."""

    #: behavioral-block kinds this specializer accepts
    allowed_ticks = ()
    name = "simjit"

    def __init__(self, model, opt="-O2", cache=True, verbose=False,
                 extra_c="", extra_cdef="", schedule=True):
        self.orig = model
        self.opt = opt
        self.cache = cache
        self.verbose = verbose
        self.extra_c = extra_c          # e.g. an all-C bench driver
        self.extra_cdef = extra_cdef
        self.schedule = schedule        # static comb scheduling on/off
        self.overheads = {}

    def specialize(self):
        """Run the full pipeline; returns a :class:`JITModel`."""
        with tracing.span("simjit.compile",
                          design=type(self.orig).__name__) as sp:
            wrapper = self._specialize()
            sp.set(cache_hit=bool(self.overheads.get("cache_hit")))
            return wrapper

    def _specialize(self):
        model = self.orig
        with _Timer(self.overheads, "elab"):
            if not model.is_elaborated():
                elaborate(model)
            self._build_slots(model)

        with _Timer(self.overheads, "veri"):
            block_irs, tick_irs = self._lower_blocks(model)
            comb_order = self._schedule(block_irs)

        with _Timer(self.overheads, "cgen"):
            c_source = self._emit(model, comb_order, tick_irs)

        with _Timer(self.overheads, "comp"):
            lib_path, cache_hit = self._compile(c_source)
        self.overheads["cache_hit"] = cache_hit

        with _Timer(self.overheads, "wrap"):
            lib = self._load(lib_path)
            engine = SimJITEngine(model, lib, self._slot_of,
                                  self.overheads)
            engine.state_index = dict(self._state_index)
            engine.model_index = dict(self._model_index)

        with _Timer(self.overheads, "simc"):
            wrapper = JITModel(model, engine)
            self._rebind_telemetry(model, wrapper, engine)
        self.c_source = c_source
        self.lib_path = lib_path
        return wrapper

    def _rebind_telemetry(self, model, wrapper, engine):
        """Re-point declared counters at compiled state and carry them
        onto the wrapper, so telemetry survives specialization (the
        Python tick code that used to advance them no longer runs).

        Signal-backed counters read their net slot; state-backed ones
        read the namespaced CL state variable.  Python-kind counters
        (and histograms) are carried over as-is — their values freeze
        at specialization time, which the docs call out as a SimJIT
        limitation.
        """
        lib, inst = engine.lib, engine.inst
        top_prefix = model.full_name() + "."
        for sub in model._all_models:
            if sub is model:
                rel = ""
            else:
                rel = sub.full_name()[len(top_prefix):]
            for cname, ctr in sub._telemetry_counters.items():
                if ctr._sig is not None:
                    slot = self._slot_of(ctr._sig)
                    ctr._jit_read = (
                        lambda s=slot: engine.raw_get(s))
                    ctr._jit_probe = (engine, 0, slot, 0)
                elif ctr._state is not None:
                    attr, elem = ctr._state
                    st = f"st_m{self._model_index[id(sub)]}_{attr}"
                    idx = self._state_index.get(st)
                    if idx is not None:
                        ctr._jit_read = (
                            lambda i=idx, e=(elem or 0):
                                lib.get_state_at(inst, i, e))
                        ctr._jit_probe = (engine, 1, idx, elem or 0)
                key = f"{rel}.{cname}" if rel else cname
                wrapper._telemetry_counters[key] = ctr
            for hname, hist in sub._telemetry_histograms.items():
                key = f"{rel}.{hname}" if rel else hname
                wrapper._telemetry_histograms[key] = hist

    # -- flattening -------------------------------------------------------------

    def _build_slots(self, model):
        self._slots = {}
        for i, net in enumerate(model._all_nets):
            self._slots[id(net)] = i
        self._net_widths = [net.nbits for net in model._all_nets]
        self._model = model

    def _slot_of(self, sig):
        return self._slots[id(sig._net.find())]

    def _lower_blocks(self, model):
        comb_irs = []
        tick_irs = []
        for sub in model._all_models:
            for blk in sub.get_comb_blocks():
                comb_irs.append(translate_block(sub, blk, "comb"))
            for blk in sub.get_tick_blocks():
                if blk.level not in self.allowed_ticks:
                    raise SpecializationError(
                        f"{self.name} cannot specialize "
                        f"{sub.full_name()}.{blk.func.__name__} "
                        f"(level '{blk.level}'; supported: "
                        f"{sorted(self.allowed_ticks)})"
                    )
                kind = "tick_cl" if blk.level == "cl" else "tick_rtl"
                tick_irs.append(translate_block(sub, blk, kind))

        # Slice connectors become synthetic comb copies.
        from ..ast_ir import AssignSig, SigRead
        for idx, (src, dst) in enumerate(model._connectors):
            ir = BlockIR(name=f"connector{idx}", kind="comb", model=model)
            src_ref = _ref_of(src)
            dst_ref = _ref_of(dst)
            ir.body = [AssignSig(dst_ref, SigRead(src_ref), False)]
            ir.sig_reads = [src_ref]
            ir.sig_writes = [dst_ref]
            comb_irs.append(ir)
        return comb_irs, tick_irs

    def _schedule(self, comb_irs):
        """Topologically order comb blocks by write->read dependencies;
        cycles (if any) are left to the runtime fixpoint loop."""
        if not self.schedule:
            # Ablation mode: declaration order, rely on the fixpoint
            # loop alone (more passes per eval).
            return list(comb_irs)
        def slots_of(refs):
            out = set()
            for ref in refs:
                for sig in ref.signals:
                    out.add(self._slot_of(sig))
            return out

        reads = [slots_of(ir.sig_reads) for ir in comb_irs]
        writes = [slots_of(ir.sig_writes) for ir in comb_irs]
        n = len(comb_irs)
        writers_of = {}
        for i, wset in enumerate(writes):
            for slot in wset:
                writers_of.setdefault(slot, []).append(i)
        deps = [set() for _ in range(n)]       # deps[i] = must run before i
        for i, rset in enumerate(reads):
            for slot in rset:
                for j in writers_of.get(slot, ()):
                    if j != i:
                        deps[i].add(j)
        order = []
        placed = [False] * n
        remaining = set(range(n))
        while remaining:
            ready = [i for i in sorted(remaining)
                     if all(placed[j] for j in deps[i])]
            if not ready:
                # Dependency cycle: emit the rest in index order; the
                # runtime fixpoint loop still guarantees convergence.
                order.extend(comb_irs[i] for i in sorted(remaining))
                break
            for i in ready:
                placed[i] = True
                remaining.discard(i)
                order.append(comb_irs[i])
        return order

    # -- emission ---------------------------------------------------------------------

    def _emit(self, model, comb_order, tick_irs):
        from .cgen import C_API, C_OBS, C_PRELUDE

        # Namespace CL state per model instance.
        model_index = {id(m): i for i, m in enumerate(model._all_models)}
        self._state_models = {id(m): m for m in model._all_models}

        def state_cname(ref):
            return f"st_m{model_index[id(ref.model)]}_{ref.name}"

        backend = CBackend(self._slot_of, state_cname)
        functions = []
        comb_names = []
        tick_names = []
        state_vars = {}            # cname -> (model, attr_name, size)

        def collect(ir):
            for stmt in _walk_stmts(ir.body):
                from ..ast_ir import StateRef
                ref = getattr(stmt, "ref", None)
                if isinstance(ref, StateRef):
                    state_vars[state_cname(ref)] = (
                        ref.model, ref.name, ref.size)
            for ref in ir.state_names:
                state_vars[state_cname(ref)] = (
                    ref.model, ref.name, ref.size)

        for i, ir in enumerate(comb_order):
            name = f"comb_{i}_{ir.name}"
            functions.append(backend.block_function(ir, name))
            comb_names.append(name)
            collect(ir)
        for i, ir in enumerate(tick_irs):
            name = f"tick_{i}_{ir.name}"
            functions.append(backend.block_function(ir, name))
            tick_names.append(name)
            collect(ir)

        parts = [C_PRELUDE.replace(
            "@NNETS@", str(max(1, len(self._net_widths))))]

        widths = ", ".join(str(w) for w in self._net_widths) or "0"
        parts.append(
            f"static const unsigned short net_width[] = {{{widths}}};"
        )

        # Instance struct: net state + CL plain state.  Every instance
        # of the compiled model gets its own heap-allocated copy.
        state_list = sorted(state_vars.items())
        struct_lines = ["typedef struct {",
                        "  u128 cur[NNETS];",
                        "  u128 nxt[NNETS];",
                        "  u128 prev[NNETS];"]
        for cname, (_, _, size) in state_list:
            if size == 0:
                struct_lines.append(f"  int64_t {cname};")
            else:
                struct_lines.append(f"  int64_t {cname}[{size}];")
        struct_lines.append("} inst_t;")
        parts.append("\n".join(struct_lines))

        parts.append(backend.emit_tables())
        parts.extend(functions)

        run_comb = "\n".join(f"  {n}(I);" for n in comb_names)
        parts.append(
            "static void run_comb_blocks(inst_t *I) {\n"
            f"  (void)I;\n{run_comb}\n}}"
        )
        run_tick = "\n".join(f"  {n}(I);" for n in tick_names)
        parts.append(
            "static void run_tick_blocks(inst_t *I) {\n"
            f"  (void)I;\n{run_tick}\n}}"
        )

        # State probe for observability from Python.  Element-indexed
        # so state-backed counters over int-list entries stay readable
        # after specialization.
        probes = []
        for i, (cname, (_, _, size)) in enumerate(state_list):
            ref = f"I->{cname}" if size == 0 else f"I->{cname}[elem]"
            probes.append(f"  if (idx == {i}) return {ref};")
        parts.append(
            "static int64_t state_probe_at(inst_t *I, int idx, "
            "int elem) {\n"
            "  (void)I; (void)elem;\n"
            + "\n".join(probes) + "\n  return 0;\n}"
        )
        # Mirror poke for fault injection (resilience.inject): write a
        # CL state variable in place, by the same (idx, elem) addressing
        # as the probe.
        pokes = []
        for i, (cname, (_, _, size)) in enumerate(state_list):
            ref = f"I->{cname}" if size == 0 else f"I->{cname}[elem]"
            pokes.append(
                f"  if (idx == {i}) {{ {ref} = value; return; }}")
        parts.append(
            "static void state_poke_at(inst_t *I, int idx, int elem, "
            "int64_t value) {\n"
            "  (void)I; (void)elem; (void)value;\n"
            + "\n".join(pokes) + "\n}"
        )
        self._state_index = {cname: i
                             for i, (cname, _) in enumerate(state_list)}
        self._model_index = model_index

        # init_instance(): seed net values, constant ties, CL state.
        init_lines = []
        for i, net in enumerate(model._all_nets):
            value = net.read()
            if value:
                lo = value & 0xFFFFFFFFFFFFFFFF
                hi = value >> 64
                init_lines.append(
                    f"  I->cur[{i}] = (((u128){hi}ULL) << 64) | {lo}ULL;"
                )
        for end, const in model._const_ties:
            ref = _ref_of(end)
            slot = self._slot_of(ref.signals[0])
            width = ref.width
            init_lines.append(
                f"  I->cur[{slot}] = (I->cur[{slot}] & "
                f"~(mask_of({width}) << {ref.lo})) | "
                f"(((u128){const}ULL & mask_of({width})) << {ref.lo});"
            )
        for cname, (owner, attr_name, size) in state_list:
            value = getattr(owner, attr_name)
            if size == 0:
                init_lines.append(f"  I->{cname} = {int(value)}LL;")
            else:
                for j, v in enumerate(value):
                    if int(v):
                        init_lines.append(
                            f"  I->{cname}[{j}] = {int(v)}LL;")
        parts.append(
            "static void init_instance(inst_t *I) {\n"
            "  (void)I;\n" + "\n".join(init_lines) + "\n}"
        )
        parts.append(C_API)
        parts.append(C_OBS)
        if self.extra_c:
            parts.append(self.extra_c)
        return "\n\n".join(parts)

    # -- compile / load -----------------------------------------------------------------

    def _compile(self, c_source):
        """Compile (or reuse) the shared library for ``c_source``.

        The on-disk cache is content-addressed: artifacts are keyed by
        the sha256 of the generated source plus the optimization flag,
        so any codegen change produces a new key and repeated builds of
        the same design reuse the compiled ``.so``.  Writes go through
        a per-process temporary name followed by an atomic
        ``os.replace``, so concurrent builders and cache eviction never
        expose a half-written artifact (a reader that already opened
        the old inode keeps it alive).  Concurrent builders of the
        *same* digest additionally serialize on a per-key ``flock``
        (see :func:`_build_lock`): exactly one process compiles, the
        rest take cache hits.  Opt out per engine with ``cache=False``
        or globally with ``REPRO_SIMJIT_CACHE=0``.
        """
        digest = hashlib.sha256(
            (c_source + self.opt).encode()
        ).hexdigest()[:24]
        cache_dir = _default_cache_dir()
        os.makedirs(cache_dir, exist_ok=True)
        lib_path = os.path.join(cache_dir, f"simjit_{digest}.so")
        use_cache = self.cache and os.environ.get(
            _CACHE_OPTOUT_ENV, "1") != "0"
        if use_cache and os.path.exists(lib_path):
            return lib_path, True
        if not use_cache:
            return self._compile_locked(c_source, cache_dir, digest,
                                        lib_path), False
        # Concurrent builders of the same digest (fleet workers on
        # their first task) serialize on the key's lock: the winner
        # compiles, everyone else re-checks under the lock and hits.
        with _build_lock(lib_path + ".lock"):
            if os.path.exists(lib_path):
                return lib_path, True
            return self._compile_locked(c_source, cache_dir, digest,
                                        lib_path), False

    def _compile_locked(self, c_source, cache_dir, digest, lib_path):
        # Per-process temporaries keep their real extensions (gcc
        # dispatches on them) and land with atomic renames.
        tag = f".tmp{os.getpid()}"
        src_path = os.path.join(cache_dir, f"simjit_{digest}.c")
        tmp_src = os.path.join(cache_dir, f"simjit_{digest}{tag}.c")
        tmp_lib = os.path.join(cache_dir, f"simjit_{digest}{tag}.so")
        with open(tmp_src, "w") as handle:
            handle.write(c_source)
        cmd = ["gcc", self.opt, "-shared", "-fPIC", "-o",
               tmp_lib, tmp_src]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            try:
                os.remove(tmp_src)
            except OSError:
                pass
            raise SpecializationError(
                f"gcc failed:\n{result.stderr[:4000]}"
            )
        os.replace(tmp_src, src_path)
        os.replace(tmp_lib, lib_path)
        return lib_path

    def _load(self, lib_path):
        import cffi
        ffi = cffi.FFI()
        ffi.cdef(C_HEADER_DECLS + C_OBS_DECLS + self.extra_cdef)
        return ffi.dlopen(lib_path)


class SimJITRTL(_Specializer):
    """SimJIT-RTL: specializes pure-RTL designs (comb + tick_rtl)."""

    allowed_ticks = ("rtl",)
    name = "SimJIT-RTL"


class SimJITCL(_Specializer):
    """SimJIT-CL: specializes subset-style CL designs (tick_cl blocks
    with int/int-list state, plus any RTL blocks)."""

    allowed_ticks = ("cl", "rtl")
    name = "SimJIT-CL"


def _ref_of(end):
    from ..ast_ir import SigRef
    if isinstance(end, _SignalSlice):
        return SigRef([end.signal], lo=end.lo, hi=end.hi)
    return SigRef([end])


def _walk_stmts(stmts):
    from ..ast_ir import For, If
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk_stmts(stmt.body)
            yield from _walk_stmts(stmt.orelse)
        elif isinstance(stmt, For):
            yield from _walk_stmts(stmt.body)
