"""C code generation from behavioral-block IR.

SimJIT's backend (paper Section IV-A): lowers :class:`BlockIR`
statements and expressions into C.  The generated translation unit
models every signal net as an ``unsigned __int128`` slot (wide enough
for the 65-bit memory messages) in a ``cur``/``nxt`` double-buffered
state array:

- combinational blocks read and write ``cur`` with change detection
  (the ``comb_changed`` flag drives the fixpoint loop);
- tick blocks read ``cur`` and write ``nxt``; the clock edge copies
  ``nxt`` into ``cur``;
- local variables are ``int64_t`` (signed, so idioms like
  ``sa = a - 0x100000000`` compare correctly);
- plain CL state becomes static ``int64_t`` variables/arrays.

Dynamic signal-list indexing (``s.rf[rd]``) is compiled to a static
slot lookup table per reference.
"""

from __future__ import annotations

from ..ast_ir import (
    AssignLocal,
    AssignSig,
    AssignState,
    BinOp,
    BoolOp,
    Break,
    Cmp,
    Concat,
    Const,
    Continue,
    DeclLocalArray,
    For,
    If,
    IfExp,
    LocalRead,
    SigRead,
    SigRef,
    StateRead,
    StateRef,
    TranslationError,
    UnOp,
)

C_PRELUDE = r"""
#include <stdint.h>
#include <string.h>
#include <stdlib.h>

typedef unsigned __int128 u128;

#define NNETS @NNETS@

static inline u128 mask_of(int width) {
    if (width >= 128) return (u128)-1;
    return (((u128)1) << width) - 1;
}

/* Python floor-division semantics for signed operands (C truncates
   toward zero; Python floors).  Subset values passed through these are
   bounded well below 2^63. */
static inline int64_t py_mod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

static inline int64_t py_floordiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}
"""

# The instance struct is emitted by the specializer (it knows the CL
# state variables); every generated function takes an `inst_t *I`, so
# multiple instances of the same compiled model never share state.
C_API = r"""
/* ---- external API (cffi) ---- */

void *new_instance(void) {
    inst_t *I = (inst_t *)calloc(1, sizeof(inst_t));
    init_instance(I);
    return I;
}

void free_instance(void *p) {
    free(p);
}

void set_net(void *p, int idx, uint64_t lo, uint64_t hi) {
    inst_t *I = (inst_t *)p;
    I->cur[idx] = (((u128)hi << 64) | lo) & mask_of(net_width[idx]);
}

void get_net(void *p, int idx, uint64_t *out) {
    inst_t *I = (inst_t *)p;
    out[0] = (uint64_t)I->cur[idx];
    out[1] = (uint64_t)(I->cur[idx] >> 64);
}

int eval_comb(void *p) {
    /* Fixpoint over whole-state snapshots: a block may legitimately
       write a net twice per pass (clear-then-set), so per-write change
       flags would never settle.  Blocks are statically scheduled in
       dependency order, so this usually converges in two passes. */
    inst_t *I = (inst_t *)p;
    int iters = 0;
    do {
        memcpy(I->prev, I->cur, sizeof(I->cur));
        run_comb_blocks(I);
        iters++;
        if (iters > 64) return -1;   /* combinational loop */
    } while (memcmp(I->prev, I->cur, sizeof(I->cur)) != 0);
    return iters;
}

int cycle(void *p, int n) {
    inst_t *I = (inst_t *)p;
    for (int i = 0; i < n; i++) {
        if (eval_comb(p) < 0) return -1;
        memcpy(I->nxt, I->cur, sizeof(I->cur));
        run_tick_blocks(I);
        memcpy(I->cur, I->nxt, sizeof(I->cur));
        if (eval_comb(p) < 0) return -1;
    }
    return 0;
}

int64_t get_state(void *p, int idx) {
    return state_probe_at((inst_t *)p, idx, 0);
}

int64_t get_state_at(void *p, int idx, int elem) {
    return state_probe_at((inst_t *)p, idx, elem);
}

void get_nets(void *p, const int *idxs, int n, uint64_t *out) {
    inst_t *I = (inst_t *)p;
    for (int i = 0; i < n; i++) {
        u128 v = I->cur[idxs[i]];
        out[2 * i] = (uint64_t)v;
        out[2 * i + 1] = (uint64_t)(v >> 64);
    }
}

void set_state_at(void *p, int idx, int elem, int64_t value) {
    state_poke_at((inst_t *)p, idx, elem, value);
}

/* Checkpoint/restore: inst_t is a flat POD struct (net arrays + plain
   int64 state), so one memcpy captures and restores the entire
   simulation state of an instance. */
size_t inst_size(void) {
    return sizeof(inst_t);
}

void save_inst(void *p, char *buf) {
    memcpy(buf, p, sizeof(inst_t));
}

void load_inst(void *p, const char *buf) {
    memcpy(p, buf, sizeof(inst_t));
}
"""

C_HEADER_DECLS = """
void *new_instance(void);
void free_instance(void *p);
void set_net(void *p, int idx, uint64_t lo, uint64_t hi);
void get_net(void *p, int idx, uint64_t *out);
int eval_comb(void *p);
int cycle(void *p, int n);
int64_t get_state(void *p, int idx);
int64_t get_state_at(void *p, int idx, int elem);
void get_nets(void *p, const int *idxs, int n, uint64_t *out);
void set_state_at(void *p, int idx, int elem, int64_t value);
size_t inst_size(void);
void save_inst(void *p, char *buf);
void load_inst(void *p, const char *buf);
"""


class CBackend:
    """Generates one C function per behavioral block."""

    def __init__(self, slot_of, state_cname=None):
        """``slot_of(signal) -> int`` maps a signal to its net slot;
        ``state_cname(ref) -> str`` names a CL state variable in C
        (must be unique per (model, attribute))."""
        self.slot_of = slot_of
        self.state_cname = state_cname or (lambda ref: _sname(ref.name))
        self._tables = []          # (name, [slots]) lookup tables
        self._table_cache = {}

    # -- tables for dynamic indexing -----------------------------------------

    def table_for(self, ref):
        slots = tuple(self.slot_of(sig) for sig in ref.signals)
        if slots not in self._table_cache:
            name = f"tbl{len(self._tables)}"
            self._tables.append((name, slots))
            self._table_cache[slots] = name
        return self._table_cache[slots]

    def emit_tables(self):
        lines = []
        for name, slots in self._tables:
            body = ", ".join(str(s) for s in slots)
            lines.append(
                f"static const int {name}[{len(slots)}] = {{{body}}};"
            )
        return "\n".join(lines)

    # -- references ---------------------------------------------------------------

    def slot_expr(self, ref):
        if ref.is_dynamic():
            table = self.table_for(ref)
            return f"{table}[(int)({self.expr(ref.index)})]"
        return str(self.slot_of(ref.signal))

    def sig_read(self, ref, array="cur"):
        slot = self.slot_expr(ref)
        base = f"I->{array}[{slot}]"
        width = ref.width
        if ref.lo == 0 and ref.hi is None:
            # Full-width read; nets are stored masked already.
            return f"({base})"
        return (f"(({base} >> {ref.lo}) & mask_of({width}))")

    def sig_write(self, ref, value_c, is_next, indent):
        array = "nxt" if is_next else "cur"
        slot = self.slot_expr(ref)
        width = ref.width
        full = ref.lo == 0 and ref.hi is None
        pad = " " * indent
        lines = [f"{pad}{{"]
        lines.append(f"{pad}  u128 _v = ((u128)({value_c})) & "
                     f"mask_of({width});")
        if full:
            lines.append(f"{pad}  u128 _nv = _v;")
        else:
            lines.append(
                f"{pad}  u128 _nv = (I->{array}[{slot}] & "
                f"~(mask_of({width}) << {ref.lo})) | (_v << {ref.lo});"
            )
        lines.append(f"{pad}  I->{array}[{slot}] = _nv;")
        lines.append(f"{pad}}}")
        return "\n".join(lines)

    # -- expressions ------------------------------------------------------------------

    def expr(self, node):
        if isinstance(node, Const):
            value = node.value
            if value < 0:
                return f"((int64_t)({value}LL))"
            if value > 0x7FFFFFFFFFFFFFFF:
                hi, lo = value >> 64, value & ((1 << 64) - 1)
                return f"((((u128){hi}ULL) << 64) | {lo}ULL)"
            return f"({value}LL)"
        if isinstance(node, SigRead):
            return self.sig_read(node.ref)
        if isinstance(node, StateRead):
            return self.state_read(node.ref)
        if isinstance(node, LocalRead):
            if node.index is not None:
                return f"{_lname(node.name)}[(int)({self.expr(node.index)})]"
            return _lname(node.name)
        if isinstance(node, BinOp):
            left, right = self.expr(node.left), self.expr(node.right)
            if node.op == "//":
                return (f"py_floordiv((int64_t)({left}), "
                        f"(int64_t)({right}))")
            if node.op == "%":
                return f"py_mod((int64_t)({left}), (int64_t)({right}))"
            return f"({left} {node.op} {right})"
        if isinstance(node, UnOp):
            return f"({node.op}({self.expr(node.operand)}))"
        if isinstance(node, Cmp):
            return (f"(({self.expr(node.left)}) {node.op} "
                    f"({self.expr(node.right)}))")
        if isinstance(node, BoolOp):
            joined = f" {node.op} ".join(
                f"(({self.expr(v)}) != 0)" for v in node.values
            )
            return f"({joined})"
        if isinstance(node, IfExp):
            return (f"((({self.expr(node.cond)}) != 0) ? "
                    f"({self.expr(node.then)}) : ({self.expr(node.orelse)}))")
        if isinstance(node, Concat):
            parts = []
            shift = sum(w for _, w in node.parts)
            for expr, width in node.parts:
                shift -= width
                parts.append(f"((((u128)({self.expr(expr)})) & "
                             f"mask_of({width})) << {shift})")
            return "(" + " | ".join(parts) + ")"
        raise TranslationError(f"cgen: unknown expr {type(node).__name__}")

    # -- CL plain state ---------------------------------------------------------------

    def state_read(self, ref):
        name = f"I->{self.state_cname(ref)}"
        if ref.index is not None:
            return f"{name}[(int)({self.expr(ref.index)})]"
        return name

    def state_write(self, ref, value_c, indent):
        pad = " " * indent
        name = f"I->{self.state_cname(ref)}"
        if ref.index is not None:
            return (f"{pad}{name}[(int)({self.expr(ref.index)})] = "
                    f"(int64_t)({value_c});")
        return f"{pad}{name} = (int64_t)({value_c});"

    # -- statements --------------------------------------------------------------------

    def stmt(self, node, indent=2):
        pad = " " * indent
        if isinstance(node, AssignSig):
            return self.sig_write(node.ref, self.expr(node.expr),
                                  node.is_next, indent)
        if isinstance(node, AssignState):
            return self.state_write(node.ref, self.expr(node.expr), indent)
        if isinstance(node, AssignLocal):
            name = _lname(node.name)
            if node.index is not None:
                return (f"{pad}{name}[(int)({self.expr(node.index)})] = "
                        f"(int64_t)({self.expr(node.expr)});")
            return f"{pad}{name} = (int64_t)({self.expr(node.expr)});"
        if isinstance(node, DeclLocalArray):
            name = _lname(node.name)
            fill = self.expr(node.init)
            return (f"{pad}for (int _i = 0; _i < {node.size}; _i++) "
                    f"{name}[_i] = {fill};")
        if isinstance(node, If):
            lines = [f"{pad}if (({self.expr(node.cond)}) != 0) {{"]
            lines.extend(self.stmt(s, indent + 2) for s in node.body)
            if node.orelse:
                lines.append(f"{pad}}} else {{")
                lines.extend(self.stmt(s, indent + 2) for s in node.orelse)
            lines.append(f"{pad}}}")
            return "\n".join(lines)
        if isinstance(node, For):
            var = _lname(node.var)
            lines = [
                f"{pad}for ({var} = {node.start}; {var} < {node.stop}; "
                f"{var} += {node.step}) {{"
            ]
            lines.extend(self.stmt(s, indent + 2) for s in node.body)
            lines.append(f"{pad}}}")
            return "\n".join(lines)
        if isinstance(node, Break):
            return f"{pad}break;"
        if isinstance(node, Continue):
            return f"{pad}continue;"
        raise TranslationError(f"cgen: unknown stmt {type(node).__name__}")

    def block_function(self, ir, func_name):
        """Emit the full C function for a lowered block."""
        lines = [f"static void {func_name}(inst_t *I) {{"]
        lines.append("  (void)I;")
        for name, ltype in ir.locals.items():
            if ltype == "int":
                lines.append(f"  int64_t {_lname(name)} = 0;")
            else:
                lines.append(f"  int64_t {_lname(name)}[{ltype[1]}];")
        for stmt in ir.body:
            lines.append(self.stmt(stmt, 2))
        lines.append("}")
        return "\n".join(lines)


def _lname(name):
    return f"l_{name}"


def _sname(name):
    return f"st_{name}"
