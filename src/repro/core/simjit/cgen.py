"""C code generation from behavioral-block IR.

SimJIT's backend (paper Section IV-A): lowers :class:`BlockIR`
statements and expressions into C.  The generated translation unit
models every signal net as an ``unsigned __int128`` slot (wide enough
for the 65-bit memory messages) in a ``cur``/``nxt`` double-buffered
state array:

- combinational blocks read and write ``cur`` with change detection
  (the ``comb_changed`` flag drives the fixpoint loop);
- tick blocks read ``cur`` and write ``nxt``; the clock edge copies
  ``nxt`` into ``cur``;
- local variables are ``int64_t`` (signed, so idioms like
  ``sa = a - 0x100000000`` compare correctly);
- plain CL state becomes static ``int64_t`` variables/arrays.

Dynamic signal-list indexing (``s.rf[rd]``) is compiled to a static
slot lookup table per reference.
"""

from __future__ import annotations

from ..ast_ir import (
    AssignLocal,
    AssignSig,
    AssignState,
    BinOp,
    BoolOp,
    Break,
    Cmp,
    Concat,
    Const,
    Continue,
    DeclLocalArray,
    For,
    If,
    IfExp,
    LocalRead,
    SigRead,
    SigRef,
    StateRead,
    StateRef,
    TranslationError,
    UnOp,
)

C_PRELUDE = r"""
#include <stdint.h>
#include <string.h>
#include <stdlib.h>

typedef unsigned __int128 u128;

#define NNETS @NNETS@

static inline u128 mask_of(int width) {
    if (width >= 128) return (u128)-1;
    return (((u128)1) << width) - 1;
}

/* Python floor-division semantics for signed operands (C truncates
   toward zero; Python floors).  Subset values passed through these are
   bounded well below 2^63. */
static inline int64_t py_mod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

static inline int64_t py_floordiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}
"""

# The instance struct is emitted by the specializer (it knows the CL
# state variables); every generated function takes an `inst_t *I`, so
# multiple instances of the same compiled model never share state.
C_API = r"""
/* ---- external API (cffi) ---- */

void *new_instance(void) {
    inst_t *I = (inst_t *)calloc(1, sizeof(inst_t));
    init_instance(I);
    return I;
}

void free_instance(void *p) {
    free(p);
}

void set_net(void *p, int idx, uint64_t lo, uint64_t hi) {
    inst_t *I = (inst_t *)p;
    I->cur[idx] = (((u128)hi << 64) | lo) & mask_of(net_width[idx]);
}

void get_net(void *p, int idx, uint64_t *out) {
    inst_t *I = (inst_t *)p;
    out[0] = (uint64_t)I->cur[idx];
    out[1] = (uint64_t)(I->cur[idx] >> 64);
}

int eval_comb(void *p) {
    /* Fixpoint over whole-state snapshots: a block may legitimately
       write a net twice per pass (clear-then-set), so per-write change
       flags would never settle.  Blocks are statically scheduled in
       dependency order, so this usually converges in two passes. */
    inst_t *I = (inst_t *)p;
    int iters = 0;
    do {
        memcpy(I->prev, I->cur, sizeof(I->cur));
        run_comb_blocks(I);
        iters++;
        if (iters > 64) return -1;   /* combinational loop */
    } while (memcmp(I->prev, I->cur, sizeof(I->cur)) != 0);
    return iters;
}

int cycle(void *p, int n) {
    inst_t *I = (inst_t *)p;
    for (int i = 0; i < n; i++) {
        if (eval_comb(p) < 0) return -1;
        memcpy(I->nxt, I->cur, sizeof(I->cur));
        run_tick_blocks(I);
        memcpy(I->cur, I->nxt, sizeof(I->cur));
        if (eval_comb(p) < 0) return -1;
    }
    return 0;
}

int64_t get_state(void *p, int idx) {
    return state_probe_at((inst_t *)p, idx, 0);
}

int64_t get_state_at(void *p, int idx, int elem) {
    return state_probe_at((inst_t *)p, idx, elem);
}

void get_nets(void *p, const int *idxs, int n, uint64_t *out) {
    inst_t *I = (inst_t *)p;
    for (int i = 0; i < n; i++) {
        u128 v = I->cur[idxs[i]];
        out[2 * i] = (uint64_t)v;
        out[2 * i + 1] = (uint64_t)(v >> 64);
    }
}

void set_state_at(void *p, int idx, int elem, int64_t value) {
    state_poke_at((inst_t *)p, idx, elem, value);
}

/* Checkpoint/restore: inst_t is a flat POD struct (net arrays + plain
   int64 state), so one memcpy captures and restores the entire
   simulation state of an instance. */
size_t inst_size(void) {
    return sizeof(inst_t);
}

void save_inst(void *p, char *buf) {
    memcpy(buf, p, sizeof(inst_t));
}

void load_inst(void *p, const char *buf) {
    memcpy(p, buf, sizeof(inst_t));
}
"""

# Compiled-instrumentation runtime, appended to every translation unit.
#
# All observability state lives in a heap side-struct (``obs_t``)
# separate from ``inst_t``, so the checkpoint blob (``save_inst``/
# ``load_inst``) is unaffected by armed instrumentation.  The runtime
# is *data-driven*: recorder taps, val/rdy taps, histogram probes, and
# watchpoint node trees are registered at run time through the API
# below, so one compiled ``.so`` serves any set of attachments and the
# content-addressed artifact cache stays effective.
#
# ``obs_run`` replicates the per-cycle sampling contract of the
# interpreted simulator exactly:
#
# - val/rdy taps sample after the *pre-edge* settle with the
#   pre-increment cycle stamp (the cycle-hook sampling point);
# - recorder taps, histogram probes, and watchpoint nodes sample after
#   the *post-edge* settle with the post-increment stamp (the observer
#   sampling point);
# - watchpoint ``&`` evaluates both operands unconditionally (edge
#   trackers must see every cycle), and a hit stops the batch so
#   Python-side actions fire at the exact cycle.
#
# Taps emit change-compressed events into preallocated buffers; a
# batch ends early (return < n) when a buffer could overflow on the
# next cycle, letting Python drain and resume losslessly.
C_OBS = r"""
/* ---- compiled instrumentation runtime ---- */

#define OBS_MAX_REC 128
#define OBS_MAX_TX 256
#define OBS_MAX_NODES 512
#define OBS_MAX_WP 64
#define OBS_MAX_HIST 64
#define OBS_HIST_CAP 1024

typedef struct {
    int kind;           /* 0 rose 1 fell 2 changed 3 value_is
                           4 and 5 or 6 not */
    int slot;           /* net slot (kinds 0-3) */
    int a, b;           /* operand node indices (kinds 4-6) */
    u128 aux;           /* comparison value (kind 3) */
    u128 prev;          /* previous value (kinds 0-2) */
} obs_node_t;

typedef struct {
    inst_t *I;
    long long cycle;    /* mirrors sim.ncycles */
    /* flight-recorder taps: change events (cycle, tap, lo, hi) */
    int nrec;
    int rec_slot[OBS_MAX_REC];
    u128 rec_last[OBS_MAX_REC];
    long long rec_cap, rec_len;
    uint64_t *rec_buf;
    /* val/rdy taps: run-boundary events (cycle, tap, vr, lo, hi) */
    int ntx;
    int tx_val[OBS_MAX_TX], tx_rdy[OBS_MAX_TX], tx_msg[OBS_MAX_TX];
    u128 tx_lmsg[OBS_MAX_TX];
    unsigned char tx_lvr[OBS_MAX_TX], tx_seen[OBS_MAX_TX];
    long long tx_cap, tx_len;
    uint64_t *tx_buf;
    /* signal-backed histograms: open-addressed value->count tables */
    int nhist;
    int hist_slot[OBS_MAX_HIST], hist_when[OBS_MAX_HIST];
    int hist_used[OBS_MAX_HIST];
    int64_t *hist_vals;
    long long *hist_cnts;
    /* watchpoints: flat postorder node forest, one root per wp */
    int nnodes, nwp;
    obs_node_t nodes[OBS_MAX_NODES];
    unsigned char nval[OBS_MAX_NODES];
    int wp_root[OBS_MAX_WP];
    long long hit_cycle;
    uint64_t hit_mask;
} obs_t;

void *obs_new(void *inst, long long rec_cap, long long tx_cap) {
    obs_t *O = (obs_t *)calloc(1, sizeof(obs_t));
    if (!O) return 0;
    O->I = (inst_t *)inst;
    O->rec_cap = rec_cap;
    O->tx_cap = tx_cap;
    O->rec_buf = (uint64_t *)malloc((size_t)rec_cap * 4 * 8);
    O->tx_buf = (uint64_t *)malloc((size_t)tx_cap * 5 * 8);
    O->hit_cycle = -1;
    return O;
}

void obs_free(void *op) {
    obs_t *O = (obs_t *)op;
    if (!O) return;
    free(O->rec_buf);
    free(O->tx_buf);
    free(O->hist_vals);
    free(O->hist_cnts);
    free(O);
}

void obs_set_cycle(void *op, long long cycle) {
    ((obs_t *)op)->cycle = cycle;
}

int obs_add_rec_tap(void *op, int slot) {
    obs_t *O = (obs_t *)op;
    if (O->nrec >= OBS_MAX_REC) return -1;
    O->rec_slot[O->nrec] = slot;
    O->rec_last[O->nrec] = O->I->cur[slot];
    return O->nrec++;
}

void obs_del_rec_tap(void *op, int idx) {
    ((obs_t *)op)->rec_slot[idx] = -1;
}

int obs_add_tx_tap(void *op, int val, int rdy, int msg) {
    obs_t *O = (obs_t *)op;
    if (O->ntx >= OBS_MAX_TX) return -1;
    O->tx_val[O->ntx] = val;
    O->tx_rdy[O->ntx] = rdy;
    O->tx_msg[O->ntx] = msg;
    O->tx_seen[O->ntx] = 0;
    return O->ntx++;
}

void obs_del_tx_tap(void *op, int idx) {
    ((obs_t *)op)->tx_val[idx] = -1;
}

void obs_tx_rearm(void *op, int idx) {
    /* Force a boundary event at the next sampled cycle (used after
       monitor resets so the replay re-observes the live values). */
    ((obs_t *)op)->tx_seen[idx] = 0;
}

int obs_add_hist(void *op, int slot, int when_slot) {
    obs_t *O = (obs_t *)op;
    if (O->nhist >= OBS_MAX_HIST) return -1;
    if (!O->hist_vals) {
        O->hist_vals = (int64_t *)calloc(
            (size_t)OBS_MAX_HIST * OBS_HIST_CAP, 8);
        O->hist_cnts = (long long *)calloc(
            (size_t)OBS_MAX_HIST * OBS_HIST_CAP, 8);
        if (!O->hist_vals || !O->hist_cnts) return -1;
    }
    O->hist_slot[O->nhist] = slot;
    O->hist_when[O->nhist] = when_slot;
    return O->nhist++;
}

void obs_del_hist(void *op, int idx) {
    ((obs_t *)op)->hist_slot[idx] = -1;
}

long long obs_hist_drain(void *op, int idx, int64_t *vals,
                         long long *cnts) {
    obs_t *O = (obs_t *)op;
    int64_t *tv = O->hist_vals + (long long)idx * OBS_HIST_CAP;
    long long *tc = O->hist_cnts + (long long)idx * OBS_HIST_CAP;
    long long n = 0;
    if (!O->hist_vals) return 0;
    for (int i = 0; i < OBS_HIST_CAP; i++) {
        if (tc[i] != 0) {
            vals[n] = tv[i];
            cnts[n] = tc[i];
            tc[i] = 0;
            n++;
        }
    }
    O->hist_used[idx] = 0;
    return n;
}

int obs_add_watch(void *op, int nnodes, const int64_t *packed) {
    /* ``packed`` holds 6 words per node: kind, slot, a, b, aux_lo,
       aux_hi; a/b are indices relative to the first added node. */
    obs_t *O = (obs_t *)op;
    int base = O->nnodes;
    if (O->nwp >= OBS_MAX_WP || base + nnodes > OBS_MAX_NODES)
        return -1;
    for (int i = 0; i < nnodes; i++) {
        obs_node_t *nd = &O->nodes[base + i];
        const int64_t *w = packed + 6 * i;
        nd->kind = (int)w[0];
        nd->slot = (int)w[1];
        nd->a = w[2] < 0 ? -1 : base + (int)w[2];
        nd->b = w[3] < 0 ? -1 : base + (int)w[3];
        nd->aux = ((u128)(uint64_t)w[5] << 64) | (uint64_t)w[4];
        nd->prev = (nd->kind <= 2) ? O->I->cur[nd->slot] : 0;
    }
    O->nnodes = base + nnodes;
    O->wp_root[O->nwp] = base + nnodes - 1;
    return O->nwp++;
}

void obs_del_watch(void *op, int idx) {
    ((obs_t *)op)->wp_root[idx] = -1;
}

long long obs_hit_cycle(void *op) { return ((obs_t *)op)->hit_cycle; }
uint64_t obs_hit_mask(void *op) { return ((obs_t *)op)->hit_mask; }

long long obs_rec_drain(void *op, uint64_t *out) {
    obs_t *O = (obs_t *)op;
    long long n = O->rec_len;
    if (n) memcpy(out, O->rec_buf, (size_t)n * 4 * 8);
    O->rec_len = 0;
    return n;
}

long long obs_tx_drain(void *op, uint64_t *out) {
    obs_t *O = (obs_t *)op;
    long long n = O->tx_len;
    if (n) memcpy(out, O->tx_buf, (size_t)n * 5 * 8);
    O->tx_len = 0;
    return n;
}

long long obs_run(void *op, long long n) {
    obs_t *O = (obs_t *)op;
    inst_t *I = O->I;
    O->hit_cycle = -1;
    O->hit_mask = 0;
    for (long long k = 0; k < n; k++) {
        /* Stop before a cycle whose worst case could overflow a
           buffer; the caller drains and resumes. */
        if (O->nrec && O->rec_len + O->nrec > O->rec_cap) return k;
        if (O->ntx && O->tx_len + O->ntx > O->tx_cap) return k;
        for (int h = 0; h < O->nhist; h++)
            if (O->hist_slot[h] >= 0
                    && O->hist_used[h] > OBS_HIST_CAP - 64)
                return k;
        if (eval_comb(I) < 0) return -1;
        /* pre-edge sampling point (cycle-hook semantics) */
        for (int t = 0; t < O->ntx; t++) {
            unsigned char vr;
            u128 msg;
            if (O->tx_val[t] < 0) continue;
            vr = (unsigned char)(
                ((I->cur[O->tx_val[t]] != 0) ? 1 : 0)
                | ((I->cur[O->tx_rdy[t]] != 0) ? 2 : 0));
            msg = I->cur[O->tx_msg[t]];
            if (!O->tx_seen[t] || vr != O->tx_lvr[t]
                    || msg != O->tx_lmsg[t]) {
                uint64_t *e = O->tx_buf + 5 * O->tx_len++;
                e[0] = (uint64_t)O->cycle;
                e[1] = (uint64_t)t;
                e[2] = vr;
                e[3] = (uint64_t)msg;
                e[4] = (uint64_t)(msg >> 64);
                O->tx_seen[t] = 1;
                O->tx_lvr[t] = vr;
                O->tx_lmsg[t] = msg;
            }
        }
        memcpy(I->nxt, I->cur, sizeof(I->cur));
        run_tick_blocks(I);
        memcpy(I->cur, I->nxt, sizeof(I->cur));
        if (eval_comb(I) < 0) return -1;
        O->cycle++;
        /* post-edge sampling point (observer semantics) */
        for (int t = 0; t < O->nrec; t++) {
            u128 v;
            if (O->rec_slot[t] < 0) continue;
            v = I->cur[O->rec_slot[t]];
            if (v != O->rec_last[t]) {
                uint64_t *e = O->rec_buf + 4 * O->rec_len++;
                O->rec_last[t] = v;
                e[0] = (uint64_t)O->cycle;
                e[1] = (uint64_t)t;
                e[2] = (uint64_t)v;
                e[3] = (uint64_t)(v >> 64);
            }
        }
        for (int h = 0; h < O->nhist; h++) {
            int64_t v;
            int64_t *vals;
            long long *cnts;
            uint64_t idx;
            if (O->hist_slot[h] < 0) continue;
            if (O->hist_when[h] >= 0
                    && I->cur[O->hist_when[h]] == 0) continue;
            v = (int64_t)I->cur[O->hist_slot[h]];
            vals = O->hist_vals + (long long)h * OBS_HIST_CAP;
            cnts = O->hist_cnts + (long long)h * OBS_HIST_CAP;
            idx = ((uint64_t)v * 0x9E3779B97F4A7C15ULL) >> 54;
            for (;;) {
                idx &= (OBS_HIST_CAP - 1);
                if (cnts[idx] == 0) {
                    vals[idx] = v;
                    cnts[idx] = 1;
                    O->hist_used[h]++;
                    break;
                }
                if (vals[idx] == v) { cnts[idx]++; break; }
                idx++;
            }
        }
        if (O->nnodes) {
            uint64_t mask = 0;
            for (int i = 0; i < O->nnodes; i++) {
                obs_node_t *nd = &O->nodes[i];
                unsigned char r = 0;
                u128 v;
                switch (nd->kind) {
                    case 0:
                        v = I->cur[nd->slot];
                        r = (nd->prev == 0) && (v != 0);
                        nd->prev = v;
                        break;
                    case 1:
                        v = I->cur[nd->slot];
                        r = (nd->prev != 0) && (v == 0);
                        nd->prev = v;
                        break;
                    case 2:
                        v = I->cur[nd->slot];
                        r = (v != nd->prev);
                        nd->prev = v;
                        break;
                    case 3:
                        r = (I->cur[nd->slot] == nd->aux);
                        break;
                    case 4:
                        r = O->nval[nd->a] & O->nval[nd->b];
                        break;
                    case 5:
                        r = O->nval[nd->a] | O->nval[nd->b];
                        break;
                    default:
                        r = !O->nval[nd->a];
                        break;
                }
                O->nval[i] = r;
            }
            for (int w = 0; w < O->nwp; w++)
                if (O->wp_root[w] >= 0 && O->nval[O->wp_root[w]])
                    mask |= ((uint64_t)1) << w;
            if (mask) {
                O->hit_cycle = O->cycle;
                O->hit_mask = mask;
                return k + 1;
            }
        }
    }
    return n;
}

/* Bulk counter readback: one call reads any mix of net slots and CL
   state probes (req holds (kind, idx, elem) triples; kind 0 = net,
   kind 1 = state).  Each answer is two uint64 words (lo, hi). */
void read_probes(void *p, const int64_t *req, int n, uint64_t *out) {
    inst_t *I = (inst_t *)p;
    for (int i = 0; i < n; i++) {
        const int64_t *r = req + 3 * i;
        if (r[0] == 0) {
            u128 v = I->cur[(int)r[1]];
            out[2 * i] = (uint64_t)v;
            out[2 * i + 1] = (uint64_t)(v >> 64);
        } else {
            out[2 * i] = (uint64_t)state_probe_at(
                I, (int)r[1], (int)r[2]);
            out[2 * i + 1] = 0;
        }
    }
}
"""

C_OBS_DECLS = """
void *obs_new(void *inst, long long rec_cap, long long tx_cap);
void obs_free(void *op);
void obs_set_cycle(void *op, long long cycle);
int obs_add_rec_tap(void *op, int slot);
void obs_del_rec_tap(void *op, int idx);
int obs_add_tx_tap(void *op, int val, int rdy, int msg);
void obs_del_tx_tap(void *op, int idx);
void obs_tx_rearm(void *op, int idx);
int obs_add_hist(void *op, int slot, int when_slot);
void obs_del_hist(void *op, int idx);
long long obs_hist_drain(void *op, int idx, int64_t *vals,
                         long long *cnts);
int obs_add_watch(void *op, int nnodes, const int64_t *packed);
void obs_del_watch(void *op, int idx);
long long obs_hit_cycle(void *op);
uint64_t obs_hit_mask(void *op);
long long obs_rec_drain(void *op, uint64_t *out);
long long obs_tx_drain(void *op, uint64_t *out);
long long obs_run(void *op, long long n);
void read_probes(void *p, const int64_t *req, int n, uint64_t *out);
"""

# Python-side mirrors of the C capacity limits (arming code checks
# these before registering so a full runtime degrades to hooks).
OBS_MAX_REC = 128
OBS_MAX_TX = 256
OBS_MAX_NODES = 512
OBS_MAX_WP = 64
OBS_MAX_HIST = 64

C_HEADER_DECLS = """
void *new_instance(void);
void free_instance(void *p);
void set_net(void *p, int idx, uint64_t lo, uint64_t hi);
void get_net(void *p, int idx, uint64_t *out);
int eval_comb(void *p);
int cycle(void *p, int n);
int64_t get_state(void *p, int idx);
int64_t get_state_at(void *p, int idx, int elem);
void get_nets(void *p, const int *idxs, int n, uint64_t *out);
void set_state_at(void *p, int idx, int elem, int64_t value);
size_t inst_size(void);
void save_inst(void *p, char *buf);
void load_inst(void *p, const char *buf);
"""


class CBackend:
    """Generates one C function per behavioral block."""

    def __init__(self, slot_of, state_cname=None):
        """``slot_of(signal) -> int`` maps a signal to its net slot;
        ``state_cname(ref) -> str`` names a CL state variable in C
        (must be unique per (model, attribute))."""
        self.slot_of = slot_of
        self.state_cname = state_cname or (lambda ref: _sname(ref.name))
        self._tables = []          # (name, [slots]) lookup tables
        self._table_cache = {}

    # -- tables for dynamic indexing -----------------------------------------

    def table_for(self, ref):
        slots = tuple(self.slot_of(sig) for sig in ref.signals)
        if slots not in self._table_cache:
            name = f"tbl{len(self._tables)}"
            self._tables.append((name, slots))
            self._table_cache[slots] = name
        return self._table_cache[slots]

    def emit_tables(self):
        lines = []
        for name, slots in self._tables:
            body = ", ".join(str(s) for s in slots)
            lines.append(
                f"static const int {name}[{len(slots)}] = {{{body}}};"
            )
        return "\n".join(lines)

    # -- references ---------------------------------------------------------------

    def slot_expr(self, ref):
        if ref.is_dynamic():
            table = self.table_for(ref)
            return f"{table}[(int)({self.expr(ref.index)})]"
        return str(self.slot_of(ref.signal))

    def sig_read(self, ref, array="cur"):
        slot = self.slot_expr(ref)
        base = f"I->{array}[{slot}]"
        width = ref.width
        if ref.lo == 0 and ref.hi is None:
            # Full-width read; nets are stored masked already.
            return f"({base})"
        return (f"(({base} >> {ref.lo}) & mask_of({width}))")

    def sig_write(self, ref, value_c, is_next, indent):
        array = "nxt" if is_next else "cur"
        slot = self.slot_expr(ref)
        width = ref.width
        full = ref.lo == 0 and ref.hi is None
        pad = " " * indent
        lines = [f"{pad}{{"]
        lines.append(f"{pad}  u128 _v = ((u128)({value_c})) & "
                     f"mask_of({width});")
        if full:
            lines.append(f"{pad}  u128 _nv = _v;")
        else:
            lines.append(
                f"{pad}  u128 _nv = (I->{array}[{slot}] & "
                f"~(mask_of({width}) << {ref.lo})) | (_v << {ref.lo});"
            )
        lines.append(f"{pad}  I->{array}[{slot}] = _nv;")
        lines.append(f"{pad}}}")
        return "\n".join(lines)

    # -- expressions ------------------------------------------------------------------

    def expr(self, node):
        if isinstance(node, Const):
            value = node.value
            if value < 0:
                return f"((int64_t)({value}LL))"
            if value > 0x7FFFFFFFFFFFFFFF:
                hi, lo = value >> 64, value & ((1 << 64) - 1)
                return f"((((u128){hi}ULL) << 64) | {lo}ULL)"
            return f"({value}LL)"
        if isinstance(node, SigRead):
            return self.sig_read(node.ref)
        if isinstance(node, StateRead):
            return self.state_read(node.ref)
        if isinstance(node, LocalRead):
            if node.index is not None:
                return f"{_lname(node.name)}[(int)({self.expr(node.index)})]"
            return _lname(node.name)
        if isinstance(node, BinOp):
            left, right = self.expr(node.left), self.expr(node.right)
            if node.op == "//":
                return (f"py_floordiv((int64_t)({left}), "
                        f"(int64_t)({right}))")
            if node.op == "%":
                return f"py_mod((int64_t)({left}), (int64_t)({right}))"
            return f"({left} {node.op} {right})"
        if isinstance(node, UnOp):
            return f"({node.op}({self.expr(node.operand)}))"
        if isinstance(node, Cmp):
            return (f"(({self.expr(node.left)}) {node.op} "
                    f"({self.expr(node.right)}))")
        if isinstance(node, BoolOp):
            joined = f" {node.op} ".join(
                f"(({self.expr(v)}) != 0)" for v in node.values
            )
            return f"({joined})"
        if isinstance(node, IfExp):
            return (f"((({self.expr(node.cond)}) != 0) ? "
                    f"({self.expr(node.then)}) : ({self.expr(node.orelse)}))")
        if isinstance(node, Concat):
            parts = []
            shift = sum(w for _, w in node.parts)
            for expr, width in node.parts:
                shift -= width
                parts.append(f"((((u128)({self.expr(expr)})) & "
                             f"mask_of({width})) << {shift})")
            return "(" + " | ".join(parts) + ")"
        raise TranslationError(f"cgen: unknown expr {type(node).__name__}")

    # -- CL plain state ---------------------------------------------------------------

    def state_read(self, ref):
        name = f"I->{self.state_cname(ref)}"
        if ref.index is not None:
            return f"{name}[(int)({self.expr(ref.index)})]"
        return name

    def state_write(self, ref, value_c, indent):
        pad = " " * indent
        name = f"I->{self.state_cname(ref)}"
        if ref.index is not None:
            return (f"{pad}{name}[(int)({self.expr(ref.index)})] = "
                    f"(int64_t)({value_c});")
        return f"{pad}{name} = (int64_t)({value_c});"

    # -- statements --------------------------------------------------------------------

    def stmt(self, node, indent=2):
        pad = " " * indent
        if isinstance(node, AssignSig):
            return self.sig_write(node.ref, self.expr(node.expr),
                                  node.is_next, indent)
        if isinstance(node, AssignState):
            return self.state_write(node.ref, self.expr(node.expr), indent)
        if isinstance(node, AssignLocal):
            name = _lname(node.name)
            if node.index is not None:
                return (f"{pad}{name}[(int)({self.expr(node.index)})] = "
                        f"(int64_t)({self.expr(node.expr)});")
            return f"{pad}{name} = (int64_t)({self.expr(node.expr)});"
        if isinstance(node, DeclLocalArray):
            name = _lname(node.name)
            fill = self.expr(node.init)
            return (f"{pad}for (int _i = 0; _i < {node.size}; _i++) "
                    f"{name}[_i] = {fill};")
        if isinstance(node, If):
            lines = [f"{pad}if (({self.expr(node.cond)}) != 0) {{"]
            lines.extend(self.stmt(s, indent + 2) for s in node.body)
            if node.orelse:
                lines.append(f"{pad}}} else {{")
                lines.extend(self.stmt(s, indent + 2) for s in node.orelse)
            lines.append(f"{pad}}}")
            return "\n".join(lines)
        if isinstance(node, For):
            var = _lname(node.var)
            lines = [
                f"{pad}for ({var} = {node.start}; {var} < {node.stop}; "
                f"{var} += {node.step}) {{"
            ]
            lines.extend(self.stmt(s, indent + 2) for s in node.body)
            lines.append(f"{pad}}}")
            return "\n".join(lines)
        if isinstance(node, Break):
            return f"{pad}break;"
        if isinstance(node, Continue):
            return f"{pad}continue;"
        raise TranslationError(f"cgen: unknown stmt {type(node).__name__}")

    def block_function(self, ir, func_name):
        """Emit the full C function for a lowered block."""
        lines = [f"static void {func_name}(inst_t *I) {{"]
        lines.append("  (void)I;")
        for name, ltype in ir.locals.items():
            if ltype == "int":
                lines.append(f"  int64_t {_lname(name)} = 0;")
            else:
                lines.append(f"  int64_t {_lname(name)}[{ltype[1]}];")
        for stmt in ir.body:
            lines.append(self.stmt(stmt, 2))
        lines.append("}")
        return "\n".join(lines)


def _lname(name):
    return f"l_{name}"


def _sname(name):
    return f"st_{name}"
