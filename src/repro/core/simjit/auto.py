"""Automatic hierarchy specialization.

The paper notes (Section IV-A): *"Currently, the designer must manually
invoke these specializers on their models, although future work could
consider adding support to automatically traverse the model hierarchy
to find and specialize appropriate CL and RTL models."*

This module implements that extension: :func:`auto_specialize` walks an
un-elaborated design, finds the maximal subtrees whose behavioral
blocks are fully inside the SimJIT subset, compiles each, and splices
the drop-in :class:`JITModel` wrappers back into the hierarchy.  FL
models (and anything outside the subset) stay interpreted.
"""

from __future__ import annotations

from ..ast_ir import TranslationError, translate_block
from ..model import Model
from .specializer import SimJITCL, SimJITRTL, SpecializationError

_LEVEL_SPECIALIZERS = {
    "rtl": SimJITRTL,
    "cl": SimJITCL,
}


def _blocks_translatable(model, allowed_levels):
    """Can this model's own blocks be lowered by a specializer?"""
    for blk in model.get_tick_blocks():
        if blk.level not in allowed_levels:
            return False
        kind = "tick_cl" if blk.level == "cl" else "tick_rtl"
        try:
            translate_block(model, blk, kind)
        except TranslationError:
            return False
    for blk in model.get_comb_blocks():
        try:
            translate_block(model, blk, "comb")
        except TranslationError:
            return False
    return True


def _submodel_attrs(model):
    """Yield (container, key, child) for every Model-valued attribute,
    descending into lists."""
    for name, attr in list(model.__dict__.items()):
        if name.startswith("_"):
            continue
        if isinstance(attr, Model):
            yield model.__dict__, name, attr
        elif isinstance(attr, list):
            for i, item in enumerate(attr):
                if isinstance(item, Model):
                    yield attr, i, item


def _subtree_specializable(model, allowed_levels):
    if not _blocks_translatable(model, allowed_levels):
        return False
    return all(
        _subtree_specializable(child, allowed_levels)
        for _, _, child in _submodel_attrs(model)
    )


def auto_specialize(model, allowed_levels=("rtl", "cl"), _top=True,
                    stats=None):
    """Specialize every maximal SimJIT-compatible subtree of ``model``.

    ``model`` must not be elaborated yet.  Returns ``model`` (children
    replaced in place by JIT wrappers).  ``stats`` (optional dict)
    collects the names of specialized and skipped submodels.
    """
    if model.is_elaborated():
        raise SpecializationError(
            "auto_specialize must run before top-level elaboration")
    if stats is None:
        stats = {"specialized": [], "interpreted": []}
    model._auto_specialize_stats = stats

    for container, key, child in _submodel_attrs(model):
        if _subtree_specializable(child, allowed_levels):
            container[key] = _specialize_one(child, allowed_levels)
            stats["specialized"].append(type(child).__name__)
        else:
            # Descend: maybe grandchildren are specializable.
            auto_specialize(child, allowed_levels, _top=False,
                            stats=stats)
            stats["interpreted"].append(type(child).__name__)
    return model


def _specialize_one(child, allowed_levels):
    has_cl = any(
        blk.level == "cl"
        for sub in _all_models(child) for blk in sub.get_tick_blocks()
    )
    specializer_cls = SimJITCL if has_cl else SimJITRTL
    return specializer_cls(child.elaborate()).specialize()


def _all_models(model):
    yield model
    for _, _, child in _submodel_attrs(model):
        yield from _all_models(child)
