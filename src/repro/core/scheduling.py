"""Static scheduling for the pure-Python simulator.

The event-driven simulator pays per-event dispatch on every
combinational settle: each changing net walks its sensitivity list,
re-enqueues blocks through a queue, and re-runs them until fixpoint.
For the (common) acyclic part of a design the evaluation order can be
computed once, at simulator construction:

1. build the block-level dataflow graph — block ``u`` precedes block
   ``v`` when ``u`` writes a net ``v`` reads (write sets come from the
   elaborator's AST analysis, see :mod:`.elaboration`);
2. find strongly connected components; blocks in cyclic SCCs, and
   blocks whose write set is not statically bounded, fall back to the
   event-driven fixpoint;
3. topologically levelize the rest into a *static schedule*: one
   in-order sweep settles them, each block executing at most once per
   settle phase.

At runtime, changed nets mark their static readers in a dense
``bytearray`` (C-speed, no queue churn), and the sweep runs exactly
the marked blocks in dependency order.  When the whole design is
static, :func:`generate_kernel` additionally ``exec``-compiles one
flat "mega-cycle" function that inlines the sweep, the tick-block
calls, and the flop loop into a single closure with every lookup bound
to locals.
"""

from __future__ import annotations


class StaticSchedule:
    """Partition of a design's combinational blocks into a levelized
    static order plus an event-driven remainder."""

    __slots__ = ("order", "levels", "event_funcs", "demoted",
                 "reader_slots")

    def __init__(self, order, levels, event_funcs, demoted, reader_slots):
        self.order = order              # funcs, topological order
        self.levels = levels            # level of each func in `order`
        self.event_funcs = event_funcs  # funcs needing the event fixpoint
        self.demoted = demoted          # subset of event_funcs demoted
                                        # from the graph (cyclic SCCs)
        self.reader_slots = reader_slots  # net -> tuple of order slots

    @property
    def nlevels(self):
        return (self.levels[-1] + 1) if self.levels else 0

    def describe(self):
        return {
            "static_blocks": len(self.order),
            "event_blocks": len(self.event_funcs),
            "demoted_cyclic": len(self.demoted),
            "levels": self.nlevels,
        }


def build_schedule(infos):
    """Build a :class:`StaticSchedule` from block descriptions.

    ``infos`` is a list of ``(func, reads, writes, known)`` tuples
    where ``reads``/``writes`` are collections of net objects and
    ``known`` states that ``writes`` bounds every net the block can
    write.  Blocks with ``known=False`` go straight to the event
    partition; cyclic SCCs among the rest are demoted per-SCC.
    """
    n = len(infos)
    known = [i for i in range(n) if infos[i][3]]
    known_set = set(known)

    # net -> known-block readers, for edge construction.
    readers_of = {}
    for i in known:
        for net in infos[i][1]:
            readers_of.setdefault(id(net), []).append(i)

    succ = [()] * n
    for u in known:
        out = set()
        for net in infos[u][2]:
            for v in readers_of.get(id(net), ()):
                if v in known_set:
                    out.add(v)
        succ[u] = tuple(sorted(out))

    static_nodes, demoted_nodes = _partition_cyclic(known, succ)

    # Levelize the static subgraph (longest-path level, Kahn-style).
    static_set = set(static_nodes)
    level = {i: 0 for i in static_nodes}
    indeg = {i: 0 for i in static_nodes}
    for u in static_nodes:
        for v in succ[u]:
            if v in static_set and v != u:
                indeg[v] += 1
    ready = sorted(i for i in static_nodes if indeg[i] == 0)
    order_idx = []
    queue = list(ready)
    qpos = 0
    while qpos < len(queue):
        u = queue[qpos]
        qpos += 1
        order_idx.append(u)
        for v in succ[u]:
            if v in static_set and v != u:
                if level[v] < level[u] + 1:
                    level[v] = level[u] + 1
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
    assert len(order_idx) == len(static_nodes), \
        "levelization failed on an acyclic subgraph"
    # Stable order: by (level, declaration index) so runs are
    # reproducible regardless of set iteration order.
    order_idx.sort(key=lambda i: (level[i], i))

    order = [infos[i][0] for i in order_idx]
    levels = [level[i] for i in order_idx]
    event_funcs = [infos[i][0] for i in range(n)
                   if i not in static_set]
    demoted = [infos[i][0] for i in demoted_nodes]

    # net -> slots in `order` that must re-run when the net changes.
    slot_of = {infos[i][0]: slot for slot, i in
               ((s, order_idx[s]) for s in range(len(order_idx)))}
    reader_slots = {}
    for i in order_idx:
        func = infos[i][0]
        for net in infos[i][1]:
            reader_slots.setdefault(id(net), (net, []))[1].append(
                slot_of[func])
    reader_map = {}
    for net, slots in reader_slots.values():
        reader_map[id(net)] = (net, tuple(sorted(slots)))
    return StaticSchedule(order, levels, event_funcs, demoted, reader_map)


def _partition_cyclic(nodes, succ):
    """Split ``nodes`` into acyclic nodes and nodes inside cyclic SCCs
    (Tarjan, iterative — designs can be deep)."""
    index = {}
    low = {}
    onstack = {}
    stack = []
    sccs = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work.pop()
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                onstack[v] = True
            recurse = False
            children = succ[v]
            for ci in range(pi, len(children)):
                w = children[ci]
                if w not in index:
                    work.append((v, ci + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if onstack.get(w):
                    if index[w] < low[v]:
                        low[v] = index[w]
            if recurse:
                continue
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    onstack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]

    static_nodes = []
    demoted = []
    for comp in sccs:
        if len(comp) > 1 or comp[0] in succ[comp[0]]:
            demoted.extend(comp)
        else:
            static_nodes.extend(comp)
    return static_nodes, demoted


# -- mega-cycle kernel generation ---------------------------------------------


def generate_kernel(sim):
    """``exec``-generate the flat per-cycle kernel for a fully-static
    simulator (no event-driven blocks, no stats collection).

    The generated function inlines, with all lookups bound to local
    variables of the enclosing factory:

    - the pre-tick settle sweep (one ``if flag: clear; call`` pair per
      scheduled block, in topological order);
    - the registered cycle hooks, called at the pre-edge observation
      point (the kernel is regenerated by ``add_cycle_hook`` so a
      hook-free kernel pays nothing);
    - every tick-block call, flag-guarded for gateable ticks;
    - the clock-edge flop loop, marking static and tick readers
      directly;
    - the post-edge settle sweep.

    Cycle counting, VCD sampling, and line tracing stay in
    ``SimulationTool.cycle`` so they keep working unchanged.
    """
    order = sim._static_order
    plan = sim._tick_plan
    all_gated = all(slot >= 0 for slot, _func in plan)
    hooks = tuple(sim._cycle_hooks)

    lines = ["def _make(sim, funcs, ticks, gticks, hooks):"]
    for j in range(len(plan)):
        lines.append(f"    t{j} = ticks[{j}]")
    for h in range(len(hooks)):
        lines.append(f"    h{h} = hooks[{h}]")
    lines += [
        "    sflags = sim._sflags",
        "    tflags = sim._tflags",
        "    pending = sim._pending_flops",
        "    find = sflags.find",
        "    tfind = tflags.find",
        "    def _mega_cycle():",
        "        fired = 0",
    ]

    def sweep(indent):
        # One forward scan over the flag array: ``find`` skips runs of
        # unmarked slots at memchr speed, and a fired block can only
        # mark slots after its own (the order is topological).
        pad = " " * indent
        lines.extend([
            f"{pad}i = find(1)",
            f"{pad}while i >= 0:",
            f"{pad}    sflags[i] = 0",
            f"{pad}    funcs[i]()",
            f"{pad}    fired += 1",
            f"{pad}    i = find(1, i + 1)",
        ])

    # Pre-tick settle: only when the test bench (or a previous cycle's
    # tick) touched an input since the last sweep.
    lines.append("        if sim._sdirty:")
    sweep(12)
    lines.append("            sim._sdirty = False")

    # Cycle hooks observe the settled pre-edge state with the
    # pre-increment cycle stamp — identical to the interpreted path.
    if hooks:
        lines.append("        c = sim.ncycles")
        for h in range(len(hooks)):
            lines.append(f"        h{h}(c)")

    if all_gated and plan:
        # Every tick is activity-gated: scan the tick flags the same
        # way (relative tick order is preserved — slots are assigned
        # in declaration order).
        lines += [
            "        j = tfind(1)",
            "        while j >= 0:",
            "            tflags[j] = 0",
            "            gticks[j]()",
            "            j = tfind(1, j + 1)",
        ]
    else:
        for j, (slot, _func) in enumerate(plan):
            if slot < 0:
                lines.append(f"        t{j}()")
            else:
                lines.append(f"        if tflags[{slot}]:")
                lines.append(f"            tflags[{slot}] = 0; t{j}()")

    # Clock edge: flop every pending .next, marking static and gated-
    # tick readers of each net that actually changed.
    lines += [
        "        if pending:",
        "            for net in pending:",
        "                if net._next != net._value:",
        "                    net._value = net._next",
        "                    for slot in net.sreaders:",
        "                        sflags[slot] = 1",
        "                    for slot in net.treaders:",
        "                        tflags[slot] = 1",
        "                    sim._sdirty = True",
        "            pending.clear()",
    ]

    # Post-edge settle.
    lines.append("        if sim._sdirty:")
    sweep(12)
    lines.append("            sim._sdirty = False")

    lines += [
        "        sim.num_events += fired",
        "    return _mega_cycle",
    ]

    source = "\n".join(lines)
    namespace = {}
    exec(compile(source, "<mega-cycle>", "exec"), namespace)
    nslots = sum(1 for slot, _func in plan if slot >= 0)
    gticks = [None] * nslots
    for slot, func in plan:
        if slot >= 0:
            gticks[slot] = func
    kernel = namespace["_make"](
        sim, tuple(order), [func for _slot, func in plan], tuple(gticks),
        hooks)
    kernel._source = source
    return kernel
