"""Port bundles: named groups of signals forming an interface.

Latency-insensitive val/rdy interfaces (paper Section II, "Latency-
Insensitive Interfaces") appear at nearly every module boundary in the
case studies.  Bundles group the ``msg``/``val``/``rdy`` signals so a
whole interface connects with one ``s.connect`` call, and so FL/CL/RTL
implementations of a component expose byte-identical interfaces.

- ``InValRdyBundle`` / ``OutValRdyBundle``: one val/rdy channel.
- ``ChildReqRespBundle`` / ``ParentReqRespBundle``: a request channel
  plus a response channel, as seen from the child device (accelerator)
  or the parent requester (paper Figures 7-9).

``ReqRespMsgTypes`` carries the request/response message types that
parameterize the req/resp bundles.
"""

from __future__ import annotations

from .signals import InPort, OutPort, Signal


class _BundleMeta(type):
    """Enables the ``InValRdyBundle[n](msg)`` list shorthand (paper
    Figure 10)."""

    def __getitem__(cls, count):
        def make(*args, **kwargs):
            return [cls(*args, **kwargs) for _ in range(count)]
        return make


class PortBundle(metaclass=_BundleMeta):
    """Base class for interface bundles."""

    def __new__(cls, *args, **kwargs):
        self = super().__new__(cls)
        self.name = None
        self.parent = None
        return self

    def get_named_signals(self):
        """Yield (local_name, signal) pairs, recursing into sub-bundles."""
        pairs = []
        for name, attr in self.__dict__.items():
            if isinstance(attr, Signal):
                pairs.append((name, attr))
            elif isinstance(attr, PortBundle):
                for sub_name, sig in attr.get_named_signals():
                    pairs.append((f"{name}.{sub_name}", sig))
        return pairs

    def get_signals(self):
        return [sig for _, sig in self.get_named_signals()]

    def connectable(self, other):
        """Signal pairs to tie when this bundle connects to ``other``.

        Bundles pair by local signal name; widths are validated during
        elaboration.
        """
        mine = dict(self.get_named_signals())
        theirs = dict(other.get_named_signals())
        if set(mine) != set(theirs):
            raise TypeError(
                f"bundle mismatch: {sorted(mine)} vs {sorted(theirs)}"
            )
        return [(mine[name], theirs[name]) for name in mine]


class InValRdyBundle(PortBundle):
    """Input side of a val/rdy channel: msg/val in, rdy out."""

    def __init__(self, msg_type):
        self.msg_type = msg_type
        self.msg = InPort(msg_type)
        self.val = InPort(1)
        self.rdy = OutPort(1)

    def to_str(self):
        """Standard val/rdy trace: value, ' ' idle, '#' stalled."""
        return _valrdy_str(self.msg, self.val, self.rdy)


class OutValRdyBundle(PortBundle):
    """Output side of a val/rdy channel: msg/val out, rdy in."""

    def __init__(self, msg_type):
        self.msg_type = msg_type
        self.msg = OutPort(msg_type)
        self.val = OutPort(1)
        self.rdy = InPort(1)

    def to_str(self):
        return _valrdy_str(self.msg, self.val, self.rdy)


def _valrdy_str(msg, val, rdy):
    if int(val) and int(rdy):
        return str(msg.value)
    if int(val):
        return "#".ljust(len(str(msg.value)))
    return " ".ljust(len(str(msg.value)))


class ReqRespMsgTypes:
    """Request/response message types for a ReqResp interface."""

    def __init__(self, req_type, resp_type):
        self.req = req_type
        self.resp = resp_type


class ChildReqRespBundle(PortBundle):
    """Interface of a child device (e.g. a coprocessor): requests come
    in, responses go out."""

    def __init__(self, ifc_types):
        self.ifc_types = ifc_types
        self.req = InValRdyBundle(ifc_types.req)
        self.resp = OutValRdyBundle(ifc_types.resp)
        # Flat aliases used throughout the paper's examples
        # (s.cpu_ifc.req_msg.ctrl_msg, ...).
        self.req_msg = self.req.msg
        self.req_val = self.req.val
        self.req_rdy = self.req.rdy
        self.resp_msg = self.resp.msg
        self.resp_val = self.resp.val
        self.resp_rdy = self.resp.rdy

    def get_named_signals(self):
        # Aliases share signals with .req/.resp; enumerate each once.
        pairs = []
        for name, attr in (("req", self.req), ("resp", self.resp)):
            for sub_name, sig in attr.get_named_signals():
                pairs.append((f"{name}.{sub_name}", sig))
        return pairs


class ParentReqRespBundle(PortBundle):
    """Interface of a parent requester: requests go out, responses come
    back (e.g. the memory port of an accelerator)."""

    def __init__(self, ifc_types):
        self.ifc_types = ifc_types
        self.req = OutValRdyBundle(ifc_types.req)
        self.resp = InValRdyBundle(ifc_types.resp)
        self.req_msg = self.req.msg
        self.req_val = self.req.val
        self.req_rdy = self.req.rdy
        self.resp_msg = self.resp.msg
        self.resp_val = self.resp.val
        self.resp_rdy = self.resp.rdy

    def get_named_signals(self):
        pairs = []
        for name, attr in (("req", self.req), ("resp", self.resp)):
            for sub_name, sig in attr.get_named_signals():
                pairs.append((f"{name}.{sub_name}", sig))
        return pairs
