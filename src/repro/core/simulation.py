"""SimulationTool: simulator for elaborated models.

The simulator (paper Section III-B) inspects an elaborated model
instance, registers its concurrent logic blocks, wires sensitivity
lists to nets, and exposes a cycle-based API:

    model = MuxReg(8, 4).elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_[0].value = 42
    sim.cycle()
    assert model.out == expected

Cycle semantics:

1. combinational logic settles so tick blocks see inputs the test
   bench just drove;
2. all ``@s.tick_*`` blocks execute once, reading ``.value`` (pre-edge
   state) and writing ``.next``;
3. the clock edge flops every pending ``.next`` into ``.value``;
4. combinational logic settles again so the test bench reads
   post-edge outputs.

Scheduling modes (``sched=`` constructor argument):

- ``"event"`` — the classic event-driven fixpoint: a net write that
  changes the stored value enqueues every block in its sensitivity
  list, and the queue drains until no block fires.
- ``"static"`` — blocks whose read/write sets are statically known and
  whose dataflow graph is acyclic run in a fixed topological order,
  one pass per settle (see :mod:`.scheduling`).  Blocks in true
  combinational cycles, or with unbounded write sets (FL adapters,
  dynamic attribute writes), fall back per-SCC to the event fixpoint,
  so the settle loop is a hybrid.  When *every* block is static (and
  stats collection is off) the whole cycle — settle, ticks, clock
  edge, settle — is ``exec``-compiled into one flat mega-cycle kernel.
- ``"auto"`` (default) — ``"static"`` when the scheduling pass finds
  at least one statically-schedulable block or one gateable tick
  block, else ``"event"``.

Both modes see identical values: the static order is a valid
evaluation order of the same dataflow the event queue chases, and
demoted blocks keep their event semantics.  A bounded event budget per
settle phase detects true combinational loops instead of hanging.
"""

from __future__ import annotations

import warnings
from collections import deque
from time import perf_counter

from .scheduling import build_schedule, generate_kernel
from ..resilience.warnings import ResilienceWarning
from ..telemetry import tracing


class SimulationError(Exception):
    """Raised for runtime simulation problems (e.g. comb loops)."""


# Event budget per combinational settle phase, scaled by design size.
_EVENT_BUDGET_PER_BLOCK = 1000


class SimulationTool:
    """Generates and drives a simulator for an elaborated model."""

    def __init__(self, model, line_trace=False, vcd=None,
                 collect_stats=False, sched="auto", trace_depth=0,
                 profile=False, line_trace_sink=None):
        if sched not in ("auto", "static", "event"):
            raise ValueError(
                f"sched must be 'auto', 'static', or 'event'; got {sched!r}"
            )
        if not model.is_elaborated():
            model.elaborate()
        self.model = model
        self._design_name = type(model).__name__
        self.ncycles = 0
        self._line_trace_on = line_trace
        self._sched_requested = sched
        self._closed = False
        # Per-cycle observer hooks (transaction taps): called with the
        # current cycle number after the pre-edge settle, i.e. seeing
        # exactly the values the coming clock edge will latch.
        self._cycle_hooks = []
        # Waveform-observatory attachments (repro.observe): flight
        # recorders and watchpoints sample *after* the post-edge
        # settle, like the VCD writer, so — unlike cycle hooks — they
        # keep the compiled mega-cycle kernel running.
        self._recorders = []
        self._watchpoints = []
        self._observers = ()
        # Signal-backed histogram samplers (post-edge observers) and
        # the compiled-instrumentation manager for single-engine SimJIT
        # tops (created lazily; see _jit_instrumentation).
        self._hist_observers = []
        self._jit_instr = None
        self._jit_checked = False
        self._jit_ok = False
        # Optional line-trace sink: a callable taking the formatted
        # trace line, or a file path.  Setting a sink turns tracing on.
        self._trace_sink_file = None
        self._trace_sink = None
        if line_trace_sink is not None:
            self._line_trace_on = True
            if callable(line_trace_sink):
                self._trace_sink = line_trace_sink
            else:
                self._trace_sink_file = open(line_trace_sink, "w")
                self._trace_sink = self._write_trace_line
        if profile:
            from ..telemetry.profile import SimProfiler
            self.profiler = SimProfiler()
        else:
            self.profiler = None
        from ..telemetry.export import Telemetry
        self.telemetry = Telemetry(self)
        # Ring buffer of the last ``trace_depth`` line traces, used by
        # the differential-verification subsystem to report the cycles
        # leading up to a divergence without paying for full tracing.
        self.trace_log = deque(maxlen=trace_depth) if trace_depth else None
        self._vcd = vcd
        if vcd is not None:
            vcd.attach(model)
        self.collect_stats = collect_stats
        self.num_events = 0
        self.block_calls = {}       # func -> execution count

        # Attach nets to this simulator and assign dense ids.
        for i, net in enumerate(model._all_nets):
            net.sim = self
            net.blocks = ()
            net.sreaders = ()
            net.treaders = ()
            net.id = i

        # Tick blocks in hierarchical declaration order.  FL blocks
        # that use blocking adapters get wrapped in coroutine runners.
        from .adapters import wrap_fl_ticks
        wrappers = wrap_fl_ticks(model)
        self._tick_blocks = [
            blk for m in model._all_models for blk in m.get_tick_blocks()
        ]
        self._ticks = [
            wrappers.get(blk.func, blk.func) for blk in self._tick_blocks
        ]

        # Combinational work: user blocks plus slice/constant connector
        # copies.  Each entry also carries the net-level read/write sets
        # the static scheduler consumes.
        self._comb_blocks = [
            blk for m in model._all_models for blk in m.get_comb_blocks()
        ]
        comb_funcs = []
        infos = []                  # (func, read_nets, write_nets, known)
        for blk in self._comb_blocks:
            comb_funcs.append(blk.func)
            infos.append((
                blk.func,
                _nets_of(blk.reads),
                _nets_of(blk.writes),
                blk.writes_known,
            ))
        for src, dst in model._connectors:
            func = _make_connector(src, dst)
            comb_funcs.append(func)
            infos.append((
                func,
                _nets_of([src]),
                _nets_of([dst]),
                True,
            ))

        self._all_comb_funcs = comb_funcs
        for func in comb_funcs:
            func._in_queue = False
        self._event_budget = max(
            10000, _EVENT_BUDGET_PER_BLOCK * max(1, len(comb_funcs))
        )
        if collect_stats:
            # Preseed zero entries so never-fired blocks still show up
            # in activity reports.
            self.block_calls = {func: 0 for func in comb_funcs}

        self._queue = deque()
        self._pending_flops = {}
        # RNG streams registered via track_rng(); their state rides
        # along in checkpoints so replay after restore is deterministic.
        self._checkpoint_rngs = []

        # -- scheduling-mode selection ---------------------------------
        self.schedule = None
        self._static_order = []
        self._sflags = bytearray()
        self._sdirty = False
        self._kernel = None
        self._tick_plan = [(-1, func) for func in self._ticks]
        self._tflags = bytearray()
        self._gated_ticks = ()
        self._all_ticks_gated = False

        sched_fault = None
        if sched != "event":
            try:
                with tracing.span("sim.schedule",
                                  design=self._design_name):
                    schedule = build_schedule(infos)
            except Exception as exc:      # degrade, don't abort the run
                sched_fault = f"{type(exc).__name__}: {exc}"
                schedule = None
            if schedule is not None:
                gateable = any(
                    blk.gateable and func is blk.func
                    for blk, func in zip(self._tick_blocks, self._ticks))
                if sched == "static" or schedule.order or gateable:
                    self.schedule = schedule
        self.sched_mode = "static" if self.schedule is not None else "event"

        if self.schedule is not None:
            self._build_tick_plan()
            sch = self.schedule
            self._static_order = list(sch.order)
            self._sflags = bytearray(len(sch.order))
            event_funcs = set(sch.event_funcs)
            # Event partition keeps the legacy sensitivity wiring.
            self._wire_sensitivity(
                lambda func: func in event_funcs)
            # Static partition: nets mark reader slots in the flag array.
            for net, slots in sch.reader_slots.values():
                net.sreaders = slots
        else:
            self._wire_sensitivity(lambda func: True)

        # Constant ties: drive once; nothing else may write these nets.
        for end, const in model._const_ties:
            end.value = const

        # Initial settle: evaluate every combinational block once.
        for i in range(len(self._static_order)):
            self._sflags[i] = 1
        self._sdirty = bool(self._static_order)
        if self.schedule is not None:
            for func in self.schedule.event_funcs:
                self._enqueue(func)
        else:
            for func in comb_funcs:
                self._enqueue(func)
        self.eval_combinational()

        # Fully static design + no instrumentation hooks: compile the
        # flat mega-cycle kernel (VCD/line-trace stay in cycle()).
        # Declared counters do NOT refuse the kernel: python-kind
        # increments keep their tick un-gated and signal-backed
        # increments are ordinary register updates, so counter state
        # advances identically inside the compiled kernel.
        refused = []
        if sched == "event":
            refused.append("event mode requested (sched='event')")
        elif sched_fault is not None:
            refused.append(
                f"static schedule construction failed ({sched_fault})")
        elif self.schedule is None:
            refused.append(
                "auto selected event mode (no statically schedulable "
                "blocks or gateable ticks)")
        elif self.schedule.event_funcs:
            refused.append(
                f"event partition: {len(self.schedule.event_funcs)} "
                f"block(s) kept event-driven "
                f"({len(self.schedule.demoted)} in combinational cycles)")
        if collect_stats:
            refused.append(
                "stats hooks: collect_stats=True counts every block call")
        if profile:
            refused.append(
                "profiler hooks: profile=True times every block call")
        self._kernel_refused = tuple(refused)
        if not refused:
            try:
                with tracing.span("sim.compile",
                                  design=self._design_name):
                    self._kernel = generate_kernel(self)
            except Exception as exc:  # degrade, don't abort the run
                self._kernel = None
                self._kernel_refused = (
                    f"mega-cycle kernel generation failed "
                    f"({type(exc).__name__}: {exc})",)
                warnings.warn(
                    ResilienceWarning(
                        "mega-cycle kernel generation failed; cycles run "
                        "on the interpreted static schedule instead "
                        f"({type(exc).__name__}: {exc})",
                        kind="kernel-fallback",
                        component=type(self.model).__name__,
                        fallback="interpreted",
                        detail=str(exc)),
                    stacklevel=2)

        # Static schedule construction blew up: the run continues on
        # the event-driven fixpoint, which computes identical values.
        if sched_fault is not None:
            warnings.warn(
                ResilienceWarning(
                    "static schedule construction failed; falling back "
                    "to the event-driven fixpoint, which computes the "
                    f"same values ({sched_fault})",
                    kind="sched-fallback",
                    component=type(self.model).__name__,
                    fallback="event",
                    detail=sched_fault),
                stacklevel=2)
        # A user who explicitly asked for static scheduling but got a
        # design with nothing to schedule is silently running the event
        # fixpoint; say so once.
        elif (sched == "static" and self.schedule is not None
                and not self.schedule.order and not self._gated_ticks):
            warnings.warn(
                ResilienceWarning(
                    "sched='static' had no effect: no combinational block "
                    "could be statically scheduled and no tick block is "
                    "gateable, so the design runs on the event-driven "
                    "fixpoint (see sim.sched_info() for the partition)",
                    kind="static-noop",
                    component=type(self.model).__name__,
                    fallback="event"),
                stacklevel=2)

        # Signal-backed histograms sample themselves (compiled into
        # the SimJIT kernel where possible, post-edge observers
        # elsewhere); arm them now that the simulator is fully built.
        self._init_signal_histograms()

    def _build_tick_plan(self):
        """Partition tick blocks into gated and always-run entries.

        A tick the elaborator proved to be a pure function of a known
        signal read set (``blk.gateable``) is skipped while none of its
        read nets changed since its last execution: with identical
        reads it would recompute identical writes.  FL/CL blocks with
        Python-side state, wrapped coroutine runners, and ticks whose
        written nets have multiple known writers (skip order would
        change last-writer-wins results) always run.
        """
        writer_counts = {}
        cand = []
        for blk, func in zip(self._tick_blocks, self._ticks):
            gate = blk.gateable and func is blk.func
            cand.append(gate)
            if gate:
                for net in _nets_of(blk.writes):
                    writer_counts[id(net)] = writer_counts.get(
                        id(net), 0) + 1
        plan = []
        nslots = 0
        for (blk, func), gate in zip(
                zip(self._tick_blocks, self._ticks), cand):
            if gate and any(writer_counts[id(net)] > 1
                            for net in _nets_of(blk.writes)):
                gate = False
            if not gate:
                plan.append((-1, func))
                continue
            slot = nslots
            nslots += 1
            plan.append((slot, func))
            for net in _nets_of(blk.reads):
                net.treaders = net.treaders + (slot,)
        self._tick_plan = plan
        self._tflags = bytearray(b"\x01" * nslots)
        gticks = [None] * nslots
        for slot, func in plan:
            if slot >= 0:
                gticks[slot] = func
        self._gated_ticks = tuple(gticks)
        self._all_ticks_gated = bool(plan) and nslots == len(plan)

    def _wire_sensitivity(self, want):
        """Wire the legacy sensitivity lists of selected blocks (and
        the source nets of connectors) into ``net.blocks``."""
        for blk in self._comb_blocks:
            if not want(blk.func):
                continue
            for sig in blk.signals:
                net = sig._net.find()
                if blk.func not in net.blocks:
                    net.blocks = net.blocks + (blk.func,)
        nblocks = len(self._comb_blocks)
        for (src, dst), func in zip(
                self.model._connectors, self._all_comb_funcs[nblocks:]):
            if not want(func):
                continue
            sig = src.signal if hasattr(src, "signal") else src
            net = sig._net.find()
            net.blocks = net.blocks + (func,)

    # -- net callbacks (called by _Net) ------------------------------------

    def _notify(self, net):
        for func in net.blocks:
            if not func._in_queue:
                func._in_queue = True
                self._queue.append(func)
        sreaders = net.sreaders
        if sreaders:
            sflags = self._sflags
            for slot in sreaders:
                sflags[slot] = 1
            self._sdirty = True
        treaders = net.treaders
        if treaders:
            tflags = self._tflags
            for slot in treaders:
                tflags[slot] = 1

    def _register_flop(self, net):
        self._pending_flops[net] = True

    def _enqueue(self, func):
        if not func._in_queue:
            func._in_queue = True
            self._queue.append(func)

    # -- simulation control ---------------------------------------------------

    def eval_combinational(self):
        """Run combinational logic to fixpoint.

        Hybrid settle: alternate static in-order passes (when any
        static reader is flagged) with event-queue drains, until both
        are quiescent.  The shared event budget bounds cross-partition
        ping-pong as well as pure event loops."""
        queue = self._queue
        budget = self._event_budget
        stats = self.block_calls if self.collect_stats else None
        prof = self.profiler
        events = 0
        while True:
            if self._sdirty:
                events += self._run_static_pass(stats, prof)
            if not queue:
                if self._sdirty:
                    continue
                break
            func = queue.popleft()
            func._in_queue = False
            if prof is None:
                func()
            else:
                t0 = perf_counter()
                func()
                prof.add_block(func, perf_counter() - t0)
            events += 1
            if stats is not None:
                stats[func] = stats.get(func, 0) + 1
            if events > budget:
                raise SimulationError(
                    "combinational logic failed to settle "
                    f"after {events} events: likely a combinational loop"
                    + self._oscillation_diagnostic()
                )
        self.num_events += events

    def _oscillation_diagnostic(self):
        """Name the oscillating signals when the settle budget blows.

        Delegates to :func:`repro.resilience.guard.diagnose_oscillation`
        (lazy import — the core must not depend on the resilience
        package at load time).  Diagnostics never mask the original
        error: any failure here degrades to an empty string."""
        try:
            from ..resilience.guard import diagnose_oscillation
            extra = diagnose_oscillation(self)
        except Exception:
            return ""
        return f"; {extra}" if extra else ""

    def _run_static_pass(self, stats=None, prof=None):
        """One in-order sweep over the static schedule, running exactly
        the flagged blocks.  A block can flag only later slots (the
        order is topological), so one forward ``find`` scan — which
        skips unmarked runs at memchr speed — clears every flag."""
        order = self._static_order
        sflags = self._sflags
        find = sflags.find
        fired = 0
        i = find(1)
        while i >= 0:
            sflags[i] = 0
            func = order[i]
            if prof is None:
                func()
            else:
                t0 = perf_counter()
                func()
                prof.add_block(func, perf_counter() - t0)
            fired += 1
            if stats is not None:
                stats[func] = stats.get(func, 0) + 1
            i = find(1, i + 1)
        self._sdirty = False
        return fired

    def cycle(self):
        """Advance simulated time by one clock cycle."""
        try:
            self._cycle_body()
        except Exception as exc:
            # Post-mortem forensics: export the armed flight-recorder
            # windows (if any opted into autodump) before the error
            # propagates.  crash_bundle never raises and marks the
            # exception so nested run() frames don't dump twice.
            from ..observe.forensics import crash_bundle
            crash_bundle(self, exc, context="cycle")
            raise

    def _cycle_body(self):
        instr = self._jit_instr
        hit = False
        kernel = self._kernel
        hooks = self._cycle_hooks
        if instr is not None and instr.active:
            # Compiled instrumentation armed: the whole cycle —
            # including recorder/tx/watchpoint sampling — runs inside
            # the C obs_run loop.  Watchpoint actions fire below, after
            # VCD/tracing, at the hook path's observer point.
            hit = instr.step()
        elif kernel is not None:
            # Cycle hooks are compiled into the kernel (add_cycle_hook
            # regenerates it), so the kernel path stays valid with
            # hooks registered.
            kernel()
        elif self.profiler is not None:
            self._cycle_profiled(hooks)
        else:
            self.eval_combinational()
            if hooks:
                ncycles = self.ncycles
                for hook in hooks:
                    hook(ncycles)
            if self._all_ticks_gated:
                # Declaration order is preserved: slots are assigned in
                # plan order, so a forward flag scan runs the marked
                # ticks in the same order the plan loop would.
                tflags = self._tflags
                gticks = self._gated_ticks
                j = tflags.find(1)
                while j >= 0:
                    tflags[j] = 0
                    gticks[j]()
                    j = tflags.find(1, j + 1)
            elif self._tflags:
                tflags = self._tflags
                for slot, tick in self._tick_plan:
                    if slot < 0:
                        tick()
                    elif tflags[slot]:
                        tflags[slot] = 0
                        tick()
            else:
                for tick in self._ticks:
                    tick()
            self._flop()
            self.eval_combinational()
        self.ncycles += 1
        if self._vcd is not None:
            self._vcd.sample(self.ncycles)
        if self.trace_log is not None:
            # Specialized (JIT) submodels may not support line_trace;
            # diagnostics must never kill the run being diagnosed.
            try:
                trace = self.model.line_trace()
            except Exception as exc:
                trace = f"<line_trace unavailable: {exc}>"
            self.trace_log.append((self.ncycles, trace))
        if self._line_trace_on:
            self.print_line_trace()
        if hit:
            # A compiled watchpoint hit this cycle: drain so recorder
            # windows include it, then fire actions (halt raises from
            # here, after the cycle fully completed — hook semantics).
            instr.drain()
            instr.fire_hits()
        observers = self._observers
        if observers:
            # Post-edge sampling point shared by recorders and
            # watchpoints on every substrate; a halting watchpoint
            # raises from here, after this cycle fully completed.
            ncycles = self.ncycles
            for observer in observers:
                observer(ncycles)

    def _cycle_profiled(self, hooks):
        """Interpreted cycle with per-phase host-time attribution.

        Same semantics as the plain path (the tick plan loop handles
        gated and always-run ticks alike); only timer calls are added,
        so the profiled run remains representative.
        """
        prof = self.profiler
        t0 = perf_counter()
        self.eval_combinational()
        t1 = perf_counter()
        ncycles = self.ncycles
        for hook in hooks:
            hook(ncycles)
        t2 = perf_counter()
        tflags = self._tflags
        for slot, tick in self._tick_plan:
            if slot >= 0:
                if not tflags[slot]:
                    continue
                tflags[slot] = 0
            tb = perf_counter()
            tick()
            prof.add_block(tick, perf_counter() - tb)
        t3 = perf_counter()
        self._flop()
        t4 = perf_counter()
        self.eval_combinational()
        t5 = perf_counter()
        prof.add_span("settle_pre", t1 - t0, cycles=1)
        prof.add_span("hooks", t2 - t1)
        prof.add_span("tick", t3 - t2)
        prof.add_span("flop", t4 - t3)
        prof.add_span("settle_post", t5 - t4)

    def run(self, ncycles):
        """Run ``ncycles`` cycles.

        With host-span tracing armed (:mod:`repro.telemetry.tracing`),
        each ``run`` call becomes one ``sim.run`` span — batch
        granularity, so the per-cycle hot loops stay untouched and the
        disarmed cost is a single global check.
        """
        tracer = tracing.active()
        if tracer is None:
            return self._run_impl(ncycles)
        with tracer.span("sim.run", design=self._design_name,
                         ncycles=ncycles, start_cycle=self.ncycles):
            return self._run_impl(ncycles)

    def _run_impl(self, ncycles):
        if (self._jit_eligible() and self._vcd is None
                and not self._line_trace_on and self.trace_log is None
                and not self._observers):
            # Single-engine SimJIT top with no per-cycle Python work:
            # run the whole batch inside C.  With compiled
            # instrumentation armed the obs_run loop samples in-kernel
            # and stops exactly on watchpoint hits; without it, one
            # raw_cycle(n) call is the honest uninstrumented rate.
            instr = self._jit_instr
            if instr is not None and instr.active:
                self._run_batched(instr, ncycles)
            else:
                self._run_raw(ncycles)
            return
        kernel = self._kernel
        if (kernel is not None and self._vcd is None
                and not self._line_trace_on and self.trace_log is None):
            observers = self._observers
            if not observers:
                for _ in range(ncycles):
                    kernel()
                self.ncycles += ncycles
                return
            # Armed-observer kernel loop: same per-cycle semantics as
            # cycle() (kernel, then post-edge sampling), minus its
            # dispatch overhead — recorders are meant to stay armed on
            # long runs, so the sampling loop is a hot path.
            cycle = self.ncycles
            try:
                for _ in range(ncycles):
                    kernel()
                    cycle += 1
                    self.ncycles = cycle
                    for observer in observers:
                        observer(cycle)
                    observers = self._observers
            except Exception as exc:
                from ..observe.forensics import crash_bundle
                crash_bundle(self, exc, context="cycle")
                raise
            return
        for _ in range(ncycles):
            self.cycle()

    # -- SimJIT batch execution -------------------------------------------

    def _jit_eligible(self):
        """True when this sim's top is a single-engine SimJIT model
        whose whole cycle (and compiled instrumentation) can run in C:
        no profiler, no stats, no Python cycle hooks, and an engine
        built with the obs runtime."""
        if self._jit_checked:
            return self._jit_ok
        self._jit_checked = True
        model = self.model
        eng = getattr(model, "jit_engine", None)
        self._jit_ok = (
            eng is not None and len(model._all_models) == 1
            and self.profiler is None and not self.collect_stats
            and not self._cycle_hooks
            and hasattr(eng.lib, "obs_new"))
        return self._jit_ok

    def _jit_instrumentation(self):
        """The compiled-instrumentation manager, created on first use
        (None when this sim cannot host one)."""
        if not self._jit_eligible():
            return None
        if self._jit_instr is None:
            from .simjit.instrument import KernelInstrumentation
            self._jit_instr = KernelInstrumentation(
                self, self.model.jit_engine)
        return self._jit_instr

    def _run_raw(self, ncycles):
        """Uninstrumented SimJIT batch: one C call for the whole run."""
        eng = self.model.jit_engine
        eng._push_inputs()
        eng.raw_cycle(ncycles)
        self.ncycles += ncycles
        eng._pull_outputs(as_next=False)

    def _run_batched(self, instr, ncycles):
        """Instrumented SimJIT batch: obs_run chunks with lazy drains.

        The C loop returns early to let Python drain a near-full event
        buffer, and on watchpoint hits so actions fire at the exact
        cycle; either way the batch resumes losslessly."""
        left = ncycles
        stalls = 0
        try:
            while left > 0:
                ran = instr.run_batch(left)
                self.ncycles += ran
                left -= ran
                instr.drain()
                if instr.has_hit:
                    self.model.jit_engine._pull_outputs(as_next=False)
                    instr.fire_hits()
                if ran == 0:
                    stalls += 1
                    if stalls > 1:
                        raise SimulationError(
                            "compiled instrumentation made no progress "
                            "after a drain (buffer accounting bug)")
                else:
                    stalls = 0
        except Exception as exc:
            from ..observe.forensics import crash_bundle
            crash_bundle(self, exc, context="cycle")
            raise
        self.model.jit_engine._pull_outputs(as_next=False)

    def reset(self):
        """Assert reset for two cycles, then deassert (PyMTL idiom).

        Combinational logic settles after deassertion so the test
        bench immediately sees post-reset outputs (e.g. rdy signals
        gated by reset)."""
        with tracing.span("sim.reset", design=self._design_name):
            self._reset_impl()

    def _reset_impl(self):
        self.model.reset.value = 1
        self.cycle()
        self.cycle()
        self.model.reset.value = 0
        self.eval_combinational()
        # Hardware state is reset by the reset signal above, but
        # python-kind telemetry (counters without a signal/state
        # backing, histograms) lives outside the design and would
        # otherwise keep pre-reset totals, making reset() disagree
        # with a fresh simulator or a restored checkpoint.
        for ctr in getattr(self.model, "_all_counters", {}).values():
            if (ctr._sig is None and ctr._state is None
                    and ctr._jit_read is None):
                ctr._value = 0
        if self._jit_instr is not None:
            self._jit_instr.reset_histograms()
        for hist in getattr(self.model, "_all_histograms", {}).values():
            hist.bins.clear()
        # Re-arm the static/tick flag arrays in place (the compiled
        # kernel closes over these exact bytearray objects) so every
        # block re-evaluates from the post-reset state.
        if self._sflags:
            self._sflags[:] = b"\x01" * len(self._sflags)
            self._sdirty = True
        if self._tflags:
            self._tflags[:] = b"\x01" * len(self._tflags)

    # -- checkpoint / restore ---------------------------------------------

    def track_rng(self, rng):
        """Register an RNG whose state should ride along in
        checkpoints (e.g. the stimulus stream of a verif run)."""
        self._checkpoint_rngs.append(rng)
        return rng

    def save_checkpoint(self):
        """Snapshot all simulation state; see
        :func:`repro.resilience.snapshot.save_checkpoint`."""
        from ..resilience.snapshot import save_checkpoint
        return save_checkpoint(self)

    def restore_checkpoint(self, checkpoint):
        """Restore a snapshot taken by :meth:`save_checkpoint`."""
        from ..resilience.snapshot import restore_checkpoint
        restore_checkpoint(self, checkpoint)

    def _flop(self):
        pending = self._pending_flops
        if not pending:
            return
        for net in pending:
            if net._next != net._value:
                net._value = net._next
                self._notify(net)
        pending.clear()

    # -- observability ------------------------------------------------------------

    def add_cycle_hook(self, hook, prepend=False):
        """Register ``hook(cycle)`` to run once per cycle after the
        pre-edge settle (transaction taps sample here).

        The mega-cycle kernel is regenerated with the hook calls
        compiled in, so kernel-mode sims keep their fast path.  SimJIT
        sims leave the batched C loop: a Python hook needs the
        interpreted per-cycle path, so any compiled instrumentation is
        converted ("dearmed") back to hook-path sampling first."""
        # Hooks forfeit SimJIT batching from now on, including for
        # attachments armed later.
        self._jit_checked = True
        self._jit_ok = False
        if self._jit_instr is not None:
            name = getattr(hook, "__qualname__", None) or repr(hook)
            self._jit_instr.dearm(f"cycle hook {name} registered")
        if prepend:
            self._cycle_hooks.insert(0, hook)
        else:
            self._cycle_hooks.append(hook)
        if self._kernel is not None:
            try:
                with tracing.span("sim.compile",
                                  design=self._design_name,
                                  reason="cycle-hook regeneration"):
                    self._kernel = generate_kernel(self)
            except Exception as exc:  # degrade, don't abort the run
                self._kernel = None
                self._kernel_refused = self._kernel_refused + (
                    f"kernel regeneration with cycle hooks failed "
                    f"({type(exc).__name__}: {exc})",)
        return hook

    def flight_recorder(self, signals=None, depth=256, autodump=None):
        """Arm a :class:`~repro.observe.recorder.FlightRecorder` on
        this simulator and return it.

        ``signals`` is a list of dotted paths and/or Signal objects
        (``None`` records the design's ``s.observe(...)``
        registrations); ``depth`` bounds the window; ``autodump``
        names a directory for automatic crash bundles.  Unlike cycle
        hooks, recorders sample post-edge like the VCD writer, so the
        compiled mega-cycle kernel keeps running."""
        from ..observe.recorder import FlightRecorder
        return FlightRecorder(signals, depth, autodump).attach(self)

    def watch(self, condition, name=None, callback=None, halt=False,
              dump=None, once=False):
        """Arm a temporal watchpoint; see :mod:`repro.observe`.

        ``condition`` is built from the combinators (``rose``,
        ``fell``, ``stable_for``, ``implies_within``, ...).  A firing
        watchpoint always logs to ``wp.fires``; it can additionally
        ``callback(wp, cycle)``, ``dump`` a forensics bundle to a
        directory, or ``halt`` the run by raising
        :class:`~repro.observe.watchpoints.WatchpointHit`."""
        from ..observe.watchpoints import Watchpoint
        return Watchpoint(condition, name=name, callback=callback,
                          halt=halt, dump=dump, once=once).attach(self)

    def _refresh_observers(self):
        """Rebuild the flat per-cycle sampling tuple (histogram
        samplers, then recorders, then watchpoints, in attach order).
        Attachments compiled into the SimJIT kernel stay registered —
        for export and forensics — but are excluded from Python
        sampling."""
        self._observers = tuple(
            list(self._hist_observers)
            + [rec.sample for rec in self._recorders
               if getattr(rec, "_cidx", None) is None]
            + [wp.sample for wp in self._watchpoints
               if getattr(wp, "_cwp", None) is None])

    def _add_hist_sampler(self, hist):
        """Arm a Python post-edge sampler for one signal-backed
        histogram (the non-compiled path)."""
        from ..observe.recorder import resolve_reader
        sig_read = resolve_reader(self, hist._sig).read
        observe = hist.observe
        if hist._when is None:
            def sampler(cycle, _r=sig_read, _o=observe):
                _o(_r())
        else:
            when_read = resolve_reader(self, hist._when).read
            def sampler(cycle, _r=sig_read, _w=when_read, _o=observe):
                if _w():
                    _o(_r())
        self._hist_observers.append(sampler)

    def _init_signal_histograms(self):
        """Arm every ``sig=``-backed histogram declared in the design:
        binning compiles into the SimJIT kernel when possible, and
        samples post-edge from Python otherwise (kernel-compatible,
        like recorders)."""
        hists = [h for h in getattr(
                     self.model, "_all_histograms", {}).values()
                 if getattr(h, "_sig", None) is not None]
        if not hists:
            return
        instr = self._jit_instrumentation()
        for hist in hists:
            if instr is not None and instr.try_add_histogram(hist):
                continue
            self._add_hist_sampler(hist)
        if self._hist_observers:
            self._refresh_observers()

    def sched_info(self):
        """Scheduling provenance: requested vs chosen mode, the
        static/event partition, tick gating, and whether (and why not)
        the mega-cycle kernel was compiled."""
        info = {
            "requested": self._sched_requested,
            "mode": self.sched_mode,
            "kernel": self._kernel is not None,
            "kernel_refused": list(self._kernel_refused),
            "total_comb_blocks": len(self._all_comb_funcs),
            "total_tick_blocks": len(self._ticks),
            "gated_ticks": len(self._gated_ticks),
        }
        if self.schedule is not None:
            info.update(self.schedule.describe())
        else:
            info.update({
                "static_blocks": 0,
                "event_blocks": len(self._all_comb_funcs),
                "demoted_cyclic": 0,
                "levels": 0,
            })
        return info

    def close(self):
        """Finalize attached sinks (VCD, telemetry, line-trace file).
        Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._vcd is not None:
            self._vcd.close()
        if self._trace_sink_file is not None:
            self._trace_sink_file.close()
        self.telemetry.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        kern = "kernel" if self._kernel is not None else "interpreted"
        ngated = len(self._gated_ticks)
        return (
            f"<SimulationTool {type(self.model).__name__} "
            f"sched={self.sched_mode}/{kern} "
            f"comb={len(self._all_comb_funcs)} "
            f"ticks={len(self._ticks)}({ngated} gated) "
            f"cycles={self.ncycles}>"
        )

    # -- debugging ----------------------------------------------------------------

    def print_line_trace(self):
        trace = self.model.line_trace()
        if not trace:
            return
        line = f"{self.ncycles:4}: {trace}"
        if self._trace_sink is not None:
            self._trace_sink(line)
        else:
            print(line)

    def _write_trace_line(self, line):
        self._trace_sink_file.write(line + "\n")


def _nets_of(ends):
    """Deduplicated net roots of a list of signals/slices."""
    nets = []
    seen = set()
    for end in ends:
        sig = end.signal if hasattr(end, "signal") else end
        net = sig._net.find()
        if id(net) not in seen:
            seen.add(id(net))
            nets.append(net)
    return nets


def _endpoint_name(end):
    """Stable dotted name of a connector endpoint for diagnostics."""
    if hasattr(end, "signal"):
        base = end.signal.name or "?"
        return f"{base}[{end.lo}:{end.hi}]"
    return getattr(end, "name", None) or "?"


def _make_connector(src, dst):
    """Build the copy function implementing a directional slice/const
    connector."""
    def connector():
        dst.value = src.value
    connector.__name__ = (
        f"connect({_endpoint_name(src)} -> {_endpoint_name(dst)})"
    )
    # Closures from the same def share a qualname ending in
    # "<locals>.connector"; profilers keying on __qualname__ would
    # merge every connector into one row without this stamp.
    connector.__qualname__ = connector.__name__
    return connector
