"""SimulationTool: event-driven simulator for elaborated models.

The simulator (paper Section III-B) inspects an elaborated model
instance, registers its concurrent logic blocks, wires sensitivity
lists to nets, and exposes a cycle-based API:

    model = MuxReg(8, 4).elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_[0].value = 42
    sim.cycle()
    assert model.out == expected

Cycle semantics:

1. combinational logic settles (event-driven fixpoint) so tick blocks
   see inputs the test bench just drove;
2. all ``@s.tick_*`` blocks execute once, reading ``.value`` (pre-edge
   state) and writing ``.next``;
3. the clock edge flops every pending ``.next`` into ``.value``;
4. combinational logic settles again so the test bench reads
   post-edge outputs.

Combinational blocks are enqueued when a net in their sensitivity list
changes; a net write that does not change the stored value triggers
nothing.  A bounded event budget per settle phase detects true
combinational loops instead of hanging.
"""

from __future__ import annotations

from collections import deque


class SimulationError(Exception):
    """Raised for runtime simulation problems (e.g. comb loops)."""


# Event budget per combinational settle phase, scaled by design size.
_EVENT_BUDGET_PER_BLOCK = 1000


class SimulationTool:
    """Generates and drives a simulator for an elaborated model."""

    def __init__(self, model, line_trace=False, vcd=None,
                 collect_stats=False):
        if not model.is_elaborated():
            model.elaborate()
        self.model = model
        self.ncycles = 0
        self._line_trace_on = line_trace
        self._vcd = vcd
        if vcd is not None:
            vcd.attach(model)
        self.collect_stats = collect_stats
        self.num_events = 0
        self.block_calls = {}       # func -> execution count

        # Attach nets to this simulator and assign dense ids.
        for i, net in enumerate(model._all_nets):
            net.sim = self
            net.blocks = ()
            net.id = i

        # Tick blocks in hierarchical declaration order.  FL blocks
        # that use blocking adapters get wrapped in coroutine runners.
        from .adapters import wrap_fl_ticks
        wrappers = wrap_fl_ticks(model)
        self._tick_blocks = [
            blk for m in model._all_models for blk in m.get_tick_blocks()
        ]
        self._ticks = [
            wrappers.get(blk.func, blk.func) for blk in self._tick_blocks
        ]

        # Combinational blocks: wire sensitivity lists into net callbacks.
        self._comb_blocks = [
            blk for m in model._all_models for blk in m.get_comb_blocks()
        ]
        comb_funcs = []
        for blk in self._comb_blocks:
            comb_funcs.append(blk.func)
            for sig in blk.signals:
                net = sig._net.find()
                if blk.func not in net.blocks:
                    net.blocks = net.blocks + (blk.func,)

        # Slice/constant connectors become tiny combinational copies.
        for src, dst in model._connectors:
            func = _make_connector(src, dst)
            comb_funcs.append(func)
            sig = src.signal if hasattr(src, "signal") else src
            net = sig._net.find()
            net.blocks = net.blocks + (func,)

        self._all_comb_funcs = comb_funcs
        self._event_budget = max(
            10000, _EVENT_BUDGET_PER_BLOCK * max(1, len(comb_funcs))
        )

        self._queue = deque()
        self._queued = set()
        self._pending_flops = {}

        # Constant ties: drive once; nothing else may write these nets.
        for end, const in model._const_ties:
            end.value = const

        # Initial settle: evaluate every combinational block once.
        for func in comb_funcs:
            self._enqueue(func)
        self.eval_combinational()

    # -- net callbacks (called by _Net) ------------------------------------

    def _notify(self, net):
        for func in net.blocks:
            self._enqueue(func)

    def _register_flop(self, net):
        self._pending_flops[net] = True

    def _enqueue(self, func):
        if func not in self._queued:
            self._queued.add(func)
            self._queue.append(func)

    # -- simulation control ---------------------------------------------------

    def eval_combinational(self):
        """Run combinational logic to fixpoint."""
        queue = self._queue
        queued = self._queued
        budget = self._event_budget
        stats = self.block_calls if self.collect_stats else None
        events = 0
        while queue:
            func = queue.popleft()
            queued.discard(func)
            func()
            events += 1
            if stats is not None:
                stats[func] = stats.get(func, 0) + 1
            if events > budget:
                raise SimulationError(
                    "combinational logic failed to settle "
                    f"after {events} events: likely a combinational loop"
                )
        self.num_events += events

    def cycle(self):
        """Advance simulated time by one clock cycle."""
        self.eval_combinational()
        for tick in self._ticks:
            tick()
        self._flop()
        self.eval_combinational()
        self.ncycles += 1
        if self._vcd is not None:
            self._vcd.sample(self.ncycles)
        if self._line_trace_on:
            self.print_line_trace()

    def run(self, ncycles):
        """Run ``ncycles`` cycles."""
        for _ in range(ncycles):
            self.cycle()

    def reset(self):
        """Assert reset for two cycles, then deassert (PyMTL idiom).

        Combinational logic settles after deassertion so the test
        bench immediately sees post-reset outputs (e.g. rdy signals
        gated by reset)."""
        self.model.reset.value = 1
        self.cycle()
        self.cycle()
        self.model.reset.value = 0
        self.eval_combinational()

    def _flop(self):
        pending = self._pending_flops
        if not pending:
            return
        for net in pending:
            if net._next != net._value:
                net._value = net._next
                self._notify(net)
        pending.clear()

    # -- debugging ----------------------------------------------------------------

    def print_line_trace(self):
        trace = self.model.line_trace()
        if trace:
            print(f"{self.ncycles:4}: {trace}")


def _make_connector(src, dst):
    """Build the copy function implementing a directional slice/const
    connector."""
    def connector():
        dst.value = src.value
    connector.__name__ = "connect_copy"
    return connector
