"""Behavioral-block intermediate representation (IR).

The Verilog translator (paper Section III-B) and the SimJIT
specializers (Section IV) both need to understand the *translatable
subset* of Python used inside ``@combinational`` / ``@tick_rtl`` /
``@tick_cl`` blocks.  This module defines a small statement/expression
IR plus :class:`BlockTranslator`, which lowers a block's Python AST
into the IR by resolving names against the *live elaborated model* —
Python attribute chains become signal references, elaboration-time
constants fold away, and anything outside the subset raises
:class:`TranslationError` naming the offending construct.

Subset summary:

- reads/writes of signals via ``.value`` / ``.next`` / ``.uint()`` /
  bare signal truthiness, including bit slices, BitStruct fields, and
  (possibly dynamically) indexed lists of signals;
- integer arithmetic/bitwise/comparison/boolean operators, ternary
  expressions, ``int()`` coercions;
- ``if``/``elif``/``else``; ``for`` over ``range()`` with
  elaboration-time-constant bounds; ``break``/``continue``;
- local integer variables and fixed-size local integer arrays
  (``xs = [0] * N``);
- in CL blocks only: plain integer attributes and fixed-size lists of
  integers on the model, mutated in place (``s.count += 1``).

RTL blocks treat scalar int attributes on the model as elaboration-time
constants (RTL state must live in ``Wire``s); CL blocks treat them as
mutable state.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

from .bitstruct import BitStruct
from .model import Model
from .portbundle import PortBundle
from .signals import Signal, _SignalSlice


class TranslationError(Exception):
    """Raised when a behavioral block falls outside the translatable
    subset."""


# -- expression nodes -----------------------------------------------------------


@dataclass
class Const:
    value: int


@dataclass
class SigRef:
    """Reference to a signal (or a slice of one), possibly an element
    of a signal list selected by a dynamic index expression."""

    signals: list                  # all candidate Signal objects
    index: object = None           # expr IR; None = scalar reference
    lo: int = 0
    hi: int = None                 # None = full width

    @property
    def signal(self):
        if self.index is not None:
            raise TranslationError("dynamic SigRef has no single signal")
        return self.signals[0]

    @property
    def width(self):
        base = self.signals[0].nbits
        hi = base if self.hi is None else self.hi
        return hi - self.lo

    def is_dynamic(self):
        return self.index is not None


@dataclass
class StateRef:
    """Reference to plain Python int state on the model (CL blocks)."""

    model: object
    name: str
    index: object = None           # expr IR for array state
    size: int = 0                  # 0 = scalar


@dataclass
class SigRead:
    ref: SigRef


@dataclass
class StateRead:
    ref: StateRef


@dataclass
class LocalRead:
    name: str
    index: object = None           # expr IR for local arrays


@dataclass
class BinOp:
    op: str                        # + - * // % & | ^ << >>
    left: object
    right: object


@dataclass
class UnOp:
    op: str                        # ~ - !
    operand: object


@dataclass
class Cmp:
    op: str                        # == != < <= > >=
    left: object
    right: object


@dataclass
class BoolOp:
    op: str                        # && ||
    values: list


@dataclass
class IfExp:
    cond: object
    then: object
    orelse: object


@dataclass
class Concat:
    """Verilog-style concatenation: parts MSB-first, each (expr, width)."""

    parts: list


# -- statement nodes --------------------------------------------------------------


@dataclass
class AssignSig:
    ref: SigRef
    expr: object
    is_next: bool                  # True: registered (.next) write


@dataclass
class AssignState:
    ref: StateRef
    expr: object


@dataclass
class AssignLocal:
    name: str
    expr: object
    index: object = None           # expr IR for array element store


@dataclass
class DeclLocalArray:
    name: str
    size: int
    init: object                   # Const fill value


@dataclass
class If:
    cond: object
    body: list
    orelse: list


@dataclass
class For:
    var: str
    start: int
    stop: int
    step: int
    body: list


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


@dataclass
class BlockIR:
    """Lowered behavioral block."""

    name: str
    kind: str                      # 'comb' | 'tick_rtl' | 'tick_cl'
    model: object
    body: list = field(default_factory=list)
    locals: dict = field(default_factory=dict)    # name -> 'int'|('array', n)
    sig_reads: list = field(default_factory=list)
    sig_writes: list = field(default_factory=list)
    state_names: list = field(default_factory=list)


_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    ast.LShift: "<<", ast.RShift: ">>",
}
_CMPOPS = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}
_ACCESSOR_METHODS = {"uint", "int"}


def get_func_ast(func):
    """Parse a block function's source into its FunctionDef node."""
    try:
        src = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError) as exc:
        raise TranslationError(
            f"cannot retrieve source for {func.__qualname__}"
        ) from exc
    tree = ast.parse(src)
    func_def = tree.body[0]
    if not isinstance(func_def, ast.FunctionDef):
        raise TranslationError(
            f"{func.__qualname__}: expected a function definition"
        )
    return func_def


class BlockTranslator:
    """Lowers one behavioral block into :class:`BlockIR`."""

    def __init__(self, model, func, kind):
        self.model = model
        self.func = func
        self.kind = kind           # 'comb' | 'tick_rtl' | 'tick_cl'
        self.ir = BlockIR(name=func.__name__, kind=kind, model=model)
        self.root_names = self._model_ref_names()
        self._env = self._build_env()
        self._loop_vars = {}       # currently-unrolled loop bindings (none)

    # -- environment ---------------------------------------------------------

    def _model_ref_names(self):
        names = set()
        code = self.func.__code__
        if self.func.__closure__:
            for var, cell in zip(code.co_freevars, self.func.__closure__):
                try:
                    if cell.cell_contents is self.model:
                        names.add(var)
                except ValueError:
                    pass
        return names

    def _build_env(self):
        """Names visible to the block: closure vars and globals that
        hold plain constants."""
        env = {}
        for var, val in self.func.__globals__.items():
            env[var] = val
        code = self.func.__code__
        if self.func.__closure__:
            for var, cell in zip(code.co_freevars, self.func.__closure__):
                try:
                    env[var] = cell.cell_contents
                except ValueError:
                    pass
        return env

    def fail(self, node, why):
        line = getattr(node, "lineno", "?")
        raise TranslationError(
            f"{self.model.full_name()}.{self.ir.name} (line {line}): {why}"
        )

    # -- entry point --------------------------------------------------------------

    def translate(self):
        func_def = get_func_ast(self.func)
        self.ir.body = self.stmt_list(func_def.body)
        return self.ir

    # -- statements ------------------------------------------------------------------

    def stmt_list(self, nodes):
        out = []
        for node in nodes:
            stmt = self.stmt(node)
            if stmt is not None:
                if isinstance(stmt, list):
                    out.extend(stmt)
                else:
                    out.append(stmt)
        return out

    def stmt(self, node):
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                self.fail(node, "chained assignment unsupported")
            return self.assign(node.targets[0], node.value, node)
        if isinstance(node, ast.AugAssign):
            read = self.expr(_copy_as_load(node.target))
            value = BinOp(_BINOPS.get(type(node.op)) or self.fail(
                node, f"augmented op {type(node.op).__name__}"),
                read, self.expr(node.value))
            return self.assign(node.target, None, node, value_ir=value)
        if isinstance(node, ast.If):
            return If(self.cond(node.test), self.stmt_list(node.body),
                      self.stmt_list(node.orelse))
        if isinstance(node, ast.For):
            return self.for_stmt(node)
        if isinstance(node, ast.Expr):
            # Docstrings and bare constant expressions are no-ops.
            if isinstance(node.value, ast.Constant):
                return None
            self.fail(node, "expression statements unsupported "
                            "(method calls are not translatable)")
        if isinstance(node, ast.Pass):
            return None
        if isinstance(node, ast.Break):
            return Break()
        if isinstance(node, ast.Continue):
            return Continue()
        if isinstance(node, ast.Return):
            if node.value is None:
                # 'return' for early exit maps to nothing translatable.
                self.fail(node, "early return unsupported")
            self.fail(node, "return with value unsupported")
        self.fail(node, f"statement {type(node).__name__} unsupported")

    def for_stmt(self, node):
        if not (isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"):
            self.fail(node, "for loops must iterate over range()")
        args = [self.static_int(a, node) for a in node.iter.args]
        if len(args) == 1:
            start, stop, step = 0, args[0], 1
        elif len(args) == 2:
            start, stop, step = args[0], args[1], 1
        else:
            start, stop, step = args
        if not isinstance(node.target, ast.Name):
            self.fail(node, "for target must be a simple name")
        var = node.target.id
        self.ir.locals.setdefault(var, "int")
        return For(var, start, stop, step, self.stmt_list(node.body))

    def assign(self, target, value_node, node, value_ir=None):
        value = value_ir if value_ir is not None else None

        # Local array declaration: xs = [0] * N  /  [c for _ in range(N)]
        if (value is None and isinstance(target, ast.Name)
                and self._is_array_init(value_node)):
            size, fill = self._array_init(value_node, node)
            self.ir.locals[target.id] = ("array", size)
            return DeclLocalArray(target.id, size, Const(fill))

        if value is None:
            value = self.expr(value_node)

        # Plain local: name = expr
        if isinstance(target, ast.Name):
            self.ir.locals.setdefault(target.id, "int")
            return AssignLocal(target.id, value)

        # Local array store: name[i] = expr
        if (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in self.ir.locals):
            return AssignLocal(target.value.id, value,
                               index=self.expr(target.slice))

        # Signal or model-state writes.
        resolved = self.resolve_target(target)
        if isinstance(resolved, tuple):
            ref, is_next = resolved
            if self.kind == "comb" and is_next:
                self.fail(node, ".next write inside combinational block")
            if self.kind != "comb" and not is_next \
                    and isinstance(ref, SigRef):
                self.fail(
                    node,
                    ".value write inside tick block (use .next)"
                )
            if isinstance(ref, SigRef):
                self.ir.sig_writes.append(ref)
                return AssignSig(ref, value, is_next)
            return AssignState(ref, value)
        self.fail(node, "unsupported assignment target")

    def _is_array_init(self, node):
        if node is None:
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            return isinstance(node.left, ast.List) \
                or isinstance(node.right, ast.List)
        return False

    def _array_init(self, node, ctx):
        if isinstance(node.left, ast.List):
            lst, count = node.left, node.right
        else:
            lst, count = node.right, node.left
        if len(lst.elts) != 1:
            self.fail(ctx, "array init must be [const] * N")
        elt = lst.elts[0]
        neg = False
        if isinstance(elt, ast.UnaryOp) and isinstance(elt.op, ast.USub):
            elt, neg = elt.operand, True
        if not isinstance(elt, ast.Constant):
            self.fail(ctx, "array init must be [const] * N")
        value = int(elt.value)
        return self.static_int(count, ctx), -value if neg else value

    # -- expressions --------------------------------------------------------------------

    def expr(self, node):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Const(int(node.value))
            if isinstance(node.value, int):
                return Const(node.value)
            self.fail(node, f"constant {node.value!r} unsupported")
        if isinstance(node, ast.Name):
            return self.name_expr(node)
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            return self.path_expr(node)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                self.fail(node, f"operator {type(node.op).__name__}")
            return BinOp(op, self.expr(node.left), self.expr(node.right))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Invert):
                return UnOp("~", self.expr(node.operand))
            if isinstance(node.op, ast.USub):
                return UnOp("-", self.expr(node.operand))
            if isinstance(node.op, ast.Not):
                return UnOp("!", self.cond(node.operand))
            self.fail(node, f"unary {type(node.op).__name__}")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                self.fail(node, "chained comparisons unsupported")
            op = _CMPOPS.get(type(node.ops[0]))
            if op is None:
                self.fail(node, f"comparison {type(node.ops[0]).__name__}")
            return Cmp(op, self.expr(node.left),
                       self.expr(node.comparators[0]))
        if isinstance(node, ast.BoolOp):
            op = "&&" if isinstance(node.op, ast.And) else "||"
            return BoolOp(op, [self.cond(v) for v in node.values])
        if isinstance(node, ast.IfExp):
            return IfExp(self.cond(node.test), self.expr(node.body),
                         self.expr(node.orelse))
        if isinstance(node, ast.Call):
            return self.call_expr(node)
        self.fail(node, f"expression {type(node).__name__} unsupported")

    def cond(self, node):
        """An expression used as a condition (truthiness)."""
        return self.expr(node)

    def name_expr(self, node):
        name = node.id
        if name in self.ir.locals:
            return LocalRead(name)
        if name in self.root_names:
            self.fail(node, "bare model reference in expression")
        if name in self._env:
            value = self._env[name]
            if isinstance(value, bool):
                return Const(int(value))
            if isinstance(value, int):
                return Const(value)
            self.fail(node, f"name {name!r} is not an int constant")
        # Unknown name: assume local assigned later? That's a bug in
        # the block; fail loudly.
        self.fail(node, f"unknown name {name!r}")

    def call_expr(self, node):
        # Accessor methods: x.uint(), x.int().
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _ACCESSOR_METHODS and not node.args:
            return self.expr(node.func.value)
        if isinstance(node.func, ast.Name):
            fname = node.func.id
            if fname == "int" and len(node.args) == 1:
                return self.expr(node.args[0])
            if fname == "len" and len(node.args) == 1:
                inner = node.args[0]
                static = self.try_static(inner)
                if isinstance(static, list):
                    return Const(len(static))
                self.fail(node, "len() only on static lists")
            if fname == "concat":
                return self._concat_expr(node)
            if fname == "zext" and len(node.args) == 2:
                # Values are stored masked; widening needs no gates.
                return self.expr(node.args[0])
            if fname == "sext" and len(node.args) == 2:
                return self._sext_expr(node)
        self.fail(node, "function/method calls are not translatable "
                        f"({ast.dump(node.func)[:60]})")

    def _concat_expr(self, node):
        """concat(a, b, ...) with signal/slice arguments (their widths
        are statically known)."""
        parts = []
        for arg in node.args:
            ir = self.expr(arg)
            if not isinstance(ir, SigRead):
                self.fail(node, "concat arguments must be signals or "
                                "slices (static widths)")
            parts.append((ir, ir.ref.width))
        return Concat(parts)

    def _sext_expr(self, node):
        """sext(x, N): desugared into a sign-test ternary so both
        backends handle it with existing nodes."""
        value = self.expr(node.args[0])
        if not isinstance(value, SigRead):
            self.fail(node, "sext argument must be a signal or slice")
        from_width = value.ref.width
        to_width = self.static_int(node.args[1], node)
        if to_width < from_width:
            self.fail(node, "sext target narrower than source")
        high_bits = ((1 << to_width) - 1) ^ ((1 << from_width) - 1)
        sign = BinOp("&", BinOp(">>", value, Const(from_width - 1)),
                     Const(1))
        return IfExp(sign, BinOp("|", value, Const(high_bits)), value)

    # -- attribute-path resolution ------------------------------------------------------

    def path_expr(self, node):
        """Resolve a Load of an attribute/subscript chain."""
        resolved, trailing = self._resolve_chain(node)
        if trailing not in (None, "value", "uint", "int"):
            self.fail(node, f"accessor .{trailing} unsupported in reads")
        if isinstance(resolved, SigRef):
            self.ir.sig_reads.append(resolved)
            return SigRead(resolved)
        if isinstance(resolved, StateRef):
            self.ir.state_names.append(resolved)
            return StateRead(resolved)
        if isinstance(resolved, Const):
            return resolved
        if isinstance(resolved, (LocalRead,)):
            return resolved
        self.fail(node, "path does not resolve to a signal, state, or "
                        "constant")

    def resolve_target(self, node):
        """Resolve a Store target; returns (ref, is_next)."""
        resolved, trailing = self._resolve_chain(node)
        if isinstance(resolved, SigRef):
            if trailing == "next":
                return (resolved, True)
            if trailing == "value":
                return (resolved, False)
            self.fail(node, "signal writes must go through "
                            ".value or .next")
        if isinstance(resolved, StateRef):
            if trailing is not None:
                self.fail(node, f"state write with accessor .{trailing}")
            if self.kind != "tick_cl":
                self.fail(node, "plain attribute state is only "
                                "writable in CL blocks (RTL state must "
                                "be a Wire)")
            return (resolved, False)
        if isinstance(resolved, Const):
            self.fail(node, "cannot assign to an elaboration-time "
                            "constant; plain attribute state is only "
                            "writable in CL blocks (RTL state must be "
                            "a Wire)")
        self.fail(node, "unsupported write target")

    def static_int(self, node, ctx):
        value = self.try_static(node)
        if not isinstance(value, (int, bool)):
            self.fail(ctx, "expected an elaboration-time constant")
        return int(value)

    def try_static(self, node):
        """Evaluate a subexpression at elaboration time if possible.

        Returns the Python value, or NotImplemented."""
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in self.root_names:
                return self.model
            if node.id in self.ir.locals:
                return NotImplemented
            if node.id in self._env:
                return self._env[node.id]
            return NotImplemented
        if isinstance(node, ast.Attribute):
            base = self.try_static(node.value)
            if base is NotImplemented:
                return NotImplemented
            try:
                value = getattr(base, node.attr)
            except AttributeError:
                return NotImplemented
            return value
        if isinstance(node, ast.Subscript):
            base = self.try_static(node.value)
            idx = self.try_static(node.slice)
            if base is NotImplemented or idx is NotImplemented:
                return NotImplemented
            if isinstance(idx, (int, bool)) and isinstance(base, list):
                return base[idx]
            return NotImplemented
        if isinstance(node, ast.BinOp):
            left = self.try_static(node.left)
            right = self.try_static(node.right)
            op = _BINOPS.get(type(node.op))
            if NotImplemented in (left, right) or op is None:
                return NotImplemented
            if not isinstance(left, (int, bool)) \
                    or not isinstance(right, (int, bool)):
                return NotImplemented
            return _fold(op, left, right)
        if isinstance(node, ast.UnaryOp):
            value = self.try_static(node.operand)
            if value is NotImplemented or not isinstance(value, (int, bool)):
                return NotImplemented
            if isinstance(node.op, ast.USub):
                return -value
            if isinstance(node.op, ast.Invert):
                return ~value
            return NotImplemented
        return NotImplemented

    def _resolve_chain(self, node):
        """Walk an attribute/subscript chain against the live model.

        Returns (SigRef | StateRef | Const, trailing_accessor).
        """
        # Peel a trailing .value/.next/.uint accessor.
        trailing = None
        if isinstance(node, ast.Attribute) and node.attr in (
                "value", "next"):
            trailing = node.attr
            node = node.value

        # Fast path: fully static chain (elaboration-time constant).
        static = self.try_static(node)
        if isinstance(static, (int, bool)) and self.kind != "tick_cl":
            return Const(int(static)), trailing

        steps = []
        cur = node
        while True:
            if isinstance(cur, ast.Attribute):
                steps.append(("attr", cur.attr))
                cur = cur.value
            elif isinstance(cur, ast.Subscript):
                steps.append(("index", cur.slice))
                cur = cur.value
            elif isinstance(cur, ast.Name):
                steps.append(("name", cur.id))
                break
            else:
                self.fail(node, "path roots must be simple names")
        steps.reverse()

        kind, root = steps[0]
        if root in self.ir.locals:
            # local array read: name[i]
            if len(steps) == 2 and steps[1][0] == "index":
                return LocalRead(root, self.expr(steps[1][1])), trailing
            if len(steps) == 1:
                return LocalRead(root), trailing
            self.fail(node, f"cannot subscript local {root!r} deeply")
        if root not in self.root_names:
            value = self._env.get(root, NotImplemented)
            if isinstance(value, (int, bool)):
                return Const(int(value)), trailing
            self.fail(node, f"path root {root!r} is not the model")

        obj = self.model
        dyn_index = None           # expr IR once a dynamic index is hit
        objs = [obj]               # parallel worlds under dynamic index

        for kind, key in steps[1:]:
            if kind == "attr":
                new_objs = []
                for candidate in objs:
                    if isinstance(candidate, (Signal, _SignalSlice)):
                        new_objs.append(
                            self._struct_field(candidate, key, node))
                    else:
                        try:
                            new_objs.append(getattr(candidate, key))
                        except AttributeError:
                            self.fail(node, f"no attribute {key!r}")
                objs = new_objs
            elif isinstance(key, ast.Slice):
                lo = self.static_int(key.lower, node) \
                    if key.lower is not None else 0
                if key.upper is None:
                    self.fail(node, "open-ended slices need an upper "
                                    "bound in behavioral blocks")
                hi = self.static_int(key.upper, node)
                new_objs = []
                for candidate in objs:
                    if isinstance(candidate, (Signal, _SignalSlice)):
                        new_objs.append(candidate[lo:hi])
                    else:
                        self.fail(node, "slice of a non-signal")
                objs = new_objs
            else:
                static_idx = self.try_static(key)
                if isinstance(static_idx, int):
                    objs = [self._index_obj(o, static_idx, node)
                            for o in objs]
                else:
                    if dyn_index is not None:
                        self.fail(node, "only one dynamic index per path")
                    if len(objs) != 1 or not isinstance(objs[0], list):
                        self.fail(node, "dynamic index on non-list")
                    dyn_index = self.expr(key)
                    objs = list(objs[0])

        return self._finish_chain(objs, dyn_index, steps, node), trailing

    def _struct_field(self, sig, key, node):
        got = getattr(sig, key, None)
        if isinstance(got, _SignalSlice):
            return got
        self.fail(node, f"signal has no field {key!r}")

    def _index_obj(self, obj, idx, node):
        if isinstance(obj, list):
            if idx >= len(obj):
                self.fail(node, f"index {idx} out of range")
            return obj[idx]
        if isinstance(obj, (Signal, _SignalSlice)):
            return obj[idx]        # single-bit slice
        self.fail(node, f"cannot index {type(obj).__name__}")

    def _finish_chain(self, objs, dyn_index, steps, node):
        first = objs[0]
        if isinstance(first, (Signal, _SignalSlice)):
            if dyn_index is None:
                return _sigref_from(first)
            signals = []
            lo, hi = None, None
            for item in objs:
                ref = _sigref_from(item)
                signals.append(ref.signals[0])
                if lo is None:
                    lo, hi = ref.lo, ref.hi
                elif (lo, hi) != (ref.lo, ref.hi):
                    self.fail(node, "heterogeneous slices under "
                                    "dynamic index")
            widths = {sig.nbits for sig in signals}
            if len(widths) != 1:
                self.fail(node, "mixed widths under dynamic index")
            return SigRef(signals, index=dyn_index, lo=lo,
                          hi=hi)
        if isinstance(first, (int, bool)):
            if self.kind == "tick_cl":
                # Mutable CL state (scalar attr or int-list element).
                return self._state_ref(steps, dyn_index, objs, node)
            if dyn_index is None:
                return Const(int(first))
            self.fail(node, "dynamic index into constant list in RTL "
                            "block (use Wires)")
        if isinstance(first, list) and dyn_index is None:
            self.fail(node, "whole-list reference needs an index")
        self.fail(node, f"cannot translate object of type "
                        f"{type(first).__name__}")

    def _state_ref(self, steps, dyn_index, objs, node):
        # steps: [('name', s), ('attr', attrname), maybe ('index', _)]
        attrs = [k for kind, k in steps[1:] if kind == "attr"]
        if len(attrs) != 1:
            self.fail(node, "CL state must be a direct model attribute")
        name = attrs[0]
        attr = getattr(self.model, name)
        if isinstance(attr, list):
            if not all(isinstance(v, (int, bool)) for v in attr):
                self.fail(node, f"state list {name!r} must hold ints")
            index_ir = dyn_index
            if index_ir is None:
                # static index into state array
                idx_step = [k for kind, k in steps[1:] if kind == "index"]
                index_ir = Const(self.try_static(idx_step[0])) \
                    if idx_step else None
            if index_ir is None:
                self.fail(node, f"state list {name!r} needs an index")
            return StateRef(self.model, name, index=index_ir,
                            size=len(attr))
        if isinstance(attr, (int, bool)):
            return StateRef(self.model, name)
        self.fail(node, f"attribute {name!r} is not int state")


def _sigref_from(obj):
    if isinstance(obj, _SignalSlice):
        return SigRef([obj.signal], lo=obj.lo, hi=obj.hi)
    return SigRef([obj])


def _copy_as_load(node):
    """Shallow-copy an assignment target as a Load-context expression."""
    import copy
    new = copy.deepcopy(node)
    for sub in ast.walk(new):
        if hasattr(sub, "ctx"):
            sub.ctx = ast.Load()
    return new


def _fold(op, a, b):
    import operator
    table = {
        "+": operator.add, "-": operator.sub, "*": operator.mul,
        "//": operator.floordiv, "%": operator.mod,
        "&": operator.and_, "|": operator.or_, "^": operator.xor,
        "<<": operator.lshift, ">>": operator.rshift,
    }
    return table[op](int(a), int(b))


def translate_block(model, block, kind):
    """Convenience wrapper: lower one block to IR."""
    return BlockTranslator(model, block.func, kind).translate()
