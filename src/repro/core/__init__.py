"""Core framework: the concurrent-structural DSEL and its tools.

This package is the reproduction of the paper's primary contribution
(Sections III and IV): the modeling language (``Model``, signals,
``Bits``, ``BitStruct``, port bundles), the elaborator, the simulator,
the Verilog translator, and the SimJIT specializers.
"""

from .bits import Bits, bw, clog2, concat, sext, zext
from .bitstruct import BitStruct, Field, mk_bitstruct
from .signals import InPort, OutPort, Signal, Wire
from .model import Model
from .elaboration import ElaborationError, elaborate
from .simulation import SimulationError, SimulationTool
from .portbundle import (
    ChildReqRespBundle,
    InValRdyBundle,
    OutValRdyBundle,
    ParentReqRespBundle,
    PortBundle,
    ReqRespMsgTypes,
)
from .adapters import (
    ChildReqRespQueueAdapter,
    ListMemPortAdapter,
    ParentReqRespQueueAdapter,
    Queue,
)

__all__ = [
    "Bits", "bw", "clog2", "concat", "sext", "zext",
    "BitStruct", "Field", "mk_bitstruct",
    "InPort", "OutPort", "Signal", "Wire",
    "Model",
    "ElaborationError", "elaborate",
    "SimulationError", "SimulationTool",
    "PortBundle", "InValRdyBundle", "OutValRdyBundle",
    "ChildReqRespBundle", "ParentReqRespBundle", "ReqRespMsgTypes",
    "ChildReqRespQueueAdapter", "ParentReqRespQueueAdapter",
    "ListMemPortAdapter", "Queue",
]
