"""Failure shrinking and standalone-repro emission.

A constrained-random failure at transaction #847 is a fact; a
three-transaction sequence that still fails is an explanation.  On a
mismatch the differential sweeps call :func:`shrink_cosim_failure`,
which greedily delta-debugs the stimulus (drop halves, then quarters,
then single transactions, keeping any removal that still reproduces
the *same class* of failure) and re-runs once more to harvest the
divergence line traces.  :func:`emit_repro` then writes a standalone
pytest file containing the shrunk stimulus literal, so the bug is
reproducible with ``pytest path/to/repro.py`` and no random state.
"""

from __future__ import annotations

import pprint

from .cosim import CoSimMismatch, CoSimProtocolError, CoSimTimeout

__all__ = ["shrink_stimulus", "shrink_cosim_failure", "emit_repro"]


def _flatten(stimulus):
    return [(ch, payload)
            for ch in sorted(stimulus)
            for payload in stimulus[ch]]


def _rebuild(events, channels):
    stimulus = {ch: [] for ch in channels}
    for ch, payload in events:
        stimulus[ch].append(payload)
    return stimulus


def shrink_stimulus(stimulus, still_fails, max_runs=250):
    """Greedy delta-debugging over a per-channel stimulus dict.

    ``still_fails(candidate)`` re-runs the scenario and reports whether
    the failure persists.  Transactions are removed in progressively
    smaller chunks until a fixpoint; at most ``max_runs`` re-executions
    are spent.  Returns the shrunk stimulus (per-channel order of the
    surviving transactions is preserved).

    Outcomes are memoized by the candidate transaction tuple: ddmin
    revisits the same prefix/suffix combinations as the chunk size
    halves (and again after any successful removal rewinds the scan),
    and each probe is a full co-simulation — skipping a repeat is worth
    far more than the hash.  Cache hits do not count against
    ``max_runs``.
    """
    channels = list(stimulus)
    events = _flatten(stimulus)
    runs = 0
    outcomes = {}                  # tuple(events) -> bool(still fails)

    def probe(candidate):
        nonlocal runs
        key = tuple(candidate)
        cached = outcomes.get(key)
        if cached is not None:
            return cached
        runs += 1
        result = bool(still_fails(_rebuild(candidate, channels)))
        outcomes[key] = result
        return result

    chunk = max(1, len(events) // 2)
    while chunk >= 1 and runs < max_runs:
        i = 0
        removed = False
        while i < len(events) and runs < max_runs:
            candidate = events[:i] + events[i + chunk:]
            if probe(candidate):
                events = candidate
                removed = True
            else:
                i += chunk
        if chunk == 1 and not removed:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else 1
        if chunk == 1 and not events:
            break
    return _rebuild(events, channels)


def shrink_cosim_failure(make_harness, stimulus, run_kwargs=None,
                         max_runs=250):
    """Shrink a failing co-simulation scenario.

    ``make_harness()`` must build a *fresh* :class:`CoSimHarness` (DUT
    simulators are stateful and cannot be re-run).  Only
    :class:`CoSimMismatch` counts as "still failing" — a candidate that
    times out or trips a protocol check instead is treated as passing,
    so the shrink cannot wander to a different bug.

    Returns ``(shrunk_stimulus, mismatch)`` where ``mismatch`` is the
    :class:`CoSimMismatch` raised by the final shrunk run (with its
    divergence line traces).
    """
    from ..telemetry import tracing

    run_kwargs = dict(run_kwargs or {})

    def still_fails(candidate):
        try:
            make_harness().run(candidate, **run_kwargs)
        except CoSimMismatch:
            return True
        except (CoSimProtocolError, CoSimTimeout):
            return False
        return False

    with tracing.span("cosim.shrink", max_runs=max_runs) as sp:
        if not still_fails(stimulus):
            raise ValueError("scenario does not fail; nothing to shrink")
        shrunk = shrink_stimulus(stimulus, still_fails,
                                 max_runs=max_runs)
        sp.set(shrunk_events=sum(len(v) for v in shrunk.values()))
        try:
            make_harness().run(shrunk, **run_kwargs)
        except CoSimMismatch as exc:
            return shrunk, exc
        raise AssertionError(
            "shrunk stimulus no longer fails "
            "(non-deterministic harness?)")


_REPRO_TEMPLATE = '''\
"""Auto-generated differential-testing repro.

{note}
Re-run with:  PYTHONPATH=src python -m pytest {{this_file}} -x
The test FAILS (CoSimMismatch) while the bug is present and passes
once the implementations agree again.
"""

{build_src}

STIMULUS = {stimulus}

RUN_KWARGS = {run_kwargs}


def test_repro():
    make_cosim().run(STIMULUS, **RUN_KWARGS)
'''


def emit_repro(path, build_src, stimulus, run_kwargs=None, note="",
               mismatch=None):
    """Write a standalone pytest repro file.

    ``build_src`` is Python source defining ``make_cosim()`` returning
    a fresh :class:`CoSimHarness` for the implementations under test.
    The divergence summary and line traces of ``mismatch`` (if given)
    are appended as a comment so the file is self-describing.
    """
    text = _REPRO_TEMPLATE.format(
        note=note or "Shrunk by repro.verif.shrink.",
        build_src=build_src.strip(),
        stimulus=pprint.pformat(stimulus, width=72),
        run_kwargs=pprint.pformat(dict(run_kwargs or {}), width=72),
    )
    if mismatch is not None:
        lines = str(mismatch).splitlines()
        text += "\n\n# Divergence at generation time:\n"
        text += "".join(f"# {line}\n" for line in lines)
    with open(path, "w") as f:
        f.write(text)
    return path
