"""Lightweight functional-coverage bins.

Constrained-random testing without coverage is hope-based: the run may
never have exercised the interesting states.  :class:`Coverage` is a
dict of named bin groups with hit counts; the cosim harness bumps
generic bins (handshakes, stalls, backpressure), and DUT adapters bump
domain bins (opcode mix, queue-full events, router turns) via the
classifier helpers below.  ``report()`` renders a compact table that
the differential sweeps print per run, and ``require()`` lets a test
assert that the stimulus actually reached the states it claims to
verify.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = [
    "Coverage",
    "classify_mem_request",
    "classify_net_message",
]


class Coverage:
    """Named coverage bins: ``cov.hit(group, bin)`` counts events.

    Instances travel across process boundaries (the fleet runner ships
    per-task coverage back to the aggregator), so they pickle cleanly
    and round-trip through plain dicts:

    >>> cov = Coverage()
    >>> cov.hit("handshake", "drive_xfer", 3)
    >>> Coverage.from_dict(cov.to_dict()).count("handshake", "drive_xfer")
    3
    """

    def __init__(self):
        self._groups = defaultdict(lambda: defaultdict(int))

    def __getstate__(self):
        # The defaultdict factories are lambdas, which do not pickle;
        # ship plain dicts and rebuild the defaults on the far side.
        return self.to_dict()

    def __setstate__(self, state):
        self.__init__()
        for group, bins in state.items():
            for name, count in bins.items():
                self._groups[group][name] += count

    def to_dict(self):
        """``{group: {bin: count}}`` with only non-empty groups."""
        return {
            group: dict(bins)
            for group, bins in self._groups.items() if bins
        }

    @classmethod
    def from_dict(cls, data):
        cov = cls()
        cov.__setstate__(data or {})
        return cov

    def hit(self, group, name, n=1):
        self._groups[group][str(name)] += n

    def count(self, group, name):
        return self._groups[group][str(name)]

    def bins(self, group):
        """Hit-count dict of one group (empty if never touched)."""
        return dict(self._groups[group])

    def merge(self, other):
        for group, bins in other._groups.items():
            for name, count in bins.items():
                self._groups[group][name] += count

    def require(self, group, names, min_hits=1):
        """Raise ``AssertionError`` unless every bin in ``names`` got at
        least ``min_hits`` — the test's claim that stimulus reached the
        states it verifies."""
        missing = [
            name for name in names
            if self._groups[group][str(name)] < min_hits
        ]
        if missing:
            raise AssertionError(
                f"coverage group {group!r} missing bins {missing} "
                f"(have {self.bins(group)})")

    def report(self):
        """Multi-line human-readable coverage table."""
        lines = []
        for group in sorted(self._groups):
            bins = self._groups[group]
            total = sum(bins.values())
            parts = ", ".join(
                f"{name}={count}" for name, count in sorted(bins.items()))
            lines.append(f"{group:<24} ({total:>6} hits): {parts}")
        return "\n".join(lines) if lines else "(no coverage recorded)"


def classify_mem_request(cov, packed, group="mem_req"):
    """Bin a packed ``MemReqMsg``: read/write mix and data corners."""
    from ..mem.msgs import MEM_REQ_WRITE, MemReqMsg

    msg = MemReqMsg(packed)
    cov.hit(group, "write" if int(msg.type_) == MEM_REQ_WRITE else "read")
    data = int(msg.data)
    if data == 0:
        cov.hit(group, "data_zero")
    elif data == (1 << 32) - 1:
        cov.hit(group, "data_ones")
    if data and not (data & (data - 1)):
        cov.hit(group, "data_onehot")


def classify_net_message(cov, msg_type, packed, group="net_msg"):
    """Bin a packed ``NetMsg``: traffic direction per source terminal
    (straight / turn / self-send — the router-turn coverage of a 2-D
    mesh)."""
    msg = msg_type(packed)
    src, dest = int(msg.src), int(msg.dest)
    if src == dest:
        cov.hit(group, "self_send")
    else:
        cov.hit(group, f"pair_{src}->{dest}")
