"""Differential co-simulation of N implementations of one interface.

The paper's central claim (Sections III, V) is that FL, CL, and RTL
models of a design are interchangeable refinements — and since PR 1 the
same model can additionally execute on four different simulator
substrates (event-driven, static-scheduled, mega-cycle kernel, SimJIT).
:class:`CoSimHarness` turns that claim into a checked property: it
elaborates every implementation, drives them in lockstep from one
shared constrained-random stimulus stream, and diffs their outputs
transaction by transaction *online*, so the divergence is caught on the
cycle it happens with line traces still in the ring buffer.

Comparison modes:

- ``"cycle_exact"`` — transfers must match as ``(cycle, payload)``
  pairs.  Correct for the *same* model on different backends
  (``sched="event"`` vs ``"static"`` vs SimJIT): those must be
  bit-and-cycle identical.
- ``"cycle_tolerant"`` — only the per-channel payload *sequences* must
  match; timing is free.  Correct across abstraction levels (FL vs CL
  vs RTL), where latency-insensitive interfaces guarantee stream
  equality but not schedules.  An optional ``group_key`` partitions a
  stream into independently-ordered substreams (e.g. a network only
  orders packets per source/destination pair).

A DUT is described by a :class:`DutAdapter`: the model, channels to
drive, channels to capture (the harness owns their ``rdy``), passive
taps (observation without interference, e.g. a processor's store
stream), an optional ``done`` predicate for self-running designs, and
an optional ``final_state`` function compared across DUTs at the end.
"""

from __future__ import annotations

from time import perf_counter_ns

from ..core import SimulationTool
from ..telemetry import tracing
from .coverage import Coverage
from .monitors import ValRdyMonitor
from .strategies import backpressure_pattern

__all__ = [
    "Channel",
    "CoSimMismatch",
    "CoSimProtocolError",
    "CoSimTimeout",
    "CoSimResult",
    "DutAdapter",
    "CoSimHarness",
]

DRAIN_CYCLES = 64


class CoSimMismatch(AssertionError):
    """Two implementations disagreed on an output transaction.

    ``bundles`` maps DUT names to ``repro-observe-v1`` forensics
    bundle paths (see :mod:`repro.observe`) when flight recorders were
    armed on the diverging simulators — the signal-level history
    leading into the divergence."""

    def __init__(self, message, *, ref=None, dut=None, channel=None,
                 index=None, expected=None, actual=None, traces=None,
                 bundles=None):
        super().__init__(message)
        self.ref = ref
        self.dut = dut
        self.channel = channel
        self.index = index
        self.expected = expected
        self.actual = actual
        self.traces = traces or {}
        self.bundles = bundles or {}


class CoSimProtocolError(AssertionError):
    """A DUT violated the val/rdy protocol (see monitors.py)."""

    def __init__(self, message, violations):
        super().__init__(message)
        self.violations = violations


class CoSimTimeout(RuntimeError):
    """The run did not finish within ``max_cycles``."""


class Channel:
    """One val/rdy endpoint of a DUT, as seen by the harness.

    ``role`` is ``"drive"`` (harness writes msg/val, DUT owns rdy),
    ``"capture"`` (DUT writes msg/val, harness owns rdy), or ``"tap"``
    (DUT-internal channel observed read-only).  ``accept`` filters
    which observed transfers are recorded (taps often want only a
    subset, e.g. store requests).
    """

    def __init__(self, name, bundle, role, accept=None):
        if role not in ("drive", "capture", "tap"):
            raise ValueError(f"bad channel role {role!r}")
        self.name = name
        self.bundle = bundle
        self.role = role
        self.accept = accept


class DutAdapter:
    """Binds one implementation to the harness's channel protocol."""

    def __init__(self, name, model, drives=None, captures=None, taps=None,
                 sched="auto", trace_depth=8, done=None, final_state=None,
                 classify=None, sim_factory=None):
        self.name = name
        self.model = model if model.is_elaborated() else model.elaborate()
        if sim_factory is not None:
            self.sim = sim_factory(self.model)
        else:
            self.sim = SimulationTool(
                self.model, sched=sched, trace_depth=trace_depth)
        self.channels = (
            [Channel(n, b, "drive") for n, b in (drives or {}).items()]
            + [Channel(n, b, "capture") for n, b in (captures or {}).items()]
            + [Channel(n, b, "tap") for n, b in (taps or {}).items()])
        self._done = done
        self._final_state = final_state
        self.classify = classify

    def _with_tap_filter(self, channel, accept):
        """Attach an ``accept(msg)->bool`` filter to a tap channel
        (returns self for chaining)."""
        for ch in self.channels:
            if ch.name == channel:
                ch.accept = accept
                return self
        raise ValueError(f"no channel named {channel!r}")

    def done(self):
        return True if self._done is None else bool(self._done(self.model))

    def final_state(self):
        return None if self._final_state is None \
            else self._final_state(self.model)


class _DutState:
    """Per-DUT run bookkeeping."""

    def __init__(self, adapter, stimulus):
        self.adapter = adapter
        self.sim = adapter.sim
        self.drives = []        # (Channel, payload list, index, pending)
        self.monitors = {}      # channel name -> ValRdyMonitor
        self.drain0 = DRAIN_CYCLES
        self.drain_left = DRAIN_CYCLES
        self.finished = False
        for ch in adapter.channels:
            if ch.role == "drive":
                payloads = list(stimulus.get(ch.name, ()))
                self.drives.append([ch, payloads, 0, False])
            else:
                self.monitors[ch.name] = ValRdyMonitor(
                    f"{adapter.name}.{ch.name}",
                    check=(ch.role == "capture"))

    def stimulus_exhausted(self):
        return all(idx >= len(payloads)
                   for _, payloads, idx, _ in self.drives)

    def transfers(self, channel):
        return self.monitors[channel].transfers


class CoSimResult:
    """Outcome of a clean (mismatch-free) co-simulation run."""

    def __init__(self):
        self.transfers = {}     # dut name -> {channel: [(cycle, msg)]}
        self.ncycles = {}       # dut name -> cycles simulated
        self.final_states = {}  # dut name -> final_state() value
        self.coverage = Coverage()

    def ntransactions(self, channel=None):
        """Transfers recorded on the reference DUT (first listed)."""
        first = next(iter(self.transfers.values()))
        if channel is not None:
            return len(first[channel])
        return sum(len(t) for t in first.values())


class CoSimHarness:
    """Runs N implementations in lockstep and diffs their outputs.

    ``duts`` is a list of :class:`DutAdapter`; the first is the
    reference everything else is compared against.  All DUTs must
    expose the same channel names.
    """

    def __init__(self, duts, compare="cycle_exact", group_key=None,
                 check_protocol=True, bundle_dir=None):
        if compare not in ("cycle_exact", "cycle_tolerant"):
            raise ValueError(f"bad compare mode {compare!r}")
        if len(duts) < 2:
            raise ValueError("co-simulation needs at least two DUTs")
        names = [tuple(sorted(ch.name for ch in d.channels)) for d in duts]
        if len(set(names)) != 1:
            raise ValueError(f"DUT channel sets differ: {names}")
        self.duts = duts
        self.compare = compare
        self.group_key = group_key
        self.check_protocol = check_protocol
        # Divergence forensics: with flight recorders armed on the DUT
        # sims, a mismatch exports each recorder window as a
        # repro-observe-v1 bundle into this directory (or
        # $REPRO_OBSERVE_DIR / the recorders' autodump dirs).
        self.bundle_dir = bundle_dir

    # -- driving ---------------------------------------------------------

    def run(self, stimulus, max_cycles=100_000, backpressure=None,
            presence=None, drain=DRAIN_CYCLES):
        """Drive all DUTs from ``stimulus`` and diff them online.

        ``stimulus`` maps drive-channel names to lists of packed-int
        payloads.  ``backpressure``/``presence`` are ``f(cycle)->bool``
        schedules (see :func:`strategies.backpressure_pattern`) applied
        identically to every DUT.  Returns a :class:`CoSimResult`;
        raises :class:`CoSimMismatch` / :class:`CoSimProtocolError` /
        :class:`CoSimTimeout`.  On a mismatch with flight recorders
        armed (and a ``bundle_dir``/autodump destination configured),
        ``exc.bundles`` maps DUT names to exported forensics bundles.
        """
        with tracing.span("cosim.run", duts=len(self.duts)):
            try:
                return self._run(stimulus, max_cycles, backpressure,
                                 presence, drain)
            except CoSimMismatch as exc:
                if not exc.bundles:
                    exc.bundles = self._divergence_bundles(exc)
                raise

    def _run(self, stimulus, max_cycles, backpressure, presence, drain):
        backpressure = backpressure or backpressure_pattern("always")
        presence = presence or (lambda cycle: True)
        states = [_DutState(d, stimulus) for d in self.duts]
        result = CoSimResult()

        for st in states:
            st.drain0 = st.drain_left = drain
            st.sim.reset()

        # One span per phase — drive (the per-cycle stimulus loop with
        # online diffing), diff (final-state + protocol comparison),
        # capture (result harvesting) — at loop granularity so the
        # per-cycle path stays uninstrumented.  The drive loop
        # advances every DUT simulator one cycle at a time, so the
        # per-call ``sim.run`` instrumentation never fires; instead
        # each DUT gets one synthesized ``sim.run`` span covering the
        # drive window (its simulator genuinely ran for exactly that
        # wall interval and cycle count).
        with tracing.span("cosim.drive") as drive_span:
            tracer = tracing.active()
            t0 = perf_counter_ns() if tracer is not None else 0
            cycle = 0
            while not all(st.finished for st in states):
                if cycle >= max_cycles:
                    pending = {
                        st.adapter.name: [
                            f"{ch.name}:{idx}/{len(p)}"
                            for ch, p, idx, _ in st.drives]
                        for st in states if not st.finished}
                    raise CoSimTimeout(
                        f"co-simulation did not finish in {max_cycles} "
                        f"cycles (pending stimulus: {pending})")
                for st in states:
                    if not st.finished:
                        self._step(st, cycle, backpressure, presence,
                                   result)
                self._compare_online(states)
                cycle += 1
            drive_span.set(ncycles=cycle)
            if tracer is not None:
                t1 = perf_counter_ns()
                for st in states:
                    tracer.add_span("sim.run", t0, t1,
                                    design=st.adapter.name,
                                    ncycles=st.sim.ncycles)

        with tracing.span("cosim.diff"):
            self._compare_final(states, result)
            if self.check_protocol:
                violations = [
                    v for st in states for mon in st.monitors.values()
                    for v in mon.violations]
                if violations:
                    raise CoSimProtocolError(
                        "protocol violations:\n  " + "\n  ".join(
                            str(v) for v in violations), violations)

        with tracing.span("cosim.capture"):
            for st in states:
                result.transfers[st.adapter.name] = {
                    name: list(mon.transfers)
                    for name, mon in st.monitors.items()}
                result.ncycles[st.adapter.name] = st.sim.ncycles
                result.final_states[st.adapter.name] = \
                    st.adapter.final_state()
        return result

    def _step(self, st, cycle, backpressure, presence, result):
        sim = st.sim
        adapter = st.adapter

        # Drive inputs.  A stalled offer is held (val stays up, payload
        # stable) regardless of the presence schedule — the harness
        # must itself obey the protocol it polices.
        for drive in st.drives:
            ch, payloads, idx, pending = drive
            if idx < len(payloads) and (pending or presence(cycle)):
                ch.bundle.val.value = 1
                ch.bundle.msg.value = payloads[idx]
            else:
                ch.bundle.val.value = 0
        # Sink readiness for captured channels.
        ready = backpressure(cycle)
        for ch in adapter.channels:
            if ch.role == "capture":
                ch.bundle.rdy.value = 1 if ready else 0
                if not ready:
                    result.coverage.hit("handshake", "sink_stall")

        # Settle so the pre-edge val/rdy values are the ones tick
        # blocks will see, then sample handshakes.
        sim.eval_combinational()
        for drive in st.drives:
            ch, payloads, idx, pending = drive
            val = int(ch.bundle.val)
            rdy = int(ch.bundle.rdy)
            if val and rdy:
                if adapter.classify is not None:
                    adapter.classify(result.coverage, ch.name,
                                     payloads[idx])
                result.coverage.hit("handshake", "drive_xfer")
                drive[2] = idx + 1
                drive[3] = False
            elif val:
                result.coverage.hit("handshake", "source_stall")
                drive[3] = True
        activity = False
        for ch in adapter.channels:
            if ch.role == "drive":
                continue
            val = int(ch.bundle.val)
            rdy = int(ch.bundle.rdy)
            msg = int(ch.bundle.msg)
            if ch.accept is not None and val and rdy \
                    and not ch.accept(msg):
                continue
            st.monitors[ch.name].observe(cycle, val, rdy, msg)
            if val:
                activity = True

        sim.cycle()

        if st.stimulus_exhausted() and adapter.done():
            # Count down the drain only through quiet cycles: any
            # in-flight offer on an output resets the countdown, so
            # slow multi-hop drains (networks) are not cut short.
            st.drain_left = st.drain0 if activity else st.drain_left - 1
            if st.drain_left <= 0:
                st.finished = True

    # -- comparison ------------------------------------------------------

    def _compare_online(self, states):
        """Prefix-compare every DUT's transfer streams against the
        reference; raises at the first divergent transaction."""
        if self.group_key is not None:
            # Only partial (per-group) order is guaranteed; grouped
            # streams are compared at the end of the run instead.
            return
        ref = states[0]
        for st in states[1:]:
            for name, mon in st.monitors.items():
                ref_list = ref.transfers(name)
                dut_list = mon.transfers
                n = min(len(ref_list), len(dut_list))
                # Only the newly-appended tail can differ; scanning the
                # last few entries keeps the online check O(1) amortized.
                for i in range(max(0, n - 4), n):
                    self._compare_item(
                        ref, st, name, i, ref_list[i], dut_list[i])

    def _compare_item(self, ref, st, channel, index, want, got):
        if self.compare == "cycle_exact":
            equal = want == got
        else:
            equal = want[1] == got[1]
        if not equal:
            raise self._mismatch(ref, st, channel, index, want, got)

    def _mismatch(self, ref, st, channel, index, want, got):
        traces = {
            ref.adapter.name: list(ref.sim.trace_log or ()),
            st.adapter.name: list(st.sim.trace_log or ()),
        }
        trace_txt = ""
        for name, log in traces.items():
            if log:
                lines = "\n".join(f"    {c:5}: {t}" for c, t in log)
                trace_txt += f"\n  last cycles of {name}:\n{lines}"
        return CoSimMismatch(
            f"{st.adapter.name} diverges from {ref.adapter.name} on "
            f"channel {channel!r}, transaction #{index}: expected "
            f"(cycle {want[0]}, msg {want[1]:#x}), got "
            f"(cycle {got[0]}, msg {got[1]:#x}) [{self.compare}]"
            + trace_txt,
            ref=ref.adapter.name, dut=st.adapter.name, channel=channel,
            index=index, expected=want, actual=got, traces=traces)

    def _compare_final(self, states, result):
        """Stream lengths, grouped substreams, and final states."""
        ref = states[0]
        for st in states[1:]:
            for name, mon in st.monitors.items():
                ref_list = ref.transfers(name)
                dut_list = mon.transfers
                if self.group_key is not None \
                        and self.compare == "cycle_tolerant":
                    self._compare_grouped(ref, st, name,
                                          ref_list, dut_list)
                if len(ref_list) != len(dut_list):
                    want = (("<none>", 0) if len(ref_list) <= len(dut_list)
                            else ref_list[len(dut_list)])
                    got = (("<none>", 0) if len(dut_list) <= len(ref_list)
                           else dut_list[len(ref_list)])
                    raise CoSimMismatch(
                        f"{st.adapter.name} produced {len(dut_list)} "
                        f"transfers on {name!r} but "
                        f"{ref.adapter.name} produced {len(ref_list)}",
                        ref=ref.adapter.name, dut=st.adapter.name,
                        channel=name, index=min(len(ref_list),
                                                len(dut_list)),
                        expected=want, actual=got)
            want_state = ref.adapter.final_state()
            got_state = st.adapter.final_state()
            if want_state != got_state:
                raise CoSimMismatch(
                    f"final state of {st.adapter.name} differs from "
                    f"{ref.adapter.name}:\n  ref: {want_state}\n  "
                    f"dut: {got_state}",
                    ref=ref.adapter.name, dut=st.adapter.name,
                    channel="<final_state>", index=0,
                    expected=(0, 0), actual=(0, 0))

    def _compare_grouped(self, ref, st, name, ref_list, dut_list):
        """Per-group ordered comparison for streams that only promise
        partial order (e.g. network packets per src/dest pair)."""
        key = self.group_key

        def grouped(transfers):
            groups = {}
            for c, m in transfers:
                groups.setdefault(key(m), []).append(m)
            return groups

        ref_groups, dut_groups = grouped(ref_list), grouped(dut_list)
        for group in sorted(set(ref_groups) | set(dut_groups), key=str):
            want = ref_groups.get(group, [])
            got = dut_groups.get(group, [])
            if want != got:
                idx = next(
                    (i for i, (a, b) in enumerate(zip(want, got))
                     if a != b), min(len(want), len(got)))
                raise CoSimMismatch(
                    f"{st.adapter.name} diverges from "
                    f"{ref.adapter.name} on {name!r} group {group!r} "
                    f"at position {idx}: expected "
                    f"{want[idx:idx + 3]}, got {got[idx:idx + 3]}",
                    ref=ref.adapter.name, dut=st.adapter.name,
                    channel=name, index=idx,
                    expected=(0, want[idx] if idx < len(want) else 0),
                    actual=(0, got[idx] if idx < len(got) else 0))

    # -- divergence forensics -------------------------------------------

    def _divergence_bundles(self, exc):
        """Export each DUT's armed recorder windows on a mismatch.

        Opt-in: an explicit ``bundle_dir``, a recorder ``autodump``
        directory, or ``$REPRO_OBSERVE_DIR`` must name a destination.
        Never raises — forensics must not mask the divergence."""
        import os
        out_dir = self.bundle_dir
        if out_dir is None:
            for d in self.duts:
                for rec in getattr(d.sim, "_recorders", ()):
                    if rec.autodump:
                        out_dir = rec.autodump
                        break
                if out_dir is not None:
                    break
        if out_dir is None and not os.environ.get("REPRO_OBSERVE_DIR"):
            return {}
        from ..observe.forensics import export_bundle
        bundles = {}
        for d in self.duts:
            try:
                path = export_bundle(
                    d.sim, out_dir, reason="cosim-divergence",
                    tag=f"cosim_{d.name}_c{d.sim.ncycles}",
                    extra={"error": str(exc), "dut": d.name,
                           "mismatch": {
                               "ref": exc.ref, "dut": exc.dut,
                               "channel": exc.channel,
                               "index": exc.index}})
            except Exception:
                path = None
            if path is not None:
                bundles[d.name] = path
        return bundles
