"""Differential verification: constrained-random co-simulation of
FL/CL/RTL models across every simulator substrate.

The framework's central claim is that models at different abstraction
levels — and the same model on different execution backends (event
scheduler, static scheduler, mega-cycle kernel, SimJIT) — are
interchangeable.  This package makes that claim continuously testable:

- :mod:`.strategies` — seedable corner-biased random value/transaction
  generators and deterministic backpressure schedules;
- :mod:`.cosim` — :class:`CoSimHarness`, lockstep differential
  co-simulation with cycle-exact and cycle-tolerant comparison modes;
- :mod:`.monitors` — val/rdy protocol checkers and a scoreboard;
- :mod:`.shrink` — greedy failure shrinking and standalone pytest
  repro emission;
- :mod:`.coverage` — functional-coverage bins reported per run;
- :mod:`.duts` — adapter factories for the cache, mesh, processor, and
  accelerator-tile case studies.

Constrained-random values come from corner-biased strategies driven by
a seedable RNG with stable named substreams:

    >>> from repro.verif import RNG, BitsStrategy
    >>> rng = RNG(42)
    >>> strat = BitsStrategy(8)
    >>> all(0 <= strat.sample(rng) < 256 for _ in range(64))
    True
    >>> RNG(7).fork("req").random() == RNG(7).fork("req").random()
    True

Protocol monitors catch val/rdy contract breaches, like a producer
revoking a stalled offer:

    >>> from repro.verif import ValRdyMonitor
    >>> mon = ValRdyMonitor("resp")
    >>> mon.observe(0, val=1, rdy=0, msg=0xAB)   # offer, sink stalled
    >>> mon.observe(1, val=0, rdy=1, msg=0xAB)   # offer revoked: bug
    >>> [v.rule for v in mon.violations]
    ['val_drop']

A :class:`CoSimHarness` drives N implementations of one interface in
lockstep from shared stimulus and diffs their output transactions
online — here the same RTL queue on the event-driven versus the
static-scheduled simulator, which must agree bit-for-bit and
cycle-for-cycle:

    >>> from repro.components.queues import NormalQueue
    >>> from repro.verif import CoSimHarness, DutAdapter
    >>> def point(name, sched):
    ...     q = NormalQueue(2, 8).elaborate()
    ...     return DutAdapter(name, q, drives={"enq": q.enq},
    ...                       captures={"deq": q.deq}, sched=sched)
    >>> harness = CoSimHarness([point("event", "event"),
    ...                         point("static", "static")])
    >>> result = harness.run({"enq": [1, 2, 3]})
    >>> result.ntransactions("deq")
    3

On a mismatch, the shrinker reduces the failing stimulus to a minimal
core (here: the single transaction a predicate cares about):

    >>> from repro.verif import shrink_stimulus
    >>> shrink_stimulus({"a": [3, 1, 7, 2, 9]},
    ...                 lambda stim: 7 in stim["a"])
    {'a': [7]}
"""

from .coverage import Coverage, classify_mem_request, classify_net_message
from .cosim import (
    Channel,
    CoSimHarness,
    CoSimMismatch,
    CoSimProtocolError,
    CoSimResult,
    CoSimTimeout,
    DutAdapter,
)
from .duts import (
    make_cache_dut,
    make_mesh_dut,
    make_proc_dut,
    make_tile_dut,
    random_minrisc_program,
)
from .monitors import ProtocolViolation, Scoreboard, ValRdyMonitor
from .shrink import emit_repro, shrink_cosim_failure, shrink_stimulus
from .strategies import (
    RNG,
    BitsStrategy,
    BitStructStrategy,
    ChoiceStrategy,
    IntRangeStrategy,
    backpressure_pattern,
    mem_request_strategy,
    net_message_strategy,
    presence_pattern,
)

__all__ = [
    "RNG",
    "BitsStrategy",
    "BitStructStrategy",
    "ChoiceStrategy",
    "IntRangeStrategy",
    "backpressure_pattern",
    "presence_pattern",
    "mem_request_strategy",
    "net_message_strategy",
    "ProtocolViolation",
    "ValRdyMonitor",
    "Scoreboard",
    "Coverage",
    "classify_mem_request",
    "classify_net_message",
    "Channel",
    "DutAdapter",
    "CoSimHarness",
    "CoSimResult",
    "CoSimMismatch",
    "CoSimProtocolError",
    "CoSimTimeout",
    "make_cache_dut",
    "make_mesh_dut",
    "make_proc_dut",
    "make_tile_dut",
    "random_minrisc_program",
    "emit_repro",
    "shrink_cosim_failure",
    "shrink_stimulus",
]
