"""Protocol monitors and scoreboard for val/rdy channels.

The latency-insensitive protocol (paper Section II) has two rules
beyond "transfer happens when val & rdy":

1. **no val-drop** — once a producer asserts ``val`` it must keep it
   asserted until the cycle the transfer completes (a producer may not
   revoke an offer just because the consumer stalled);
2. **payload stability** — while an offer is stalled, ``msg`` must hold
   its value (the consumer may latch it on the accepting edge only).

A :class:`ValRdyMonitor` observes one channel's ``(val, rdy, msg)``
each cycle and records violations; the cosim harness attaches one per
captured channel so a protocol bug is reported even when both
implementations agree (they could agree *and* both be wrong).

The :class:`Scoreboard` does in-order expected-vs-actual matching with
an optional key function, used for golden-model checks and by the
monitor unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProtocolViolation", "ValRdyMonitor", "Scoreboard"]


@dataclass
class ProtocolViolation:
    """One observed breach of the val/rdy contract."""

    channel: str
    cycle: int
    rule: str           # "val_drop" | "payload_change"
    detail: str

    def __str__(self):
        return f"[{self.channel} @ cycle {self.cycle}] {self.rule}: " \
               f"{self.detail}"


class ValRdyMonitor:
    """Watches one val/rdy channel for protocol violations.

    Feed it ``observe(cycle, val, rdy, msg)`` once per cycle with the
    values sampled just before the clock edge.  Completed transfers are
    appended to ``transfers`` as ``(cycle, msg)`` pairs; violations to
    ``violations``.

    Passive taps that only record a *filtered* subset of transfers set
    ``check=False``: protocol rules over a partial view would produce
    false positives.
    """

    def __init__(self, channel="ch", check=True):
        self.channel = channel
        self.check = check
        self.transfers = []
        self.violations = []
        self._stalled = False       # offer pending from a previous cycle
        self._held_msg = None

    def reset(self):
        self._stalled = False
        self._held_msg = None

    def observe(self, cycle, val, rdy, msg):
        val, rdy, msg = int(val), int(rdy), int(msg)
        if self._stalled and self.check:
            if not val:
                self.violations.append(ProtocolViolation(
                    self.channel, cycle, "val_drop",
                    f"val deasserted while offer {self._held_msg:#x} "
                    f"was still waiting for rdy"))
                self._stalled = False
                self._held_msg = None
                return
            if msg != self._held_msg:
                self.violations.append(ProtocolViolation(
                    self.channel, cycle, "payload_change",
                    f"msg changed {self._held_msg:#x} -> {msg:#x} "
                    f"before the offer was accepted"))
                self._held_msg = msg    # track the new payload onward
        if val and rdy:
            self.transfers.append((cycle, msg))
            self._stalled = False
            self._held_msg = None
        elif val:
            if not self._stalled:
                self._held_msg = msg
            self._stalled = True

    @property
    def ok(self):
        return not self.violations


class Scoreboard:
    """In-order expected-vs-actual matcher.

    ``key`` (optional) projects each message before comparison, e.g. to
    ignore a don't-care field.  Mismatches accumulate in
    ``mismatches`` as ``(index, expected, actual)`` tuples; extra
    actuals with an empty expected queue are recorded as
    ``(index, None, actual)``.
    """

    def __init__(self, expected=(), key=None):
        self._expected = list(expected)
        self._key = key if key is not None else (lambda m: m)
        self._idx = 0
        self.mismatches = []

    def push_expected(self, msg):
        self._expected.append(msg)

    def push_actual(self, msg):
        idx = self._idx
        self._idx += 1
        if idx >= len(self._expected):
            self.mismatches.append((idx, None, msg))
            return False
        want = self._expected[idx]
        if self._key(want) != self._key(msg):
            self.mismatches.append((idx, want, msg))
            return False
        return True

    @property
    def pending(self):
        """Expected messages not yet matched."""
        return self._expected[self._idx:]

    @property
    def ok(self):
        return not self.mismatches and not self.pending
