"""Constrained-random value and transaction generators.

The differential harness (:mod:`.cosim`) needs stimulus that is (a)
reproducible from a single integer seed, (b) biased toward the corner
values where HDL-style arithmetic goes wrong (zero, all-ones, sign
boundaries, one-hot patterns), and (c) shaped like real traffic
(bursts, idle gaps, backpressure).  Strategies are small objects with a
``sample(rng)`` method; everything downstream of one ``RNG`` seed is
deterministic, so a failing run can be replayed — and shrunk
(:mod:`.shrink`) — exactly.
"""

from __future__ import annotations

import random
import zlib

from ..core.bits import Bits
from ..core.bitstruct import BitStruct

__all__ = [
    "RNG",
    "BitsStrategy",
    "BitStructStrategy",
    "ChoiceStrategy",
    "IntRangeStrategy",
    "mem_request_strategy",
    "net_message_strategy",
    "backpressure_pattern",
    "presence_pattern",
]


class RNG(random.Random):
    """Seedable random stream with deterministic named substreams.

    ``fork(label)`` derives an independent stream from the parent seed
    and a string label, so adding one more consumer of randomness never
    perturbs the values every *other* consumer sees — the property that
    keeps shrunk repros stable across harness refactors.
    """

    def __init__(self, seed=0):
        self._seed = int(seed)
        super().__init__(self._seed)

    def fork(self, label):
        mix = zlib.crc32(str(label).encode()) & 0xFFFFFFFF
        return RNG(self._seed * 0x9E3779B1 + mix)


def _corner_values(nbits):
    """Classic trouble spots for ``nbits``-wide arithmetic."""
    top = (1 << nbits) - 1
    corners = {0, 1, top, top - 1}
    if nbits > 1:
        sign = 1 << (nbits - 1)
        corners.update((sign, sign - 1, sign + 1))
    for shift in range(nbits):
        corners.add(1 << shift)
    return sorted(v for v in corners if 0 <= v <= top)


class BitsStrategy:
    """Random ``nbits``-wide values, biased toward corner cases.

    ``corner_bias`` is the probability of drawing from the corner set
    (0, 1, max, max-1, the signed boundary, one-hot patterns) instead
    of a uniform value.
    """

    def __init__(self, nbits, corner_bias=0.25):
        self.nbits = nbits
        self.corner_bias = corner_bias
        self._corners = _corner_values(nbits)

    def sample(self, rng):
        if rng.random() < self.corner_bias:
            return rng.choice(self._corners)
        return rng.getrandbits(self.nbits)


class IntRangeStrategy:
    """Uniform integers in ``[lo, hi]`` (inclusive), with a bias toward
    the endpoints."""

    def __init__(self, lo, hi, corner_bias=0.1):
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        self.lo, self.hi = lo, hi
        self.corner_bias = corner_bias

    def sample(self, rng):
        if rng.random() < self.corner_bias:
            return rng.choice((self.lo, self.hi))
        return rng.randint(self.lo, self.hi)


class ChoiceStrategy:
    """Weighted choice over a fixed population.

    ``choices`` is a list of values or ``(value, weight)`` pairs.
    """

    def __init__(self, choices):
        population, weights = [], []
        for item in choices:
            if isinstance(item, tuple) and len(item) == 2:
                value, weight = item
            else:
                value, weight = item, 1.0
            population.append(value)
            weights.append(float(weight))
        self._population = population
        self._weights = weights

    def sample(self, rng):
        return rng.choices(self._population, weights=self._weights)[0]


class BitStructStrategy:
    """Samples a packed-``int`` value of a ``BitStruct`` message type.

    By default every field is drawn from a corner-biased
    :class:`BitsStrategy` of its width; ``overrides`` maps field names
    to replacement strategies (anything with ``sample(rng)``).

    Returns plain ints (the packed representation) because that is what
    the simulator nets store and what the cosim harness diffs.
    """

    def __init__(self, struct_cls, overrides=None, corner_bias=0.25):
        if not (isinstance(struct_cls, type)
                and issubclass(struct_cls, BitStruct)):
            raise TypeError(f"not a BitStruct subclass: {struct_cls!r}")
        self.struct_cls = struct_cls
        overrides = overrides or {}
        unknown = set(overrides) - set(struct_cls.field_names())
        if unknown:
            raise ValueError(
                f"override for unknown field(s) {sorted(unknown)} of "
                f"{struct_cls.__name__}")
        self._fields = []
        for field in struct_cls._fields:
            strat = overrides.get(
                field.name, BitsStrategy(field.nbits, corner_bias))
            self._fields.append((field.lo, field.nbits, strat))

    def sample(self, rng):
        packed = 0
        for lo, nbits, strat in self._fields:
            value = int(strat.sample(rng)) & ((1 << nbits) - 1)
            packed |= value << lo
        return packed

    def unpack(self, packed):
        """Decode a packed int back into a ``BitStruct`` instance (for
        trace messages and coverage classification)."""
        return self.struct_cls(Bits(self.struct_cls.nbits, packed))


def mem_request_strategy(addr_words=64, addr_base=0, write_frac=0.4,
                         data_nbits=32, corner_bias=0.3):
    """Strategy producing packed ``MemReqMsg`` ints.

    Addresses are word-aligned inside a ``addr_words``-word window
    starting at ``addr_base`` — small enough that random traffic
    actually produces cache hits, evictions, and same-line read/write
    interleavings instead of compulsory misses forever.
    """
    from ..mem.msgs import MEM_REQ_READ, MEM_REQ_WRITE, MemReqMsg

    word = IntRangeStrategy(0, addr_words - 1)
    data = BitsStrategy(data_nbits, corner_bias)
    type_ = ChoiceStrategy(
        [(MEM_REQ_WRITE, write_frac), (MEM_REQ_READ, 1.0 - write_frac)])

    class _MemReqStrategy:
        struct_cls = MemReqMsg

        def sample(self, rng):
            msg = MemReqMsg()
            msg.type_ = type_.sample(rng)
            msg.addr = addr_base + 4 * word.sample(rng)
            msg.data = data.sample(rng)
            return int(msg.to_bits())

        def unpack(self, packed):
            return MemReqMsg(Bits(MemReqMsg.nbits, packed))

    return _MemReqStrategy()


def net_message_strategy(msg_type, src, nterminals, corner_bias=0.25):
    """Strategy producing packed ``NetMsg`` ints injected at terminal
    ``src`` with a uniformly random destination (self-sends included —
    routers must handle them)."""
    dest = IntRangeStrategy(0, nterminals - 1, corner_bias=0.0)
    return BitStructStrategy(
        msg_type, corner_bias=corner_bias,
        overrides={
            "src": ChoiceStrategy([src]),
            "dest": dest,
        })


# -- cycle patterns -----------------------------------------------------------
#
# Backpressure and injection-presence schedules must be pure functions
# of the cycle index: every co-simulated implementation has to see the
# *same* rdy wiggle on the same cycle or cycle-exact comparison would
# diff the testbench instead of the DUTs.


def backpressure_pattern(kind="random", p=0.7, burst=4, seed=0):
    """Return ``f(cycle) -> bool`` deciding sink readiness per cycle.

    - ``"always"`` — sink always ready (max throughput);
    - ``"random"`` — ready with probability ``p`` per cycle;
    - ``"bursty"`` — ``burst`` ready cycles, ``burst`` stalled cycles;
    - ``"never_first"`` — stalled for ``burst`` cycles, then always
      ready (stresses fill-up/drain transients).
    """
    if kind == "always":
        return lambda cycle: True
    if kind == "random":
        def rand(cycle):
            mix = zlib.crc32(f"{seed}:{cycle}".encode()) & 0xFFFFFFFF
            return (mix / 0xFFFFFFFF) < p
        return rand
    if kind == "bursty":
        return lambda cycle: (cycle // burst) % 2 == 0
    if kind == "never_first":
        return lambda cycle: cycle >= burst
    raise ValueError(f"unknown backpressure kind {kind!r}")


def presence_pattern(kind="always", p=0.8, burst=4, seed=0):
    """Return ``f(cycle) -> bool`` deciding whether the source *offers*
    its next transaction this cycle (idle gaps in the request stream)."""
    return backpressure_pattern(kind, p=p, burst=burst, seed=seed + 0x5EED)
