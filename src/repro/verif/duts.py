"""Ready-made :class:`~.cosim.DutAdapter` factories for the case-study
designs: caches, networks, processors, and the accelerator tile.

Each factory names an implementation point in the two-dimensional
verification space the harness sweeps:

- **abstraction level** — ``fl`` / ``cl`` / ``rtl`` models of the same
  interface (compared cycle-tolerant);
- **execution substrate** — ``sched="event"`` / ``"static"`` (which
  includes the mega-cycle kernel when the design allows it) and SimJIT
  compilation of the same model (compared cycle-exact).

The factories build the standard composition around the component (a
cache gets a backing ``TestMemory``, a processor gets its harness, …)
and declare which channels the cosim harness drives, captures, and
taps.
"""

from __future__ import annotations

from ..core import Model
from .cosim import DutAdapter
from .coverage import classify_mem_request, classify_net_message

__all__ = [
    "make_cache_dut",
    "make_mesh_dut",
    "make_proc_dut",
    "make_tile_dut",
    "random_minrisc_program",
    "CACHE_WINDOW_WORDS",
    "PROC_STATE_BASE",
]

# Cache stimulus lives in this many words so random traffic exercises
# hits, refills, and evictions (see mem_request_strategy).
CACHE_WINDOW_WORDS = 256

# Scratch region random MinRISC programs load/store through; the final
# architectural checksum lands here too.
PROC_STATE_BASE = 0x4000

_ALU_R = ["add", "sub", "and", "or", "xor", "slt", "sltu", "mul"]
_ALU_I = ["addi", "andi", "ori", "xori", "slti"]
_BRANCHES = ["beq", "bne", "blt", "bge"]


def random_minrisc_program(rng, length=30, scratch=PROC_STATE_BASE,
                           store_frac=0.10, load_frac=0.10,
                           branch_frac=0.15):
    """Random guaranteed-terminating MinRISC program text.

    Straight-line ALU ops, loads/stores to a small scratch window, and
    forward-only branches (no loops, so every program halts), ending
    with a checksum of r1-r7 stored into the scratch window — the same
    shape as the golden-model property tests, reusable as cosim
    stimulus for processor and tile DUTs.  The instruction-mix
    fractions are tunable: differential sweeps raise ``store_frac`` so
    each program produces a long tapped-store stream to compare.
    """
    alu_frac = 1.0 - store_frac - load_frac - branch_frac
    t_alu_r = alu_frac * 0.7
    t_alu_i = alu_frac
    t_store = alu_frac + store_frac
    t_load = t_store + load_frac
    lines = [f"li r{i}, {rng.randint(-100, 100)}" for i in range(1, 8)]
    lines.append(f"li r9, {scratch}")
    for _ in range(length):
        kind = rng.random()
        rd = rng.randint(1, 7)
        rs1 = rng.randint(1, 7)
        rs2 = rng.randint(1, 7)
        if kind < t_alu_r:
            lines.append(f"{rng.choice(_ALU_R)} r{rd}, r{rs1}, r{rs2}")
        elif kind < t_alu_i:
            imm = rng.randint(-64, 63)
            lines.append(f"{rng.choice(_ALU_I)} r{rd}, r{rs1}, {imm}")
        elif kind < t_store:
            offset = 4 * rng.randint(0, 15)
            lines.append(f"sw r{rd}, {offset}(r9)")
        elif kind < t_load:
            offset = 4 * rng.randint(0, 15)
            lines.append(f"lw r{rd}, {offset}(r9)")
        else:
            skip = rng.randint(1, 3)
            lines.append(
                f"{rng.choice(_BRANCHES)} r{rs1}, r{rs2}, {skip}")
    lines.extend(["nop"] * 3)       # landing pad for trailing branches
    for i in range(1, 8):
        lines.append(f"sw r{i}, {4 * (16 + i)}(r9)")
    lines.append("halt")
    return "\n".join(lines)


def _jit_rtl(component):
    from ..core.simjit import SimJITRTL
    return SimJITRTL(component.elaborate()).specialize()


def make_cache_dut(name, level="rtl", sched="auto", jit=False,
                   nlines=16, assoc=1, mem_latency=2,
                   window_words=CACHE_WINDOW_WORDS):
    """Cache + backing TestMemory.  Drive ``req``, capture ``resp``;
    final state is the backing memory's stimulus window (write-through
    caches must leave identical memory images)."""
    from ..mem import CacheCL, CacheFL, CacheRTL, MemMsg, TestMemory

    mem_msg = MemMsg()
    if level == "fl":
        cache = CacheFL(mem_msg, mem_msg)
    else:
        cls = {"cl": CacheCL, "rtl": CacheRTL}[level]
        cache = cls(mem_msg, mem_msg, nlines=nlines, assoc=assoc)
    if jit:
        if level != "rtl":
            raise ValueError("SimJIT cosim points require level='rtl'")
        cache = _jit_rtl(cache)

    class _CacheHarness(Model):
        def __init__(s):
            s.cache = cache
            s.mem = TestMemory(nports=1, latency=mem_latency,
                               size=1 << 16)
            s.connect(s.cache.mem_ifc.req, s.mem.ports[0].req)
            s.connect(s.cache.mem_ifc.resp, s.mem.ports[0].resp)

        def line_trace(s):
            return (f"{s.cache.cpu_ifc.req.to_str()}>"
                    f"{s.cache.cpu_ifc.resp.to_str()}")

    harness = _CacheHarness().elaborate()
    return DutAdapter(
        name, harness,
        drives={"req": harness.cache.cpu_ifc.req},
        captures={"resp": harness.cache.cpu_ifc.resp},
        sched=sched,
        final_state=lambda m: tuple(
            m.mem.read_word(4 * i) for i in range(window_words)),
        classify=lambda cov, ch, msg: classify_mem_request(cov, msg),
    )


def make_mesh_dut(name, router="rtl", nrouters=4, sched="auto",
                  jit=False, nmsgs=256, data_nbits=16, nentries=2):
    """Network DUT: drive every terminal input, capture every terminal
    output.  ``router`` selects ``fl`` (ideal-crossbar NetworkFL),
    ``cl``, or ``rtl`` mesh routers."""
    from ..net import (
        MeshNetworkStructural,
        NetworkFL,
        RouterCL,
        RouterRTL,
    )

    if router == "fl":
        net = NetworkFL(nrouters, nmsgs, data_nbits, nentries)
    else:
        cls = {"cl": RouterCL, "rtl": RouterRTL}[router]
        net = MeshNetworkStructural(
            cls, nrouters, nmsgs, data_nbits, nentries)
    if jit:
        if router != "rtl":
            raise ValueError("SimJIT cosim points require router='rtl'")
        from ..core.simjit import auto_specialize
        net = auto_specialize(net)
    net.elaborate()

    msg_type = net.msg_type
    return DutAdapter(
        name, net,
        drives={f"in{i}": net.in_[i] for i in range(nrouters)},
        captures={f"out{i}": net.out[i] for i in range(nrouters)},
        sched=sched,
        classify=lambda cov, ch, msg:
            classify_net_message(cov, msg_type, msg),
    )


def _load_words(mem, words, data):
    mem.load(0, words)
    for addr, value in (data or {}).items():
        mem.write_word(addr, value)


def _mem_window(mem, base, nwords):
    return tuple(mem.read_word(base + 4 * i) for i in range(nwords))


def make_proc_dut(name, level, words, data=None, sched="auto", jit=False,
                  mem_latency=1, state_base=0x4000, state_words=64):
    """Self-running processor DUT executing an assembled program.

    No channels are driven; the architectural output is (a) a passive
    tap on the data-memory *write* stream — every FL/CL/RTL refinement
    must issue the same stores in the same order — and (b) the final
    contents of the ``state_base`` scratch window.
    """
    from ..mem import MEM_REQ_WRITE, MemReqMsg
    from ..proc import ProcCL, ProcFL, ProcRTL
    from ..proc.harness import ProcHarness

    proc = {"fl": ProcFL, "cl": ProcCL, "rtl": ProcRTL}[level]()
    if jit:
        if level != "rtl":
            raise ValueError("SimJIT cosim points require level='rtl'")
        proc = _jit_rtl(proc)

    harness = ProcHarness(proc, mem_latency=mem_latency).elaborate()
    _load_words(harness.mem, words, data)

    type_lo, _ = MemReqMsg.field_slice("type_")
    is_write = lambda msg: (msg >> type_lo) & 1 == MEM_REQ_WRITE

    return DutAdapter(
        name, harness,
        taps={"stores": harness.proc.dmem_ifc.req},
        sched=sched,
        done=lambda m: bool(int(m.proc.done)),
        final_state=lambda m: _mem_window(m.mem, state_base, state_words),
    )._with_tap_filter("stores", is_write)


def make_tile_dut(name, levels=("cl", "cl", "cl"), words=(), data=None,
                  sched="auto", jit=False, mem_latency=2,
                  state_base=0x4000, state_words=64):
    """Full compute tile (processor + caches + accelerator) running an
    assembled program; taps the processor's store stream and compares
    the final data-memory window."""
    from ..accel import Tile
    from ..mem import MEM_REQ_WRITE, MemReqMsg

    tile = Tile(levels, mem_latency=mem_latency, jit=jit).elaborate()
    _load_words(tile.mem, words, data)

    type_lo, _ = MemReqMsg.field_slice("type_")
    is_write = lambda msg: (msg >> type_lo) & 1 == MEM_REQ_WRITE

    return DutAdapter(
        name, tile,
        taps={"stores": tile.proc.dmem_ifc.req},
        sched=sched,
        done=lambda m: bool(int(m.proc.done)),
        final_state=lambda m: _mem_window(m.mem, state_base, state_words),
    )._with_tap_filter("stores", is_write)
