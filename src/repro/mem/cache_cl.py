"""CL cache: set-associative, blocking, cycle-approximate timing.

Captures the timing behaviour that matters for design-space
exploration: single-cycle hits, multi-cycle line refills on read
misses, and write-through (no-allocate) writes.  Data is mirrored in
the cache so reads after refill hit locally.

Geometry: 4-word (16-byte) lines, ``nlines`` total lines organized as
``nlines/assoc`` sets of ``assoc`` ways with LRU replacement
(``assoc=1`` is the paper's direct-mapped configuration).
"""

from __future__ import annotations

from ..core import (
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    Model,
    ParentReqRespBundle,
    ParentReqRespQueueAdapter,
    clog2,
)
from .msgs import MEM_REQ_WRITE, MemReqMsg, MemRespMsg

WORDS_PER_LINE = 4
LINE_BYTES = 4 * WORDS_PER_LINE


class CacheCL(Model):
    """Blocking set-associative write-through cache, cycle-level.

    ``assoc=1`` (the default) gives the direct-mapped cache of the
    paper's tile; higher associativities use LRU replacement.  ``nlines``
    counts total lines, so ``nlines=64, assoc=2`` is 32 sets x 2 ways.
    """

    def __init__(s, mem_ifc_types, cpu_ifc_types, nlines=64, assoc=1):
        if nlines % assoc:
            raise ValueError("nlines must be a multiple of assoc")
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.cpu = ChildReqRespQueueAdapter(s.cpu_ifc)
        s.mem = ParentReqRespQueueAdapter(s.mem_ifc)

        s.nlines = nlines
        s.assoc = assoc
        s.nsets = nlines // assoc
        s.idx_bits = clog2(s.nsets)
        # Per-set way lists in LRU order (index 0 = most recent):
        # each way is [tag, data_words].
        s.sets = [[] for _ in range(s.nsets)]

        # Miss-handling state.
        s.state = "idle"            # idle | refill | writethru
        s.cur_req = None
        s.refill_sent = 0
        s.refill_got = 0
        s.refill_words = []

        # Statistics for evaluation.  The plain ints are the historical
        # API (tests and harnesses read them directly); state-backed
        # counters expose them through sim.telemetry and survive
        # SimJIT-CL specialization.
        s.num_accesses = 0
        s.num_misses = 0
        s.counter("accesses", "CPU requests accepted",
                  state=("num_accesses",))
        s.counter("misses", "read misses (line refills)",
                  state=("num_misses",))
        s.ctr_hits = s.counter("hits", "single-cycle read hits")
        s.ctr_evictions = s.counter("evictions", "LRU lines evicted")
        s.ctr_writebacks = s.counter(
            "writebacks", "write-through requests forwarded to memory")

        @s.tick_cl
        def logic():
            s.cpu.xtick()
            s.mem.xtick()
            if s.reset:
                s.state = "idle"
                s.cur_req = None
                return
            if s.state == "idle":
                s._idle_tick()
            elif s.state == "refill":
                s._refill_tick()
            elif s.state == "writethru":
                s._writethru_tick()

    # -- address helpers ---------------------------------------------------

    def _split(s, addr):
        word = (addr >> 2) & (WORDS_PER_LINE - 1)
        idx = (addr >> (2 + clog2(WORDS_PER_LINE))) & (s.nsets - 1)
        tag = addr >> (2 + clog2(WORDS_PER_LINE) + s.idx_bits)
        return tag, idx, word

    def _line_base(s, addr):
        return addr & ~(LINE_BYTES - 1)

    def _lookup(s, idx, tag, touch=True):
        """Return the hitting way ([tag, words]) or None; hits move to
        the MRU position when ``touch`` is set."""
        ways = s.sets[idx]
        for i, way in enumerate(ways):
            if way[0] == tag:
                if touch and i != 0:
                    ways.insert(0, ways.pop(i))
                return way
        return None

    # -- state machine -------------------------------------------------------

    def _idle_tick(s):
        if s.cpu.req_q.empty() or s.cpu.resp_q.full():
            return
        req = s.cpu.get_req()
        s.num_accesses += 1
        tag, idx, word = s._split(int(req.addr))
        way = s._lookup(idx, tag)
        if int(req.type_) == MEM_REQ_WRITE:
            # Write-through: update local copy on hit, always forward.
            if way is not None:
                way[1][word] = int(req.data)
            s.cur_req = req
            s.state = "writethru"
            s._writethru_tick()
        elif way is not None:
            # Read hit: single-cycle response.
            s.ctr_hits.incr()
            s.cpu.push_resp(MemRespMsg.mk(0, way[1][word]))
        else:
            # Read miss: burst-refill the whole line.
            s.num_misses += 1
            s.cur_req = req
            s.refill_sent = 0
            s.refill_got = 0
            s.refill_words = []
            s.state = "refill"
            s._refill_tick()

    def _refill_tick(s):
        base = s._line_base(int(s.cur_req.addr))
        if s.refill_sent < WORDS_PER_LINE and not s.mem.req_q.full():
            s.mem.push_req(MemReqMsg.mk_rd(base + 4 * s.refill_sent))
            s.refill_sent += 1
        if not s.mem.resp_q.empty():
            s.refill_words.append(int(s.mem.get_resp().data))
            s.refill_got += 1
        if s.refill_got == WORDS_PER_LINE and not s.cpu.resp_q.full():
            tag, idx, word = s._split(int(s.cur_req.addr))
            ways = s.sets[idx]
            ways.insert(0, [tag, list(s.refill_words)])
            if len(ways) > s.assoc:
                ways.pop()           # evict LRU (write-through: clean)
                s.ctr_evictions.incr()
            s.cpu.push_resp(MemRespMsg.mk(0, ways[0][1][word]))
            s.cur_req = None
            s.state = "idle"

    def _writethru_tick(s):
        if s.cur_req is not None and not s.mem.req_q.full():
            s.mem.push_req(
                MemReqMsg.mk_wr(int(s.cur_req.addr), int(s.cur_req.data))
            )
            s.ctr_writebacks.incr()
            s.cur_req = None
        if s.cur_req is None and not s.mem.resp_q.empty():
            s.mem.get_resp()
            s.cpu.push_resp(MemRespMsg.mk(MEM_REQ_WRITE, 0))
            s.state = "idle"

    def miss_rate(s):
        """Observed miss rate (reads only count toward misses)."""
        if not s.num_accesses:
            return 0.0
        return s.num_misses / s.num_accesses

    def line_trace(s):
        return f"[{s.state[:1]}]{s.cpu_ifc.req.to_str()}"
