"""Memory request/response message types.

The processor, caches, accelerator, and test memory all speak this
little protocol over val/rdy channels:

- ``MemReqMsg``  : type_ (0 = read, 1 = write), 32-bit address, 32-bit
  write data;
- ``MemRespMsg`` : type_ echo, 32-bit read data.

``MemMsg`` bundles the two for interface parameterization (the
``mem_ifc_types`` constructor argument used throughout the paper's
Figures 7-9).
"""

from __future__ import annotations

from ..core import BitStruct, Field, ReqRespMsgTypes

MEM_REQ_READ = 0
MEM_REQ_WRITE = 1


class MemReqMsg(BitStruct):
    type_ = Field(1)
    addr = Field(32)
    data = Field(32)

    @classmethod
    def mk_rd(cls, addr):
        msg = cls()
        msg.type_ = MEM_REQ_READ
        msg.addr = addr
        return msg

    @classmethod
    def mk_wr(cls, addr, data):
        msg = cls()
        msg.type_ = MEM_REQ_WRITE
        msg.addr = addr
        msg.data = data
        return msg


class MemRespMsg(BitStruct):
    type_ = Field(1)
    data = Field(32)

    @classmethod
    def mk(cls, type_, data):
        msg = cls()
        msg.type_ = type_
        msg.data = data
        return msg


class MemMsg(ReqRespMsgTypes):
    """Memory interface types: ``MemMsg().req`` / ``.resp``."""

    def __init__(self):
        super().__init__(MemReqMsg, MemRespMsg)
