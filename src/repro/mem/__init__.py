"""Memory substrate: message types, magic test memory, and blocking
direct-mapped caches at FL/CL/RTL detail."""

from .banked import BankedCacheRTL
from .cache_cl import CacheCL
from .cache_fl import CacheFL
from .cache_rtl import CacheRTL
from .msgs import (
    MEM_REQ_READ,
    MEM_REQ_WRITE,
    MemMsg,
    MemReqMsg,
    MemRespMsg,
)
from .test_memory import TestMemory

__all__ = [
    "MemMsg", "MemReqMsg", "MemRespMsg",
    "MEM_REQ_READ", "MEM_REQ_WRITE",
    "TestMemory",
    "CacheFL", "CacheCL", "CacheRTL", "BankedCacheRTL",
]
