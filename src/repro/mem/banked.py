"""BankedCacheRTL: a bank-interleaved cache subsystem.

``nbanks`` independent :class:`CacheRTL` banks sit behind per-bank
request/response queues (decoupling the requester from each bank's
blocking FSM) and share one multi-port :class:`TestMemory` as the
backing store — the usual shape of a banked last-level cache in front
of a single memory controller model.

Besides its architectural role, the subsystem is the cache workload of
the scheduling benchmark (``benchmarks/bench_sched_speedup.py``): with
a single requester most banks are idle on any given cycle, which is
exactly the activity profile where the static scheduler's tick gating
pays off.
"""

from __future__ import annotations

from ..components import NormalQueue
from ..core import Model
from .cache_rtl import CacheRTL
from .msgs import MemMsg
from .test_memory import TestMemory


class BankedCacheRTL(Model):
    """``nbanks`` queued cache banks over one shared backing memory.

    Each bank ``b`` exposes its request side as ``s.req_q[b].enq`` and
    its response side as ``s.resp_q[b].deq`` (normal val/rdy queue
    endpoints).  Bank selection is the requester's job — address
    interleaving policy stays outside the model.
    """

    def __init__(s, nbanks=4, nlines=16, nentries=2, mem_latency=2,
                 mem_size=1 << 16):
        mm = MemMsg()
        s.nbanks = nbanks
        s.msg_type = mm
        s.banks = [CacheRTL(mm, mm, nlines=nlines) for _ in range(nbanks)]
        s.req_q = [NormalQueue(nentries, mm.req) for _ in range(nbanks)]
        s.resp_q = [NormalQueue(nentries, mm.resp) for _ in range(nbanks)]
        s.mem = TestMemory(nports=nbanks, latency=mem_latency,
                           size=mem_size)
        for b in range(nbanks):
            bank = s.banks[b]
            s.connect(s.req_q[b].deq.msg, bank.cpu_ifc.req_msg)
            s.connect(s.req_q[b].deq.val, bank.cpu_ifc.req_val)
            s.connect(s.req_q[b].deq.rdy, bank.cpu_ifc.req_rdy)
            s.connect(bank.cpu_ifc.resp_msg, s.resp_q[b].enq.msg)
            s.connect(bank.cpu_ifc.resp_val, s.resp_q[b].enq.val)
            s.connect(bank.cpu_ifc.resp_rdy, s.resp_q[b].enq.rdy)
            s.connect(bank.mem_ifc.req, s.mem.ports[b].req)
            s.connect(bank.mem_ifc.resp, s.mem.ports[b].resp)

    def num_accesses(s):
        return sum(bank.num_accesses for bank in s.banks)

    def num_misses(s):
        return sum(bank.num_misses for bank in s.banks)

    def line_trace(s):
        return "|".join(str(int(bank.state)) for bank in s.banks)
