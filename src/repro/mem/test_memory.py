"""TestMemory: FL magic memory with port-based latency-insensitive
interfaces.

The memory responds to read/write requests over one or more val/rdy
request/response channels with a configurable fixed latency.  It is the
substrate under the accelerator (paper Figures 7-9) and the processor
case studies, and also serves FL-composition roles: because it exposes
the same interface as the caches, test benches swap freely between
"magic" and realistic memory systems.
"""

from __future__ import annotations

from collections import deque

from ..core import ChildReqRespBundle, Model
from .msgs import MEM_REQ_WRITE, MemMsg, MemRespMsg


class TestMemory(Model):
    """Magic word-addressable memory.

    Parameters
    ----------
    nports : number of independent request/response ports.
    latency : cycles between request acceptance and response validity
        (minimum 1: a request accepted at edge N produces a response no
        earlier than edge N+1, like a synchronous SRAM).
    size : bytes of backing storage.
    """

    __test__ = False      # not a pytest class, despite the name

    def __init__(s, nports=1, latency=1, size=1 << 20):
        mem_msg = MemMsg()
        s.ports = [ChildReqRespBundle(mem_msg) for _ in range(nports)]
        s.nports = nports
        s.latency = max(1, latency)
        s.size = size
        s.mem = bytearray(size)
        # Per-port FIFO of (ready_cycle, resp_bits) awaiting delivery.
        s.pending = [deque() for _ in range(nports)]
        s.cycle_count = 0

        @s.tick_fl
        def logic():
            s.cycle_count += 1
            if s.reset:
                for i in range(s.nports):
                    s.pending[i].clear()
                    s.ports[i].req_rdy.next = 0
                    s.ports[i].resp_val.next = 0
                return
            for i in range(s.nports):
                s._port_tick(i)

    def _port_tick(s, i):
        port = s.ports[i]
        pending = s.pending[i]

        # Response delivered on the last edge?
        if int(port.resp_val) and int(port.resp_rdy):
            pending.popleft()

        # Accept a new request?
        if int(port.req_val) and int(port.req_rdy):
            req = port.req_msg.value
            resp = s._process(req)
            pending.append((s.cycle_count + s.latency - 1, resp))

        # Drive next-cycle outputs.
        port.req_rdy.next = len(pending) < 4
        if pending and pending[0][0] <= s.cycle_count:
            port.resp_val.next = 1
            port.resp_msg.next = pending[0][1]
        else:
            port.resp_val.next = 0

    def _process(s, req):
        addr = int(req.addr) & (s.size - 1) & ~0x3
        if int(req.type_) == MEM_REQ_WRITE:
            data = int(req.data)
            s.mem[addr:addr + 4] = data.to_bytes(4, "little")
            return MemRespMsg.mk(MEM_REQ_WRITE, 0)
        data = int.from_bytes(s.mem[addr:addr + 4], "little")
        return MemRespMsg.mk(0, data)

    # -- direct (backdoor) access for test setup ---------------------------

    def write_word(s, addr, value):
        """Backdoor word write for test initialization."""
        addr &= (s.size - 1) & ~0x3
        s.mem[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def read_word(s, addr):
        """Backdoor word read for test checking."""
        addr &= (s.size - 1) & ~0x3
        return int.from_bytes(s.mem[addr:addr + 4], "little")

    def load(s, base, words):
        """Backdoor bulk load of a word list starting at ``base``."""
        for i, word in enumerate(words):
            s.write_word(base + 4 * i, word)

    def line_trace(s):
        return "|".join(
            f"{p.req.to_str()}>{p.resp.to_str()}" for p in s.ports
        )
