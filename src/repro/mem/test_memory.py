"""TestMemory: FL magic memory with port-based latency-insensitive
interfaces.

The memory responds to read/write requests over one or more val/rdy
request/response channels with a configurable fixed latency.  It is the
substrate under the accelerator (paper Figures 7-9) and the processor
case studies, and also serves FL-composition roles: because it exposes
the same interface as the caches, test benches swap freely between
"magic" and realistic memory systems.
"""

from __future__ import annotations

from collections import deque

from ..core import ChildReqRespBundle, Model
from .msgs import MEM_REQ_WRITE, MemMsg, MemRespMsg


class TestMemory(Model):
    """Magic word-addressable memory.

    Parameters
    ----------
    nports : number of independent request/response ports.
    latency : cycles between request acceptance and response validity
        (minimum 1: a request accepted at edge N produces a response no
        earlier than edge N+1, like a synchronous SRAM).
    size : bytes of backing storage.
    """

    __test__ = False      # not a pytest class, despite the name

    def __init__(s, nports=1, latency=1, size=1 << 20):
        mem_msg = MemMsg()
        s.ports = [ChildReqRespBundle(mem_msg) for _ in range(nports)]
        s.nports = nports
        s.latency = max(1, latency)
        s.size = size
        s.mem = bytearray(size)
        # Per-port FIFO of (ready_cycle, resp_bits) awaiting delivery.
        s.pending = [deque() for _ in range(nports)]
        s.cycle_count = 0

        @s.tick_fl
        def logic():
            s.cycle_count += 1
            if s.reset:
                for i in range(s.nports):
                    s.pending[i].clear()
                    s.ports[i].req_rdy.next = 0
                    s.ports[i].resp_val.next = 0
                return
            ports = s.ports
            pendings = s.pending
            for i in range(s.nports):
                port = ports[i]
                # A settled idle port (nothing in flight, no request
                # offered, outputs at their idle values) ticks to an
                # exact no-op — skip the call.
                if (pendings[i] or port.req_val.uint()
                        or port.resp_val.uint()
                        or not port.req_rdy.uint()):
                    s._port_tick(i)

    def _port_tick(s, i):
        port = s.ports[i]
        pending = s.pending[i]

        if not pending:
            # Fast path: no response in flight (``resp_val`` can only
            # be high while ``pending`` holds its message, so there is
            # nothing to retire).  Idle ports write no signals at all.
            if port.req_val.uint() and port.req_rdy.uint():
                resp = s._process(port.req_msg.value)
                pending.append((s.cycle_count + s.latency - 1, resp))
            else:
                if not port.req_rdy.uint():
                    port.req_rdy.next = 1
                if port.resp_val.uint():
                    port.resp_val.next = 0
                return
        else:
            # Response delivered on the last edge?
            if port.resp_val.uint() and port.resp_rdy.uint():
                pending.popleft()
            # Accept a new request?
            if port.req_val.uint() and port.req_rdy.uint():
                resp = s._process(port.req_msg.value)
                pending.append((s.cycle_count + s.latency - 1, resp))

        # Drive next-cycle outputs, writing only on change.
        rdy = 1 if len(pending) < 4 else 0
        if port.req_rdy.uint() != rdy:
            port.req_rdy.next = rdy
        if pending and pending[0][0] <= s.cycle_count:
            port.resp_val.next = 1
            port.resp_msg.next = pending[0][1]
        elif port.resp_val.uint():
            port.resp_val.next = 0

    def _process(s, req):
        addr = int(req.addr) & (s.size - 1) & ~0x3
        if int(req.type_) == MEM_REQ_WRITE:
            data = int(req.data)
            s.mem[addr:addr + 4] = data.to_bytes(4, "little")
            return MemRespMsg.mk(MEM_REQ_WRITE, 0)
        data = int.from_bytes(s.mem[addr:addr + 4], "little")
        return MemRespMsg.mk(0, data)

    # -- direct (backdoor) access for test setup ---------------------------

    def write_word(s, addr, value):
        """Backdoor word write for test initialization."""
        addr &= (s.size - 1) & ~0x3
        s.mem[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def read_word(s, addr):
        """Backdoor word read for test checking."""
        addr &= (s.size - 1) & ~0x3
        return int.from_bytes(s.mem[addr:addr + 4], "little")

    def load(s, base, words):
        """Backdoor bulk load of a word list starting at ``base``."""
        for i, word in enumerate(words):
            s.write_word(base + 4 * i, word)

    def line_trace(s):
        return "|".join(
            f"{p.req.to_str()}>{p.resp.to_str()}" for p in s.ports
        )
