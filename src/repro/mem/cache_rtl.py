"""RTL cache: set-associative, blocking, write-through — full FSM detail.

Cycle-accurate, resource-accurate implementation of the same cache the
CL model approximates: explicit valid/tag/data arrays, an FSM with
refill and write-through states, and raw val/rdy handshaking on both
interfaces.  Geometry matches ``CacheCL`` (4-word lines); supported
associativities are 1 (the paper's direct-mapped tile configuration)
and 2 (one LRU bit per set).  The whole model stays inside the
SimJIT-RTL translatable subset.
"""

from __future__ import annotations

from ..core import (
    ChildReqRespBundle,
    Model,
    ParentReqRespBundle,
    Wire,
    clog2,
)
from .msgs import MEM_REQ_WRITE

WORDS_PER_LINE = 4
LINE_BYTES = 4 * WORDS_PER_LINE

# FSM states
_IDLE = 0
_REFILL = 1
_WRITETHRU_REQ = 2
_WRITETHRU_WAIT = 3
_RESP = 4


class CacheRTL(Model):
    """Blocking set-associative write-through cache, register-transfer
    level."""

    def __init__(s, mem_ifc_types, cpu_ifc_types, nlines=64, assoc=1):
        if assoc not in (1, 2):
            raise ValueError("CacheRTL supports assoc 1 or 2")
        if nlines % assoc:
            raise ValueError("nlines must be a multiple of assoc")
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.nlines = nlines
        s.assoc = assoc
        s.nsets = nlines // assoc
        s.idx_bits = clog2(s.nsets)
        s.off_bits = 2 + clog2(WORDS_PER_LINE)
        s.tag_bits = 32 - s.off_bits - s.idx_bits

        # Storage arrays (indexed by line = set * assoc + way).
        s.valid = [Wire(1) for _ in range(nlines)]
        s.tags = [Wire(s.tag_bits) for _ in range(nlines)]
        s.data = [Wire(32) for _ in range(nlines * WORDS_PER_LINE)]
        # One LRU bit per set (names the least-recently-used way).
        s.lru = [Wire(1) for _ in range(s.nsets)]

        # Latched request and FSM registers.
        s.state = Wire(3)
        s.req_type = Wire(1)
        s.req_addr = Wire(32)
        # Flight-recorder registrations: the FSM state and the latched
        # request are what a post-mortem window needs first.  req_type
        # is latched for debug only (no consumer reads it), so the
        # observe() registration is also what keeps the linter's
        # never-observed-sink check satisfied.
        s.observe(s.state, s.req_type, s.req_addr)
        s.req_data = Wire(32)
        s.victim_line = Wire(max(1, clog2(nlines)))
        s.sent = Wire(3)
        s.got = Wire(3)
        s.resp_data = Wire(32)
        s.resp_type = Wire(1)

        # Statistics counters (real registers, SimJIT-translatable).
        s.access_count = Wire(32)
        s.miss_count = Wire(32)
        s.counter("accesses", "CPU requests accepted",
                  sig=s.access_count)
        s.counter("misses", "read misses (line refills)",
                  sig=s.miss_count)

        from ..telemetry.counters import enabled as _telemetry_enabled
        if _telemetry_enabled():
            # Extra observation registers live in their own gateable
            # tick; when telemetry is disabled nothing is declared, so
            # the disabled design is structurally unchanged.
            s.evict_count = Wire(32)
            s.wb_count = Wire(32)
            s.counter("evictions", "valid lines overwritten by refill",
                      sig=s.evict_count)
            s.counter("writebacks",
                      "write-through requests sent to memory",
                      sig=s.wb_count)

            @s.tick_rtl
            def telemetry_logic():
                if s.reset:
                    s.evict_count.next = 0
                    s.wb_count.next = 0
                else:
                    if s.state.uint() == _REFILL \
                            and s.mem_ifc.resp_val.uint() \
                            and s.mem_ifc.resp_rdy.uint() \
                            and s.got.uint() == WORDS_PER_LINE - 1 \
                            and s.valid[s.victim_line.uint()].uint():
                        s.evict_count.next = s.evict_count + 1
                    if s.state.uint() == _WRITETHRU_REQ \
                            and s.mem_ifc.req_val.uint() \
                            and s.mem_ifc.req_rdy.uint():
                        s.wb_count.next = s.wb_count + 1

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.state.next = _IDLE
                s.access_count.next = 0
                s.miss_count.next = 0
                for i in range(s.nlines):
                    s.valid[i].next = 0
                for i in range(s.nsets):
                    s.lru[i].next = 0
            elif s.state.uint() == _IDLE:
                if s.cpu_ifc.req_val.uint() and s.cpu_ifc.req_rdy.uint():
                    s.access_count.next = s.access_count + 1
                    addr = s.cpu_ifc.req_msg.addr.value.uint()
                    idx = (addr >> s.off_bits) & (s.nsets - 1)
                    tag = addr >> (s.off_bits + s.idx_bits)
                    word = (addr >> 2) & (WORDS_PER_LINE - 1)

                    hit_way = -1
                    for w in range(s.assoc):
                        line = idx * s.assoc + w
                        if s.valid[line].uint() \
                                and s.tags[line].uint() == tag:
                            hit_way = w
                    hit_line = idx * s.assoc + hit_way

                    s.req_type.next = s.cpu_ifc.req_msg.type_.value
                    s.req_addr.next = addr
                    s.req_data.next = s.cpu_ifc.req_msg.data.value
                    if s.cpu_ifc.req_msg.type_.value.uint() \
                            == MEM_REQ_WRITE:
                        if hit_way >= 0:
                            s.data[hit_line * WORDS_PER_LINE
                                   + word].next = \
                                s.cpu_ifc.req_msg.data.value
                            if s.assoc == 2:
                                s.lru[idx].next = 1 - hit_way
                        s.state.next = _WRITETHRU_REQ
                    elif hit_way >= 0:
                        s.resp_data.next = \
                            s.data[hit_line * WORDS_PER_LINE
                                   + word].value
                        s.resp_type.next = 0
                        if s.assoc == 2:
                            s.lru[idx].next = 1 - hit_way
                        s.state.next = _RESP
                    else:
                        s.miss_count.next = s.miss_count + 1
                        # Victim: an invalid way if any, else LRU.
                        victim = s.lru[idx].uint() if s.assoc == 2 else 0
                        for w in range(s.assoc):
                            if s.valid[idx * s.assoc + w].uint() == 0:
                                victim = w
                        s.victim_line.next = idx * s.assoc + victim
                        s.sent.next = 0
                        s.got.next = 0
                        s.state.next = _REFILL
            elif s.state.uint() == _REFILL:
                line = s.victim_line.uint()
                idx = (s.req_addr.uint() >> s.off_bits) & (s.nsets - 1)
                word = (s.req_addr.uint() >> 2) & (WORDS_PER_LINE - 1)
                if s.mem_ifc.req_val.uint() and s.mem_ifc.req_rdy.uint():
                    s.sent.next = s.sent + 1
                if s.mem_ifc.resp_val.uint() \
                        and s.mem_ifc.resp_rdy.uint():
                    got = s.got.uint()
                    s.data[line * WORDS_PER_LINE + got].next = \
                        s.mem_ifc.resp_msg.data.value
                    if got == word:
                        s.resp_data.next = s.mem_ifc.resp_msg.data.value
                    s.got.next = got + 1
                    if got == WORDS_PER_LINE - 1:
                        s.valid[line].next = 1
                        s.tags[line].next = \
                            s.req_addr.uint() >> (s.off_bits + s.idx_bits)
                        if s.assoc == 2:
                            s.lru[idx].next = \
                                1 - (line - idx * s.assoc)
                        s.resp_type.next = 0
                        s.state.next = _RESP
            elif s.state.uint() == _WRITETHRU_REQ:
                if s.mem_ifc.req_val.uint() and s.mem_ifc.req_rdy.uint():
                    s.state.next = _WRITETHRU_WAIT
            elif s.state.uint() == _WRITETHRU_WAIT:
                if s.mem_ifc.resp_val.uint() \
                        and s.mem_ifc.resp_rdy.uint():
                    s.resp_type.next = MEM_REQ_WRITE
                    s.resp_data.next = 0
                    s.state.next = _RESP
            elif s.state.uint() == _RESP:
                if s.cpu_ifc.resp_val.uint() \
                        and s.cpu_ifc.resp_rdy.uint():
                    s.state.next = _IDLE

        @s.combinational
        def comb_logic():
            state = s.state.uint()
            if s.reset.uint():
                state = -1
            s.cpu_ifc.req_rdy.value = state == _IDLE
            s.cpu_ifc.resp_val.value = state == _RESP
            s.cpu_ifc.resp_msg.type_.value = s.resp_type.value
            s.cpu_ifc.resp_msg.data.value = s.resp_data.value

            if state == _REFILL:
                line_base = s.req_addr.uint() & ~(LINE_BYTES - 1)
                s.mem_ifc.req_val.value = s.sent.uint() < WORDS_PER_LINE
                s.mem_ifc.req_msg.type_.value = 0
                s.mem_ifc.req_msg.addr.value = \
                    line_base + 4 * s.sent.uint()
                s.mem_ifc.req_msg.data.value = 0
                s.mem_ifc.resp_rdy.value = 1
            elif state == _WRITETHRU_REQ:
                s.mem_ifc.req_val.value = 1
                s.mem_ifc.req_msg.type_.value = MEM_REQ_WRITE
                s.mem_ifc.req_msg.addr.value = s.req_addr.value
                s.mem_ifc.req_msg.data.value = s.req_data.value
                s.mem_ifc.resp_rdy.value = 0
            elif state == _WRITETHRU_WAIT:
                s.mem_ifc.req_val.value = 0
                s.mem_ifc.resp_rdy.value = 1
            else:
                s.mem_ifc.req_val.value = 0
                s.mem_ifc.resp_rdy.value = 0

    @property
    def num_accesses(s):
        return int(s.access_count)

    @property
    def num_misses(s):
        return int(s.miss_count)

    def miss_rate(s):
        if not s.num_accesses:
            return 0.0
        return s.num_misses / s.num_accesses

    def line_trace(s):
        names = {0: "I", 1: "R", 2: "w", 3: "W", 4: "r"}
        return f"[{names.get(int(s.state), '?')}]"
