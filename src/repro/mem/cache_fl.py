"""FL cache: functionally transparent, no timing model.

Forwards every CPU request to memory and every memory response back to
the CPU.  Used as the golden model for the CL/RTL caches and as the
"magic" memory-system component in mixed-level tile compositions
(paper Section IV-B's <P, C, A> configurations).
"""

from __future__ import annotations

from ..core import (
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    Model,
    ParentReqRespBundle,
    ParentReqRespQueueAdapter,
)


class CacheFL(Model):
    """Pass-through cache model (cpu side in, mem side out)."""

    def __init__(s, mem_ifc_types, cpu_ifc_types):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc_types)
        s.mem_ifc = ParentReqRespBundle(mem_ifc_types)

        s.cpu = ChildReqRespQueueAdapter(s.cpu_ifc)
        s.mem = ParentReqRespQueueAdapter(s.mem_ifc)

        # Every access is a "hit" at FL; the counter keeps the FL/CL/RTL
        # telemetry schema aligned across abstraction levels.
        s.ctr_accesses = s.counter("accesses", "CPU requests forwarded")

        @s.tick_fl
        def logic():
            s.cpu.xtick()
            s.mem.xtick()
            if s.reset:
                return
            if not s.cpu.req_q.empty() and not s.mem.req_q.full():
                s.ctr_accesses.incr()
                s.mem.push_req(s.cpu.get_req())
            if not s.mem.resp_q.empty() and not s.cpu.resp_q.full():
                s.cpu.push_resp(s.mem.get_resp())

    def line_trace(s):
        return f"{s.cpu_ifc.req.to_str()}>{s.cpu_ifc.resp.to_str()}"
