"""Latency-insensitive val/rdy queues at RTL, CL, and FL detail.

Queues are the canonical latency-insensitive component: backpressure
propagates through the ``rdy`` signals, so producers and consumers can
be composed without global stall logic (paper Section II).  The RTL
variants are Verilog-translatable; all variants expose identical
``enq``/``deq`` interfaces so they can substitute for one another in
mixed-level simulations.
"""

from __future__ import annotations

from collections import deque

from ..core import (
    InPort,
    InValRdyBundle,
    Model,
    OutPort,
    OutValRdyBundle,
    Wire,
    bw,
)


class NormalQueue(Model):
    """RTL circular-buffer FIFO with registered output state.

    A message enqueued in cycle N is visible on ``deq`` in cycle N+1.
    """

    def __init__(s, nentries, msg_type):
        if nentries < 1:
            raise ValueError("nentries must be >= 1")
        s.enq = InValRdyBundle(msg_type)
        s.deq = OutValRdyBundle(msg_type)
        s.nentries = nentries

        ptr_bits = bw(nentries)
        s.entries = [Wire(s.enq.msg.nbits) for _ in range(nentries)]
        s.enq_ptr = Wire(ptr_bits)
        s.deq_ptr = Wire(ptr_bits)
        s.count = Wire(bw(nentries + 1))

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.enq_ptr.next = 0
                s.deq_ptr.next = 0
                s.count.next = 0
            else:
                do_enq = s.enq.val.uint() and s.enq.rdy.uint()
                do_deq = s.deq.val.uint() and s.deq.rdy.uint()
                if do_enq:
                    s.entries[s.enq_ptr.uint()].next = s.enq.msg.uint()
                    if s.enq_ptr.uint() == s.nentries - 1:
                        s.enq_ptr.next = 0
                    else:
                        s.enq_ptr.next = s.enq_ptr.uint() + 1
                if do_deq:
                    if s.deq_ptr.uint() == s.nentries - 1:
                        s.deq_ptr.next = 0
                    else:
                        s.deq_ptr.next = s.deq_ptr.uint() + 1
                if do_enq and not do_deq:
                    s.count.next = s.count.uint() + 1
                elif do_deq and not do_enq:
                    s.count.next = s.count.uint() - 1

        @s.combinational
        def comb_logic():
            s.enq.rdy.value = s.count.uint() != s.nentries
            s.deq.val.value = s.count.uint() != 0
            s.deq.msg.value = s.entries[s.deq_ptr.uint()].uint()

    def line_trace(s):
        return f"({int(s.count)}/{s.nentries})"


class BypassQueue(Model):
    """RTL single-element bypass queue: an arriving message is visible
    on ``deq`` in the *same* cycle when the queue is empty (the
    elastic-buffer building block used by the mesh routers)."""

    def __init__(s, msg_type):
        s.enq = InValRdyBundle(msg_type)
        s.deq = OutValRdyBundle(msg_type)

        s.full = Wire(1)
        s.entry = Wire(s.enq.msg.nbits)

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.full.next = 0
            else:
                do_enq = s.enq.val.uint() and s.enq.rdy.uint()
                do_deq = s.deq.val.uint() and s.deq.rdy.uint()
                if do_enq and not do_deq:
                    s.entry.next = s.enq.msg.uint()
                    s.full.next = 1
                elif do_deq and s.full.uint() and not do_enq:
                    s.full.next = 0
                elif do_enq and do_deq and not s.full.uint():
                    s.full.next = 0
                elif do_enq and do_deq and s.full.uint():
                    s.entry.next = s.enq.msg.uint()
                    s.full.next = 1

        @s.combinational
        def comb_logic():
            s.enq.rdy.value = not s.full.uint()
            if s.full.uint():
                s.deq.val.value = 1
                s.deq.msg.value = s.entry.uint()
            else:
                s.deq.val.value = s.enq.val.uint()
                s.deq.msg.value = s.enq.msg.uint()

    def line_trace(s):
        return "F" if int(s.full) else "."


class QueueCL(Model):
    """Cycle-level FIFO: identical interface and timing envelope to
    ``NormalQueue`` but implemented with a Python deque."""

    def __init__(s, nentries, msg_type):
        s.enq = InValRdyBundle(msg_type)
        s.deq = OutValRdyBundle(msg_type)
        s.nentries = nentries
        s.buf = deque()

        @s.tick_cl
        def logic():
            if s.reset:
                s.buf.clear()
            else:
                if int(s.deq.val) and int(s.deq.rdy):
                    s.buf.popleft()
                if int(s.enq.val) and int(s.enq.rdy):
                    s.buf.append(s.enq.msg.value.to_bits().uint()
                                 if hasattr(s.enq.msg.value, "to_bits")
                                 else int(s.enq.msg.value))
            s.enq.rdy.next = len(s.buf) < s.nentries
            if s.buf:
                s.deq.val.next = 1
                s.deq.msg.next = s.buf[0]
            else:
                s.deq.val.next = 0

    def line_trace(s):
        return f"({len(s.buf)}/{s.nentries})"
