"""Crossbar switch: any input to any output, per-output select."""

from __future__ import annotations

from ..core import InPort, Model, OutPort, bw


class Crossbar(Model):
    """N x N combinational crossbar.

    ``sel[j]`` names the input forwarded to output ``j``; several
    outputs may select the same input (multicast is free in a mux-based
    crossbar).
    """

    def __init__(s, nbits, nports):
        s.in_ = InPort[nports](nbits)
        s.sel = [InPort(bw(nports)) for _ in range(nports)]
        s.out = OutPort[nports](nbits)
        s.nports = nports

        @s.combinational
        def comb_logic():
            for j in range(s.nports):
                s.out[j].value = s.in_[s.sel[j].uint()].value
