"""Combinational and pipelined arithmetic components."""

from __future__ import annotations

from ..core import InPort, Model, OutPort, Wire


class Adder(Model):
    """Combinational adder with carry out."""

    def __init__(s, nbits):
        s.in0 = InPort(nbits)
        s.in1 = InPort(nbits)
        s.cin = InPort(1)
        s.out = OutPort(nbits)
        s.cout = OutPort(1)
        s.nbits = nbits

        @s.combinational
        def comb_logic():
            total = s.in0.value.uint() + s.in1.value.uint() + s.cin.value.uint()
            s.out.value = total
            s.cout.value = total >> s.nbits


class Subtractor(Model):
    """Combinational subtractor (wrap-around)."""

    def __init__(s, nbits):
        s.in0 = InPort(nbits)
        s.in1 = InPort(nbits)
        s.out = OutPort(nbits)

        @s.combinational
        def comb_logic():
            s.out.value = s.in0.value - s.in1.value


class Incrementer(Model):
    """Combinational +constant."""

    def __init__(s, nbits, amount=1):
        s.in_ = InPort(nbits)
        s.out = OutPort(nbits)
        s.amount = amount

        @s.combinational
        def comb_logic():
            s.out.value = s.in_ + s.amount


class EqComparator(Model):
    """out = (in0 == in1)."""

    def __init__(s, nbits):
        s.in0 = InPort(nbits)
        s.in1 = InPort(nbits)
        s.out = OutPort(1)

        @s.combinational
        def comb_logic():
            s.out.value = s.in0.value == s.in1.value


class LtComparator(Model):
    """out = (in0 < in1), unsigned."""

    def __init__(s, nbits):
        s.in0 = InPort(nbits)
        s.in1 = InPort(nbits)
        s.out = OutPort(1)

        @s.combinational
        def comb_logic():
            s.out.value = s.in0.value < s.in1.value


class ZeroExtender(Model):
    """Widen a value with zeroes."""

    def __init__(s, in_nbits, out_nbits):
        s.in_ = InPort(in_nbits)
        s.out = OutPort(out_nbits)

        @s.combinational
        def comb_logic():
            s.out.value = s.in_.value.zext(s.out.nbits)


class IntPipelinedMultiplier(Model):
    """Integer multiplier with a parameterizable pipeline depth
    (paper Figure 9: the accelerator's Execute stage).

    The product of ``op_a * op_b`` appears on ``product`` exactly
    ``nstages`` cycles after the operands are presented.
    """

    def __init__(s, nbits, nstages=4):
        if nstages < 1:
            raise ValueError("nstages must be >= 1")
        s.op_a = InPort(nbits)
        s.op_b = InPort(nbits)
        s.product = OutPort(nbits)
        s.nstages = nstages
        s.stage = [Wire(nbits) for _ in range(nstages)]

        @s.tick_rtl
        def seq_logic():
            s.stage[0].next = s.op_a.value * s.op_b.value
            for i in range(1, s.nstages):
                s.stage[i].next = s.stage[i - 1].value

        @s.combinational
        def comb_logic():
            s.product.value = s.stage[s.nstages - 1].value
