"""Arbiters: fair selection among competing requesters."""

from __future__ import annotations

from ..core import InPort, Model, OutPort, Wire


class RoundRobinArbiter(Model):
    """Round-robin arbiter over a request bit-vector.

    ``grants`` is one-hot (or zero when there are no requests).  The
    priority pointer advances past the most recent winner, giving each
    requester a fair share under contention — the arbitration policy
    the mesh routers use.
    """

    def __init__(s, nreqs):
        s.reqs = InPort(nreqs)
        s.grants = OutPort(nreqs)
        s.nreqs = nreqs
        s.priority = Wire(max(1, (nreqs - 1).bit_length()))

        @s.combinational
        def arb_logic():
            reqs = s.reqs.value.uint()
            grants = 0
            start = s.priority.uint()
            for i in range(s.nreqs):
                idx = (start + i) % s.nreqs
                if grants == 0 and ((reqs >> idx) & 1):
                    grants = 1 << idx
            s.grants.value = grants

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.priority.next = 0
            else:
                grants = s.grants.value.uint()
                if grants:
                    winner = 0
                    for i in range(s.nreqs):
                        if (grants >> i) & 1:
                            winner = i
                    s.priority.next = (winner + 1) % s.nreqs

    def line_trace(s):
        return f"r{s.reqs.value.bin()[2:]}g{s.grants.value.bin()[2:]}"
