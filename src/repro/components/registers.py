"""Basic sequential components: registers with enable/reset variants.

These are the leaf RTL building blocks used across the case studies.
All of them are Verilog-translatable.
"""

from __future__ import annotations

from ..core import InPort, Model, OutPort


class Register(Model):
    """Plain register: ``out <= in_`` every cycle (paper Figure 2)."""

    def __init__(s, nbits):
        s.in_ = InPort(nbits)
        s.out = OutPort(nbits)

        @s.tick_rtl
        def seq_logic():
            s.out.next = s.in_.value


class RegEn(Model):
    """Register with write enable."""

    def __init__(s, nbits):
        s.in_ = InPort(nbits)
        s.en = InPort(1)
        s.out = OutPort(nbits)

        @s.tick_rtl
        def seq_logic():
            if s.en:
                s.out.next = s.in_.value


class RegRst(Model):
    """Register with synchronous reset to a constant."""

    def __init__(s, nbits, reset_value=0):
        s.in_ = InPort(nbits)
        s.out = OutPort(nbits)
        s.reset_value = reset_value

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.out.next = s.reset_value
            else:
                s.out.next = s.in_.value


class RegEnRst(Model):
    """Register with write enable and synchronous reset."""

    def __init__(s, nbits, reset_value=0):
        s.in_ = InPort(nbits)
        s.en = InPort(1)
        s.out = OutPort(nbits)
        s.reset_value = reset_value

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.out.next = s.reset_value
            elif s.en:
                s.out.next = s.in_.value


class Counter(Model):
    """Up counter with enable and clear."""

    def __init__(s, nbits):
        s.en = InPort(1)
        s.clear = InPort(1)
        s.count = OutPort(nbits)

        @s.tick_rtl
        def seq_logic():
            if s.reset or s.clear:
                s.count.next = 0
            elif s.en:
                s.count.next = s.count + 1
