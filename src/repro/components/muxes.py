"""Combinational selection components."""

from __future__ import annotations

from ..core import InPort, Model, OutPort, bw


class Mux(Model):
    """N-way multiplexer, parameterizable by width and port count
    (paper Figure 2)."""

    def __init__(s, nbits, nports):
        s.in_ = InPort[nports](nbits)
        s.sel = InPort(bw(nports))
        s.out = OutPort(nbits)

        @s.combinational
        def comb_logic():
            s.out.value = s.in_[s.sel.uint()].value


class Demux(Model):
    """One-hot demultiplexer: routes the input to the selected output,
    zeroes elsewhere."""

    def __init__(s, nbits, nports):
        s.in_ = InPort(nbits)
        s.sel = InPort(bw(nports))
        s.out = OutPort[nports](nbits)
        s.nports = nports

        @s.combinational
        def comb_logic():
            for i in range(s.nports):
                if i == s.sel.uint():
                    s.out[i].value = s.in_.value
                else:
                    s.out[i].value = 0
