"""Reusable component library: registers, muxes, arithmetic, queues,
arbiters, and val/rdy test harness models."""

from .arbiters import RoundRobinArbiter
from .crossbar import Crossbar
from .encoders import Decoder, Encoder, OneHotMux, PriorityEncoder
from .gcd import GcdReqMsg, GcdUnitCL, GcdUnitFL, GcdUnitRTL, gcd_cycle_count
from .arith import (
    Adder,
    EqComparator,
    Incrementer,
    IntPipelinedMultiplier,
    LtComparator,
    Subtractor,
    ZeroExtender,
)
from .muxes import Demux, Mux
from .queues import BypassQueue, NormalQueue, QueueCL
from .registers import Counter, RegEn, RegEnRst, RegRst, Register
from .test_srcsink import TestSink, TestSource, run_src_sink_test

__all__ = [
    "Adder", "Subtractor", "Incrementer", "EqComparator", "LtComparator",
    "ZeroExtender", "IntPipelinedMultiplier",
    "Mux", "Demux",
    "Register", "RegEn", "RegRst", "RegEnRst", "Counter",
    "NormalQueue", "BypassQueue", "QueueCL",
    "RoundRobinArbiter",
    "GcdUnitFL", "GcdUnitCL", "GcdUnitRTL", "GcdReqMsg",
    "gcd_cycle_count",
    "Decoder", "Encoder", "PriorityEncoder", "OneHotMux", "Crossbar",
    "TestSource", "TestSink", "run_src_sink_test",
]
