"""Test sources and sinks for val/rdy interfaces.

The latency-insensitive design style (paper Section II) lets one test
bench exercise FL, CL, and RTL implementations of a component: a
``TestSource`` streams a message list into the design under test and a
``TestSink`` checks what comes out, tolerating arbitrary backpressure
and latency.  ``interval`` inserts idle cycles to stress handshaking.
"""

from __future__ import annotations

from ..core import InValRdyBundle, Model, OutPort, OutValRdyBundle


class TestSource(Model):
    """Drives a list of messages onto an ``OutValRdyBundle``."""

    def __init__(s, msg_type, msgs, interval=0):
        s.out = OutValRdyBundle(msg_type)
        s.done = OutPort(1)
        s.msgs = list(msgs)
        s.interval = interval
        s.idx = 0
        s.wait = 0

        @s.tick_fl
        def logic():
            if s.reset:
                s.idx = 0
                s.wait = 0
                s.out.val.next = 0
                s.done.next = 0
                return
            if int(s.out.val) and int(s.out.rdy):
                s.idx += 1
                s.wait = s.interval
            if s.idx >= len(s.msgs):
                s.out.val.next = 0
                s.done.next = 1
            elif s.wait > 0:
                s.wait -= 1
                s.out.val.next = 0
            else:
                s.out.val.next = 1
                s.out.msg.next = s.msgs[s.idx]

    def line_trace(s):
        return s.out.to_str()


class TestSink(Model):
    """Receives messages from an ``InValRdyBundle`` and checks them
    against an expected list (in order)."""

    def __init__(s, msg_type, expected, interval=0):
        s.in_ = InValRdyBundle(msg_type)
        s.done = OutPort(1)
        s.expected = list(expected)
        s.interval = interval
        s.idx = 0
        s.wait = 0
        s.errors = []

        @s.tick_fl
        def logic():
            if s.reset:
                s.idx = 0
                s.wait = 0
                s.in_.rdy.next = 0
                s.done.next = 0
                return
            if int(s.in_.val) and int(s.in_.rdy):
                got = s.in_.msg.value
                want = s.expected[s.idx]
                if int(got) != int(want):
                    s.errors.append((s.idx, int(got), int(want)))
                s.idx += 1
                s.wait = s.interval
            s.done.next = s.idx >= len(s.expected)
            s.in_.rdy.next = s.wait == 0 and s.idx < len(s.expected)
            if s.wait > 0:
                s.wait -= 1

    def line_trace(s):
        return s.in_.to_str()


def run_src_sink_test(dut, msg_type, in_msgs, out_msgs,
                      src_interval=0, sink_interval=0, max_cycles=10000,
                      in_bundle=None, out_bundle=None):
    """Harness: source -> dut -> sink, run until both sides are done.

    ``in_bundle``/``out_bundle`` default to ``dut.enq``/``dut.deq``.
    Returns the cycle count; raises AssertionError on mismatches or
    timeout.
    """
    from ..core import Model as _Model
    from ..core import SimulationTool

    class _Harness(_Model):
        def __init__(s):
            s.src = TestSource(msg_type, in_msgs, src_interval)
            s.dut = dut
            s.sink = TestSink(msg_type, out_msgs, sink_interval)
            s.connect(s.src.out, in_bundle if in_bundle is not None
                      else dut.enq)
            s.connect(out_bundle if out_bundle is not None else dut.deq,
                      s.sink.in_)

        def line_trace(s):
            return (f"{s.src.line_trace()} > {s.dut.line_trace()} > "
                    f"{s.sink.line_trace()}")

    harness = _Harness().elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    while not (int(harness.src.done) and int(harness.sink.done)):
        sim.cycle()
        if sim.ncycles > max_cycles:
            raise AssertionError(
                f"src/sink test timed out after {max_cycles} cycles "
                f"(sink received {harness.sink.idx}/{len(out_msgs)})"
            )
    assert not harness.sink.errors, f"sink mismatches: {harness.sink.errors}"
    return sim.ncycles
