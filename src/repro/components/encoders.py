"""Encoders and decoders — small combinational building blocks.

All Verilog-translatable and SimJIT-compatible.
"""

from __future__ import annotations

from ..core import InPort, Model, OutPort, bw


class Decoder(Model):
    """Binary -> one-hot decoder with enable."""

    def __init__(s, nbits):
        s.in_ = InPort(nbits)
        s.en = InPort(1)
        s.out = OutPort(1 << nbits)

        @s.combinational
        def comb_logic():
            if s.en.uint():
                s.out.value = 1 << s.in_.uint()
            else:
                s.out.value = 0


class Encoder(Model):
    """One-hot -> binary encoder (lowest set bit wins)."""

    def __init__(s, nports):
        s.in_ = InPort(nports)
        s.out = OutPort(bw(nports))
        s.valid = OutPort(1)
        s.nports = nports

        @s.combinational
        def comb_logic():
            value = 0
            found = 0
            for i in range(s.nports):
                if found == 0 and ((s.in_.uint() >> i) & 1):
                    value = i
                    found = 1
            s.out.value = value
            s.valid.value = found


class PriorityEncoder(Model):
    """Priority encoder: index of the highest set bit."""

    def __init__(s, nports):
        s.in_ = InPort(nports)
        s.out = OutPort(bw(nports))
        s.valid = OutPort(1)
        s.nports = nports

        @s.combinational
        def comb_logic():
            value = 0
            found = 0
            for i in range(s.nports):
                if (s.in_.uint() >> i) & 1:
                    value = i
                    found = 1
            s.out.value = value
            s.valid.value = found


class OneHotMux(Model):
    """Mux with a one-hot select (no binary decode stage)."""

    def __init__(s, nbits, nports):
        s.in_ = InPort[nports](nbits)
        s.sel = InPort(nports)
        s.out = OutPort(nbits)
        s.nports = nports

        @s.combinational
        def comb_logic():
            value = 0
            for i in range(s.nports):
                if (s.sel.uint() >> i) & 1:
                    value = value | s.in_[i].uint()
            s.out.value = value
