"""GCD unit at FL, CL, and RTL — the classic PyMTL tutorial design.

A latency-insensitive greatest-common-divisor unit: requests carry an
operand pair, responses carry the GCD.  The three implementations
share one interface, so one test bench verifies all of them
(TUTORIAL.md walks through this file).

- :class:`GcdUnitFL` — functional: ``math.gcd`` per accepted request.
- :class:`GcdUnitCL` — cycle-level: models the iteration count of the
  subtractive algorithm (one cycle per subtract/swap) without building
  the datapath.
- :class:`GcdUnitRTL` — register-transfer level: an FSM with two
  operand registers, a subtractor, and a swap path; SimJIT- and
  Verilog-translatable.
"""

from __future__ import annotations

import math
from collections import deque

from ..core import (
    BitStruct,
    Field,
    InValRdyBundle,
    Model,
    OutValRdyBundle,
    Wire,
)

NBITS = 16


class GcdReqMsg(BitStruct):
    a = Field(NBITS)
    b = Field(NBITS)

    @classmethod
    def mk(cls, a, b):
        msg = cls()
        msg.a = a
        msg.b = b
        return msg


class GcdUnitFL(Model):
    """Functional GCD: one result per cycle, no timing model."""

    def __init__(s):
        s.req = InValRdyBundle(GcdReqMsg)
        s.resp = OutValRdyBundle(NBITS)
        s.result_q = deque()

        @s.tick_fl
        def logic():
            if s.reset:
                s.result_q.clear()
                s.req.rdy.next = 0
                s.resp.val.next = 0
                return
            if int(s.resp.val) and int(s.resp.rdy):
                s.result_q.popleft()
            if int(s.req.val) and int(s.req.rdy):
                msg = s.req.msg.value
                s.result_q.append(math.gcd(int(msg.a), int(msg.b)))
            s.req.rdy.next = len(s.result_q) < 2
            if s.result_q:
                s.resp.val.next = 1
                s.resp.msg.next = s.result_q[0]
            else:
                s.resp.val.next = 0


def gcd_cycle_count(a, b):
    """Iterations of the subtractive algorithm (the CL timing model
    and the RTL unit's expected latency)."""
    count = 0
    while b:
        if a < b:
            a, b = b, a
        else:
            a = a - b
        count += 1
    return max(1, count)


class GcdUnitCL(Model):
    """Cycle-level GCD: right answer after the right number of cycles,
    no datapath."""

    def __init__(s):
        s.req = InValRdyBundle(GcdReqMsg)
        s.resp = OutValRdyBundle(NBITS)
        s.busy = 0
        s.counter = 0
        s.result = 0

        @s.tick_cl
        def logic():
            if s.reset:
                s.busy = 0
                s.req.rdy.next = 0
                s.resp.val.next = 0
                return
            if s.busy:
                if s.counter > 0:
                    s.counter -= 1
                elif int(s.resp.val) and int(s.resp.rdy):
                    s.busy = 0
                s.resp.val.next = 1 if (s.busy and s.counter == 0) else 0
                s.resp.msg.next = s.result
                s.req.rdy.next = 0 if s.busy else 1
            else:
                if int(s.req.val) and int(s.req.rdy):
                    msg = s.req.msg.value
                    s.result = math.gcd(int(msg.a), int(msg.b))
                    s.counter = gcd_cycle_count(int(msg.a), int(msg.b))
                    s.busy = 1
                    s.req.rdy.next = 0
                else:
                    s.req.rdy.next = 1
                s.resp.val.next = 0


# RTL FSM states.
_IDLE = 0
_CALC = 1
_DONE = 2


class GcdUnitRTL(Model):
    """RTL GCD: subtract/swap FSM (one iteration per cycle)."""

    def __init__(s):
        s.req = InValRdyBundle(GcdReqMsg)
        s.resp = OutValRdyBundle(NBITS)

        s.state = Wire(2)
        s.a_reg = Wire(NBITS)
        s.b_reg = Wire(NBITS)

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.state.next = _IDLE
            elif s.state.uint() == _IDLE:
                if s.req.val.uint() and s.req.rdy.uint():
                    s.a_reg.next = s.req.msg.a.value
                    s.b_reg.next = s.req.msg.b.value
                    s.state.next = _CALC
            elif s.state.uint() == _CALC:
                a = s.a_reg.uint()
                b = s.b_reg.uint()
                if b == 0:
                    s.state.next = _DONE
                elif a < b:
                    s.a_reg.next = b
                    s.b_reg.next = a
                else:
                    s.a_reg.next = a - b
            elif s.state.uint() == _DONE:
                if s.resp.val.uint() and s.resp.rdy.uint():
                    s.state.next = _IDLE

        @s.combinational
        def comb_logic():
            state = s.state.uint()
            if s.reset.uint():
                state = -1
            s.req.rdy.value = state == _IDLE
            s.resp.val.value = state == _DONE
            s.resp.msg.value = s.a_reg.value

    def line_trace(s):
        return (f"st={int(s.state)} a={int(s.a_reg)} "
                f"b={int(s.b_reg)}")
