"""Host-span tracing overhead: the price of the observability spine.

The tracer's contract (:mod:`repro.telemetry.tracing`) is two-sided:

- **disarmed** — instrumented code paths cost near nothing when no
  tracer is armed: ``sim.run()`` adds one module-global load and a
  ``None`` check per call.  Asserted: ≤ ``MAX_DISARMED`` (1% on the
  full 64-router mesh) vs the identical batched run on a build
  without the check — approximated here by the same batched run
  (the check is unremovable), paired against the single-call
  baseline, so the budget also covers the batching loop itself.
- **armed** — span recording happens at *batch* granularity (one
  ``sim.run`` span per call, never per cycle), so even with a tracer
  armed the interpreted kernel keeps its rate.  Asserted:
  ≤ ``MAX_ARMED`` (5% full) vs the same baseline.

Both comparisons use paired order-alternating reps (the idiom of
``bench_observe_overhead``) against a plain one-``run()``-call
baseline on the same mesh; the armed/disarmed workloads split the
run into ``BATCH``-cycle ``run()`` calls — the worst realistic case
for per-call overhead (a fleet task calls ``run`` in far larger
batches).  ``BENCH_QUICK=1`` shrinks the mesh and budgets for CI
smoke runs.  Results land in ``benchmarks/results/BENCH_trace.json``.
"""

import os

from common import (best_of_paired, format_table, write_json_result,
                    write_result)
from repro import SimulationTool, set_telemetry_enabled
from repro.telemetry import tracing

QUICK = os.environ.get("BENCH_QUICK", "0").strip().lower() not in (
    "", "0", "false", "no")

NROUTERS = 16 if QUICK else 64
MIN_REP_SECONDS = 0.1 if QUICK else 0.25
REPS = 3 if QUICK else 6
BATCH = 256
# The contract is 1% / 5% on the full 64-router mesh; the quick mesh
# is ~4x faster per cycle, so fixed per-batch costs are relatively
# larger and the rep windows 2.5x shorter (noisier) — the quick
# budgets are smoke ceilings, not precision measurements.
MAX_DISARMED = 0.10 if QUICK else 0.01
MAX_ARMED = 0.25 if QUICK else 0.05


def _build_sim():
    from repro.net import MeshNetworkStructural, RouterRTL

    prev = set_telemetry_enabled(False)
    try:
        net = MeshNetworkStructural(
            RouterRTL, NROUTERS, 256, 32, 2).elaborate()
    finally:
        set_telemetry_enabled(prev)
    sim = SimulationTool(net, sched="static")
    assert sim._kernel is not None
    sim.reset()
    # Standing traffic so the mesh does representative per-cycle work.
    dest_shift = net.msg_type.field_slice("dest")[0]
    for port in net.out:
        port.rdy.value = 1
    net.in_[0].msg.value = (NROUTERS - 1) << dest_shift
    net.in_[0].val.value = 1
    return sim


def _batched(sim):
    """Run ``ncycles`` as BATCH-cycle ``run()`` calls — one disarmed
    check (or one span) per batch."""
    def fn(ncycles):
        full, rem = divmod(ncycles, BATCH)
        for _ in range(full):
            sim.run(BATCH)
        if rem:
            sim.run(rem)
    return fn


def _paired(fn_a, fn_b):
    """Shared paired order-alternating harness at this bench's reps
    (see benchmarks/common.py)."""
    return best_of_paired(fn_a, fn_b, REPS, MIN_REP_SECONDS)


def test_trace_overhead(benchmark):
    entries = []

    def run_all():
        assert tracing.active() is None

        # Disarmed: batched run()s against the single-call baseline.
        sim_base = _build_sim()
        sim_dis = _build_sim()
        pt = _paired(sim_base.run, _batched(sim_dis))
        ncycles, base_cps, dis_cps = pt.ncycles, pt.cps_a, pt.cps_b
        entries.append({"config": "baseline", "cycles": ncycles,
                        "cycles_per_sec": base_cps})
        entries.append({"config": "disarmed", "cycles": ncycles,
                        "cycles_per_sec": dis_cps, "batch": BATCH,
                        "pair_spread": pt.pair_spread,
                        "slowdown": base_cps / dis_cps})

        # Armed: same batched shape with a live tracer recording one
        # sim.run span per batch into the ring buffer.
        sim_base2 = _build_sim()
        sim_arm = _build_sim()
        tracer = tracing.arm()
        try:
            pt2 = _paired(sim_base2.run, _batched(sim_arm))
        finally:
            tracing.disarm()
        ncycles2, base2_cps, arm_cps = pt2.ncycles, pt2.cps_a, pt2.cps_b
        # The armed run really recorded (ring may have evicted the
        # oldest, hence >= via dropped + retained).
        nspans = len(tracer) + tracer.dropped
        assert nspans >= ncycles2 // BATCH, \
            f"armed tracer recorded {nspans} spans"
        entries.append({"config": "armed", "cycles": ncycles2,
                        "cycles_per_sec": arm_cps, "batch": BATCH,
                        "nspans": nspans,
                        "pair_spread": pt2.pair_spread,
                        "slowdown": base2_cps / arm_cps})
        entries.append({"config": "baseline2", "cycles": ncycles2,
                        "cycles_per_sec": base2_cps})

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    by_config = {e["config"]: e for e in entries}
    rows = [[e["config"], e["cycles"], f"{e['cycles_per_sec']:.0f}",
             f"{e.get('slowdown', 1.0):.4f}x"] for e in entries]
    text = format_table(
        f"Host-span tracing overhead ({NROUTERS}-router RTL mesh, "
        f"batch {BATCH})",
        ["config", "cycles", "cyc/s", "slowdown"],
        rows,
    )
    write_result("trace_overhead.txt", text)
    write_json_result(
        "trace", entries, quick=QUICK, nrouters=NROUTERS, batch=BATCH,
        max_disarmed=MAX_DISARMED, max_armed=MAX_ARMED)

    disarmed = by_config["disarmed"]["slowdown"]
    assert disarmed < 1.0 + MAX_DISARMED, (
        f"disarmed tracing costs {(disarmed - 1) * 100:.2f}% "
        f"(budget {MAX_DISARMED * 100:.0f}%)")
    armed = by_config["armed"]["slowdown"]
    assert armed < 1.0 + MAX_ARMED, (
        f"armed host-span tracing costs {(armed - 1) * 100:.2f}% "
        f"(budget {MAX_ARMED * 100:.0f}%)")


if __name__ == "__main__":
    class _Pedantic:
        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_trace_overhead(_Pedantic())
