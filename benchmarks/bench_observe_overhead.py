"""Waveform-observatory overhead: the price of the flight recorder.

The observatory's contract is that an armed flight recorder is cheap
enough to leave on for long runs: recorders (and watchpoints) sample
*after* the cycle, like the VCD writer, so — unlike cycle hooks — the
compiled mega-cycle kernel keeps running and only the per-cycle sample
is added.  This bench quantifies that on an RTL mesh:

- ``off``        — ``sim.run()`` with nothing armed.  Structurally
  identical to the PR-1/PR-4 kernel fast path: the observatory adds
  one tuple-emptiness check to ``run()``'s fast-path predicate and
  nothing to the per-cycle work.
- ``recorder``   — a :class:`~repro.observe.FlightRecorder` armed on
  a dozen router-internal signals at depth 512.  The **asserted**
  contract: within ``MAX_OVERHEAD`` (5% on the full 64-router mesh;
  quick mode asserts a scaled smoke ceiling) of ``off``.
- ``watchpoints``— the recorder plus three armed temporal watchpoints
  (edge, stability, implication).  Reported, not asserted — condition
  evaluation is the feature.
- ``jit_off`` / ``jit_recorder`` — the same contract on the compiled
  substrate: a whole-mesh single-engine SimJIT sim, uninstrumented vs
  the same 12-signal recorder *lowered into the C kernel* (in-kernel
  change detection, events drained lazily per ``run()`` batch).  The
  asserted budget is ``MAX_JIT_SLOWDOWN`` (2x full, 3x quick) — the
  pre-compiled hook path measured ~1000x here.

``off`` vs ``recorder`` uses paired alternating reps (the honest way
to resolve a 5% difference under host-frequency drift).
``BENCH_QUICK=1`` shrinks the mesh and rep lengths for CI smoke runs.
Results land in ``benchmarks/results/BENCH_observe.json``.
"""

import os

from common import (best_of, best_of_paired, build_jit_network,
                    format_table, write_json_result, write_result)
from repro import SimulationTool, set_telemetry_enabled
from repro.observe import implies_within, rose, stable_for

QUICK = os.environ.get("BENCH_QUICK", "0").strip().lower() not in (
    "", "0", "false", "no")

NROUTERS = 16 if QUICK else 64
MIN_REP_SECONDS = 0.1 if QUICK else 0.25
REPS = 3 if QUICK else 6
# The contract is 5% on the full 64-router mesh.  Sampling cost is
# fixed per signal per cycle, so on the 4x-smaller quick mesh the same
# 12 taps are ~4x larger relatively; the quick budget is a scaled
# smoke ceiling that still catches falling off the kernel fast path
# (~10x), not a precision measurement.
MAX_OVERHEAD = 0.25 if QUICK else 0.05
# Compiled-substrate budget: instrumented SimJIT vs uninstrumented.
MAX_JIT_SLOWDOWN = 3.0 if QUICK else 2.0
DEPTH = 512

# ~12 signals: FSM-adjacent arbiter state of the first few routers,
# the kind of window a post-mortem actually wants.
N_TAPPED_ROUTERS = 6


def _recorder_signals():
    signals = []
    for i in range(N_TAPPED_ROUTERS):
        signals.append(f"routers[{i}].grant_val[0]")
        signals.append(f"routers[{i}].hold_val[0]")
    return signals


def _build_sim():
    from repro.net import MeshNetworkStructural, RouterRTL

    prev = set_telemetry_enabled(False)
    try:
        net = MeshNetworkStructural(
            RouterRTL, NROUTERS, 256, 32, 2).elaborate()
    finally:
        set_telemetry_enabled(prev)
    sim = SimulationTool(net, sched="static")
    assert sim._kernel is not None
    sim.reset()
    # Standing traffic so the recorded signals actually toggle — an
    # idle mesh would make change compression trivially cheap.
    dest_shift = net.msg_type.field_slice("dest")[0]
    for port in net.out:
        port.rdy.value = 1
    net.in_[0].msg.value = (NROUTERS - 1) << dest_shift
    net.in_[0].val.value = 1
    return sim


def _inject(net):
    dest_shift = net.msg_type.field_slice("dest")[0]
    for port in net.out:
        port.rdy.value = 1
    net.in_[0].msg.value = (NROUTERS - 1) << dest_shift
    net.in_[0].val.value = 1


def _build_jit_sim():
    """Whole-mesh single-engine SimJIT sim with standing traffic."""
    prev = set_telemetry_enabled(False)
    try:
        wrapper, _spec = build_jit_network("rtl", NROUTERS)
    finally:
        set_telemetry_enabled(prev)
    sim = SimulationTool(wrapper)
    sim.reset()
    _inject(wrapper)
    return sim


def _paired(fn_a, fn_b):
    """Shared paired order-alternating harness at this bench's reps
    (idiom of bench_telemetry_overhead; see benchmarks/common.py)."""
    return best_of_paired(fn_a, fn_b, REPS, MIN_REP_SECONDS)


def test_observe_overhead(benchmark):
    entries = []

    def run_all():
        sim_off = _build_sim()
        sim_rec = _build_sim()
        recorder = sim_rec.flight_recorder(
            signals=_recorder_signals(), depth=DEPTH)
        # Both sims still hold their compiled kernel; only the armed
        # one leaves run()'s fast path to sample per cycle.
        assert sim_rec.sched_info()["kernel"] is True

        pt = _paired(sim_off.run, sim_rec.run)
        ncycles, off_cps, rec_cps = pt.ncycles, pt.cps_a, pt.cps_b
        assert recorder.nsamples >= ncycles
        entries.append({"config": "off", "cycles": ncycles,
                        "cycles_per_sec": off_cps})
        entries.append({"config": "recorder", "cycles": ncycles,
                        "cycles_per_sec": rec_cps,
                        "signals": len(recorder.signal_names),
                        "pair_spread": pt.pair_spread,
                        "depth": DEPTH})

        sim_wp = _build_sim()
        sim_wp.flight_recorder(signals=_recorder_signals(), depth=DEPTH)
        sim_wp.watch(rose("routers[0].grant_val[0]"), name="grant")
        sim_wp.watch(stable_for("routers[1].hold_val[0]", 1 << 20),
                     name="stuck-hold")
        sim_wp.watch(
            implies_within(rose("routers[0].grant_val[0]"),
                           rose("routers[0].hold_val[0]"), 1 << 20),
            name="grant-held")
        wp_cycles, wp_cps = best_of(sim_wp.run, REPS, MIN_REP_SECONDS)
        entries.append({"config": "watchpoints", "cycles": wp_cycles,
                        "cycles_per_sec": wp_cps, "n_watchpoints": 3})

        # Compiled substrate: the identical recorder lowered into the
        # SimJIT kernel, paired against the uninstrumented C rate.
        sim_joff = _build_jit_sim()
        sim_jrec = _build_jit_sim()
        jit_rec = sim_jrec.flight_recorder(
            signals=_recorder_signals(), depth=DEPTH)
        assert jit_rec._cidx is not None, \
            "recorder did not compile into the SimJIT kernel"
        jpt = _paired(sim_joff.run, sim_jrec.run)
        jcycles, joff_cps, jrec_cps = jpt.ncycles, jpt.cps_a, jpt.cps_b
        assert jit_rec.nsamples >= jcycles
        entries.append({"config": "jit_off", "cycles": jcycles,
                        "cycles_per_sec": joff_cps})
        entries.append({"config": "jit_recorder", "cycles": jcycles,
                        "cycles_per_sec": jrec_cps,
                        "signals": len(jit_rec.signal_names),
                        "pair_spread": jpt.pair_spread,
                        "depth": DEPTH})

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    by_config = {e["config"]: e for e in entries}
    base = by_config["off"]["cycles_per_sec"]
    jit_base = by_config["jit_off"]["cycles_per_sec"]
    rows = []
    for entry in entries:
        # Each substrate compares against its own uninstrumented rate.
        if entry["config"].startswith("jit_"):
            slowdown = jit_base / entry["cycles_per_sec"]
            entry["slowdown_vs_jit_off"] = slowdown
        else:
            slowdown = base / entry["cycles_per_sec"]
            entry["slowdown_vs_off"] = slowdown
        rows.append([
            entry["config"], entry["cycles"],
            f"{entry['cycles_per_sec']:.0f}", f"{slowdown:.3f}x",
        ])

    text = format_table(
        f"Observe overhead ({NROUTERS}-router RTL mesh, "
        f"{2 * N_TAPPED_ROUTERS} signals, depth {DEPTH})",
        ["config", "cycles", "cyc/s", "slowdown"],
        rows,
    )
    write_result("observe_overhead.txt", text)
    write_json_result(
        "observe", entries, quick=QUICK, nrouters=NROUTERS,
        nsignals=2 * N_TAPPED_ROUTERS, depth=DEPTH,
        max_overhead=MAX_OVERHEAD, max_jit_slowdown=MAX_JIT_SLOWDOWN)

    # The asserted contract: an armed flight recorder costs under 5%
    # of kernel-fast-path throughput.
    recorder = by_config["recorder"]["slowdown_vs_off"]
    assert recorder < 1.0 + MAX_OVERHEAD, (
        f"armed flight recorder costs {(recorder - 1) * 100:.1f}% "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    jit_rec = by_config["jit_recorder"]["slowdown_vs_jit_off"]
    assert jit_rec < MAX_JIT_SLOWDOWN, (
        f"compiled recorder runs {jit_rec:.2f}x slower than "
        f"uninstrumented SimJIT (budget {MAX_JIT_SLOWDOWN}x)")


if __name__ == "__main__":
    class _Pedantic:
        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_observe_overhead(_Pedantic())
