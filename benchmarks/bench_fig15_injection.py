"""Figure 15: SimJIT performance versus network load.

The paper varies the injection rate of 64-node CL and RTL mesh
simulations (100K cycles) and shows SimJIT speedups *rising* with load:
heavier traffic puts more work inside the specialized C code relative
to the fixed per-cycle Python overhead, and both curves flatten near
the network's saturation point (~30% injection).
"""

import time

import pytest

from common import (
    build_jit_network,
    build_network,
    format_table,
    write_result,
)
from repro.net import NetworkTrafficHarness

NROUTERS = 64
RATES = [0.02, 0.05, 0.10, 0.20, 0.30, 0.40]
INTERP_CYCLES = {"cl": 600, "rtl": 200}
JIT_CYCLES = 4_000


def _throughput(net, rate, ncycles, seed=1):
    harness = NetworkTrafficHarness(net, seed=seed)
    start = time.perf_counter()
    harness.run_uniform_random(rate, ncycles, drain=0)
    return ncycles / (time.perf_counter() - start)


@pytest.mark.parametrize("level", ["cl", "rtl"])
def test_fig15_speedup_vs_injection_rate(benchmark, level):
    wrapper, _ = build_jit_network(level, NROUTERS)
    rows = []
    speedups = []
    for rate in RATES:
        interp = _throughput(build_network(level, NROUTERS), rate,
                             INTERP_CYCLES[level])
        jit = _throughput(wrapper, rate, JIT_CYCLES)
        speedup = jit / interp
        speedups.append(speedup)
        rows.append([f"{rate:.2f}", f"{interp:.0f}", f"{jit:.0f}",
                     f"{speedup:.1f}x"])

    text = format_table(
        f"Figure 15({level}): 64-node mesh, speedup vs injection rate",
        ["inj rate", "interp cyc/s", "simjit cyc/s", "speedup"],
        rows,
    )
    write_result(f"fig15_{level}.txt", text)

    # Paper shape: RTL speedup grows with load (more time inside
    # compiled code per cycle).  For CL our per-cycle Python harness
    # cost tracks the model cost, so the curve is flat — the paper's
    # CL rise came from PyPy shrinking that constant; we only require
    # that specialization keeps winning across the sweep.
    if level == "rtl":
        assert max(speedups[-2:]) > min(speedups[:2])
    assert all(s > 1.5 for s in speedups)

    benchmark.pedantic(
        lambda: _throughput(wrapper, 0.3, 1000),
        rounds=1, iterations=1,
    )
