"""Telemetry overhead: the observability tax at each opt-in level.

The telemetry subsystem's contract is *pay only for what you turn
on*.  This bench quantifies that on an RTL mesh by measuring
interpreted-loop cycles/sec at five configurations:

- ``baseline``  — raw mega-cycle kernel calls in a bare loop, on a
  design constructed with telemetry disabled.  This is the PR-1
  fast path: no telemetry objects exist anywhere.
- ``disabled``  — ``sim.run()`` on the same disabled-telemetry
  design.  The **asserted** contract: within ``MAX_OVERHEAD`` (2%)
  of baseline, i.e. constructing the telemetry machinery and leaving
  it off costs nothing measurable.
- ``counters``  — telemetry enabled.  Wire-backed counters compile
  into the kernel; the cost is the extra telemetry tick blocks
  (self-retriggering, so they defeat activity gating).
- ``trace``     — counters plus a :class:`TxTracer` tapping every
  terminal port.  Taps are cycle hooks, which force the interpreted
  path; this is the price of full transaction visibility.
- ``profile``   — ``profile=True``: per-block and per-phase host-time
  attribution, the most invasive mode.

The enabled modes are reported, not asserted — their cost is the
feature, not a regression.  ``BENCH_QUICK=1`` shrinks the mesh and
cycle counts for CI smoke runs.  Results land in
``benchmarks/results/BENCH_telemetry.json``.
"""

import os
import time

from common import format_table, write_json_result, write_result
from repro import SimulationTool, set_telemetry_enabled
from repro.net import MeshNetworkStructural, RouterRTL

QUICK = os.environ.get("BENCH_QUICK", "0").strip().lower() not in (
    "", "0", "false", "no")

NROUTERS = 16 if QUICK else 64
MIN_REP_SECONDS = 0.1 if QUICK else 0.25
REPS = 3 if QUICK else 6
MAX_OVERHEAD = 0.02


def _build(enabled):
    prev = set_telemetry_enabled(enabled)
    try:
        net = MeshNetworkStructural(
            RouterRTL, NROUTERS, 256, 32, 2).elaborate()
    finally:
        set_telemetry_enabled(prev)
    return net


def _inject(net):
    """Light standing traffic so counters/taps have work to observe."""
    dest_shift = net.msg_type.field_slice("dest")[0]
    for port in net.out:
        port.rdy.value = 1
    net.in_[0].msg.value = (NROUTERS - 1) << dest_shift
    net.in_[0].val.value = 1


def _calibrate(fn):
    """Grow the rep length until one rep runs at least MIN_REP_SECONDS
    — idle-mesh kernel cycles are sub-microsecond, far below timer
    resolution at fixed small N."""
    ncycles = 64
    while True:
        start = time.process_time()
        fn(ncycles)
        elapsed = time.process_time() - start
        if elapsed >= MIN_REP_SECONDS:
            return ncycles, elapsed
        ncycles *= 4


def _best_of(fn):
    ncycles, first = _calibrate(fn)
    best = first
    for _ in range(REPS - 1):
        start = time.process_time()
        fn(ncycles)
        best = min(best, time.process_time() - start)
    return ncycles, ncycles / best


def _best_of_paired(fn_a, fn_b):
    """Time two workloads with alternating reps so slow drift in host
    CPU speed (thermal / frequency scaling) hits both equally — the
    only honest way to resolve a 2% difference between them."""
    ncycles, _ = _calibrate(fn_a)
    best_a = best_b = float("inf")
    for rep in range(2 * REPS):
        # Swap which workload goes first each rep: under thermal
        # throttling the second slot is systematically slower.
        first, second = (fn_a, fn_b) if rep % 2 == 0 else (fn_b, fn_a)
        start = time.process_time()
        first(ncycles)
        mid = time.process_time()
        second(ncycles)
        end = time.process_time()
        t_first, t_second = mid - start, end - mid
        t_a, t_b = ((t_first, t_second) if rep % 2 == 0
                    else (t_second, t_first))
        best_a = min(best_a, t_a)
        best_b = min(best_b, t_b)
    return ncycles, ncycles / best_a, ncycles / best_b


def _kernel_pair():
    """(baseline_fn, disabled_fn) over the same disabled-telemetry
    design: a bare kernel loop vs the full ``sim.run()`` entry point
    with telemetry machinery constructed but off."""
    sim = SimulationTool(_build(False), sched="static")
    assert sim._kernel is not None
    sim.reset()
    kernel = sim._kernel

    def baseline(n):
        for _ in range(n):
            kernel()

    return baseline, sim.run


def _measure(config):
    if config == "counters":
        net = _build(True)
        sim = SimulationTool(net, sched="static")
        assert sim._kernel is not None
        sim.reset()
        _inject(net)
        fn = sim.run

    elif config == "trace":
        net = _build(True)
        sim = SimulationTool(net, sched="static")
        tracer = sim.telemetry.trace()
        tracer.tap_model(net)
        sim.reset()
        _inject(net)
        fn = sim.run

    elif config == "profile":
        net = _build(True)
        sim = SimulationTool(net, sched="static", profile=True)
        assert sim._kernel is None
        sim.reset()
        _inject(net)
        fn = sim.run

    else:
        raise ValueError(config)

    ncycles, cycles_per_sec = _best_of(fn)
    return {"config": config, "cycles": ncycles,
            "cycles_per_sec": cycles_per_sec}


def test_telemetry_overhead(benchmark):
    entries = []

    def run_all():
        baseline_fn, disabled_fn = _kernel_pair()
        ncycles, base_cps, dis_cps = _best_of_paired(
            baseline_fn, disabled_fn)
        entries.append({"config": "baseline", "cycles": ncycles,
                        "cycles_per_sec": base_cps})
        entries.append({"config": "disabled", "cycles": ncycles,
                        "cycles_per_sec": dis_cps})
        for config in ("counters", "trace", "profile"):
            entries.append(_measure(config))

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    by_config = {e["config"]: e for e in entries}
    base = by_config["baseline"]["cycles_per_sec"]
    rows = []
    for entry in entries:
        slowdown = base / entry["cycles_per_sec"]
        entry["slowdown_vs_baseline"] = slowdown
        rows.append([
            entry["config"], entry["cycles"],
            f"{entry['cycles_per_sec']:.0f}", f"{slowdown:.3f}x",
        ])

    text = format_table(
        f"Telemetry overhead ({NROUTERS}-router RTL mesh, interpreted)",
        ["config", "cycles", "cyc/s", "slowdown"],
        rows,
    )
    write_result("telemetry_overhead.txt", text)
    write_json_result(
        "telemetry", entries, quick=QUICK,
        nrouters=NROUTERS, max_overhead=MAX_OVERHEAD)

    # The asserted contract: telemetry constructed but disabled is
    # indistinguishable from the bare kernel loop.
    disabled = by_config["disabled"]["slowdown_vs_baseline"]
    assert disabled < 1.0 + MAX_OVERHEAD, (
        f"disabled telemetry costs {(disabled - 1) * 100:.1f}% "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)")


if __name__ == "__main__":
    class _Pedantic:
        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_telemetry_overhead(_Pedantic())
