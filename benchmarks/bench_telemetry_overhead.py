"""Telemetry overhead: the observability tax at each opt-in level.

The telemetry subsystem's contract is *pay only for what you turn
on*.  This bench quantifies that on an RTL mesh, including the
compiled-instrumentation path (observability lowered into the SimJIT
kernel) that removes the old 850x cliff:

- ``baseline``  — raw mega-cycle kernel calls in a bare loop, on a
  design constructed with telemetry disabled.  This is the PR-1
  fast path: no telemetry objects exist anywhere.
- ``disabled``  — ``sim.run()`` on the same disabled-telemetry
  design.  The **asserted** contract: within ``MAX_OVERHEAD`` (2%)
  of baseline, i.e. constructing the telemetry machinery and leaving
  it off costs nothing measurable.
- ``jit_baseline`` — uninstrumented whole-mesh SimJIT: one compiled
  engine, ``sim.run()`` batches straight into C.  The reference rate
  for all compiled-instrumentation configs.
- ``counters``  — telemetry enabled on the SimJIT mesh.  Counters
  lower into the compiled instance and are read back in bulk after
  the run; the kernel loop itself is untouched.
- ``trace``     — counters plus a :class:`TxTracer` tapping every
  terminal port, *compiled*: the kernel writes change-compressed
  boundary events into a C ring drained per ``run()`` batch.
- ``recorder12`` — a 12-signal flight recorder (depth 512) compiled
  into the kernel the same way.
- ``profile``   — ``profile=True``: per-block and per-phase host-time
  attribution.  Interpreted by design (it times Python blocks), so it
  is reported, not asserted, and runs its own cycle count
  (``equal_cycles: false``).

Every asserted comparison comes from *paired, order-alternating*
timings at *equal cycle counts* — the only honest way to resolve
small ratios under host frequency drift.  The compiled configs are
asserted to stay under ``MAX_SLOWDOWN`` (2x full, 3x quick) of the
jit baseline; the old hook path measured 850-1350x.  ``BENCH_QUICK=1``
shrinks the mesh and budgets for CI smoke runs.  Results land in
``benchmarks/results/BENCH_telemetry.json``.
"""

import os

from common import (best_of, best_of_paired, build_jit_network,
                    format_table, write_json_result, write_result)
from repro import SimulationTool, set_telemetry_enabled
from repro.net import MeshNetworkStructural, RouterRTL

QUICK = os.environ.get("BENCH_QUICK", "0").strip().lower() not in (
    "", "0", "false", "no")

NROUTERS = 16 if QUICK else 64
MIN_REP_SECONDS = 0.1 if QUICK else 0.25
REPS = 3 if QUICK else 6
# Quick mode runs few reps on shared CI hosts: give the noise-bound
# disabled-telemetry contract more headroom there.
MAX_OVERHEAD = 0.05 if QUICK else 0.02
MAX_SLOWDOWN = 3.0 if QUICK else 2.0


def _build(enabled):
    prev = set_telemetry_enabled(enabled)
    try:
        net = MeshNetworkStructural(
            RouterRTL, NROUTERS, 256, 32, 2).elaborate()
    finally:
        set_telemetry_enabled(prev)
    return net


def _build_jit(enabled):
    """Whole-mesh single-engine SimJIT wrapper + its specializer."""
    prev = set_telemetry_enabled(enabled)
    try:
        wrapper, spec = build_jit_network("rtl", NROUTERS)
    finally:
        set_telemetry_enabled(prev)
    return wrapper, spec


def _inject(net):
    """Light standing traffic so counters/taps have work to observe."""
    dest_shift = net.msg_type.field_slice("dest")[0]
    for port in net.out:
        port.rdy.value = 1
    net.in_[0].msg.value = (NROUTERS - 1) << dest_shift
    net.in_[0].val.value = 1


def _paired(fn_a, fn_b):
    """Shared paired order-alternating harness at this bench's reps;
    ``fn_b`` is warmed up once (transients, buffers) before timing."""
    return best_of_paired(fn_a, fn_b, REPS, MIN_REP_SECONDS,
                          warmup_b=True)


def _kernel_pair():
    """(baseline_fn, disabled_fn) over the same disabled-telemetry
    design: a bare kernel loop vs the full ``sim.run()`` entry point
    with telemetry machinery constructed but off."""
    sim = SimulationTool(_build(False), sched="static")
    assert sim._kernel is not None
    sim.reset()
    kernel = sim._kernel

    def baseline(n):
        for _ in range(n):
            kernel()

    return baseline, sim.run


def _jit_runner(enabled, instrument=None):
    """``sim.run`` on a fresh whole-mesh SimJIT sim, optionally with
    compiled instrumentation armed by ``instrument(wrapper, sim)``.
    Returns (fn, cache_hit)."""
    wrapper, spec = _build_jit(enabled)
    sim = SimulationTool(wrapper)
    sim.reset()
    _inject(wrapper)
    if instrument is not None:
        instrument(wrapper, sim)
    return sim.run, bool(spec.overheads.get("cache_hit"))


def _arm_trace(wrapper, sim):
    tracer = sim.telemetry.trace()
    tracer.tap_model(wrapper)
    assert tracer._instr is not None, \
        "tx taps did not compile into the kernel"


def _arm_recorder(wrapper, sim):
    nper = max(1, 12 // 2)
    signals = []
    for i in range(nper):
        signals.append(f"routers[{i}].grant_val[0]")
        signals.append(f"routers[{i}].hold_val[0]")
    rec = sim.flight_recorder(signals=signals[:12], depth=512)
    assert rec._cidx is not None, \
        "flight recorder did not compile into the kernel"


def test_telemetry_overhead(benchmark):
    entries = []
    cache_hits = {}

    def run_all():
        # Interpreted pair: the disabled-telemetry contract.
        baseline_fn, disabled_fn = _kernel_pair()
        pt = _paired(baseline_fn, disabled_fn)
        ncycles, base_cps, dis_cps = pt.ncycles, pt.cps_a, pt.cps_b
        entries.append({"config": "baseline", "cycles": ncycles,
                        "cycles_per_sec": base_cps,
                        "slowdown_vs_baseline": 1.0,
                        "equal_cycles": True})
        entries.append({"config": "disabled", "cycles": ncycles,
                        "cycles_per_sec": dis_cps,
                        "slowdown_vs_baseline": base_cps / dis_cps,
                        "pair_spread": pt.pair_spread,
                        "equal_cycles": True})

        # Compiled pairs: each instrumented config against its own
        # freshly-timed uninstrumented SimJIT baseline, same cycles.
        jit_fn, hit = _jit_runner(False)
        cache_hits["jit_baseline"] = hit

        def counters_cfg():
            fn, hit = _jit_runner(True)
            cache_hits["counters"] = hit
            return fn

        def trace_cfg():
            fn, hit = _jit_runner(True, _arm_trace)
            cache_hits["trace"] = hit
            return fn

        def recorder_cfg():
            fn, hit = _jit_runner(False, _arm_recorder)
            cache_hits["recorder12"] = hit
            return fn

        first = True
        for config, make in (("counters", counters_cfg),
                             ("trace", trace_cfg),
                             ("recorder12", recorder_cfg)):
            pt = _paired(jit_fn, make())
            ncycles, jit_cps, cfg_cps = pt.ncycles, pt.cps_a, pt.cps_b
            if first:
                entries.append({
                    "config": "jit_baseline", "cycles": ncycles,
                    "cycles_per_sec": jit_cps,
                    "slowdown_vs_jit_baseline": 1.0,
                    "equal_cycles": True})
                first = False
            entries.append({
                "config": config, "cycles": ncycles,
                "cycles_per_sec": cfg_cps,
                "slowdown_vs_jit_baseline": jit_cps / cfg_cps,
                "pair_spread": pt.pair_spread,
                "equal_cycles": True})

        # Profile is interpreted by design; its own cycle count.
        net = _build(True)
        sim = SimulationTool(net, sched="static", profile=True)
        assert sim._kernel is None
        sim.reset()
        _inject(net)
        ncycles, cps = best_of(sim.run, REPS, MIN_REP_SECONDS)
        entries.append({"config": "profile", "cycles": ncycles,
                        "cycles_per_sec": cps,
                        "equal_cycles": False})

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    by_config = {e["config"]: e for e in entries}
    rows = []
    for entry in entries:
        slow = (entry.get("slowdown_vs_jit_baseline")
                or entry.get("slowdown_vs_baseline"))
        rows.append([
            entry["config"], entry["cycles"],
            f"{entry['cycles_per_sec']:.0f}",
            f"{slow:.3f}x" if slow else "(own cycles)",
        ])

    text = format_table(
        f"Telemetry overhead ({NROUTERS}-router RTL mesh)",
        ["config", "cycles", "cyc/s", "slowdown (paired)"],
        rows,
    )
    write_result("telemetry_overhead.txt", text)
    write_json_result(
        "telemetry", entries, quick=QUICK, nrouters=NROUTERS,
        max_overhead=MAX_OVERHEAD, max_slowdown=MAX_SLOWDOWN,
        cache_hits=cache_hits)

    # The asserted contracts: telemetry constructed but disabled is
    # indistinguishable from the bare kernel loop, and compiled
    # instrumentation stays within MAX_SLOWDOWN of uninstrumented
    # SimJIT (the hook path measured 850-1350x here).
    disabled = by_config["disabled"]["slowdown_vs_baseline"]
    assert disabled < 1.0 + MAX_OVERHEAD, (
        f"disabled telemetry costs {(disabled - 1) * 100:.1f}% "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    for config in ("counters", "trace", "recorder12"):
        slow = by_config[config]["slowdown_vs_jit_baseline"]
        assert slow < MAX_SLOWDOWN, (
            f"{config} runs {slow:.2f}x slower than uninstrumented "
            f"SimJIT (budget {MAX_SLOWDOWN}x)")


if __name__ == "__main__":
    class _Pedantic:
        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_telemetry_overhead(_Pedantic())
